#include "src/scrub/agent.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "src/mon/maps.h"

namespace mal::scrub {

namespace {

// Repair runs below the client fencing layer: it restores redundancy of an
// existing write generation (same bytes, same stamp) rather than creating
// a new one, so it must pass the ec.check_epoch guard even on sealed
// objects. The max epoch always passes and never advances the seal.
constexpr uint64_t kRepairEpoch = std::numeric_limits<uint64_t>::max();

}  // namespace

Agent::Agent(sim::Simulator* simulator, sim::Network* network, uint32_t id,
             std::vector<uint32_t> mons, ScrubConfig config)
    : Actor(simulator, network, sim::EntityName::Scrub(id)),
      config_(config),
      rados_(this, std::move(mons)) {
  rados_.set_perf(&perf_);
}

void Agent::Boot() {
  rados_.Connect([](mal::Status) {});
  StartPeriodic(config_.interval, [this] { Tick(); });
  if (config_.report_interval > 0) {
    StartPeriodic(config_.report_interval, [this] {
      if (!perf_.empty()) {
        rados_.mon_client().ReportPerf(perf_.Snapshot(name().ToString(), Now()));
      }
    });
  }
}

void Agent::HandleRequest(const sim::Envelope& request) {
  if (rados_.OnMapUpdate(request)) {
    return;
  }
  rados_.OnNotify(request);
}

void Agent::Tick() {
  if (busy_) {
    return;  // previous batch or refill still draining; keep the pace honest
  }
  if (!queue_.empty()) {
    busy_ = true;
    ScrubNext(config_.objects_per_tick);
    return;
  }
  // Queue drained: enumerate the EC pools in the current map view and
  // start a fresh pass.
  std::vector<std::pair<std::string, uint32_t>> pools;
  const auto& metadata = rados_.osd_map().service_metadata;
  for (auto it = metadata.lower_bound(mon::kPoolKeyPrefix); it != metadata.end(); ++it) {
    if (it->first.rfind(mon::kPoolKeyPrefix, 0) != 0) {
      break;
    }
    auto layout = mon::PoolLayout::Parse(it->second);
    if (layout.has_value() && layout->kind == mon::PoolLayout::Kind::kErasure) {
      pools.emplace_back(it->first.substr(sizeof(mon::kPoolKeyPrefix) - 1), layout->width);
    }
  }
  pass_open_ = true;
  pass_degraded_ = 0;
  pass_tracked_ = 0;
  if (pools.empty()) {
    FinishPass();
    return;
  }
  busy_ = true;
  Refill(std::move(pools), 0);
}

void Agent::Refill(std::vector<std::pair<std::string, uint32_t>> pools, size_t next) {
  if (next >= pools.size()) {
    pass_tracked_ = queue_.size();
    if (queue_.empty()) {
      FinishPass();
    }
    busy_ = false;  // scrubbing starts on the next tick (paced)
    return;
  }
  auto [pool_name, k] = pools[next];
  ec::Pool pool(&rados_, pool_name, k);
  pool.ListObjects([this, pools = std::move(pools), next, pool_name = pool_name,
                    k = k](mal::Status status, std::vector<std::string> objects) mutable {
    if (status.ok()) {
      for (std::string& object : objects) {
        queue_.push_back(WorkItem{pool_name, k, std::move(object)});
      }
    }
    Refill(std::move(pools), next + 1);
  });
}

void Agent::FinishPass() {
  if (!pass_open_) {
    return;
  }
  pass_open_ = false;
  last_pass_degraded_ = pass_degraded_;
  ++passes_completed_;
  perf_.Set("scrub.degraded_objects", static_cast<double>(pass_degraded_));
  perf_.Set("scrub.objects_tracked", static_cast<double>(pass_tracked_));
}

void Agent::ScrubNext(uint32_t budget) {
  if (queue_.empty()) {
    FinishPass();
    busy_ = false;
    return;
  }
  if (budget == 0) {
    busy_ = false;  // batch exhausted; resume at the next tick
    return;
  }
  WorkItem item = std::move(queue_.front());
  queue_.pop_front();
  ScrubOne(item, budget - 1);
}

void Agent::ScrubOne(const WorkItem& item, uint32_t budget) {
  ec::Pool pool(&rados_, item.pool, item.k);
  std::string object = item.object;
  pool.GatherShards(
      object, [this, pool_name = item.pool, k = item.k, object, attempts = item.attempts,
               budget](std::vector<ec::ShardInfo> shards) mutable {
        perf_.Inc("scrub.objects_scanned");
        uint64_t size = 0;
        uint32_t missing = 0;
        auto generation = ec::SelectGeneration(shards, &size, &missing);
        if (missing == 0) {
          ScrubNext(budget);  // fully redundant, consistent generation
          return;
        }
        if (attempts == 0) {
          ++pass_degraded_;  // count the object once, not per retry
        }
        auto decoded = ec::Decode(generation, size);
        if (!decoded.ok()) {
          // Beyond the code's tolerance (or nothing left at all): record
          // it loudly; only an operator restore can help now.
          perf_.Inc("scrub.unrecoverable");
          rados_.mon_client().Log("ERROR", "scrub: unrecoverable object " + pool_name +
                                               "/" + object + ": " +
                                               decoded.status().ToString());
          ScrubNext(budget);
          return;
        }
        uint64_t shard_len = 0;
        for (const auto& shard : generation) {
          if (shard.has_value()) {
            shard_len = shard->size();
            break;
          }
        }
        sim::Time start = Now();
        ec::Pool repair_pool(&rados_, pool_name, k);
        repair_pool.set_epoch(kRepairEpoch);
        repair_pool.Write(object, decoded.value(),
                          [this, pool_name, k, object, attempts, missing, shard_len,
                           start, budget](mal::Status status) {
                            if (status.ok()) {
                              perf_.Inc("scrub.shards_rebuilt", missing);
                              perf_.Inc("scrub.bytes_rebuilt", missing * shard_len);
                              perf_.Observe("scrub.repair_latency_us",
                                            static_cast<double>(Now() - start) / 1e3);
                            } else {
                              perf_.Inc("scrub.repair_failures");
                              // Retry behind the rest of the pass: map-churn
                              // write failures usually clear within seconds,
                              // and waiting a whole pass widens the window
                              // in which a second fault turns one degraded
                              // object into a data loss.
                              if (attempts + 1 < 3) {
                                queue_.push_back(
                                    WorkItem{pool_name, k, object, attempts + 1});
                              }
                            }
                            ScrubNext(budget);
                          });
      });
}

}  // namespace mal::scrub
