// Background scrub and self-healing rebuild for erasure-coded pools
// (paper §4.4: "RADOS protects data using common techniques such as
// erasure coding, replication, and scrubbing").
//
// The agent is a maintenance actor (entity "scrub.<id>") that discovers EC
// pools from the OSDMap's service metadata, walks each pool's object index
// at a paced rate, and for every object gathers all k+1 shards with
// checksum verification. Any hole — a shard lost with its OSD, silently
// bit-rotted, stranded on a former canonical home after membership change,
// or stale from a torn write — is repaired by decoding the surviving
// generation and re-writing the full stripe, which lands every shard on
// its *current* canonical home. Whole-OSD rebuild is therefore the same
// code path as single-shard repair, just triggered k+1 object-walks at a
// time.
//
// Everything the agent observes flows into perf counters
// (scrub.objects_scanned, scrub.shards_rebuilt, scrub.bytes_rebuilt,
// scrub.repair_latency_us, and the scrub.degraded_objects /
// scrub.objects_tracked gauges refreshed per pass) and is pushed to the
// monitor, where the ec_degraded / scrub_stalled health rules watch them.
#ifndef MALACOLOGY_SCRUB_AGENT_H_
#define MALACOLOGY_SCRUB_AGENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/perf.h"
#include "src/ec/pool.h"
#include "src/rados/client.h"
#include "src/sim/actor.h"

namespace mal::scrub {

struct ScrubConfig {
  // Pacing: every `interval` the agent scrubs up to `objects_per_tick`
  // objects (sequentially, so at most one gather/repair is in flight).
  sim::Time interval = 500 * sim::kMillisecond;
  uint32_t objects_per_tick = 4;
  // Perf-report cadence to the monitor (0 disables).
  sim::Time report_interval = 1 * sim::kSecond;
};

class Agent : public sim::Actor {
 public:
  Agent(sim::Simulator* simulator, sim::Network* network, uint32_t id,
        std::vector<uint32_t> mons, ScrubConfig config = {});

  // Connects to the monitors and starts the periodic scrub tick.
  void Boot();

  mal::PerfRegistry& perf() { return perf_; }
  rados::RadosClient& rados() { return rados_; }

  // Objects found degraded (and repaired, where possible) during the most
  // recently completed pass; mirrors the scrub.degraded_objects gauge.
  uint64_t last_pass_degraded() const { return last_pass_degraded_; }
  // Completed full walks over every tracked pool.
  uint64_t passes_completed() const { return passes_completed_; }

 protected:
  void HandleRequest(const sim::Envelope& request) override;

 private:
  struct WorkItem {
    std::string pool;
    uint32_t k = 0;
    std::string object;
    // Repair attempts already made this pass: a failed repair (e.g. the
    // map still routing a shard to a dead OSD mid-failover) requeues the
    // object instead of leaving it degraded until the next pass.
    uint32_t attempts = 0;
  };

  void Tick();
  // Rebuilds the work queue: one index listing per EC pool in the current
  // map, chained sequentially for determinism.
  void Refill(std::vector<std::pair<std::string, uint32_t>> pools, size_t next);
  void FinishPass();
  // Scrubs the queue head, then continues the batch until `budget` runs out.
  void ScrubNext(uint32_t budget);
  void ScrubOne(const WorkItem& item, uint32_t budget);

  ScrubConfig config_;
  rados::RadosClient rados_;
  mal::PerfRegistry perf_;
  std::deque<WorkItem> queue_;
  bool busy_ = false;        // a batch (or the refill) is in flight
  bool pass_open_ = false;   // stats below describe the current pass
  uint64_t pass_degraded_ = 0;
  uint64_t pass_tracked_ = 0;
  uint64_t last_pass_degraded_ = 0;
  uint64_t passes_completed_ = 0;
};

}  // namespace mal::scrub

#endif  // MALACOLOGY_SCRUB_AGENT_H_
