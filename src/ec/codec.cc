#include "src/ec/codec.h"

namespace mal::ec {

std::vector<mal::Buffer> Encode(const mal::Buffer& data, uint32_t k) {
  uint64_t shard_len = k == 0 ? 0 : (data.size() + k - 1) / k;
  std::vector<mal::Buffer> shards;
  shards.reserve(k + 1);
  for (uint32_t i = 0; i < k; ++i) {
    mal::Buffer shard = data.Read(static_cast<uint64_t>(i) * shard_len, shard_len);
    shard.Resize(shard_len);  // zero-pad the tail shard
    shards.push_back(std::move(shard));
  }
  mal::Buffer parity;
  parity.Resize(shard_len);
  std::string parity_bytes(shard_len, '\0');
  for (uint32_t i = 0; i < k; ++i) {
    for (uint64_t b = 0; b < shard_len; ++b) {
      parity_bytes[b] = static_cast<char>(parity_bytes[b] ^ shards[i].data()[b]);
    }
  }
  shards.push_back(mal::Buffer::FromString(parity_bytes));
  return shards;
}

mal::Result<mal::Buffer> Decode(const std::vector<std::optional<mal::Buffer>>& shards,
                                uint64_t size) {
  if (shards.size() < 2) {
    return mal::Status::InvalidArgument("need at least one data + one parity shard");
  }
  uint32_t k = static_cast<uint32_t>(shards.size()) - 1;
  int missing = -1;
  uint64_t shard_len = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (!shards[i].has_value()) {
      if (missing >= 0) {
        return mal::Status::DataLoss("more than one shard lost (m=1 code)");
      }
      missing = static_cast<int>(i);
    } else {
      shard_len = shards[i]->size();
    }
  }
  // Verify consistent shard lengths.
  for (const auto& shard : shards) {
    if (shard.has_value() && shard->size() != shard_len) {
      return mal::Status::Corruption("inconsistent shard lengths");
    }
  }
  std::string reconstructed(shard_len, '\0');
  if (missing >= 0) {
    for (size_t i = 0; i < shards.size(); ++i) {
      if (static_cast<int>(i) == missing) {
        continue;
      }
      for (uint64_t b = 0; b < shard_len; ++b) {
        reconstructed[b] = static_cast<char>(reconstructed[b] ^ shards[i]->data()[b]);
      }
    }
  }
  mal::Buffer out;
  for (uint32_t i = 0; i < k; ++i) {
    if (static_cast<int>(i) == missing) {
      out.Append(reconstructed.data(), shard_len);
    } else {
      out.Append(*shards[i]);
    }
  }
  out.Resize(size);  // strip padding
  return out;
}

uint64_t Checksum(const mal::Buffer& data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<unsigned char>(data.data()[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

mal::Buffer EpochInput(uint64_t epoch) {
  mal::Buffer b;
  mal::Encoder enc(&b);
  enc.PutU64(epoch);
  return b;
}

}  // namespace

void EcObject::Write(mal::Buffer data, DoneHandler on_done) {
  std::vector<mal::Buffer> shards = Encode(data, k_);
  uint64_t stamp = Checksum(data);
  auto pending = std::make_shared<size_t>(shards.size());
  auto first_error = std::make_shared<mal::Status>();
  for (uint32_t i = 0; i < shards.size(); ++i) {
    std::vector<osd::Op> ops;
    ops.reserve(5);
    // Guard first: a stale epoch aborts the whole shard transaction.
    ops.push_back(rados::RadosClient::MakeExecOp("ec", "check_epoch", EpochInput(epoch_)));
    osd::Op write;
    write.type = osd::Op::Type::kWriteFull;
    write.data = shards[i];
    ops.push_back(std::move(write));
    osd::Op size_attr;
    size_attr.type = osd::Op::Type::kXattrSet;
    size_attr.key = kShardSizeXattr;
    size_attr.value = std::to_string(data.size());
    ops.push_back(std::move(size_attr));
    osd::Op cksum_attr;
    cksum_attr.type = osd::Op::Type::kXattrSet;
    cksum_attr.key = kShardCksumXattr;
    cksum_attr.value = std::to_string(Checksum(shards[i]));
    ops.push_back(std::move(cksum_attr));
    osd::Op stamp_attr;
    stamp_attr.type = osd::Op::Type::kXattrSet;
    stamp_attr.key = kShardStampXattr;
    stamp_attr.value = std::to_string(stamp);
    ops.push_back(std::move(stamp_attr));
    rados_->Execute(ShardOid(i), std::move(ops),
                    [pending, first_error, on_done](mal::Status status,
                                                    const osd::OsdOpReply& reply) {
                      mal::Status op_status = status;
                      if (status.ok()) {
                        for (const osd::OpResult& result : reply.results) {
                          if (!result.status.ok()) {
                            op_status = result.status;
                          }
                        }
                      }
                      if (!op_status.ok() && first_error->ok()) {
                        *first_error = op_status;
                      }
                      if (--*pending == 0) {
                        on_done(*first_error);
                      }
                    });
  }
}

void EcObject::Seal(uint64_t epoch, DoneHandler on_done) {
  auto pending = std::make_shared<size_t>(num_shards());
  auto first_error = std::make_shared<mal::Status>();
  for (uint32_t i = 0; i < num_shards(); ++i) {
    std::vector<osd::Op> ops;
    ops.push_back(rados::RadosClient::MakeExecOp("ec", "seal", EpochInput(epoch)));
    rados_->Execute(ShardOid(i), std::move(ops),
                    [this, epoch, pending, first_error, on_done](
                        mal::Status status, const osd::OsdOpReply& reply) {
                      mal::Status op_status = status;
                      if (status.ok()) {
                        for (const osd::OpResult& result : reply.results) {
                          if (!result.status.ok()) {
                            op_status = result.status;
                          }
                        }
                      }
                      if (!op_status.ok() && first_error->ok()) {
                        *first_error = op_status;
                      }
                      if (--*pending == 0) {
                        if (first_error->ok()) {
                          epoch_ = epoch;
                        }
                        on_done(*first_error);
                      }
                    });
  }
}

void EcObject::Read(DataHandler on_data) {
  uint32_t total = num_shards();
  auto shards = std::make_shared<std::vector<std::optional<mal::Buffer>>>(total);
  auto sizes = std::make_shared<std::vector<uint64_t>>(total, 0);
  auto pending = std::make_shared<uint32_t>(total);
  for (uint32_t i = 0; i < total; ++i) {
    std::vector<osd::Op> ops(2);
    ops[0].type = osd::Op::Type::kRead;
    ops[1].type = osd::Op::Type::kXattrGet;
    ops[1].key = "ec.size";
    rados_->Execute(
        ShardOid(i), std::move(ops),
        [shards, sizes, pending, on_data, i](mal::Status status,
                                             const osd::OsdOpReply& reply) {
          if (status.ok() && reply.results.size() == 2 && reply.results[0].status.ok() &&
              reply.results[1].status.ok()) {
            (*shards)[i] = reply.results[0].out;
            (*sizes)[i] = std::strtoull(reply.results[1].out.ToString().c_str(), nullptr, 10);
          }
          if (--*pending != 0) {
            return;
          }
          // All replies in: find the logical size from any present shard.
          uint64_t size = 0;
          bool any = false;
          for (uint32_t s = 0; s < shards->size(); ++s) {
            if ((*shards)[s].has_value()) {
              size = (*sizes)[s];
              any = true;
              break;
            }
          }
          if (!any) {
            on_data(mal::Status::NotFound("all shards missing"), mal::Buffer());
            return;
          }
          auto decoded = Decode(*shards, size);
          if (!decoded.ok()) {
            on_data(decoded.status(), mal::Buffer());
            return;
          }
          on_data(mal::Status::Ok(), decoded.value());
        });
  }
}

}  // namespace mal::ec
