#include "src/ec/pool.h"

#include <cstdlib>
#include <map>

namespace mal::ec {

namespace {

mal::Buffer EpochInput(uint64_t epoch) {
  mal::Buffer b;
  mal::Encoder enc(&b);
  enc.PutU64(epoch);
  return b;
}

uint64_t ParseU64(const std::string& s) {
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

std::vector<std::optional<mal::Buffer>> SelectGeneration(const std::vector<ShardInfo>& shards,
                                                         uint64_t* size_out,
                                                         uint32_t* missing_out) {
  // Plurality vote over write-generation stamps among checksum-valid
  // shards. std::map iterates ascending and `>` keeps the first maximum,
  // so ties deterministically pick the smallest stamp.
  std::map<uint64_t, uint32_t> votes;
  for (const ShardInfo& shard : shards) {
    if (shard.valid) {
      ++votes[shard.stamp];
    }
  }
  uint64_t winner = 0;
  uint32_t best = 0;
  bool have = false;
  for (const auto& [stamp, count] : votes) {
    if (count > best) {
      best = count;
      winner = stamp;
      have = true;
    }
  }
  std::vector<std::optional<mal::Buffer>> generation(shards.size());
  uint32_t missing = 0;
  uint64_t size = 0;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (have && shards[i].valid && shards[i].stamp == winner) {
      generation[i] = shards[i].data;
      size = shards[i].size;
    } else {
      ++missing;
    }
  }
  *size_out = size;
  *missing_out = missing;
  return generation;
}

void Pool::Create(rados::RadosClient* rados, const std::string& name,
                  const mon::PoolLayout& layout, DoneHandler on_done) {
  rados->mon_client().SetServiceMetadata(
      mon::MapKind::kOsdMap, mon::PoolKey(name), layout.Format(),
      [rados, on_done](mal::Status status) {
        if (!status.ok()) {
          on_done(status);
          return;
        }
        // Pull the map carrying the pool entry so this client's very next
        // placement decision routes by the pool layout (other parties
        // converge through the normal push/gossip machinery).
        rados->RefreshMap(on_done);
      });
}

std::optional<Pool> Pool::Bind(rados::RadosClient* rados, const std::string& name) {
  auto layout = mon::PoolLayoutOf(rados->osd_map(), name);
  if (!layout.has_value() || layout->kind != mon::PoolLayout::Kind::kErasure) {
    return std::nullopt;
  }
  return Pool(rados, name, layout->width);
}

void Pool::Write(const std::string& object, mal::Buffer data, DoneHandler on_done) {
  std::vector<mal::Buffer> shards = Encode(data, k_);
  uint64_t stamp = Checksum(data);
  std::vector<rados::RadosClient::TargetedOp> ops;
  ops.reserve(shards.size() * 5 + 1);
  for (uint32_t i = 0; i < shards.size(); ++i) {
    std::string oid = ShardOid(object, i);
    ops.push_back(
        {oid, rados::RadosClient::MakeExecOp("ec", "check_epoch", EpochInput(epoch_))});
    osd::Op write;
    write.type = osd::Op::Type::kWriteFull;
    write.data = shards[i];
    ops.push_back({oid, std::move(write)});
    osd::Op size_attr;
    size_attr.type = osd::Op::Type::kXattrSet;
    size_attr.key = kShardSizeXattr;
    size_attr.value = std::to_string(data.size());
    ops.push_back({oid, std::move(size_attr)});
    osd::Op cksum_attr;
    cksum_attr.type = osd::Op::Type::kXattrSet;
    cksum_attr.key = kShardCksumXattr;
    cksum_attr.value = std::to_string(Checksum(shards[i]));
    ops.push_back({oid, std::move(cksum_attr)});
    osd::Op stamp_attr;
    stamp_attr.type = osd::Op::Type::kXattrSet;
    stamp_attr.key = kShardStampXattr;
    stamp_attr.value = std::to_string(stamp);
    ops.push_back({oid, std::move(stamp_attr)});
  }
  // The object index rides in the same batch: scrub discovers the object
  // as soon as the write acks.
  osd::Op index;
  index.type = osd::Op::Type::kOmapSet;
  index.key = std::string(kIndexKeyPrefix) + object;
  index.value = std::to_string(data.size());
  ops.push_back({IndexOid(name_), std::move(index)});
  rados_->ExecuteTargeted(std::move(ops), [on_done](std::vector<osd::OpResult> results) {
    mal::Status first;
    for (const osd::OpResult& result : results) {
      if (!result.status.ok() && first.ok()) {
        first = result.status;
      }
    }
    on_done(first);
  });
}

void Pool::GatherShards(const std::string& object, GatherHandler on_done) {
  uint32_t total = num_shards();
  auto shards = std::make_shared<std::vector<ShardInfo>>(total);
  auto pending = std::make_shared<uint32_t>(total);
  for (uint32_t i = 0; i < total; ++i) {
    std::vector<osd::Op> ops(4);
    ops[0].type = osd::Op::Type::kRead;
    ops[1].type = osd::Op::Type::kXattrGet;
    ops[1].key = kShardSizeXattr;
    ops[2].type = osd::Op::Type::kXattrGet;
    ops[2].key = kShardCksumXattr;
    ops[3].type = osd::Op::Type::kXattrGet;
    ops[3].key = kShardStampXattr;
    rados_->Execute(ShardOid(object, i), std::move(ops),
                    [shards, pending, on_done, i](mal::Status status,
                                                  const osd::OsdOpReply& reply) {
                      bool complete = status.ok() && reply.results.size() == 4;
                      for (size_t r = 0; complete && r < reply.results.size(); ++r) {
                        complete = reply.results[r].status.ok();
                      }
                      if (complete) {
                        ShardInfo info;
                        info.present = true;
                        info.data = reply.results[0].out;
                        info.size = ParseU64(reply.results[1].out.ToString());
                        uint64_t cksum = ParseU64(reply.results[2].out.ToString());
                        info.stamp = ParseU64(reply.results[3].out.ToString());
                        info.valid = Checksum(info.data) == cksum;
                        (*shards)[i] = std::move(info);
                      }
                      if (--*pending == 0) {
                        on_done(std::move(*shards));
                      }
                    });
  }
}

void Pool::Read(const std::string& object, DataHandler on_data) {
  GatherShards(object, [this, on_data](std::vector<ShardInfo> shards) {
    uint64_t size = 0;
    uint32_t missing = 0;
    auto generation = SelectGeneration(shards, &size, &missing);
    if (missing == generation.size()) {
      on_data(mal::Status::NotFound("no readable shards"), mal::Buffer());
      return;
    }
    if (missing > 0 && rados_->perf() != nullptr) {
      rados_->perf()->Inc("rados.ec.degraded_reads");
    }
    auto decoded = Decode(generation, size);
    if (!decoded.ok()) {
      on_data(decoded.status(), mal::Buffer());
      return;
    }
    on_data(mal::Status::Ok(), decoded.value());
  });
}

void Pool::Seal(const std::string& object, uint64_t epoch, DoneHandler on_done) {
  auto pending = std::make_shared<uint32_t>(num_shards());
  auto first_error = std::make_shared<mal::Status>();
  for (uint32_t i = 0; i < num_shards(); ++i) {
    std::vector<osd::Op> ops;
    ops.push_back(rados::RadosClient::MakeExecOp("ec", "seal", EpochInput(epoch)));
    rados_->Execute(ShardOid(object, i), std::move(ops),
                    [this, epoch, pending, first_error, on_done](
                        mal::Status status, const osd::OsdOpReply& reply) {
                      mal::Status op_status = status;
                      if (status.ok()) {
                        for (const osd::OpResult& result : reply.results) {
                          if (!result.status.ok()) {
                            op_status = result.status;
                          }
                        }
                      }
                      if (!op_status.ok() && first_error->ok()) {
                        *first_error = op_status;
                      }
                      if (--*pending == 0) {
                        if (first_error->ok()) {
                          epoch_ = epoch;
                        }
                        on_done(*first_error);
                      }
                    });
  }
}

void Pool::ListObjects(ListHandler on_list) {
  std::vector<osd::Op> ops(1);
  ops[0].type = osd::Op::Type::kOmapList;
  ops[0].key = kIndexKeyPrefix;
  rados_->Execute(IndexOid(name_), std::move(ops),
                  [on_list](mal::Status status, const osd::OsdOpReply& reply) {
                    if (!status.ok()) {
                      on_list(status, {});
                      return;
                    }
                    if (reply.results.empty() || !reply.results[0].status.ok()) {
                      // An absent index means an empty pool, not an error.
                      mal::Status s = reply.results.empty()
                                          ? mal::Status::Internal("empty reply")
                                          : reply.results[0].status;
                      if (s.code() == mal::Code::kNotFound) {
                        on_list(mal::Status::Ok(), {});
                      } else {
                        on_list(s, {});
                      }
                      return;
                    }
                    mal::Decoder dec(reply.results[0].out);
                    auto entries = DecodeStringMap(&dec);
                    std::vector<std::string> objects;
                    objects.reserve(entries.size());
                    constexpr size_t kPrefixLen = sizeof(kIndexKeyPrefix) - 1;
                    for (const auto& [key, value] : entries) {
                      objects.push_back(key.substr(kPrefixLen));
                    }
                    on_list(mal::Status::Ok(), std::move(objects));
                  });
}

}  // namespace mal::ec
