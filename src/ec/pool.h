// Erasure-coded pools (paper §4.4: "RADOS protects data using common
// techniques such as erasure coding, replication, and scrubbing").
//
// A pool is a named namespace with a placement policy recorded in the
// OSDMap's service metadata ("pool.<name>" -> "ec:<k>" | "replicated:<n>"),
// so the policy propagates to every client and OSD through the normal map
// machinery — no new wire format, and clusters without pools place exactly
// as before.
//
// An EC pool stripes each logical object "<pool>/<object>" across k+1
// shard objects "<pool>/<object>.shard<i>" placed on distinct OSDs (see
// osd::ActingSetForOid). Every shard write carries:
//   ec.size  — logical object size (strip the codec padding on read)
//   ec.cksum — FNV-1a of the shard bytes (detects silent bit-rot)
//   ec.stamp — FNV-1a of the whole object (groups shards of one write
//              generation, so a torn or stale shard can never be mixed
//              into a decode with shards of a different write)
// plus a cls ec.check_epoch guard so sealed objects fence stale writers.
//
// Reads gather all shards, discard checksum mismatches, decode around a
// single loss (counting rados.ec.degraded_reads), and report kDataLoss
// when the code's tolerance is exceeded. The scrub agent (src/scrub/)
// walks the pool's object index and re-encodes lost shards back to full
// redundancy.
#ifndef MALACOLOGY_EC_POOL_H_
#define MALACOLOGY_EC_POOL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/ec/codec.h"
#include "src/mon/maps.h"
#include "src/rados/client.h"

namespace mal::ec {

// One gathered shard, as seen by a read or a scrub pass.
struct ShardInfo {
  bool present = false;  // shard object existed and replied
  bool valid = false;    // present and ec.cksum matched the bytes
  mal::Buffer data;
  uint64_t size = 0;   // ec.size (logical object size)
  uint64_t stamp = 0;  // ec.stamp (write-generation checksum)
};

// Picks the write generation to decode: the plurality ec.stamp among valid
// shards (ties break toward the smallest stamp, so the choice is
// deterministic). Returns the shards of that generation positionally
// (nullopt where missing/invalid/foreign), with the generation's logical
// size in *size_out and the number of holes in *missing_out.
std::vector<std::optional<mal::Buffer>> SelectGeneration(const std::vector<ShardInfo>& shards,
                                                         uint64_t* size_out,
                                                         uint32_t* missing_out);

class Pool {
 public:
  using DoneHandler = std::function<void(mal::Status)>;
  using DataHandler = std::function<void(mal::Status, const mal::Buffer&)>;
  using ListHandler = std::function<void(mal::Status, std::vector<std::string>)>;
  using GatherHandler = std::function<void(std::vector<ShardInfo>)>;

  // Binds to a pool the map already knows about. `k` must match the
  // registered layout (Bind() looks it up instead).
  Pool(rados::RadosClient* rados, std::string name, uint32_t k)
      : rados_(rados), name_(std::move(name)), k_(k) {}

  // Registers the pool in the OSDMap service metadata and refreshes the
  // caller's map so its next placement decision sees the pool.
  static void Create(rados::RadosClient* rados, const std::string& name,
                     const mon::PoolLayout& layout, DoneHandler on_done);

  // Binds to an existing EC pool by looking the layout up in the client's
  // current map view. nullopt when the pool is unknown or not erasure.
  static std::optional<Pool> Bind(rados::RadosClient* rados, const std::string& name);

  // Encodes and writes all k+1 shards plus the pool's object index entry.
  // Acks only when every shard and the index committed — an acked write
  // therefore survives any single subsequent shard loss.
  void Write(const std::string& object, mal::Buffer data, DoneHandler on_done);

  // Gathers all shards, drops corrupt ones, decodes around a single loss
  // (incrementing rados.ec.degraded_reads on the owning client's perf
  // registry), and fails with kDataLoss beyond the code's tolerance.
  void Read(const std::string& object, DataHandler on_data);

  // Seals every shard of `object` at `epoch` (cls ec.seal); writes tagged
  // with a lower epoch then fail with kStaleEpoch. On success the pool
  // handle adopts the epoch for its own subsequent writes.
  void Seal(const std::string& object, uint64_t epoch, DoneHandler on_done);

  // Lists the logical objects recorded in the pool's index (scrub's work
  // queue; also how tests enumerate what must survive).
  void ListObjects(ListHandler on_list);

  // Reads every shard of `object` with checksum verification but no
  // decode: the raw material for both Read and the scrub agent.
  void GatherShards(const std::string& object, GatherHandler on_done);

  const std::string& name() const { return name_; }
  uint32_t k() const { return k_; }
  uint32_t num_shards() const { return k_ + 1; }
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  rados::RadosClient* rados() { return rados_; }

  std::string LogicalOid(const std::string& object) const {
    return osd::PoolOid(name_, object);
  }
  std::string ShardOid(const std::string& object, uint32_t index) const {
    return osd::EcShardOid(LogicalOid(object), index);
  }
  // The pool's object index: a replicated omap object ("obj.<name>" ->
  // logical size) living outside the shard namespace.
  static std::string IndexOid(const std::string& pool) { return pool + "/.index"; }
  static constexpr char kIndexKeyPrefix[] = "obj.";

 private:
  rados::RadosClient* rados_;
  std::string name_;
  uint32_t k_;
  uint64_t epoch_ = 0;
};

}  // namespace mal::ec

#endif  // MALACOLOGY_EC_POOL_H_
