// Erasure coding (paper §4.4: "RADOS protects data using common techniques
// such as erasure coding, replication, and scrubbing").
//
// A k+1 XOR-parity code: data splits into k equal shards plus one parity
// shard; any single lost shard is reconstructible from the survivors. This
// is the classic RAID-5 construction — the m=1 member of the Reed-Solomon
// family Ceph configures — chosen so the math stays auditable while
// exercising the same code paths (shard placement, partial reads,
// reconstruction after daemon loss).
//
// EcObject stores one logical object as k+1 shard objects, each placed
// independently by the normal placement function, so shards land on
// distinct OSDs with high probability; pools can then run with
// replicas = 1 and still survive a daemon loss.
#ifndef MALACOLOGY_EC_CODEC_H_
#define MALACOLOGY_EC_CODEC_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/rados/client.h"

namespace mal::ec {

// Splits `data` into k data shards (zero-padded to equal length) plus one
// XOR parity shard. Returns k+1 shards.
std::vector<mal::Buffer> Encode(const mal::Buffer& data, uint32_t k);

// Reassembles the original `size` bytes from shards; at most one entry may
// be nullopt (reconstructed via parity). Order: data shards 0..k-1, parity
// at index k. More than one missing shard is unrecoverable under the m=1
// code and returns kDataLoss (not kUnavailable: no amount of retrying
// brings the bytes back — only scrub repair between failures can).
mal::Result<mal::Buffer> Decode(const std::vector<std::optional<mal::Buffer>>& shards,
                                uint64_t size);

// FNV-1a over the buffer: the per-shard integrity checksum the write path
// stamps into xattrs and scrub/reads verify against bit-rot.
uint64_t Checksum(const mal::Buffer& data);

// Xattr keys every EC shard write stamps alongside the data.
inline constexpr char kShardSizeXattr[] = "ec.size";    // logical object size
inline constexpr char kShardCksumXattr[] = "ec.cksum";  // Checksum(shard bytes)
inline constexpr char kShardStampXattr[] = "ec.stamp";  // Checksum(whole object)

// A logical object erasure-coded across shard objects "<name>.shard<i>".
class EcObject {
 public:
  using DoneHandler = std::function<void(mal::Status)>;
  using DataHandler = std::function<void(mal::Status, const mal::Buffer&)>;

  EcObject(rados::RadosClient* rados, std::string name, uint32_t k = 2)
      : rados_(rados), name_(std::move(name)), k_(k) {}

  // Encodes and writes all k+1 shards (each tagged with the logical size).
  // Every shard transaction is guarded by cls ec.check_epoch with the
  // object's current epoch: after a Seal at a higher epoch, in-flight
  // writes from this handle fail with kStaleEpoch instead of splitting the
  // object across generations (the zlog.write_batch fencing discipline).
  void Write(mal::Buffer data, DoneHandler on_done);

  // Seals every shard at `epoch` (cls ec.seal). Once any shard is sealed,
  // writes tagged with a lower epoch lose. On success this handle adopts
  // the epoch so its own subsequent writes pass the guard.
  void Seal(uint64_t epoch, DoneHandler on_done);

  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  // Reads all shards; tolerates one missing/unreachable shard by
  // reconstructing it from the parity.
  void Read(DataHandler on_data);

  std::string ShardOid(uint32_t index) const {
    return name_ + ".shard" + std::to_string(index);
  }
  uint32_t num_shards() const { return k_ + 1; }

 private:
  rados::RadosClient* rados_;
  std::string name_;
  uint32_t k_;
  uint64_t epoch_ = 0;
};

}  // namespace mal::ec

#endif  // MALACOLOGY_EC_CODEC_H_
