#include "src/svc/dispatch.h"

#include "src/common/log.h"
#include "src/common/trace.h"

namespace mal::svc {

void ServiceDispatcher::On(uint32_t type, RawHandler handler) {
  handlers_[type] = std::move(handler);
}

void ServiceDispatcher::Dispatch(const sim::Envelope& request) {
  auto it = handlers_.find(request.type);
  if (it == handlers_.end()) {
    if (request.rpc_id != 0) {
      owner_->ReplyError(request, mal::Status::Unimplemented(
                                      "no handler for " +
                                      trace::MessageTypeName(request.type)));
    } else {
      MAL_DEBUG(owner_->name().ToString())
          << "dropping unhandled " << trace::MessageTypeName(request.type) << " from "
          << request.from.ToString();
    }
    return;
  }
  it->second(request);
}

void ServiceDispatcher::RejectMalformed(const sim::Envelope& env) {
  if (env.rpc_id != 0) {
    owner_->ReplyError(
        env, mal::Status::Corruption("bad " + trace::MessageTypeName(env.type) +
                                     " payload"));
  } else {
    MAL_WARN(owner_->name().ToString())
        << "dropping malformed " << trace::MessageTypeName(env.type) << " from "
        << env.from.ToString();
  }
}

}  // namespace mal::svc
