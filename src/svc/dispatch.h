// ServiceDispatcher: typed per-message-type dispatch for daemon actors.
//
// Every daemon used to hand-roll the same loop in HandleRequest: a switch on
// envelope.type, a Decoder, an ad-hoc "bad request" error reply, and a
// default arm for unknown types. The dispatcher centralizes that plumbing —
// handlers register per message type (raw, or typed with automatic decode
// and uniform malformed-payload rejection) and HandleRequest collapses to
// `dispatcher_.Dispatch(request)`. Handler *bodies* stay in the daemons;
// only the marshalling boilerplate moves here. See docs/service_layer.md.
#ifndef MALACOLOGY_SVC_DISPATCH_H_
#define MALACOLOGY_SVC_DISPATCH_H_

#include <functional>
#include <map>
#include <utility>

#include "src/common/buffer.h"
#include "src/sim/actor.h"

namespace mal::svc {

class ServiceDispatcher {
 public:
  // `owner` must outlive the dispatcher (daemons hold it by value).
  explicit ServiceDispatcher(sim::Actor* owner) : owner_(owner) {}

  ServiceDispatcher(const ServiceDispatcher&) = delete;
  ServiceDispatcher& operator=(const ServiceDispatcher&) = delete;

  using RawHandler = std::function<void(const sim::Envelope&)>;

  // Registers a handler that sees the raw envelope. Use for messages that
  // forward payloads undecoded (e.g. a non-leader monitor proxying a
  // command) or have bespoke decode conventions.
  void On(uint32_t type, RawHandler handler);

  // Registers a typed handler: the payload is decoded as `Req` (the
  // `static Req Decode(mal::Decoder*)` convention every message struct in
  // the tree follows) before the handler runs. A payload the decoder
  // rejects is answered uniformly with kCorruption (rpc) or dropped with a
  // warning (one-way) — handlers never see malformed input.
  template <typename Req>
  void OnTyped(uint32_t type, std::function<void(const sim::Envelope&, Req)> handler) {
    On(type, [this, handler = std::move(handler)](const sim::Envelope& env) {
      mal::Decoder dec(env.payload);
      Req req = Req::Decode(&dec);
      if (!dec.ok()) {
        RejectMalformed(env);
        return;
      }
      handler(env, std::move(req));
    });
  }

  // Routes one request envelope. Unknown types get a uniform kUnimplemented
  // reply (rpc) or a debug-logged drop (one-way) — the dispatch-table
  // analogue of the old switches' default arm.
  void Dispatch(const sim::Envelope& request);

  bool Handles(uint32_t type) const { return handlers_.count(type) != 0; }

 private:
  void RejectMalformed(const sim::Envelope& env);

  sim::Actor* owner_;
  std::map<uint32_t, RawHandler> handlers_;
};

}  // namespace mal::svc

#endif  // MALACOLOGY_SVC_DISPATCH_H_
