// ScopedOpDeadline: sets the ambient deadline at an operation's edge.
//
// Install one at the top of a client-visible operation (a cephfs call, a
// bench loop body) with a *relative* budget; every RPC hop issued while the
// scope is live inherits the shrinking absolute deadline via the simulator's
// ambient-state propagation (src/common/deadline.h). Tightening-only: if an
// outer scope already imposes an earlier deadline, it wins. A zero budget is
// a no-op, so defaulted-off configs cost nothing.
#ifndef MALACOLOGY_SVC_DEADLINE_H_
#define MALACOLOGY_SVC_DEADLINE_H_

#include <algorithm>

#include "src/common/deadline.h"
#include "src/sim/actor.h"

namespace mal::svc {

class ScopedOpDeadline {
 public:
  ScopedOpDeadline(sim::Actor* actor, sim::Time budget)
      : inner_(Resolve(actor, budget)) {}

 private:
  static uint64_t Resolve(sim::Actor* actor, sim::Time budget) {
    uint64_t ambient = mal::CurrentDeadline();
    if (budget == 0) {
      return ambient;  // no local budget: keep whatever is already in force
    }
    uint64_t mine = actor->Now() + budget;
    return ambient == 0 ? mine : std::min(ambient, mine);
  }

  mal::ScopedDeadline inner_;
};

}  // namespace mal::svc

#endif  // MALACOLOGY_SVC_DEADLINE_H_
