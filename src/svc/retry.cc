#include "src/svc/retry.h"

#include <algorithm>

namespace mal::svc {

sim::Time Backoff::NextDelay(mal::Rng* rng) {
  int attempt = attempt_++;
  if (policy_.base_delay == 0) {
    return 0;  // backoff disabled: no sleep, and deliberately no RNG draw
  }
  if (attempt == 0) {
    prev_delay_ = policy_.base_delay;
    return 0;  // first attempt starts immediately; backoff applies to retries
  }
  // Decorrelated jitter: sleep_n = min(cap, Uniform(base, 3 * sleep_{n-1})).
  int64_t lo = static_cast<int64_t>(policy_.base_delay);
  int64_t hi = std::max<int64_t>(lo, static_cast<int64_t>(3 * prev_delay_));
  int64_t drawn = rng->UniformInt(lo, hi);
  prev_delay_ = std::min<sim::Time>(policy_.max_delay, static_cast<sim::Time>(drawn));
  return prev_delay_;
}

void RunAfter(sim::Simulator* simulator, sim::Time delay, std::function<void()> fn) {
  if (delay == 0) {
    fn();
    return;
  }
  simulator->Schedule(delay, std::move(fn));
}

}  // namespace mal::svc
