// RetryPolicy / Backoff: the one retry implementation for every client.
//
// RadosClient, zlog::Log, MdsClient, and MonClient each used to carry their
// own attempt counter and retry immediately (or after a fixed sleep) on
// kUnavailable / kTimedOut / kStaleEpoch. This module replaces those loops
// with exponential backoff + decorrelated jitter (the AWS scheme:
// sleep_n = min(cap, Uniform(base, 3 * sleep_{n-1}))), deterministic because
// the jitter draws from a mal::Rng the caller seeds.
//
// The default policy has base_delay == 0, which makes NextDelay return 0
// without consuming a random draw — so a defaults-off run retries on the
// same event-ordering, RNG stream, and clock as the legacy immediate-retry
// code (the determinism oracle relies on this).
#ifndef MALACOLOGY_SVC_RETRY_H_
#define MALACOLOGY_SVC_RETRY_H_

#include <functional>

#include "src/common/rng.h"
#include "src/sim/simulator.h"

namespace mal::svc {

struct RetryPolicy {
  int max_attempts = 5;                      // total tries, including the first
  sim::Time base_delay = 0;                  // 0 = retry immediately, draw no jitter
  sim::Time max_delay = 2 * sim::kSecond;    // cap on any single backoff sleep
};

// Per-operation backoff state. Copyable by design: clients thread it by
// value through their async retry chains (capture in the next attempt's
// callback) instead of sharing mutable state across in-flight operations.
class Backoff {
 public:
  Backoff() = default;
  explicit Backoff(const RetryPolicy& policy) : policy_(policy) {}

  // True once the attempt budget is spent; callers check this on entry and
  // surface the last error when it trips.
  bool Exhausted() const { return attempt_ >= policy_.max_attempts; }

  // Attempts started so far (0 before the first NextDelay call).
  int attempt() const { return attempt_; }

  const RetryPolicy& policy() const { return policy_; }

  // Consumes one attempt and returns how long to wait before it. The first
  // attempt and every attempt under a zero base_delay start immediately.
  sim::Time NextDelay(mal::Rng* rng);

 private:
  RetryPolicy policy_;
  int attempt_ = 0;
  sim::Time prev_delay_ = 0;
};

// Runs `fn` after `delay`. A zero delay invokes `fn` synchronously rather
// than scheduling a zero-delay event: the legacy retry loops re-entered
// synchronously, and preserving that keeps defaults-off event ordering
// byte-identical.
void RunAfter(sim::Simulator* simulator, sim::Time delay, std::function<void()> fn);

}  // namespace mal::svc

#endif  // MALACOLOGY_SVC_RETRY_H_
