#include "src/mds/mds.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/common/trace.h"

namespace mal::mds {

namespace {

const char* LeaseModeName(LeaseMode mode) {
  switch (mode) {
    case LeaseMode::kBestEffort:
      return "best_effort";
    case LeaseMode::kDelay:
      return "delay";
    case LeaseMode::kQuota:
      return "quota";
    case LeaseMode::kRoundTrip:
      return "round_trip";
  }
  return "unknown";
}

std::string ParentPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

}  // namespace

MdsDaemon::MdsDaemon(sim::Simulator* simulator, sim::Network* network, uint32_t id,
                     std::vector<uint32_t> mons, MdsConfig config)
    : Actor(simulator, network, sim::EntityName::Mds(id)),
      config_(config),
      mon_client_(this, mons),
      rados_(this, mons) {
  rng_.Seed(config.seed * 0x9e3779b97f4a7c15ULL + id + 1);
  RegisterHandlers();
  SetInboxLimit(config_.inbox_depth);
  SetServicePerf(&perf_);
}

void MdsDaemon::RegisterHandlers() {
  // kMsgClientRequest and kMsgForward carry the same typed payload and
  // differ only in the `forwarded` flag the handler receives.
  dispatcher_.OnTyped<ClientRequest>(
      kMsgClientRequest, [this](const sim::Envelope& env, ClientRequest req) {
        HandleClientRequest(env, std::move(req), /*forwarded=*/false);
      });
  dispatcher_.OnTyped<ClientRequest>(
      kMsgForward, [this](const sim::Envelope& env, ClientRequest req) {
        HandleClientRequest(env, std::move(req), /*forwarded=*/true);
      });
  dispatcher_.On(kMsgMigrate, [this](const sim::Envelope& env) { HandleMigrateIn(env); });
  dispatcher_.On(kMsgSeqMigrate,
                 [this](const sim::Envelope& env) { HandleSeqMigrateIn(env); });
  dispatcher_.On(kMsgAuthorityUpdate,
                 [this](const sim::Envelope& env) { HandleAuthorityUpdate(env); });
  dispatcher_.On(kMsgLoadReport,
                 [this](const sim::Envelope& env) { HandleLoadReport(env); });
  dispatcher_.On(kMsgCoherence, [this](const sim::Envelope&) {
    // Scatter-gather participation: pure CPU strain at the root.
    ReserveCpu(config_.coherence_peer_cost);
  });
  dispatcher_.On(mon::kMsgMapUpdate,
                 [this](const sim::Envelope& env) { HandleMapUpdate(env); });
}

MdsDaemon::~MdsDaemon() = default;

void MdsDaemon::Boot() {
  mon::Transaction boot;
  boot.op = mon::Transaction::Op::kMdsBoot;
  boot.daemon_id = name().id;
  mon_client_.SubmitTransaction(boot, [](mal::Status) {});
  mon_client_.Subscribe(mon::MapKind::kMdsMap, 0);
  rados_.Connect([](mal::Status) {});
  window_start_ = Now();

  // Guarded so a post-crash re-Boot never resets a surviving root inode.
  if (name().id == config_.root_rank && inodes_.count("/") == 0) {
    HostedInode root;
    root.inode.ino = next_ino_++;
    root.inode.type = InodeType::kDir;
    inodes_["/"] = std::move(root);
  }
  StartPeriodic(config_.load_report_interval, [this] { ReportLoad(); });
  StartPeriodic(config_.balance_interval, [this] {
    if (config_.balancing_enabled && policy_ != nullptr) {
      BalanceTick();
    }
  });
  rados_.set_perf(&perf_);
  if (config_.perf_report_interval > 0) {
    StartPeriodic(config_.perf_report_interval, [this] {
      if (!perf_.empty()) {
        mon_client_.ReportPerf(perf_.Snapshot(name().ToString(), Now()));
      }
    });
  }
}

void MdsDaemon::SetBalancerPolicy(std::shared_ptr<BalancerPolicy> policy) {
  policy_ = std::move(policy);
}

void MdsDaemon::Crash() {
  Actor::Crash();
  // inodes_ and authority_ model journaled metadata and survive; everything
  // below is in-memory state a restarted MDS would not have.
  load_table_.clear();
  window_requests_ = 0;
  for (auto& [path, hosted] : inodes_) {
    hosted.window_requests = 0;
    hosted.cap.waiters.clear();  // the queued rpcs died with us
    hosted.seq_waiters.clear();
  }
}

void MdsDaemon::Recover() {
  Actor::Recover();
  // Rebuild sequencer state from the inode-embedded counter (§4.3.2): the
  // durable seq_tail already covers every grant we acknowledged, so nothing
  // to replay. Outstanding caps are another matter — the MDS cannot know
  // whether the holder (and its locally cached tail) is still alive, so the
  // cap is dropped and sequencer inodes are fenced behind CORFU recovery,
  // exactly like a reclaim after an ignored revoke.
  for (auto& [path, hosted] : inodes_) {
    if (!hosted.cap.held) {
      continue;
    }
    hosted.cap.held = false;
    hosted.cap.revoke_sent = false;
    if (hosted.inode.type == InodeType::kSequencer) {
      hosted.inode.params["needs_recovery"] = "1";
      perf_.Inc("mds.cap.recover_fenced");
    }
  }
  // Re-drive any handoff whose freeze was journaled before the crash: the
  // transfer is idempotent (the target max-merges the tail), so resending
  // can never reissue a position.
  for (auto& [path, hosted] : inodes_) {
    auto frozen = hosted.inode.params.find("migrating_to");
    if (frozen == hosted.inode.params.end()) {
      continue;
    }
    uint32_t target = static_cast<uint32_t>(std::stoul(frozen->second));
    std::string p = path;
    DriveSeqHandoff(p, target, /*publish=*/true, [this, p](mal::Status s) {
      if (!s.ok()) {
        MAL_WARN(name().ToString())
            << "post-crash handoff re-drive of " << p << " failed: " << s;
      }
    });
  }
  // Keep the (stale) mds_map_: epochs observed by this daemon must never
  // regress, and Boot()'s subscribe (have_epoch=0) pushes the current map.
  Boot();
}

std::vector<std::pair<std::string, sim::EntityName>> MdsDaemon::HeldCaps() const {
  std::vector<std::pair<std::string, sim::EntityName>> held;
  for (const auto& [path, hosted] : inodes_) {
    if (hosted.cap.held) {
      held.emplace_back(path, hosted.cap.holder);
    }
  }
  return held;
}

std::vector<uint32_t> MdsDaemon::PeerRanks() const {
  std::vector<uint32_t> peers;
  for (const auto& [id, info] : mds_map_.mds) {
    if (info.state == mon::MdsState::kActive && id != name().id) {
      peers.push_back(id);
    }
  }
  return peers;
}

bool MdsDaemon::IsAuthority(const std::string& path) const {
  return AuthorityOf(path) == name().id;
}

uint32_t MdsDaemon::AuthorityOf(const std::string& path) const {
  if (inodes_.count(path) != 0) {
    return name().id;
  }
  auto it = authority_.find(path);
  if (it != authority_.end()) {
    return it->second;
  }
  // The published sequencer-ownership map outranks the parent fallback:
  // any rank can answer "who owns this log?" without having hosted it.
  if (config_.seq_ownership) {
    if (std::optional<uint32_t> owner = MapOwnerOf(path)) {
      return *owner;
    }
  }
  // Fall back to the parent directory's authority, then the root.
  std::string parent = ParentPath(path);
  if (parent != path) {
    if (inodes_.count(parent) != 0) {
      return name().id;
    }
    auto pit = authority_.find(parent);
    if (pit != authority_.end()) {
      return pit->second;
    }
  }
  return config_.root_rank;
}

const Inode* MdsDaemon::GetInode(const std::string& path) const {
  auto it = inodes_.find(path);
  return it == inodes_.end() ? nullptr : &it->second.inode;
}

std::vector<SubtreeLoad> MdsDaemon::HostedSubtrees() const {
  std::vector<SubtreeLoad> subtrees;
  for (const auto& [path, hosted] : inodes_) {
    if (path == "/") {
      continue;  // the root never migrates
    }
    subtrees.push_back({path, hosted.rate});
  }
  return subtrees;
}

void MdsDaemon::HandleRequest(const sim::Envelope& request) {
  dispatcher_.Dispatch(request);
}

void MdsDaemon::HandleMapUpdate(const sim::Envelope& request) {
  if (rados_.OnMapUpdate(request)) {
    return;
  }
  mal::Decoder dec(request.payload);
  mon::MapUpdate update = mon::MapUpdate::Decode(&dec);
  if (update.kind == mon::MapKind::kMdsMap) {
    mal::Decoder map_dec(update.map_payload);
    auto map = mon::MdsMap::Decode(&map_dec);
    if (map.ok() && map.value().epoch > mds_map_.epoch) {
      mds_map_ = std::move(map).value();
      if (config_.seq_ownership) {
        SeqOwnershipSweep();
      }
    }
  }
}

// Reconcile hosted sequencers against the ownership map whenever it moves.
// Three cases per hosted kSequencer inode with a published entry:
//  - entry names us: ownership is settled; drop any owner_pending marker.
//  - entry names another rank and we are mid-handoff to it: nothing to do.
//  - entry names another rank otherwise: either our publish is still in
//    flight / lost (owner_pending set — re-drive it; last write wins at the
//    monitor, and the re-published entry names us), or the map is the truth
//    and we hold a stale copy (e.g. we crashed, a client ran takeover on a
//    survivor, and we recovered with the old inode) — demote: hand our copy
//    to the published owner so its tail max-merges into the live one, then
//    forget it. The merge direction guarantees the cluster-wide max tail
//    never regresses.
void MdsDaemon::SeqOwnershipSweep() {
  std::vector<std::pair<std::string, uint32_t>> demote;
  for (auto& [path, hosted] : inodes_) {
    if (hosted.inode.type != InodeType::kSequencer) {
      continue;
    }
    std::optional<uint32_t> owner = MapOwnerOf(path);
    if (!owner) {
      continue;
    }
    if (*owner == name().id) {
      hosted.inode.params.erase("owner_pending");
      continue;
    }
    if (hosted.inode.params.count("migrating_to") != 0) {
      continue;
    }
    if (hosted.inode.params.count("owner_pending") != 0) {
      PublishSeqOwner(path);
      continue;
    }
    demote.emplace_back(path, *owner);
  }
  for (const auto& [path, owner] : demote) {
    perf_.Inc("mds.seq.demotions");
    std::string p = path;
    StartSeqHandoff(p, owner, /*publish=*/false, [this, p](mal::Status s) {
      if (!s.ok()) {
        MAL_WARN(name().ToString()) << "demotion of " << p << " failed: " << s;
      }
    });
  }
}

void MdsDaemon::HandleClientRequest(const sim::Envelope& request, ClientRequest req,
                                    bool forwarded) {
  ++requests_handled_;
  ++window_requests_;

  // A takeover install (CORFU failover onto this rank) is allowed to land
  // where the client aimed it: the ownership map still names the crashed
  // rank, so the normal authority check would bounce the recovery forever.
  const bool takeover_install = config_.seq_ownership &&
                                req.op == MdsOp::kSetSeqState &&
                                req.params.count("takeover") != 0;

  uint32_t authority = AuthorityOf(req.path);
  if (authority != name().id && !takeover_install) {
    if (forwarded) {
      // Authority moved while the forward was in flight; bounce.
      ReplyError(request, mal::Status::Unavailable("authority moved"));
      return;
    }
    if (config_.seq_ownership &&
        (MapOwnerOf(req.path).has_value() || authority_.count(req.path) != 0)) {
      // Sharded mode: paths with explicit ownership (published entry or a
      // handoff hint) are never proxied — the client follows the redirect
      // and caches the owner, epoch-guarded against stale maps.
      perf_.Inc("mds.seq.redirects");
      ReplyError(request,
                 mal::Status::WrongRank("wrong_rank:" + std::to_string(authority) + ":" +
                                        std::to_string(mds_map_.epoch)));
      return;
    }
    if (config_.routing == RoutingMode::kProxy) {
      // Proxy: the relay happens on the dispatch (messenger) lane so it
      // does not queue behind local tail-finding work, but each proxied
      // request still steals admin capacity from the work queue.
      perf_.Inc("mds.proxied");
      ReserveCpu(config_.proxy_admin_cost);
      sim::Envelope original = request;
      AfterDispatch(config_.handle_cost + config_.forward_cost, [this, original, authority] {
        SendRequest(sim::EntityName::Mds(authority), kMsgForward, original.payload,
                    [this, original](mal::Status status, const sim::Envelope& reply) {
                      if (status.ok()) {
                        Reply(original, reply.payload);
                      } else {
                        ReplyError(original, status);
                      }
                    },
                    60 * sim::kSecond);
      });
    } else {
      ReplyError(request,
                 mal::Status::Unavailable("redirect:" + std::to_string(authority)));
    }
    return;
  }

  // We are the authority. Work cost: forwarded requests skip the handling
  // charge (the proxy already paid it); direct requests at a non-root
  // authority pay the coherence tax and strain the root.
  sim::Time cost = forwarded ? 0 : config_.handle_cost;
  if (!forwarded && name().id != config_.root_rank &&
      request.from.type == sim::EntityType::kClient &&
      !(config_.seq_ownership && MapOwnerOf(req.path).has_value())) {
    // Published sequencer owners skip the scatter-gather coherence tax:
    // the ownership map, not root-anchored cache coherence, is what keeps
    // every rank's view of the placement consistent. This is what makes
    // grant capacity scale with MDS count.
    cost += config_.coherence_self_cost;
    SendOneWay(sim::EntityName::Mds(config_.root_rank), kMsgCoherence, mal::Buffer());
  }
  if (req.op == MdsOp::kSeqNext || req.op == MdsOp::kSeqRead ||
      req.op == MdsOp::kSeqNextBatch) {
    cost += config_.tail_cost;
  }
  if (req.op == MdsOp::kAcquireCap || req.op == MdsOp::kReleaseCap) {
    cost += config_.cap_process_cost;
  }
  sim::Envelope req_envelope = request;
  sim::Time arrival = Now();
  AfterCpu(cost, [this, req_envelope, req, forwarded, arrival] {
    // Work-queue time (queueing + service) for requests we serve ourselves.
    perf_.Observe("mds.queue_us", static_cast<double>(Now() - arrival) / 1e3);
    if (config_.seq_ownership &&
        (req.op == MdsOp::kSeqNext || req.op == MdsOp::kSeqNextBatch)) {
      // Per-rank grant latency (queue + service), the telemetry row the
      // hot-log balancing policies and the multilog bench watch.
      perf_.Observe("mds.seq.grant_us", static_cast<double>(Now() - arrival) / 1e3);
    }
    ExecuteRequest(req_envelope, req, forwarded);
  });
}

void MdsDaemon::ReplyWithInode(const sim::Envelope& request, const MdsReply& reply) {
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  reply.Encode(&enc);
  Reply(request, std::move(payload));
}

void MdsDaemon::ExecuteRequest(const sim::Envelope& request, const ClientRequest& req,
                               bool /*forwarded*/) {
  auto it = inodes_.find(req.path);
  if (it != inodes_.end()) {
    ++it->second.window_requests;
  }
  switch (req.op) {
    case MdsOp::kMkdir:
    case MdsOp::kCreate: {
      if (it != inodes_.end()) {
        ReplyError(request, mal::Status::AlreadyExists(req.path));
        return;
      }
      HostedInode hosted;
      hosted.inode.ino = next_ino_++;
      hosted.inode.type = req.op == MdsOp::kMkdir ? InodeType::kDir : req.inode_type;
      hosted.inode.lease_policy = req.policy;
      MdsReply reply;
      reply.inode = hosted.inode;
      bool new_seq = hosted.inode.type == InodeType::kSequencer;
      inodes_[req.path] = std::move(hosted);
      if (config_.seq_ownership && new_seq) {
        // Every sequencer gets a published owner from birth, so clients can
        // find (and failover-recover) a log that never migrated. The
        // owner_pending marker re-drives the publish if it is lost.
        inodes_[req.path].inode.params["owner_pending"] = "1";
        PublishSeqOwner(req.path);
        UpdateOwnedLogsGauge();
      }
      ReplyWithInode(request, reply);
      return;
    }
    case MdsOp::kLookup: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      MdsReply reply;
      reply.inode = it->second.inode;
      reply.seq_value = it->second.inode.seq_tail;
      ReplyWithInode(request, reply);
      return;
    }
    case MdsOp::kUnlink: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      inodes_.erase(it);
      if (config_.seq_ownership) {
        UpdateOwnedLogsGauge();
      }
      Reply(request, mal::Buffer());
      return;
    }
    case MdsOp::kSetPolicy: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      it->second.inode.lease_policy = req.policy;
      Reply(request, mal::Buffer());
      return;
    }
    case MdsOp::kSeqNext:
    case MdsOp::kSeqRead:
    case MdsOp::kSeqNextBatch: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      HostedInode& hosted = it->second;
      if (hosted.inode.type != InodeType::kSequencer) {
        ReplyError(request, mal::Status::InvalidArgument(req.path + " is not a sequencer"));
        return;
      }
      if (hosted.inode.params.count("migrating_to") != 0 && req.op != MdsOp::kSeqRead) {
        // Handoff freeze: grants queue until the transfer commits (then
        // they bounce to the new owner) or aborts (then they run here).
        hosted.seq_waiters.emplace_back(request, req);
        return;
      }
      if (hosted.cap.held) {
        // A cached holder owns the tail; round-trippers must wait for the
        // cap system (mixing modes is an application bug worth surfacing).
        ReplyError(request, mal::Status::Unavailable("tail cached by " +
                                                     hosted.cap.holder.ToString()));
        return;
      }
      if (hosted.inode.params.count("needs_recovery") != 0) {
        ReplyError(request, mal::Status::Aborted("sequencer needs recovery"));
        return;
      }
      MdsReply reply;
      if (req.op == MdsOp::kSeqNext) {
        perf_.Inc("mds.seq.next");
        reply.seq_value = hosted.inode.seq_tail++;
      } else if (req.op == MdsOp::kSeqNextBatch) {
        // Reserve req.seq_value contiguous positions in one round-trip.
        // The advanced tail is durable in the inode, so recovery seals at
        // or past every granted position; granted-but-unwritten positions
        // surface as holes, never as data.
        uint64_t count = std::max<uint64_t>(req.seq_value, 1);
        perf_.Inc("mds.seq.batch_grants");
        perf_.Inc("mds.seq.positions_granted", count);
        reply.seq_value = hosted.inode.seq_tail;
        hosted.inode.seq_tail += count;
        hosted.inode.params["last_grant"] =
            std::to_string(reply.seq_value) + "+" + std::to_string(count);
      } else {
        reply.seq_value = hosted.inode.seq_tail;
      }
      ReplyWithInode(request, reply);
      return;
    }
    case MdsOp::kAcquireCap: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      HostedInode& hosted = it->second;
      if (hosted.inode.params.count("migrating_to") != 0) {
        hosted.seq_waiters.emplace_back(request, req);
        return;
      }
      if (hosted.inode.lease_policy.mode == LeaseMode::kRoundTrip) {
        ReplyError(request,
                   mal::Status::PermissionDenied("inode is non-cacheable (round-trip)"));
        return;
      }
      if (hosted.inode.params.count("needs_recovery") != 0) {
        ReplyError(request, mal::Status::Aborted("sequencer needs recovery"));
        return;
      }
      if (!hosted.cap.held) {
        GrantCap(req.path, hosted, request);
        return;
      }
      if (hosted.cap.holder == request.from) {
        GrantCap(req.path, hosted, request);  // re-grant to current holder
        return;
      }
      hosted.cap.waiters.push_back(request);
      MaybeRevoke(req.path, hosted);
      return;
    }
    case MdsOp::kReleaseCap: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      HostedInode& hosted = it->second;
      if (!hosted.cap.held || !(hosted.cap.holder == request.from)) {
        ReplyError(request, mal::Status::PermissionDenied("not the cap holder"));
        return;
      }
      hosted.inode.seq_tail = std::max(hosted.inode.seq_tail, req.seq_value);
      hosted.cap.held = false;
      hosted.cap.revoke_sent = false;
      Reply(request, mal::Buffer());
      if (!hosted.cap.waiters.empty()) {
        sim::Envelope next = hosted.cap.waiters.front();
        hosted.cap.waiters.pop_front();
        GrantCap(req.path, hosted, next);
      }
      return;
    }
    case MdsOp::kSetSize: {
      if (it == inodes_.end()) {
        ReplyError(request, mal::Status::NotFound(req.path));
        return;
      }
      it->second.inode.size = req.seq_value;
      Reply(request, mal::Buffer());
      return;
    }
    case MdsOp::kSetSeqState: {
      const bool takeover = config_.seq_ownership && req.params.count("takeover") != 0;
      if (it == inodes_.end()) {
        if (!takeover) {
          ReplyError(request, mal::Status::NotFound(req.path));
          return;
        }
        // CORFU failover onto this rank: the owning rank died, a client
        // sealed the stripe at a new epoch and is installing the recovered
        // tail here. Create the inode, claim ownership, publish it. The
        // sealed tail covers every *written* position; any higher grant the
        // dead rank journaled is fenced by the epoch bump, so re-granting
        // below it can never duplicate an acked position.
        HostedInode hosted;
        hosted.inode.ino = next_ino_++;
        hosted.inode.type = InodeType::kSequencer;
        hosted.inode.lease_policy = req.policy;
        it = inodes_.emplace(req.path, std::move(hosted)).first;
        perf_.Inc("mds.seq.takeovers");
        mon_client_.Log("WARN", "sequencer " + req.path +
                                    " taken over by mds." + std::to_string(name().id));
      }
      if (it->second.inode.params.count("migrating_to") != 0) {
        it->second.seq_waiters.emplace_back(request, req);
        return;
      }
      Inode& inode = it->second.inode;
      inode.seq_tail = req.seq_value;
      for (const auto& [key, value] : req.params) {
        if (key == "takeover") {
          continue;  // directive, not sequencer state
        }
        if (value.empty()) {
          inode.params.erase(key);
        } else {
          inode.params[key] = value;
        }
      }
      if (takeover && MapOwnerOf(req.path) != std::optional<uint32_t>(name().id)) {
        inode.params["owner_pending"] = "1";
        PublishSeqOwner(req.path);
      }
      if (config_.seq_ownership) {
        UpdateOwnedLogsGauge();
      }
      Reply(request, mal::Buffer());
      return;
    }
  }
  ReplyError(request, mal::Status::Unimplemented("unknown mds op"));
}

void MdsDaemon::GrantCap(const std::string& path, HostedInode& hosted,
                         const sim::Envelope& to) {
  perf_.Inc(std::string("mds.cap.grants.") +
            LeaseModeName(hosted.inode.lease_policy.mode));
  hosted.cap.held = true;
  hosted.cap.holder = to.from;
  hosted.cap.grant_time_ns = Now();
  hosted.cap.revoke_sent = false;
  MdsReply reply;
  reply.seq_value = hosted.inode.seq_tail;
  reply.terms = hosted.inode.lease_policy;
  reply.grant_time_ns = Now();
  reply.inode = hosted.inode;
  ReplyWithInode(to, reply);
  // If others are already waiting, start the revocation clock immediately
  // (this is what yields the round-robin batching behavior of §5.2.1).
  if (!hosted.cap.waiters.empty()) {
    MaybeRevoke(path, hosted);
  }
}

void MdsDaemon::MaybeRevoke(const std::string& path, HostedInode& hosted) {
  if (!hosted.cap.held || hosted.cap.revoke_sent) {
    return;
  }
  hosted.cap.revoke_sent = true;
  perf_.Inc("mds.cap.revokes");
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutString(path);
  SendOneWay(hosted.cap.holder, kMsgCapRevoke, std::move(payload));

  // Failure handling: if the holder never answers, declare it dead, reclaim
  // the cap, and flag the inode so the next client runs CORFU recovery
  // (the locally cached tail died with the holder).
  // Guarded: a reclaim armed before a crash must not fire into the
  // recovered instance (Recover() already invalidated every cap).
  sim::EntityName holder = hosted.cap.holder;
  uint64_t grant_time = hosted.cap.grant_time_ns;
  ScheduleGuarded(config_.cap_reclaim_timeout, [this, path, holder, grant_time] {
    auto it = inodes_.find(path);
    if (it == inodes_.end()) {
      return;
    }
    HostedInode& current = it->second;
    if (!current.cap.held || !(current.cap.holder == holder) ||
        current.cap.grant_time_ns != grant_time) {
      return;  // cap moved on; the holder complied after all
    }
    current.cap.held = false;
    current.cap.revoke_sent = false;
    current.inode.params["needs_recovery"] = "1";
    perf_.Inc("mds.cap.reclaims");
    mon_client_.Log("WARN", "reclaimed cap on " + path + " from dead client " +
                                holder.ToString());
    // Fail queued waiters so they initiate recovery.
    while (!current.cap.waiters.empty()) {
      ReplyError(current.cap.waiters.front(),
                 mal::Status::Aborted("sequencer needs recovery"));
      current.cap.waiters.pop_front();
    }
  });
}

// -- migration ------------------------------------------------------------------

void MdsDaemon::Migrate(const std::string& path, uint32_t target,
                        std::function<void(mal::Status)> on_done) {
  auto it = inodes_.find(path);
  if (it == inodes_.end()) {
    on_done(mal::Status::NotFound("not authoritative for " + path));
    return;
  }
  if (it->second.cap.held) {
    on_done(mal::Status::Unavailable("cap outstanding on " + path));
    return;
  }
  if (target == name().id) {
    on_done(mal::Status::InvalidArgument("cannot migrate to self"));
    return;
  }
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutString(path);
  it->second.inode.Encode(&enc);
  // Export costs CPU on both ends (the Fig 9 dip during rebalancing).
  AfterCpu(config_.migration_cost, [this, path, target, payload = std::move(payload),
                                    on_done = std::move(on_done)] {
    auto exporting = inodes_.find(path);
    if (exporting == inodes_.end()) {
      on_done(mal::Status::NotFound("subtree vanished during export"));
      return;
    }
    SendRequest(sim::EntityName::Mds(target), kMsgMigrate, payload,
                [this, path, target, on_done](mal::Status status, const sim::Envelope&) {
                  if (!status.ok()) {
                    on_done(status);
                    return;
                  }
                  inodes_.erase(path);
                  authority_[path] = target;
                  // Broadcast the new authority cluster-wide.
                  mal::Buffer update;
                  mal::Encoder update_enc(&update);
                  update_enc.PutString(path);
                  update_enc.PutU32(target);
                  for (uint32_t peer : PeerRanks()) {
                    if (peer != target) {
                      SendOneWay(sim::EntityName::Mds(peer), kMsgAuthorityUpdate, update);
                    }
                  }
                  perf_.Inc("mds.migrations");
                  if (on_migration) {
                    on_migration(path, target);
                  }
                  mon_client_.Log("INFO", "migrated " + path + " to mds." +
                                              std::to_string(target));
                  on_done(mal::Status::Ok());
                });
  });
}

void MdsDaemon::HandleMigrateIn(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  std::string path = dec.GetString();
  Inode inode = Inode::Decode(&dec);
  if (!dec.ok()) {
    ReplyError(request, mal::Status::Corruption("bad migration payload"));
    return;
  }
  sim::Envelope req_envelope = request;
  AfterCpu(config_.migration_cost, [this, path, inode, req_envelope] {
    HostedInode hosted;
    hosted.inode = inode;
    inodes_[path] = std::move(hosted);
    authority_.erase(path);
    Reply(req_envelope, mal::Buffer());
  });
}

void MdsDaemon::HandleAuthorityUpdate(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  std::string path = dec.GetString();
  uint32_t rank = dec.GetU32();
  if (!dec.ok()) {
    return;
  }
  if (rank == name().id) {
    return;  // we learn by receiving the inode itself
  }
  if (inodes_.count(path) == 0) {
    authority_[path] = rank;
  }
}

// -- sharded sequencer handoff --------------------------------------------------

std::optional<uint32_t> MdsDaemon::MapOwnerOf(const std::string& path) const {
  return mon::SeqOwnerOf(mds_map_, path);
}

void MdsDaemon::UpdateOwnedLogsGauge() {
  double owned = 0;
  for (const auto& [path, hosted] : inodes_) {
    if (hosted.inode.type == InodeType::kSequencer) {
      owned += 1;
    }
  }
  perf_.Set("mds.seq.owned_logs", owned);
}

void MdsDaemon::PublishSeqOwner(const std::string& path) {
  mon_client_.SetServiceMetadata(
      mon::MapKind::kMdsMap, mon::SeqOwnerKey(path), std::to_string(name().id),
      [this, path](mal::Status s) {
        if (!s.ok()) {
          // Lost publishes self-heal: the owner_pending marker makes the
          // next map-update sweep resubmit.
          MAL_WARN(name().ToString()) << "seq owner publish for " << path
                                      << " failed: " << s;
        }
      });
}

void MdsDaemon::FlushSeqWaiters(HostedInode& hosted, uint32_t new_owner) {
  while (!hosted.seq_waiters.empty()) {
    ReplyError(hosted.seq_waiters.front().first,
               mal::Status::WrongRank("wrong_rank:" + std::to_string(new_owner) + ":" +
                                      std::to_string(mds_map_.epoch)));
    hosted.seq_waiters.pop_front();
  }
}

void MdsDaemon::ResumeSeqWaiters(const std::string& path) {
  auto it = inodes_.find(path);
  if (it == inodes_.end()) {
    return;
  }
  std::deque<std::pair<sim::Envelope, ClientRequest>> queued;
  queued.swap(it->second.seq_waiters);
  for (auto& [env, req] : queued) {
    ExecuteRequest(env, req, /*forwarded=*/false);
  }
}

void MdsDaemon::MigrateSequencer(const std::string& path, uint32_t target,
                                 std::function<void(mal::Status)> on_done) {
  if (!config_.seq_ownership) {
    on_done(mal::Status::InvalidArgument("seq_ownership is disabled"));
    return;
  }
  StartSeqHandoff(path, target, /*publish=*/true, std::move(on_done));
}

void MdsDaemon::StartSeqHandoff(const std::string& path, uint32_t target, bool publish,
                                std::function<void(mal::Status)> on_done) {
  auto it = inodes_.find(path);
  if (it == inodes_.end()) {
    on_done(mal::Status::NotFound("not authoritative for " + path));
    return;
  }
  HostedInode& hosted = it->second;
  if (hosted.inode.type != InodeType::kSequencer) {
    on_done(mal::Status::InvalidArgument(path + " is not a sequencer"));
    return;
  }
  if (hosted.cap.held) {
    on_done(mal::Status::Unavailable("cap outstanding on " + path));
    return;
  }
  if (target == name().id) {
    on_done(mal::Status::InvalidArgument("cannot migrate to self"));
    return;
  }
  if (hosted.inode.params.count("migrating_to") != 0) {
    on_done(mal::Status::Unavailable("handoff already in progress for " + path));
    return;
  }
  // Phase 1: freeze. The marker is journaled with the inode, so a source
  // that crashes mid-handoff re-drives the transfer on recovery instead of
  // resuming grants with a tail the target may already have advanced past.
  hosted.inode.params["migrating_to"] = std::to_string(target);
  DriveSeqHandoff(path, target, publish, std::move(on_done));
}

void MdsDaemon::DriveSeqHandoff(const std::string& path, uint32_t target, bool publish,
                                std::function<void(mal::Status)> on_done) {
  AfterCpu(config_.seq_handoff_cost, [this, path, target, publish,
                                      on_done = std::move(on_done)] {
    auto it = inodes_.find(path);
    if (it == inodes_.end()) {
      on_done(mal::Status::NotFound("sequencer vanished during handoff"));
      return;
    }
    // Phase 2: transfer. Encoded now — after the freeze took effect — so the
    // shipped tail covers every grant this rank ever acknowledged.
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    enc.PutString(path);
    enc.PutBool(publish);
    Inode copy = it->second.inode;
    copy.params.erase("migrating_to");
    copy.params.erase("owner_pending");
    copy.Encode(&enc);
    SendRequest(
        sim::EntityName::Mds(target), kMsgSeqMigrate, std::move(payload),
        [this, path, target, on_done](mal::Status status, const sim::Envelope&) {
          auto it2 = inodes_.find(path);
          if (!status.ok()) {
            // Transfer failed. Unfreeze and serve the queued grants locally.
            // If the target actually installed the inode and only the ack
            // was lost, the data plane's write-once positions plus the
            // ownership-map sweep (we demote to whoever publishes) keep even
            // that split from ever double-committing a position.
            if (it2 != inodes_.end()) {
              it2->second.inode.params.erase("migrating_to");
              ResumeSeqWaiters(path);
            }
            MAL_WARN(name().ToString())
                << "sequencer handoff of " << path << " to mds." << target
                << " failed: " << status;
            on_done(status);
            return;
          }
          if (it2 != inodes_.end()) {
            // Phase 3: the target owns the tail now. Bounce queued grants to
            // it, drop our copy, spread the authority hint. The target
            // publishes the ownership entry (it holds the state; we might
            // not survive to).
            FlushSeqWaiters(it2->second, target);
            inodes_.erase(it2);
          }
          authority_[path] = target;
          mal::Buffer update;
          mal::Encoder update_enc(&update);
          update_enc.PutString(path);
          update_enc.PutU32(target);
          for (uint32_t peer : PeerRanks()) {
            if (peer != target) {
              SendOneWay(sim::EntityName::Mds(peer), kMsgAuthorityUpdate, update);
            }
          }
          perf_.Inc("mds.seq.migrations");
          UpdateOwnedLogsGauge();
          if (on_migration) {
            on_migration(path, target);
          }
          mon_client_.Log("INFO", "sequencer " + path + " handed off to mds." +
                                      std::to_string(target));
          on_done(mal::Status::Ok());
        },
        60 * sim::kSecond);
  });
}

void MdsDaemon::HandleSeqMigrateIn(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  std::string path = dec.GetString();
  bool publish = dec.GetBool();
  Inode inode = Inode::Decode(&dec);
  if (!dec.ok()) {
    ReplyError(request, mal::Status::Corruption("bad sequencer handoff payload"));
    return;
  }
  sim::Envelope req_envelope = request;
  AfterCpu(config_.seq_handoff_cost, [this, path, publish, inode, req_envelope] {
    auto it = inodes_.find(path);
    if (it != inodes_.end()) {
      // Redelivered handoff (the source crashed after our install and
      // re-drove the transfer): merge, never regress. Our params
      // (epoch/views) are at least as fresh as the resent copy's.
      it->second.inode.seq_tail = std::max(it->second.inode.seq_tail, inode.seq_tail);
    } else {
      HostedInode hosted;
      hosted.inode = inode;
      inodes_[path] = std::move(hosted);
    }
    authority_.erase(path);
    if (MapOwnerOf(path) != std::optional<uint32_t>(name().id)) {
      inodes_[path].inode.params["owner_pending"] = "1";
      if (publish) {
        PublishSeqOwner(path);
      }
    }
    UpdateOwnedLogsGauge();
    perf_.Inc("mds.seq.handoffs_in");
    Reply(req_envelope, mal::Buffer());
  });
}

// -- load + balancing ---------------------------------------------------------------

LoadMetrics MdsDaemon::SnapshotLoad(bool commit) {
  // Exponentially decayed rates, like CephFS's decaying load counters:
  // momentary quiet does not zero the balancer's view of a hot subtree.
  constexpr double kAlpha = 0.5;
  LoadMetrics metrics;
  double window_sec = static_cast<double>(Now() - window_start_) / 1e9;
  if (window_sec <= 0) {
    window_sec = 1;
  }
  double window_rate = static_cast<double>(window_requests_) / window_sec;
  metrics.req_rate = kAlpha * window_rate + (1 - kAlpha) * smoothed_req_rate_;
  metrics.cpu = CpuUtilization(config_.load_window);
  if (config_.cpu_metric_noise > 0) {
    metrics.cpu = std::clamp(
        metrics.cpu * (1.0 + rng_.Normal(0.0, config_.cpu_metric_noise)), 0.0, 1.0);
  }
  metrics.load = metrics.req_rate;
  for (auto& [path, hosted] : inodes_) {
    if (path == "/") {
      continue;
    }
    double subtree_window = static_cast<double>(hosted.window_requests) / window_sec;
    double blended = kAlpha * subtree_window + (1 - kAlpha) * hosted.rate;
    metrics.subtree_rate[path] = blended;
    if (config_.seq_ownership && hosted.inode.type == InodeType::kSequencer) {
      metrics.seq_paths.push_back(path);
    }
    if (commit) {
      hosted.rate = blended;
    }
  }
  if (commit) {
    smoothed_req_rate_ = metrics.req_rate;
    window_requests_ = 0;
    window_start_ = Now();
    for (auto& [path, hosted] : inodes_) {
      hosted.window_requests = 0;
    }
  }
  return metrics;
}

void MdsDaemon::ReportLoad() {
  LoadMetrics metrics = SnapshotLoad(/*commit=*/true);
  load_table_[name().id] = metrics;
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutU32(name().id);
  metrics.Encode(&enc);
  for (uint32_t peer : PeerRanks()) {
    SendOneWay(sim::EntityName::Mds(peer), kMsgLoadReport, payload);
  }
}

void MdsDaemon::HandleLoadReport(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  uint32_t rank = dec.GetU32();
  LoadMetrics metrics = LoadMetrics::Decode(&dec);
  if (dec.ok()) {
    load_table_[rank] = metrics;
  }
}

void MdsDaemon::BalanceTick() {
  BalancerContext ctx;
  ctx.whoami = name().id;
  ctx.now_ns = Now();
  ctx.mds = load_table_;
  ctx.mds[name().id] = SnapshotLoad(/*commit=*/false);  // fresh self-view
  // Subtree rates must come from the same snapshot as the self load, or
  // policies would compare a fresh total against stale per-subtree values
  // and massively over- or under-migrate during ramp-up.
  for (const auto& [path, rate] : ctx.mds[name().id].subtree_rate) {
    ctx.my_subtrees.push_back({path, rate});
  }

  auto targets = policy_->Decide(ctx);
  // Script-engine counters from this tick (all-zero for native policies;
  // zero deltas skipped so native runs keep identical perf dumps).
  const PolicyScriptStats sstats = policy_->ConsumeScriptStats();
  const std::pair<const char*, uint64_t> kScriptCounters[] = {
      {"mds.script.instructions", sstats.instructions},
      {"mds.script.vm_runs", sstats.vm_runs},
      {"mds.script.oracle_runs", sstats.oracle_runs},
      {"mds.script.ic_hits", sstats.ic_hits},
      {"mds.script.ic_misses", sstats.ic_misses},
      {"mds.script.print_dropped", sstats.print_dropped},
  };
  for (const auto& [cname, delta] : kScriptCounters) {
    if (delta != 0) {
      perf_.Inc(cname, delta);
    }
  }
  if (!targets.ok()) {
    MAL_WARN(name().ToString()) << "balancer error: " << targets.status();
    mon_client_.Log("ERROR", "balancer: " + targets.status().ToString());
    return;
  }
  std::vector<SubtreeLoad> available = ctx.my_subtrees;
  for (const auto& [rank, amount] : targets.value()) {
    if (rank == name().id || amount <= 0) {
      continue;
    }
    std::vector<std::string> picked = PickSubtreesForLoad(available, amount);
    for (const std::string& path : picked) {
      available.erase(std::remove_if(available.begin(), available.end(),
                                     [&path](const SubtreeLoad& s) { return s.path == path; }),
                      available.end());
      auto done = [this, path, rank](mal::Status s) {
        if (!s.ok()) {
          MAL_WARN(name().ToString())
              << "migration of " << path << " to mds." << rank << " failed: " << s;
        }
      };
      // Hot sequencer inodes move through the grant-preserving handoff;
      // everything else takes the generic subtree export.
      auto hosted_it = inodes_.find(path);
      if (config_.seq_ownership && hosted_it != inodes_.end() &&
          hosted_it->second.inode.type == InodeType::kSequencer) {
        MigrateSequencer(path, rank, done);
      } else {
        Migrate(path, rank, done);
      }
    }
  }
}

}  // namespace mal::mds
