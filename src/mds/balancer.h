// Balancer policy interface and the stock CephFS balancing modes.
//
// The policy/mechanism split follows Mantle (paper §5.1): a policy decides
// *how much load* to send to which MDS rank; the MDS mechanism layer picks
// which subtrees realize that amount and performs the migrations. The
// stock CephFS balancer ships three hard-coded metric modes (CPU,
// workload, hybrid) that Figure 10a compares; Mantle's script-driven
// policy lives in src/mantle and implements this same interface.
#ifndef MALACOLOGY_MDS_BALANCER_H_
#define MALACOLOGY_MDS_BALANCER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/mds/types.h"

namespace mal::mds {

struct SubtreeLoad {
  std::string path;
  double rate = 0;  // requests/sec observed on this subtree
};

struct BalancerContext {
  uint32_t whoami = 0;
  uint64_t now_ns = 0;
  std::map<uint32_t, LoadMetrics> mds;  // cluster load table (incl. self)
  std::vector<SubtreeLoad> my_subtrees;
};

// rank -> amount of load (requests/sec) to export there.
using MigrationTargets = std::map<uint32_t, double>;

// Script-engine counters for script-driven policies (Mantle). Plain struct
// so the mechanism layer stays decoupled from the script runtime; native
// policies report all-zeros.
struct PolicyScriptStats {
  uint64_t instructions = 0;
  uint64_t vm_runs = 0;
  uint64_t oracle_runs = 0;
  uint64_t ic_hits = 0;
  uint64_t ic_misses = 0;
  uint64_t print_dropped = 0;
};

class BalancerPolicy {
 public:
  virtual ~BalancerPolicy() = default;
  virtual std::string name() const = 0;
  virtual mal::Result<MigrationTargets> Decide(const BalancerContext& ctx) = 0;

  // Deltas since the previous call (the daemon drains this every tick and
  // feeds its perf registry). Default: no script engine, nothing to report.
  virtual PolicyScriptStats ConsumeScriptStats() { return {}; }
};

// The three stock CephFS modes (Fig 10a): identical decision structure,
// different load metric.
enum class CephFsMode { kCpu, kWorkload, kHybrid };
const char* CephFsModeName(CephFsMode mode);

class CephFsBalancer : public BalancerPolicy {
 public:
  explicit CephFsBalancer(CephFsMode mode, double imbalance_threshold = 1.2)
      : mode_(mode), threshold_(imbalance_threshold) {}

  std::string name() const override {
    return std::string("cephfs-") + CephFsModeName(mode_);
  }

  mal::Result<MigrationTargets> Decide(const BalancerContext& ctx) override;

 private:
  double Metric(const LoadMetrics& m) const;

  CephFsMode mode_;
  double threshold_;
};

// Mechanism helper: greedily chooses subtrees whose combined rate
// approximates `amount`. Shared by every policy.
std::vector<std::string> PickSubtreesForLoad(const std::vector<SubtreeLoad>& subtrees,
                                             double amount);

}  // namespace mal::mds

#endif  // MALACOLOGY_MDS_BALANCER_H_
