// Metadata server daemon.
//
// Implements the three Distributed Metadata interfaces of the paper:
//  - Shared Resource (§4.3.1): a capability state machine per inode with
//    programmable lease policies (best-effort / delay / quota) plus a
//    non-cacheable round-trip mode.
//  - File Type (§4.3.2): typed inodes; the kSequencer type embeds a 64-bit
//    tail counter in the inode, which is how ZLog maps its CORFU sequencer
//    onto the metadata service.
//  - Load Balancing (§4.3.3): per-subtree load accounting, cluster-wide
//    load table via peer reports, pluggable BalancerPolicy deciding how
//    much load to export, and subtree migration with either proxy
//    (forwarding) or client (redirect) routing after migration (Fig 11).
//
// CPU model (drives Figures 9-12): every client request charges
// handle_cost at the receiving server; sequencer operations charge
// tail_cost at the inode's authority; proxy forwarding charges
// forward_cost at the proxy; requests served directly by a non-root
// authority additionally charge coherence costs at both the serving MDS
// and the root authority — the "scatter-gather cache coherence" strain the
// paper observes in client mode (§6.2.1).
#ifndef MALACOLOGY_MDS_MDS_H_
#define MALACOLOGY_MDS_MDS_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/perf.h"
#include "src/common/rng.h"
#include "src/mds/balancer.h"
#include "src/mds/types.h"
#include "src/mon/mon_client.h"
#include "src/rados/client.h"
#include "src/sim/actor.h"
#include "src/svc/dispatch.h"

namespace mal::mds {

enum class RoutingMode : uint8_t { kProxy = 0, kRedirect = 1 };

struct MdsConfig {
  sim::Time handle_cost = 50 * sim::kMicrosecond;
  sim::Time tail_cost = 60 * sim::kMicrosecond;
  sim::Time forward_cost = 20 * sim::kMicrosecond;
  // Work-queue charge per proxied request (journal/coherence bookkeeping
  // the proxy still performs for subtrees it exported); the forward itself
  // rides the dispatch lane.
  sim::Time proxy_admin_cost = 80 * sim::kMicrosecond;
  sim::Time coherence_self_cost = 150 * sim::kMicrosecond;
  sim::Time coherence_peer_cost = 120 * sim::kMicrosecond;
  sim::Time migration_cost = 5 * sim::kMillisecond;
  // Capability grant/release processing (journaling the cap transition).
  // This is the dead time per exchange that makes fine-grained cap
  // ping-pong expensive (Figs 5-7).
  sim::Time cap_process_cost = 1 * sim::kMillisecond;
  // A cap holder that ignores a revoke this long is declared dead; the cap
  // is reclaimed and the inode flagged for CORFU-style recovery (§5.2.2:
  // "a timeout is used to determine when a client should be considered
  // unavailable").
  sim::Time cap_reclaim_timeout = 10 * sim::kSecond;

  RoutingMode routing = RoutingMode::kProxy;
  uint32_t root_rank = 0;  // authority for "/" and coherence anchor

  // Sharded sequencers: when true, sequencer-inode ownership is published
  // in the MdsMap service metadata ("seq.owner.<path>" entries), non-owner
  // ranks answer sequencer ops with kWrongRank redirects instead of
  // proxying, and hot logs move between ranks through the two-phase
  // handoff (MigrateSequencer). Off by default: the single-sequencer wire
  // and cost model is byte-for-byte the legacy one.
  bool seq_ownership = false;
  // CPU charge per handoff phase at each end (freeze/transfer accounting,
  // much lighter than a full subtree export).
  sim::Time seq_handoff_cost = 1 * sim::kMillisecond;

  // Relative sampling noise on the exported CPU metric: request counters
  // are exact, but CPU utilization is sampled from a volatile signal (the
  // paper's explanation for the CephFS CPU mode's high variance, §6.2.1).
  double cpu_metric_noise = 0.25;
  uint64_t seed = 1;

  sim::Time balance_interval = 10 * sim::kSecond;  // the "balancing tick"
  sim::Time load_report_interval = 5 * sim::kSecond;
  sim::Time load_window = 10 * sim::kSecond;  // rate averaging window
  bool balancing_enabled = false;
  // How often the MDS pushes its perf-counter snapshot to the monitor
  // (0 = disabled).
  sim::Time perf_report_interval = 1 * sim::kSecond;
  // Bounded inbox depth for admission control; 0 disables (see svc/).
  size_t inbox_depth = 0;
};

class MdsDaemon : public sim::Actor {
 public:
  MdsDaemon(sim::Simulator* simulator, sim::Network* network, uint32_t id,
            std::vector<uint32_t> mons, MdsConfig config = {});
  ~MdsDaemon() override;

  // Registers with the monitor, subscribes to maps, starts timers.
  void Boot();

  // Crash/restart. The inode table (including the sequencer tail counter
  // embedded per §4.3.2 and every granted batch recorded by kSeqNextBatch)
  // models journaled metadata and survives the crash; capability state is
  // volatile and is invalidated on recovery: any cap that was outstanding
  // at crash time is dropped, and sequencer inodes whose cached tail died
  // with the holder are flagged needs_recovery so grants resume only after
  // CORFU seal/recovery — re-issued grants can never regress below the
  // durable tail.
  void Crash() override;
  void Recover() override;

  // Caps currently held at this MDS (path -> holder); checker introspection.
  std::vector<std::pair<std::string, sim::EntityName>> HeldCaps() const;

  // Installs a balancer policy (stock CephFS mode or Mantle). Balancing
  // runs only if config.balancing_enabled.
  void SetBalancerPolicy(std::shared_ptr<BalancerPolicy> policy);
  BalancerPolicy* balancer_policy() { return policy_.get(); }

  // Manually migrate a subtree this MDS is authoritative for.
  void Migrate(const std::string& path, uint32_t target,
               std::function<void(mal::Status)> on_done);

  // Two-phase sequencer handoff (requires config.seq_ownership): freeze
  // grants, transfer tail/epoch/lease state to `target`, publish the new
  // owner in the MdsMap. Positions are never reissued: grants queued during
  // the freeze are answered with kWrongRank once the transfer commits.
  void MigrateSequencer(const std::string& path, uint32_t target,
                        std::function<void(mal::Status)> on_done);

  // -- introspection (tests and benches) ---------------------------------------
  bool IsAuthority(const std::string& path) const;
  uint32_t AuthorityOf(const std::string& path) const;
  const Inode* GetInode(const std::string& path) const;
  std::vector<SubtreeLoad> HostedSubtrees() const;
  const std::map<uint32_t, LoadMetrics>& load_table() const { return load_table_; }
  uint64_t requests_handled() const { return requests_handled_; }
  const mon::MdsMap& mds_map() const { return mds_map_; }
  mon::MonClient& mon_client() { return mon_client_; }
  rados::RadosClient& rados_client() { return rados_; }
  mal::PerfRegistry& perf() { return perf_; }
  const MdsConfig& config() const { return config_; }
  // Exposed so Mantle can tune aggressiveness knobs at runtime.
  MdsConfig& mutable_config() { return config_; }

  // Observer hooks for experiments.
  std::function<void(const std::string&, uint32_t)> on_migration;  // path, target

 protected:
  void HandleRequest(const sim::Envelope& request) override;

 private:
  struct CapState {
    bool held = false;
    sim::EntityName holder;
    uint64_t grant_time_ns = 0;
    bool revoke_sent = false;
    std::deque<sim::Envelope> waiters;  // pending kAcquireCap requests
  };

  struct HostedInode {
    Inode inode;
    CapState cap;
    uint64_t window_requests = 0;  // decayed per load window
    double rate = 0;
    // Sequencer ops queued while a handoff has the inode frozen
    // (params["migrating_to"] set). Volatile: queued rpcs die with a crash,
    // exactly like cap.waiters.
    std::deque<std::pair<sim::Envelope, ClientRequest>> seq_waiters;
  };

  void RegisterHandlers();

  void HandleClientRequest(const sim::Envelope& request, ClientRequest req,
                           bool forwarded);
  void ExecuteRequest(const sim::Envelope& request, const ClientRequest& req,
                      bool forwarded);
  void HandleMigrateIn(const sim::Envelope& request);
  void HandleAuthorityUpdate(const sim::Envelope& request);
  void HandleLoadReport(const sim::Envelope& request);
  void HandleMapUpdate(const sim::Envelope& request);

  // -- sharded sequencers --------------------------------------------------------
  // Phase 1 of a handoff: validate, journal the freeze
  // (params["migrating_to"] = target), then drive the transfer.
  void StartSeqHandoff(const std::string& path, uint32_t target, bool publish,
                       std::function<void(mal::Status)> on_done);
  // Phase 2+3 of a handoff whose freeze (params["migrating_to"]) is already
  // journaled; re-driven from Recover() after a source crash. `publish`
  // tells the receiving rank to publish itself as the new owner (false for
  // demotions, where the map already names it).
  void DriveSeqHandoff(const std::string& path, uint32_t target, bool publish,
                       std::function<void(mal::Status)> on_done);
  void HandleSeqMigrateIn(const sim::Envelope& request);
  // Reconciles hosted sequencers against a freshly adopted ownership map
  // (publish re-drive, demotion of stale copies).
  void SeqOwnershipSweep();
  // Published owner of `path` in the current MdsMap, if any.
  std::optional<uint32_t> MapOwnerOf(const std::string& path) const;
  // Submits the seq.owner.<path> -> rank map transaction (idempotent;
  // re-driven from HandleMapUpdate while params["owner_pending"] is set).
  void PublishSeqOwner(const std::string& path);
  // Answer every queued grant with a kWrongRank pointing at `new_owner`.
  void FlushSeqWaiters(HostedInode& hosted, uint32_t new_owner);
  // Re-execute queued grants locally (handoff aborted).
  void ResumeSeqWaiters(const std::string& path);
  void UpdateOwnedLogsGauge();

  void GrantCap(const std::string& path, HostedInode& hosted, const sim::Envelope& to);
  void MaybeRevoke(const std::string& path, HostedInode& hosted);
  void ReplyWithInode(const sim::Envelope& request, const MdsReply& reply);

  void ReportLoad();
  void BalanceTick();
  // Blends the current window with the smoothed history (decayed load, as
  // in CephFS). commit=true folds the window into the smoothed state and
  // resets counters.
  LoadMetrics SnapshotLoad(bool commit);

  std::vector<uint32_t> PeerRanks() const;

  MdsConfig config_;
  svc::ServiceDispatcher dispatcher_{this};
  mon::MonClient mon_client_;
  rados::RadosClient rados_;
  mon::MdsMap mds_map_;
  mal::PerfRegistry perf_;

  // Inodes this MDS is authoritative for, by absolute path.
  std::map<std::string, HostedInode> inodes_;
  // Cluster-wide authority hints (exact path -> rank). Missing entries
  // resolve to the root rank.
  std::map<std::string, uint32_t> authority_;

  std::map<uint32_t, LoadMetrics> load_table_;
  std::shared_ptr<BalancerPolicy> policy_;

  mal::Rng rng_{1};
  uint64_t next_ino_ = 1;
  uint64_t requests_handled_ = 0;
  uint64_t window_requests_ = 0;
  sim::Time window_start_ = 0;
  double smoothed_req_rate_ = 0;
};

}  // namespace mal::mds

#endif  // MALACOLOGY_MDS_MDS_H_
