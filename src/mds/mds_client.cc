#include "src/mds/mds_client.h"

namespace mal::mds {

namespace {

// Redirect replies carry "redirect:<rank>" in the error message.
bool ParseRedirect(const mal::Status& status, uint32_t* rank) {
  constexpr char kPrefix[] = "redirect:";
  const std::string& message = status.message();
  if (status.code() != mal::Code::kUnavailable || message.rfind(kPrefix, 0) != 0) {
    return false;
  }
  *rank = static_cast<uint32_t>(std::stoul(message.substr(sizeof(kPrefix) - 1)));
  return true;
}

// Sharded-sequencer redirects carry "wrong_rank:<owner>:<map_epoch>".
bool ParseWrongRank(const mal::Status& status, uint32_t* rank, uint64_t* epoch) {
  constexpr char kPrefix[] = "wrong_rank:";
  const std::string& message = status.message();
  if (status.code() != mal::Code::kWrongRank || message.rfind(kPrefix, 0) != 0) {
    return false;
  }
  size_t pos = sizeof(kPrefix) - 1;
  size_t colon = message.find(':', pos);
  if (colon == std::string::npos) {
    return false;
  }
  *rank = static_cast<uint32_t>(std::stoul(message.substr(pos, colon - pos)));
  *epoch = std::stoull(message.substr(colon + 1));
  return true;
}

}  // namespace

uint32_t MdsClient::TargetFor(const std::string& path) const {
  auto it = authority_cache_.find(path);
  return it == authority_cache_.end() ? config_.home_mds : it->second.rank;
}

void MdsClient::SetAuthorityHint(const std::string& path, uint32_t rank) {
  authority_cache_[path].rank = rank;  // epoch untouched: newer maps override
}

void MdsClient::Request(const ClientRequest& request, ReplyHandler on_reply) {
  RequestAttempt(request, std::move(on_reply), svc::Backoff(config_.retry));
}

void MdsClient::RequestAttempt(const ClientRequest& request, ReplyHandler on_reply,
                               svc::Backoff backoff) {
  if (backoff.Exhausted()) {
    on_reply(mal::Status::Unavailable("mds unreachable"), MdsReply{});
    return;
  }
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  request.Encode(&enc);
  owner_->SendRequest(
      sim::EntityName::Mds(TargetFor(request.path)), kMsgClientRequest, std::move(payload),
      [this, request, on_reply = std::move(on_reply), backoff](
          mal::Status status, const sim::Envelope& reply) mutable {
        auto retry = [this, request, on_reply, backoff]() mutable {
          // Consume the attempt before building the continuation so the
          // lambda captures the advanced backoff.
          sim::Time delay = backoff.NextDelay(&retry_rng_);
          svc::RunAfter(owner_->simulator(), delay,
                        [this, request, on_reply, backoff] {
                          RequestAttempt(request, on_reply, backoff);
                        });
        };
        uint32_t redirect_rank = 0;
        if (ParseRedirect(status, &redirect_rank)) {
          authority_cache_[request.path] = {redirect_rank, 0};
          retry();
          return;
        }
        uint64_t redirect_epoch = 0;
        if (ParseWrongRank(status, &redirect_rank, &redirect_epoch)) {
          // Epoch-guarded: a redirect stamped with an older ownership map
          // never clobbers a fresher cache entry — but we still retry at
          // whatever the cache now says, so a redirect ping-pong between two
          // stale ranks dies with the bounded retry budget instead of
          // looping forever.
          CachedAuthority& cached = authority_cache_[request.path];
          if (redirect_epoch >= cached.epoch) {
            cached = {redirect_rank, redirect_epoch};
          }
          retry();
          return;
        }
        if (status.code() == mal::Code::kBusy) {
          // The MDS shed us at admission: back off and resend to the same
          // authority (placement did not change).
          retry();
          return;
        }
        if (!status.ok()) {
          on_reply(status, MdsReply{});
          return;
        }
        mal::Decoder dec(reply.payload);
        on_reply(mal::Status::Ok(), MdsReply::Decode(&dec));
      },
      config_.rpc_timeout);
}

void MdsClient::Mkdir(const std::string& path, DoneHandler on_done) {
  ClientRequest req;
  req.op = MdsOp::kMkdir;
  req.path = path;
  Request(req, [on_done = std::move(on_done)](mal::Status s, const MdsReply&) {
    on_done(s);
  });
}

void MdsClient::Create(const std::string& path, InodeType type, const LeasePolicy& policy,
                       DoneHandler on_done) {
  ClientRequest req;
  req.op = MdsOp::kCreate;
  req.path = path;
  req.inode_type = type;
  req.policy = policy;
  Request(req, [on_done = std::move(on_done)](mal::Status s, const MdsReply&) {
    on_done(s);
  });
}

void MdsClient::Lookup(const std::string& path, ReplyHandler on_reply) {
  ClientRequest req;
  req.op = MdsOp::kLookup;
  req.path = path;
  Request(req, std::move(on_reply));
}

void MdsClient::SetPolicy(const std::string& path, const LeasePolicy& policy,
                          DoneHandler on_done) {
  ClientRequest req;
  req.op = MdsOp::kSetPolicy;
  req.path = path;
  req.policy = policy;
  Request(req, [on_done = std::move(on_done)](mal::Status s, const MdsReply&) {
    on_done(s);
  });
}

void MdsClient::SeqNext(const std::string& path,
                        std::function<void(mal::Status, uint64_t)> on_pos) {
  ClientRequest req;
  req.op = MdsOp::kSeqNext;
  req.path = path;
  Request(req, [on_pos = std::move(on_pos)](mal::Status s, const MdsReply& reply) {
    on_pos(s, reply.seq_value);
  });
}

void MdsClient::SeqNextBatch(const std::string& path, uint64_t count,
                             std::function<void(mal::Status, uint64_t)> on_first) {
  ClientRequest req;
  req.op = MdsOp::kSeqNextBatch;
  req.path = path;
  req.seq_value = count;
  Request(req, [on_first = std::move(on_first)](mal::Status s, const MdsReply& reply) {
    on_first(s, reply.seq_value);
  });
}

void MdsClient::SeqRead(const std::string& path,
                        std::function<void(mal::Status, uint64_t)> on_pos) {
  ClientRequest req;
  req.op = MdsOp::kSeqRead;
  req.path = path;
  Request(req, [on_pos = std::move(on_pos)](mal::Status s, const MdsReply& reply) {
    on_pos(s, reply.seq_value);
  });
}

bool MdsClient::HasCap(const std::string& path) const {
  auto it = caps_.find(path);
  return it != caps_.end() && !it->second.releasing;
}

void MdsClient::AcquireCap(const std::string& path, DoneHandler on_granted) {
  if (HasCap(path)) {
    on_granted(mal::Status::Ok());
    return;
  }
  ClientRequest req;
  req.op = MdsOp::kAcquireCap;
  req.path = path;
  Request(req, [this, path, on_granted = std::move(on_granted)](mal::Status s,
                                                                const MdsReply& reply) {
    if (!s.ok()) {
      on_granted(s);
      return;
    }
    HeldCap cap;
    cap.next_value = reply.seq_value;
    cap.terms = reply.terms;
    cap.grant_time_ns = owner_->Now();
    caps_[path] = cap;
    on_granted(mal::Status::Ok());
  });
}

mal::Result<uint64_t> MdsClient::LocalNext(const std::string& path) {
  return LocalNextBatch(path, 1);
}

mal::Result<uint64_t> MdsClient::LocalNextBatch(const std::string& path, uint64_t count) {
  auto it = caps_.find(path);
  if (it == caps_.end() || it->second.releasing) {
    return mal::Status::Unavailable("cap not held for " + path);
  }
  HeldCap& cap = it->second;
  uint64_t first = cap.next_value;
  cap.next_value += count;
  cap.ops_since_grant += count;
  // Quota terms: once a revoke is pending and we have used our quota, give
  // the cap back (the "quota" curve of Fig 5c).
  if (cap.revoke_pending && cap.terms.mode == LeaseMode::kQuota &&
      cap.ops_since_grant >= cap.terms.quota) {
    ReleaseNow(path);
  }
  return first;
}

bool MdsClient::OnMessage(const sim::Envelope& envelope) {
  if (envelope.type != kMsgCapRevoke) {
    return false;
  }
  mal::Decoder dec(envelope.payload);
  std::string path = dec.GetString();
  HandleRevoke(path);
  return true;
}

void MdsClient::HandleRevoke(const std::string& path) {
  auto it = caps_.find(path);
  if (it == caps_.end() || it->second.releasing) {
    return;
  }
  HeldCap& cap = it->second;
  if (cap.revoke_pending) {
    return;
  }
  cap.revoke_pending = true;
  switch (cap.terms.mode) {
    case LeaseMode::kBestEffort:
    case LeaseMode::kRoundTrip:
      ReleaseNow(path);
      return;
    case LeaseMode::kDelay: {
      // Keep the cap until the reservation expires.
      uint64_t deadline = cap.grant_time_ns + cap.terms.max_hold_ns;
      uint64_t now = owner_->Now();
      if (deadline <= now) {
        ReleaseNow(path);
        return;
      }
      cap.hold_timer = owner_->ScheduleGuarded(
          deadline - now, [this, path] { ReleaseNow(path); });
      return;
    }
    case LeaseMode::kQuota: {
      // Yield once the quota is exhausted (checked in LocalNext), but never
      // hold past the reservation either.
      if (cap.ops_since_grant >= cap.terms.quota) {
        ReleaseNow(path);
        return;
      }
      uint64_t deadline = cap.grant_time_ns + cap.terms.max_hold_ns;
      uint64_t now = owner_->Now();
      cap.hold_timer = owner_->ScheduleGuarded(
          deadline > now ? deadline - now : 0, [this, path] { ReleaseNow(path); });
      return;
    }
  }
}

void MdsClient::ReleaseNow(const std::string& path) {
  auto it = caps_.find(path);
  if (it == caps_.end() || it->second.releasing) {
    return;
  }
  it->second.releasing = true;
  if (it->second.hold_timer != 0) {
    owner_->simulator()->Cancel(it->second.hold_timer);
  }
  ClientRequest req;
  req.op = MdsOp::kReleaseCap;
  req.path = path;
  req.seq_value = it->second.next_value;
  Request(req, [this, path](mal::Status, const MdsReply&) {
    caps_.erase(path);
    ++caps_released_;
    if (on_cap_lost) {
      on_cap_lost(path);
    }
  });
}

void MdsClient::ReleaseCap(const std::string& path, DoneHandler on_done) {
  if (!HasCap(path)) {
    on_done(mal::Status::NotFound("no cap held for " + path));
    return;
  }
  ReleaseNow(path);
  on_done(mal::Status::Ok());
}

}  // namespace mal::mds
