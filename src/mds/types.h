// Metadata-service types: typed inodes (the File Type interface, paper
// §4.3.2), capability/lease terms (the Shared Resource interface, §4.3.1),
// load metrics (the Load Balancing interface, §4.3.3), and wire messages
// (envelope types 300-399).
#ifndef MALACOLOGY_MDS_TYPES_H_
#define MALACOLOGY_MDS_TYPES_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/sim/network.h"

namespace mal::mds {

enum MsgType : uint32_t {
  kMsgClientRequest = 300,   // client -> mds
  kMsgCapRevoke = 301,       // mds -> client (one-way)
  kMsgMigrate = 302,         // mds -> mds: subtree export
  kMsgAuthorityUpdate = 303, // mds -> mds broadcast (one-way)
  kMsgLoadReport = 304,      // mds -> mds broadcast (one-way)
  kMsgForward = 305,         // proxy: mds -> authoritative mds
  kMsgCoherence = 306,       // one-way scatter-gather strain at the root
  kMsgSeqMigrate = 307,      // mds -> mds: sequencer-inode handoff (phase 2)
};

// Inode types. kSequencer is the domain-specific type ZLog defines through
// the File Type interface: its "file" embeds a 64-bit tail counter whose
// locking/caching policy is programmable.
enum class InodeType : uint8_t { kDir = 0, kFile = 1, kSequencer = 2 };

// How clients may hold the sequencer resource (paper §6.1.1):
//   kBestEffort — Ceph default: release as soon as someone else wants it.
//   kDelay      — holder keeps the cap up to `max_hold` after acquiring.
//   kQuota      — holder yields after `quota` local operations.
// kRoundTrip disables caching entirely (§6.2: "forcing clients to make
// round-trips for every request") — the Shared Resource interface's
// non-cacheable mode.
enum class LeaseMode : uint8_t { kBestEffort = 0, kDelay = 1, kQuota = 2, kRoundTrip = 3 };

struct LeasePolicy {
  LeaseMode mode = LeaseMode::kBestEffort;
  uint64_t max_hold_ns = 250'000'000;  // kDelay: max exclusive reservation
  uint64_t quota = 0;                  // kQuota: ops before yielding

  void Encode(mal::Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(mode));
    enc->PutU64(max_hold_ns);
    enc->PutU64(quota);
  }
  static LeasePolicy Decode(mal::Decoder* dec) {
    LeasePolicy p;
    p.mode = static_cast<LeaseMode>(dec->GetU8());
    p.max_hold_ns = dec->GetU64();
    p.quota = dec->GetU64();
    return p;
  }
};

struct Inode {
  uint64_t ino = 0;
  InodeType type = InodeType::kFile;
  uint64_t size = 0;
  uint64_t seq_tail = 0;       // kSequencer: the embedded counter
  LeasePolicy lease_policy;    // kSequencer/kFile: cap policy
  std::map<std::string, std::string> params;  // domain-specific attributes

  void Encode(mal::Encoder* enc) const {
    enc->PutU64(ino);
    enc->PutU8(static_cast<uint8_t>(type));
    enc->PutU64(size);
    enc->PutU64(seq_tail);
    lease_policy.Encode(enc);
    EncodeStringMap(enc, params);
  }
  static Inode Decode(mal::Decoder* dec) {
    Inode inode;
    inode.ino = dec->GetU64();
    inode.type = static_cast<InodeType>(dec->GetU8());
    inode.size = dec->GetU64();
    inode.seq_tail = dec->GetU64();
    inode.lease_policy = LeasePolicy::Decode(dec);
    inode.params = DecodeStringMap(dec);
    return inode;
  }
};

// Client request ops.
enum class MdsOp : uint8_t {
  kMkdir = 0,
  kCreate = 1,      // path, inode type, lease policy
  kLookup = 2,
  kUnlink = 3,
  kSetPolicy = 4,   // reprogram an inode's lease policy live
  kSeqNext = 5,     // round-trip: allocate next position
  kSeqRead = 6,     // round-trip: read tail without increment
  kAcquireCap = 7,  // request exclusive cached access (reply may be delayed)
  kReleaseCap = 8,  // return the cap (carries updated tail)
  kSetSeqState = 9, // recovery: install recovered tail + params (e.g. epoch)
  kSetSize = 10,    // file layer: record a file inode's logical size
  kSeqNextBatch = 11, // round-trip: reserve seq_value contiguous positions
};

struct ClientRequest {
  MdsOp op = MdsOp::kLookup;
  std::string path;
  InodeType inode_type = InodeType::kFile;
  LeasePolicy policy;
  uint64_t seq_value = 0;  // kReleaseCap/kSetSeqState: tail value
  std::map<std::string, std::string> params;  // kCreate/kSetSeqState extras

  void Encode(mal::Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(op));
    enc->PutString(path);
    enc->PutU8(static_cast<uint8_t>(inode_type));
    policy.Encode(enc);
    enc->PutU64(seq_value);
    EncodeStringMap(enc, params);
  }
  static ClientRequest Decode(mal::Decoder* dec) {
    ClientRequest req;
    req.op = static_cast<MdsOp>(dec->GetU8());
    req.path = dec->GetString();
    req.inode_type = static_cast<InodeType>(dec->GetU8());
    req.policy = LeasePolicy::Decode(dec);
    req.seq_value = dec->GetU64();
    req.params = DecodeStringMap(dec);
    return req;
  }
};

// Reply to kAcquireCap / kSeqNext / kLookup; fields used depend on the op.
struct MdsReply {
  uint64_t seq_value = 0;
  LeasePolicy terms;          // cap grant terms the client must honor
  uint64_t grant_time_ns = 0; // when the cap was granted
  Inode inode;                // kLookup

  void Encode(mal::Encoder* enc) const {
    enc->PutU64(seq_value);
    terms.Encode(enc);
    enc->PutU64(grant_time_ns);
    inode.Encode(enc);
  }
  static MdsReply Decode(mal::Decoder* dec) {
    MdsReply reply;
    reply.seq_value = dec->GetU64();
    reply.terms = LeasePolicy::Decode(dec);
    reply.grant_time_ns = dec->GetU64();
    reply.inode = Inode::Decode(dec);
    return reply;
  }
};

// Per-MDS load metrics exported to the balancer: the `mds[i]` table a
// Mantle policy indexes (paper §6.2.2's `mds[whoami]["load"]`).
struct LoadMetrics {
  double req_rate = 0;    // client requests/sec over the report window
  double cpu = 0;         // CPU utilization [0,1]
  double load = 0;        // composite "load" the default policies use
  // Per hosted subtree (path -> requests/sec): the popularity metric
  // subtree migration decisions need.
  std::map<std::string, double> subtree_rate;
  // Subset of subtree_rate paths that are hosted kSequencer inodes; lets a
  // Mantle hot-log policy (mds[i]["seq"]) target sequencer handoffs without
  // guessing from path names. Appended at the end of the encoding so the
  // wire image of reports without sequencers is unchanged.
  std::vector<std::string> seq_paths;

  void Encode(mal::Encoder* enc) const {
    enc->PutF64(req_rate);
    enc->PutF64(cpu);
    enc->PutF64(load);
    enc->PutVarU64(subtree_rate.size());
    for (const auto& [path, rate] : subtree_rate) {
      enc->PutString(path);
      enc->PutF64(rate);
    }
    enc->PutVarU64(seq_paths.size());
    for (const std::string& path : seq_paths) {
      enc->PutString(path);
    }
  }
  static LoadMetrics Decode(mal::Decoder* dec) {
    LoadMetrics m;
    m.req_rate = dec->GetF64();
    m.cpu = dec->GetF64();
    m.load = dec->GetF64();
    uint64_t n = dec->GetVarU64();
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      std::string path = dec->GetString();
      m.subtree_rate[path] = dec->GetF64();
    }
    uint64_t s = dec->GetVarU64();
    for (uint64_t i = 0; i < s && dec->ok(); ++i) {
      m.seq_paths.push_back(dec->GetString());
    }
    return m;
  }
};

}  // namespace mal::mds

#endif  // MALACOLOGY_MDS_TYPES_H_
