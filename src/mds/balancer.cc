#include "src/mds/balancer.h"

#include <algorithm>

namespace mal::mds {

const char* CephFsModeName(CephFsMode mode) {
  switch (mode) {
    case CephFsMode::kCpu:
      return "cpu";
    case CephFsMode::kWorkload:
      return "workload";
    case CephFsMode::kHybrid:
      return "hybrid";
  }
  return "?";
}

double CephFsBalancer::Metric(const LoadMetrics& m) const {
  switch (mode_) {
    case CephFsMode::kCpu:
      // CPU utilization scaled to be comparable with request rates; the
      // paper notes this metric's volatility causes unpredictable decisions.
      return m.cpu * 10000.0;
    case CephFsMode::kWorkload:
      return m.req_rate;
    case CephFsMode::kHybrid:
      return 0.5 * (m.cpu * 10000.0) + 0.5 * m.req_rate;
  }
  return 0;
}

mal::Result<MigrationTargets> CephFsBalancer::Decide(const BalancerContext& ctx) {
  auto self = ctx.mds.find(ctx.whoami);
  if (self == ctx.mds.end() || ctx.mds.size() < 2) {
    return MigrationTargets{};
  }
  double my_load = Metric(self->second);
  double total = 0;
  for (const auto& [rank, metrics] : ctx.mds) {
    total += Metric(metrics);
  }
  double mean = total / static_cast<double>(ctx.mds.size());
  if (mean <= 0 || my_load <= mean * threshold_) {
    return MigrationTargets{};  // not overloaded enough
  }
  // Export to every underloaded peer proportionally to its headroom, up to
  // shedding (my_load - mean) in total — the classic CephFS heuristic.
  double to_shed = my_load - mean;
  double total_headroom = 0;
  for (const auto& [rank, metrics] : ctx.mds) {
    if (rank != ctx.whoami && Metric(metrics) < mean) {
      total_headroom += mean - Metric(metrics);
    }
  }
  if (total_headroom <= 0) {
    return MigrationTargets{};
  }
  MigrationTargets targets;
  for (const auto& [rank, metrics] : ctx.mds) {
    if (rank == ctx.whoami || Metric(metrics) >= mean) {
      continue;
    }
    double headroom = mean - Metric(metrics);
    double share = to_shed * headroom / total_headroom;
    if (share > 0) {
      targets[rank] = share;
    }
  }
  return targets;
}

std::vector<std::string> PickSubtreesForLoad(const std::vector<SubtreeLoad>& subtrees,
                                             double amount) {
  // Largest-first greedy fill: mirrors CephFS preferring big dirfrags so
  // migrations are few and meaningful.
  std::vector<SubtreeLoad> sorted = subtrees;
  std::sort(sorted.begin(), sorted.end(),
            [](const SubtreeLoad& a, const SubtreeLoad& b) { return a.rate > b.rate; });
  std::vector<std::string> picked;
  double sum = 0;
  for (const SubtreeLoad& subtree : sorted) {
    if (sum >= amount) {
      break;
    }
    if (subtree.rate <= 0) {
      continue;
    }
    // Skip a subtree that would overshoot the target by more than half of
    // its own weight unless nothing has been picked yet.
    if (!picked.empty() && sum + subtree.rate > amount + subtree.rate / 2) {
      continue;
    }
    picked.push_back(subtree.path);
    sum += subtree.rate;
  }
  return picked;
}

}  // namespace mal::mds
