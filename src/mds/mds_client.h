// MdsClient: client-side metadata library.
//
// Routes requests to the right MDS (authority cache + redirect handling in
// client mode; the session server forwards in proxy mode) and implements
// the client half of the cooperative capability protocol (paper §4.3.1:
// "clients voluntarily release resources back to the file system metadata
// service"): on revoke, the client yields according to the lease terms it
// was granted — immediately (best-effort), when its reservation expires
// (delay), or after exhausting its operation quota (quota).
#ifndef MALACOLOGY_MDS_MDS_CLIENT_H_
#define MALACOLOGY_MDS_MDS_CLIENT_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/mds/types.h"
#include "src/sim/actor.h"
#include "src/svc/retry.h"

namespace mal::mds {

struct MdsClientConfig {
  uint32_t home_mds = 0;                      // session server
  sim::Time rpc_timeout = 60 * sim::kSecond;  // cap grants can take a while
  // Retry schedule shared by redirect chasing and kBusy backoff. The
  // default (4 attempts, zero base delay) reproduces the legacy
  // redirect-immediately loop byte for byte.
  svc::RetryPolicy retry{.max_attempts = 4};
};

class MdsClient {
 public:
  MdsClient(sim::Actor* owner, MdsClientConfig config = {})
      : owner_(owner),
        config_(config),
        retry_rng_(0x6d6473ULL * 0x9e3779b97f4a7c15ULL +
                   (static_cast<uint64_t>(owner->name().type) << 32) + owner->name().id) {}

  using ReplyHandler = std::function<void(mal::Status, const MdsReply&)>;
  using DoneHandler = std::function<void(mal::Status)>;

  // Fired when a held cap is fully released (after a revoke was honored).
  std::function<void(const std::string& path)> on_cap_lost;

  // Routes envelopes the owner receives; returns true if consumed.
  bool OnMessage(const sim::Envelope& envelope);

  // -- namespace ----------------------------------------------------------------
  void Mkdir(const std::string& path, DoneHandler on_done);
  void Create(const std::string& path, InodeType type, const LeasePolicy& policy,
              DoneHandler on_done);
  void Lookup(const std::string& path, ReplyHandler on_reply);
  void SetPolicy(const std::string& path, const LeasePolicy& policy, DoneHandler on_done);

  // -- sequencer: round-trip mode -----------------------------------------------
  void SeqNext(const std::string& path, std::function<void(mal::Status, uint64_t)> on_pos);
  void SeqRead(const std::string& path, std::function<void(mal::Status, uint64_t)> on_pos);
  // Reserves `count` contiguous positions in one round-trip; yields the
  // first. The MDS records the advanced tail in the inode, so sequencer
  // recovery seals at or past every granted position.
  void SeqNextBatch(const std::string& path, uint64_t count,
                    std::function<void(mal::Status, uint64_t)> on_first);

  // -- sequencer: cached (capability) mode ----------------------------------------
  // Requests the exclusive cap; on grant the client increments locally via
  // LocalNext() until the cap is revoked and the lease terms force release.
  void AcquireCap(const std::string& path, DoneHandler on_granted);
  bool HasCap(const std::string& path) const;
  // Next position from the locally cached tail. Fails kUnavailable if the
  // cap is not held. Honoring quota terms may trigger a release afterwards.
  mal::Result<uint64_t> LocalNext(const std::string& path);
  // Reserves `count` contiguous positions from the cached tail (returns the
  // first). The whole batch counts against quota terms at once.
  mal::Result<uint64_t> LocalNextBatch(const std::string& path, uint64_t count);
  // Voluntarily give the cap back now.
  void ReleaseCap(const std::string& path, DoneHandler on_done);

  // Generic escape hatch.
  void Request(const ClientRequest& request, ReplyHandler on_reply);

  // Pin the cached owner rank for a path (sharded-sequencer failover: the
  // takeover initiator knows where it is about to install the inode before
  // any MDS can redirect it there). Later kWrongRank redirects with a newer
  // map epoch still override the pin.
  void SetAuthorityHint(const std::string& path, uint32_t rank);

  uint64_t caps_released() const { return caps_released_; }

 private:
  struct HeldCap {
    uint64_t next_value = 0;
    LeasePolicy terms;
    uint64_t grant_time_ns = 0;
    uint64_t ops_since_grant = 0;
    bool revoke_pending = false;
    bool releasing = false;
    sim::EventId hold_timer = 0;
  };

  void RequestAttempt(const ClientRequest& request, ReplyHandler on_reply,
                      svc::Backoff backoff);
  uint32_t TargetFor(const std::string& path) const;
  void HandleRevoke(const std::string& path);
  void ReleaseNow(const std::string& path);

  // Cached owner rank per path. `epoch` is the ownership-map epoch the
  // entry was learned at (0 = legacy redirect or local hint, always
  // overridable): kWrongRank redirects only move the cache forward.
  struct CachedAuthority {
    uint32_t rank = 0;
    uint64_t epoch = 0;
  };

  sim::Actor* owner_;
  MdsClientConfig config_;
  mal::Rng retry_rng_;
  std::map<std::string, CachedAuthority> authority_cache_;
  std::map<std::string, HeldCap> caps_;
  uint64_t caps_released_ = 0;
};

}  // namespace mal::mds

#endif  // MALACOLOGY_MDS_MDS_CLIENT_H_
