#include "src/common/log.h"

#include <cstdio>

namespace mal {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace log_internal {

void Emit(LogLevel level, const std::string& component, const std::string& message) {
  if (level < g_level) {
    return;
  }
  std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(), message.c_str());
}

}  // namespace log_internal
}  // namespace mal
