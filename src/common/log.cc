#include "src/common/log.h"

#include <cstdio>
#include <map>

namespace mal {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::map<std::string, LogLevel>* g_component_levels = nullptr;

bool g_context_set = false;
uint64_t g_context_time_ns = 0;
std::string g_context_node;
// When set, the node name is read through this pointer (the event-loop fast
// path); otherwise g_context_node holds a copy.
const std::string* g_context_node_ptr = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Threshold for a component: exact override, then daemon-type prefix
// ("osd.3" -> "osd"), then the global level.
LogLevel Threshold(const std::string& component) {
  if (g_component_levels != nullptr) {
    auto it = g_component_levels->find(component);
    if (it != g_component_levels->end()) {
      return it->second;
    }
    size_t dot = component.find('.');
    if (dot != std::string::npos) {
      it = g_component_levels->find(component.substr(0, dot));
      if (it != g_component_levels->end()) {
        return it->second;
      }
    }
  }
  return g_level;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetComponentLogLevel(const std::string& component, LogLevel level) {
  if (g_component_levels == nullptr) {
    g_component_levels = new std::map<std::string, LogLevel>();
  }
  (*g_component_levels)[component] = level;
}

void ClearComponentLogLevels() {
  if (g_component_levels != nullptr) {
    g_component_levels->clear();
  }
}

void SetLogContext(uint64_t time_ns, const std::string& node) {
  g_context_set = true;
  g_context_time_ns = time_ns;
  g_context_node = node;
  g_context_node_ptr = nullptr;
}

void SetLogContextRef(uint64_t time_ns, const std::string* node) {
  if (g_context_set && g_context_node_ptr == node && g_context_time_ns == time_ns) {
    return;  // same actor, same instant: the context is already in place
  }
  g_context_set = true;
  g_context_time_ns = time_ns;
  g_context_node_ptr = node;
}

void ClearLogContext() {
  g_context_set = false;
  g_context_node_ptr = nullptr;
}

namespace log_internal {

void Emit(LogLevel level, const std::string& component, const std::string& message) {
  if (level < Threshold(component)) {
    return;
  }
  if (g_context_set) {
    const std::string& node =
        g_context_node_ptr != nullptr ? *g_context_node_ptr : g_context_node;
    std::fprintf(stderr, "[%s] [%.6fs %s] %s: %s\n", LevelName(level),
                 static_cast<double>(g_context_time_ns) / 1e9,
                 node.c_str(), component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
                 message.c_str());
  }
}

}  // namespace log_internal
}  // namespace mal
