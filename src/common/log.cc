#include "src/common/log.h"

#include <cstdio>
#include <cstdlib>
#include <map>

namespace mal {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::map<std::string, LogLevel>* g_component_levels = nullptr;

// -1 = not yet decided (consult MAL_LOG_JSON on first emit), 0/1 = decided.
int g_json_logging = -1;

bool JsonLogging() {
  if (g_json_logging < 0) {
    const char* env = std::getenv("MAL_LOG_JSON");
    g_json_logging = env != nullptr && env[0] == '1' ? 1 : 0;
  }
  return g_json_logging == 1;
}

bool g_context_set = false;
uint64_t g_context_time_ns = 0;
std::string g_context_node;
// When set, the node name is read through this pointer (the event-loop fast
// path); otherwise g_context_node holds a copy.
const std::string* g_context_node_ptr = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

// Threshold for a component: exact override, then daemon-type prefix
// ("osd.3" -> "osd"), then the global level.
LogLevel Threshold(const std::string& component) {
  if (g_component_levels != nullptr) {
    auto it = g_component_levels->find(component);
    if (it != g_component_levels->end()) {
      return it->second;
    }
    size_t dot = component.find('.');
    if (dot != std::string::npos) {
      it = g_component_levels->find(component.substr(0, dot));
      if (it != g_component_levels->end()) {
        return it->second;
      }
    }
  }
  return g_level;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetComponentLogLevel(const std::string& component, LogLevel level) {
  if (g_component_levels == nullptr) {
    g_component_levels = new std::map<std::string, LogLevel>();
  }
  (*g_component_levels)[component] = level;
}

void ClearComponentLogLevels() {
  if (g_component_levels != nullptr) {
    g_component_levels->clear();
  }
}

void SetJsonLogging(bool enabled) { g_json_logging = enabled ? 1 : 0; }
bool JsonLoggingEnabled() { return JsonLogging(); }

std::string FormatJsonLogLine(LogLevel level, bool has_context, uint64_t time_ns,
                              const std::string& node, const std::string& component,
                              const std::string& message) {
  std::string out = "{";
  if (has_context) {
    char stamp[64];
    std::snprintf(stamp, sizeof(stamp), "\"t_s\": %.6f, ",
                  static_cast<double>(time_ns) / 1e9);
    out += stamp;
    out += "\"node\": \"" + node + "\", ";
  }
  out += "\"component\": \"" + component + "\", \"level\": \"";
  out += LevelName(level);
  out += "\", \"msg\": \"";
  for (char c : message) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += "\"}";
  return out;
}

void SetLogContext(uint64_t time_ns, const std::string& node) {
  g_context_set = true;
  g_context_time_ns = time_ns;
  g_context_node = node;
  g_context_node_ptr = nullptr;
}

void SetLogContextRef(uint64_t time_ns, const std::string* node) {
  if (g_context_set && g_context_node_ptr == node && g_context_time_ns == time_ns) {
    return;  // same actor, same instant: the context is already in place
  }
  g_context_set = true;
  g_context_time_ns = time_ns;
  g_context_node_ptr = node;
}

void ClearLogContext() {
  g_context_set = false;
  g_context_node_ptr = nullptr;
}

namespace log_internal {

void Emit(LogLevel level, const std::string& component, const std::string& message) {
  if (level < Threshold(component)) {
    return;
  }
  const std::string& node =
      g_context_node_ptr != nullptr ? *g_context_node_ptr : g_context_node;
  if (JsonLogging()) {
    std::fprintf(stderr, "%s\n",
                 FormatJsonLogLine(level, g_context_set, g_context_time_ns, node,
                                   component, message)
                     .c_str());
    return;
  }
  if (g_context_set) {
    std::fprintf(stderr, "[%s] [%.6fs %s] %s: %s\n", LevelName(level),
                 static_cast<double>(g_context_time_ns) / 1e9,
                 node.c_str(), component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", LevelName(level), component.c_str(),
                 message.c_str());
  }
}

}  // namespace log_internal
}  // namespace mal
