// Measurement primitives used by the benchmark harness: latency histograms
// with quantile/CDF extraction, and windowed throughput time series matching
// the "throughput over time" figures in the paper.
#ifndef MALACOLOGY_COMMON_STATS_H_
#define MALACOLOGY_COMMON_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mal {

// Stores raw samples; exact quantiles on demand. Experiments record
// 10^4-10^6 samples, well within memory for exactness.
class Histogram {
 public:
  void Add(double v);
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  // q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const;

  // Evenly-spaced CDF points: (value, cumulative probability).
  std::vector<std::pair<double, double>> Cdf(size_t points = 100) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void Sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Counts events into fixed-width time windows; yields ops/sec per window.
// This is what the paper's Figures 9 and 12 plot.
class ThroughputSeries {
 public:
  explicit ThroughputSeries(uint64_t window_ns) : window_ns_(window_ns) {}

  void Record(uint64_t time_ns, uint64_t count = 1);

  // Extends the series' time horizon without recording an event, so a stall
  // at the tail of a run shows up as explicit zero-rate windows instead of
  // the series silently ending at the last op. Benches call this with the
  // end-of-run clock before plotting.
  void ExtendTo(uint64_t time_ns);

  // (window start seconds, ops/sec) for every window from 0 through the
  // later of the last event and the ExtendTo() horizon; windows with no
  // events — stalls — are emitted with an explicit zero rate.
  std::vector<std::pair<double, double>> Series() const;

  uint64_t total() const { return total_; }

  // Mean ops/sec over [from_ns, to_ns).
  double MeanRate(uint64_t from_ns, uint64_t to_ns) const;

 private:
  uint64_t window_ns_;
  std::map<uint64_t, uint64_t> windows_;  // window index -> count
  uint64_t total_ = 0;
  uint64_t last_ns_ = 0;
};

// Fixed-point formatting helpers for the bench table printers.
std::string FormatDouble(double v, int precision = 2);

}  // namespace mal

#endif  // MALACOLOGY_COMMON_STATS_H_
