// Minimal leveled logger with per-component tags. Daemons log through this;
// the monitor's *centralized cluster log* (Section 5.1.3 of the paper) is a
// separate facility in src/mon that daemons write to over the network.
#ifndef MALACOLOGY_COMMON_LOG_H_
#define MALACOLOGY_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace mal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global log threshold; tests and benches default to kWarn to keep output
// focused on results.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {
void Emit(LogLevel level, const std::string& component, const std::string& message);

class LineLogger {
 public:
  LineLogger(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LineLogger() { Emit(level_, component_, stream_.str()); }

  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace mal

#define MAL_LOG(level, component) \
  ::mal::log_internal::LineLogger(::mal::LogLevel::level, component)

#define MAL_DEBUG(component) MAL_LOG(kDebug, component)
#define MAL_INFO(component) MAL_LOG(kInfo, component)
#define MAL_WARN(component) MAL_LOG(kWarn, component)
#define MAL_ERROR(component) MAL_LOG(kError, component)

#endif  // MALACOLOGY_COMMON_LOG_H_
