// Minimal leveled logger with per-component tags. Daemons log through this;
// the monitor's *centralized cluster log* (Section 5.1.3 of the paper) is a
// separate facility in src/mon that daemons write to over the network.
#ifndef MALACOLOGY_COMMON_LOG_H_
#define MALACOLOGY_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace mal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global log threshold; tests and benches default to kWarn to keep output
// focused on results.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Per-component threshold override, consulted before the global level. The
// key matches either the full component string ("osd.3") or its daemon-type
// prefix ("osd"), so one daemon — or one daemon class — can be debugged at
// kDebug without flooding. Pass the override level per component.
void SetComponentLogLevel(const std::string& component, LogLevel level);
void ClearComponentLogLevels();

// Structured sink: when enabled (programmatically, or via MAL_LOG_JSON=1 in
// the environment, checked on first emit) every line is a JSON object
// {"t_s", "node", "component", "level", "msg"} instead of plain text, so
// chaos/bench runs can be post-processed with standard tools. Plain text
// stays the default.
void SetJsonLogging(bool enabled);
bool JsonLoggingEnabled();

// Renders one log line in the structured format (exposed for tests).
std::string FormatJsonLogLine(LogLevel level, bool has_context, uint64_t time_ns,
                              const std::string& node, const std::string& component,
                              const std::string& message);

// Ambient context stamped onto every log line: the simulated clock and the
// node whose event is executing. The actor event loop sets this around each
// delivery/callback (see src/sim/actor.cc); lines emitted outside any actor
// context carry no stamp.
void SetLogContext(uint64_t time_ns, const std::string& node);
void ClearLogContext();

// Zero-copy variant for the event-loop hot path: stores a pointer to the
// caller's node string instead of copying it. The caller guarantees *node
// outlives the context (actors pass their cached name string). Setting an
// identical (time, node) pair is a no-op, so consecutive same-time events on
// one actor skip the swap entirely.
void SetLogContextRef(uint64_t time_ns, const std::string* node);

class ScopedLogContext {
 public:
  ScopedLogContext(uint64_t time_ns, const std::string& node) {
    SetLogContext(time_ns, node);
  }
  ~ScopedLogContext() { ClearLogContext(); }

  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;
};

class ScopedLogContextRef {
 public:
  ScopedLogContextRef(uint64_t time_ns, const std::string* node) {
    SetLogContextRef(time_ns, node);
  }
  ~ScopedLogContextRef() { ClearLogContext(); }

  ScopedLogContextRef(const ScopedLogContextRef&) = delete;
  ScopedLogContextRef& operator=(const ScopedLogContextRef&) = delete;
};

namespace log_internal {
void Emit(LogLevel level, const std::string& component, const std::string& message);

class LineLogger {
 public:
  LineLogger(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LineLogger() { Emit(level_, component_, stream_.str()); }

  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace mal

#define MAL_LOG(level, component) \
  ::mal::log_internal::LineLogger(::mal::LogLevel::level, component)

#define MAL_DEBUG(component) MAL_LOG(kDebug, component)
#define MAL_INFO(component) MAL_LOG(kInfo, component)
#define MAL_WARN(component) MAL_LOG(kWarn, component)
#define MAL_ERROR(component) MAL_LOG(kError, component)

#endif  // MALACOLOGY_COMMON_LOG_H_
