#include "src/common/rng.h"

#include <cassert>

namespace mal {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  for (auto& s : state_) {
    s = SplitMix64(&seed);
  }
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  if (n == 0) {
    return 0;
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);  // 2^-53
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 <= 0.0) {
    u1 = 1e-18;
  }
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double median, double sigma) {
  return median * std::exp(Normal(0.0, sigma));
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  double target = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) {
      return i;
    }
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next(Rng* rng) {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  double u = rng->UniformDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace mal
