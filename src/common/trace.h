// Dapper-style distributed tracing for the simulated cluster. A TraceContext
// (trace id, span id, parent span id) rides in every sim::Envelope and is
// captured/restored by the simulator's event loop, so causality follows the
// request across actors without any per-call-site plumbing: whoever schedules
// work while a context is ambient propagates that context into the work.
//
// Spans are recorded into a process-global TraceCollector (the simulator is
// single-threaded) with *simulator-clock* timestamps, so a span tree is an
// exact latency breakdown of one request: client append -> sequencer
// round-trip -> per-target OSD transactions. Tests and benches install a
// collector with trace::ScopedCollector; when none is installed, tracing is
// disabled and costs one branch per call site.
#ifndef MALACOLOGY_COMMON_TRACE_H_
#define MALACOLOGY_COMMON_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace mal::trace {

// Propagated half of a span: enough to parent remote work. trace_id == 0
// means "not traced" and propagates as a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// One timed unit of work. start/end are simulator-clock nanoseconds.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::string name;    // e.g. "zlog.AppendBatch", "rpc:mds.0:mds.client_request"
  std::string entity;  // node that ran the span, e.g. "client.0"
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  bool open = true;
  std::string status = "ok";

  double duration_us() const {
    return static_cast<double>(end_ns - start_ns) / 1e3;
  }
};

// Per-span-name aggregate across a set of finished spans.
struct HopStat {
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

class TraceCollector {
 public:
  // Opens a span. When `parent` is valid the new span joins its trace;
  // otherwise a fresh trace id is allocated (a root span).
  TraceContext StartSpan(const std::string& name, const std::string& entity,
                         uint64_t now_ns, const TraceContext& parent = {});
  void EndSpan(const TraceContext& ctx, uint64_t now_ns,
               const std::string& status = "ok");

  const std::vector<Span>& spans() const { return spans_; }
  const Span* Find(uint64_t span_id) const;
  std::vector<const Span*> TraceSpans(uint64_t trace_id) const;
  std::vector<const Span*> Roots(uint64_t trace_id) const;
  std::vector<const Span*> ChildrenOf(uint64_t span_id) const;

  // Human-readable indented span tree with per-span durations.
  std::string RenderTree(uint64_t trace_id) const;
  // Same rendering, rooted at one span (tail exemplars render exactly the
  // slow request's tree even if the trace has sibling roots).
  std::string RenderSubtree(uint64_t span_id) const;

  // Aggregate duration per span name, over every finished span in the
  // collector (trace_id == 0) or one trace. Benches turn this into the
  // "sequencer wait vs OSD commit vs client queueing" breakdown.
  std::map<std::string, HopStat> HopStats(uint64_t trace_id = 0) const;

  void Clear();

 private:
  uint64_t next_id_ = 1;
  std::vector<Span> spans_;
  std::unordered_map<uint64_t, size_t> index_;  // span_id -> spans_ slot
};

// -- Critical-path analysis ---------------------------------------------------
//
// A finished span tree is an exact record of where a request's wall-clock
// went; the critical path walks it backward from the root's end, always
// descending into the child whose completion gated progress, and attributes
// every nanosecond of the root's duration to the *self time* of some span on
// that path. Self time is classified by what the span represents:
//   queue      — root-span self (client-side batching/pipeline wait)
//   network    — rpc:* self (flight time + remote inbox wait)
//   seq_wait   — handle:* self on an mds.* entity (sequencer service)
//   osd_commit — handle:* self on an osd.* entity (storage commit)
//   mon        — handle:* self on a mon.* entity
//   other      — anything else (intermediate client-side spans)
// Segments telescope: their sum equals the root's duration exactly.

// Breakdown of one request (one root span).
struct CriticalPath {
  uint64_t total_ns = 0;
  std::map<std::string, uint64_t> segment_ns;
};

// Aggregate breakdown across requests sharing a root-span name (op type).
struct OpBreakdown {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  std::map<std::string, uint64_t> segment_ns;
};

// Segment classification of a span's self time (see table above).
const char* ClassifySpanSelf(const Span& span);

// Critical path of a single finished root span.
CriticalPath AnalyzeCriticalPath(const TraceCollector& collector, const Span& root);

// Per-op-type aggregation over every finished root span in the collector.
std::map<std::string, OpBreakdown> CriticalPathByOp(const TraceCollector& collector);

// The N slowest finished root spans, longest first (tail exemplars).
std::vector<const Span*> SlowestRoots(const TraceCollector& collector, size_t n);

// {"ops": {name: {count, total_us, segments}}, "exemplars": [...]} — the
// exemplars carry the rendered span tree of the slowest requests.
std::string CriticalPathJson(const TraceCollector& collector,
                             size_t max_exemplars = 3);

// Process-global collector. Null (the default) disables tracing.
TraceCollector* Collector();
void SetCollector(TraceCollector* collector);

// Ambient context of the currently-executing event. The simulator's event
// loop saves/restores it around every event so it follows scheduled work.
const TraceContext& Current();
void SetCurrent(const TraceContext& ctx);

class ScopedCollector {
 public:
  explicit ScopedCollector(TraceCollector* collector) : prev_(Collector()) {
    SetCollector(collector);
  }
  ~ScopedCollector() { SetCollector(prev_); }

  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  TraceCollector* prev_;
};

class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx) : prev_(Current()) {
    SetCurrent(ctx);
  }
  ~ScopedContext() { SetCurrent(prev_); }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext prev_;
};

// Message-type -> human name registry so rpc span names and MAL_LOG lines
// read "rpc:osd.1:osd.op" instead of "rpc:osd.1:msg.200". A central builtin
// table covers every wire enum in the tree (mon 1xx, osd 2xx, mds 3xx);
// modules may still override or extend it via RegisterMessageName / static
// MessageNameRegistrar instances. Unknown types render as "msg.<N>".
std::string MessageTypeName(uint32_t type);

void RegisterMessageName(uint16_t type, const char* name);
std::string MessageName(uint16_t type);  // delegates to MessageTypeName

struct MessageNameRegistrar {
  MessageNameRegistrar(uint16_t type, const char* name) {
    RegisterMessageName(type, name);
  }
};

}  // namespace mal::trace

#endif  // MALACOLOGY_COMMON_TRACE_H_
