#include "src/common/deadline.h"

namespace mal {
namespace {

// The simulator is single-threaded; a plain global mirrors trace.cc.
uint64_t g_deadline_ns = 0;

}  // namespace

uint64_t CurrentDeadline() { return g_deadline_ns; }
void SetCurrentDeadline(uint64_t deadline_ns) { g_deadline_ns = deadline_ns; }

}  // namespace mal
