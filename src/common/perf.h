// Ceph-style per-daemon performance counters. Every daemon owns a
// PerfRegistry (counters, gauges, bounded latency histograms) and
// periodically pushes an encoded PerfSnapshot to the monitor over the
// message bus (kMsgPerfReport); the monitor keeps the latest snapshot per
// entity and serves a cluster-wide JSON dump (kMsgGetPerfDump).
//
// Naming scheme (see docs/observability.md): dot-separated
// "<daemon>.<subsystem>.<metric>", e.g. "osd.op.write.count",
// "mds.cap.grants.quota", "zlog.epoch_refreshes". Histogram values are
// microseconds unless the name says otherwise.
#ifndef MALACOLOGY_COMMON_PERF_H_
#define MALACOLOGY_COMMON_PERF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/stats.h"

namespace mal {

// A latency histogram with a deterministic bound on retained samples.
// Daemon registries live for the whole run, so unbounded raw-sample
// histograms would grow with op count; this keeps every stride-th
// observation and doubles the stride when the buffer fills. No RNG —
// reservoir sampling would perturb the simulator's deterministic streams.
class BoundedHistogram {
 public:
  explicit BoundedHistogram(size_t cap = 1024) : cap_(cap < 2 ? 2 : cap) {}

  void Observe(double v);

  // True number of observations (>= samples().size() once decimating).
  uint64_t observed() const { return observed_; }
  const std::vector<double>& samples() const { return samples_; }

  // Exact running extremes over *every* observation, not just the retained
  // subsequence — decimation keeps an evenly-spaced subset, which is fine
  // for quantiles but silently loses the extremes that alert rules watch.
  double min() const { return min_; }
  double max() const { return max_; }

  // Fold in samples recorded elsewhere (monitor-side aggregation).
  void MergeSamples(const std::vector<double>& samples, uint64_t observed);

  // Quantiles/mean over the retained samples.
  Histogram ToHistogram() const;

 private:
  size_t cap_;
  uint64_t stride_ = 1;
  uint64_t observed_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> samples_;
};

// Wire-encodable copy of one registry at one instant.
struct PerfSnapshot {
  struct Hist {
    std::vector<double> samples;
    uint64_t observed = 0;
    double min = 0;  // exact running extremes (see BoundedHistogram)
    double max = 0;
  };

  std::string entity;  // e.g. "osd.2", "mon.0", "client.1"
  uint64_t time_ns = 0;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Hist> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  void Encode(Buffer* out) const;
  static Status Decode(const Buffer& in, PerfSnapshot* out);
};

// The per-daemon metric registry. Single-threaded (simulator), so no locks.
class PerfRegistry {
 public:
  void Inc(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void Set(const std::string& name, double value) { gauges_[name] = value; }
  void Observe(const std::string& name, double value) {
    histograms_[name].Observe(value);
  }

  uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }
  const BoundedHistogram* histogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  PerfSnapshot Snapshot(const std::string& entity, uint64_t time_ns) const;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, BoundedHistogram> histograms_;
};

// Sums counters and merges histogram samples across snapshots. Gauges are
// point-in-time per entity and are intentionally dropped from the aggregate
// (a sum of map epochs means nothing); read them per entity instead.
PerfSnapshot AggregateSnapshots(const std::vector<PerfSnapshot>& snapshots);

// Options for PerfDumpToJson beyond the bare snapshot list.
struct PerfDumpOptions {
  // Mark an entity `"stale": true` when its last report is older than this
  // (a crashed-and-not-restarted daemon's snapshot otherwise lingers in the
  // dump forever looking healthy). 0 disables the flag.
  uint64_t stale_after_ns = 0;
  // Extra top-level sections appended after "cluster": name -> pre-rendered
  // JSON value (the monitor injects telemetry/health/profile/trace sections
  // it renders itself).
  std::vector<std::pair<std::string, std::string>> sections;
};

// Renders the monitor's view — one section per entity plus a "cluster"
// aggregate — as JSON. Histograms are summarized (count/mean/p50/p90/p99/max,
// with min/max exact). Each entity carries `report_age_us` (now - snapshot
// time) so consumers can judge freshness.
std::string PerfDumpToJson(const std::vector<PerfSnapshot>& snapshots,
                           uint64_t now_ns);
std::string PerfDumpToJson(const std::vector<PerfSnapshot>& snapshots,
                           uint64_t now_ns, const PerfDumpOptions& options);

}  // namespace mal

#endif  // MALACOLOGY_COMMON_PERF_H_
