// Byte buffer and wire-format encoding, modeled on Ceph's bufferlist and
// encode/decode framework. Every message that crosses the simulated network
// and every object payload persisted by the object store round-trips through
// this encoding, so the whole stack continuously exercises it.
//
// Wire format:
//   - fixed-width integers: little-endian
//   - varuint: LEB128
//   - string/bytes: varuint length + raw bytes
//   - containers: varuint count + elements
#ifndef MALACOLOGY_COMMON_BUFFER_H_
#define MALACOLOGY_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/status.h"

namespace mal {

// An owned, contiguous byte buffer. Contiguity keeps the simulator fast and
// the decoding logic simple; a production system would use iovec chains.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::string data) : data_(std::move(data)) {}
  static Buffer FromString(std::string s) { return Buffer(std::move(s)); }

  const char* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }

  void Append(const void* p, size_t n) { data_.append(static_cast<const char*>(p), n); }
  void Append(const Buffer& other) { data_.append(other.data_); }
  void Append(std::string_view sv) { data_.append(sv); }

  // Zero-fill or truncate to exactly n bytes.
  void Resize(size_t n) { data_.resize(n, '\0'); }

  // Pre-allocate capacity for at least n total bytes. Batched payloads
  // (multi-entry transactions, large encoded requests) call this once up
  // front instead of growing through repeated reallocation.
  void Reserve(size_t n) { data_.reserve(n); }
  size_t capacity() const { return data_.capacity(); }

  // Overwrite [offset, offset+n) growing the buffer (zero-padded) if needed.
  void Write(size_t offset, const void* p, size_t n);

  // Copy out [offset, offset+n), clamped to the buffer end.
  Buffer Read(size_t offset, size_t n) const;

  std::string ToString() const { return data_; }
  std::string_view View() const { return data_; }

  bool operator==(const Buffer& other) const { return data_ == other.data_; }

 private:
  std::string data_;
};

// Appends wire-encoded values to a Buffer.
class Encoder {
 public:
  // Upper bound on the encoded size of a varuint (LEB128 of a u64).
  static constexpr size_t kMaxVarU64Bytes = 10;

  explicit Encoder(Buffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->Append(&v, 1); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutVarU64(uint64_t v);

  void PutString(std::string_view s) {
    out_->Reserve(out_->size() + kMaxVarU64Bytes + s.size());
    PutVarU64(s.size());
    out_->Append(s);
  }
  void PutBuffer(const Buffer& b) {
    out_->Reserve(out_->size() + kMaxVarU64Bytes + b.size());
    PutVarU64(b.size());
    out_->Append(b);
  }

  template <typename T>
  void PutVector(const std::vector<T>& v, void (Encoder::*put)(T)) {
    PutVarU64(v.size());
    for (const T& e : v) {
      (this->*put)(e);
    }
  }

 private:
  template <typename T>
  void PutFixed(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_->Append(bytes, sizeof(T));
  }

  Buffer* out_;
};

// Reads wire-encoded values from a Buffer. All getters are checked: reading
// past the end flips the decoder into a failed state, and subsequent reads
// return zero values. Callers check `ok()` once at the end.
class Decoder {
 public:
  explicit Decoder(const Buffer& in) : data_(in.View()) {}
  explicit Decoder(std::string_view in) : data_(in) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t GetU8();
  uint16_t GetU16() { return static_cast<uint16_t>(GetFixed(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetFixed(4)); }
  uint64_t GetU64() { return GetFixed(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetFixed(8)); }
  double GetF64() {
    uint64_t bits = GetFixed(8);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool GetBool() { return GetU8() != 0; }

  uint64_t GetVarU64();

  std::string GetString();
  Buffer GetBuffer() { return Buffer(GetString()); }

  Status Finish() const {
    if (!ok_) {
      return Status::Corruption("decode past end of buffer");
    }
    return Status::Ok();
  }

 private:
  uint64_t GetFixed(size_t width);
  void Fail() { ok_ = false; }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Convenience: encode a map<string, string>.
void EncodeStringMap(Encoder* enc, const std::map<std::string, std::string>& m);
std::map<std::string, std::string> DecodeStringMap(Decoder* dec);

}  // namespace mal

#endif  // MALACOLOGY_COMMON_BUFFER_H_
