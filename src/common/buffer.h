// Byte buffer and wire-format encoding, modeled on Ceph's bufferlist and
// encode/decode framework. Every message that crosses the simulated network
// and every object payload persisted by the object store round-trips through
// this encoding, so the whole stack continuously exercises it.
//
// Buffer is a refcounted copy-on-write slice (shared storage + offset/length
// view), like Ceph's bufferptr over a raw_buffer. Copying a Buffer, slicing
// one with Read(), and handing payloads across the simulated wire are all
// O(1) refcount bumps; mutation detaches a private copy only when the bytes
// are actually shared. Two invariants make aliasing safe:
//   1. Bytes inside any live view are never overwritten through a different
//      Buffer — mutation of shared bytes detaches first.
//   2. Shared storage is never reallocated: appends extend shared storage in
//      place only while spare capacity lasts (new bytes land past every
//      existing view), so raw pointers from data()/View() stay valid until
//      the Buffer they came from is itself mutated.
//
// Wire format:
//   - fixed-width integers: little-endian
//   - varuint: LEB128
//   - string/bytes: varuint length + raw bytes
//   - containers: varuint count + elements
#ifndef MALACOLOGY_COMMON_BUFFER_H_
#define MALACOLOGY_COMMON_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "src/common/status.h"

namespace mal {

// A refcounted, contiguous byte buffer with copy-on-write sharing.
// Contiguity keeps the simulator fast and the decoding logic simple; a
// production system would use iovec chains.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::string data)
      : storage_(std::make_shared<std::string>(std::move(data))),
        length_(storage_->size()) {}
  static Buffer FromString(std::string s) { return Buffer(std::move(s)); }

  const char* data() const { return storage_ ? storage_->data() + offset_ : ""; }
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  void clear() {
    storage_.reset();
    offset_ = 0;
    length_ = 0;
  }

  void Append(const void* p, size_t n);
  void Append(const Buffer& other);
  void Append(std::string_view sv) { Append(sv.data(), sv.size()); }

  // Zero-fill or truncate to exactly n bytes. Truncating a shared buffer is
  // O(1): the view shrinks, the storage is untouched.
  void Resize(size_t n);

  // Pre-allocate capacity for at least n total bytes. Batched payloads
  // (multi-entry transactions, large encoded requests) call this once up
  // front instead of growing through repeated reallocation.
  void Reserve(size_t n);
  size_t capacity() const { return storage_ ? storage_->capacity() - offset_ : 0; }

  // Overwrite [offset, offset+n) growing the buffer (zero-padded) if needed.
  void Write(size_t offset, const void* p, size_t n);

  // Alias [offset, offset+n), clamped to the buffer end: O(1), shares
  // storage. Mutating either buffer afterwards copies-on-write.
  Buffer Read(size_t offset, size_t n) const;

  std::string ToString() const { return std::string(View()); }
  std::string_view View() const {
    return storage_ ? std::string_view(storage_->data() + offset_, length_)
                    : std::string_view();
  }

  bool operator==(const Buffer& other) const { return View() == other.View(); }

  // True if both buffers alias the same underlying storage (regardless of
  // the slice each views). Exposed for COW-semantics tests and asserts.
  bool SharesStorageWith(const Buffer& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

 private:
  Buffer(std::shared_ptr<std::string> storage, size_t offset, size_t length)
      : storage_(std::move(storage)), offset_(offset), length_(length) {}

  bool UniqueFullSpan() const {
    return storage_ && storage_.use_count() == 1 && offset_ == 0 &&
           length_ == storage_->size();
  }
  bool AtTail() const { return storage_ && offset_ + length_ == storage_->size(); }

  // Replaces shared storage with a private copy of the viewed slice,
  // reserving `reserve_total` bytes (clamped up to the current length).
  // Returns the private string; afterwards the buffer is unique+full-span.
  std::string* Detach(size_t reserve_total);

  std::shared_ptr<std::string> storage_;  // null = empty buffer
  size_t offset_ = 0;
  size_t length_ = 0;
};

// Appends wire-encoded values to a Buffer.
class Encoder {
 public:
  // Upper bound on the encoded size of a varuint (LEB128 of a u64).
  static constexpr size_t kMaxVarU64Bytes = 10;

  explicit Encoder(Buffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->Append(&v, 1); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutF64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed(bits);
  }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutVarU64(uint64_t v);

  void PutString(std::string_view s) {
    out_->Reserve(out_->size() + kMaxVarU64Bytes + s.size());
    PutVarU64(s.size());
    out_->Append(s);
  }
  void PutBuffer(const Buffer& b) {
    out_->Reserve(out_->size() + kMaxVarU64Bytes + b.size());
    PutVarU64(b.size());
    out_->Append(b);
  }

  template <typename T>
  void PutVector(const std::vector<T>& v, void (Encoder::*put)(T)) {
    PutVarU64(v.size());
    for (const T& e : v) {
      (this->*put)(e);
    }
  }

 private:
  template <typename T>
  void PutFixed(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    out_->Append(bytes, sizeof(T));
  }

  Buffer* out_;
};

// Reads wire-encoded values from a Buffer. All getters are checked: reading
// past the end flips the decoder into a failed state, and subsequent reads
// return zero values. Callers check `ok()` once at the end.
//
// A decoder constructed from a Buffer shares its storage (keeping it alive
// for the decoder's lifetime), and GetBuffer() returns an aliased O(1)
// slice of the input instead of a copy. A decoder over a bare string_view
// cannot alias and falls back to copying.
class Decoder {
 public:
  explicit Decoder(const Buffer& in) : buffer_(in), data_(buffer_.View()) {}
  explicit Decoder(std::string_view in) : data_(in) {}

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }

  uint8_t GetU8();
  uint16_t GetU16() { return static_cast<uint16_t>(GetFixed(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetFixed(4)); }
  uint64_t GetU64() { return GetFixed(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetFixed(8)); }
  double GetF64() {
    uint64_t bits = GetFixed(8);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool GetBool() { return GetU8() != 0; }

  uint64_t GetVarU64();

  std::string GetString();
  Buffer GetBuffer();

  Status Finish() const {
    if (!ok_) {
      return Status::Corruption("decode past end of buffer");
    }
    return Status::Ok();
  }

 private:
  uint64_t GetFixed(size_t width);
  void Fail() { ok_ = false; }

  Buffer buffer_;  // shares the input's storage; empty when view-constructed
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Convenience: encode a map<string, string>.
void EncodeStringMap(Encoder* enc, const std::map<std::string, std::string>& m);
std::map<std::string, std::string> DecodeStringMap(Decoder* dec);

}  // namespace mal

#endif  // MALACOLOGY_COMMON_BUFFER_H_
