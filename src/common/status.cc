#include "src/common/status.h"

namespace mal {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NOT_FOUND";
    case Code::kAlreadyExists:
      return "ALREADY_EXISTS";
    case Code::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Code::kPermissionDenied:
      return "PERMISSION_DENIED";
    case Code::kStaleEpoch:
      return "STALE_EPOCH";
    case Code::kReadOnly:
      return "READ_ONLY";
    case Code::kNotWritten:
      return "NOT_WRITTEN";
    case Code::kTimedOut:
      return "TIMED_OUT";
    case Code::kUnavailable:
      return "UNAVAILABLE";
    case Code::kCorruption:
      return "CORRUPTION";
    case Code::kAborted:
      return "ABORTED";
    case Code::kOutOfRange:
      return "OUT_OF_RANGE";
    case Code::kUnimplemented:
      return "UNIMPLEMENTED";
    case Code::kInternal:
      return "INTERNAL";
    case Code::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case Code::kBusy:
      return "BUSY";
    case Code::kWrongRank:
      return "WRONG_RANK";
    case Code::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

}  // namespace mal
