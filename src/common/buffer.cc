#include "src/common/buffer.h"

#include <algorithm>

namespace mal {

void Buffer::Write(size_t offset, const void* p, size_t n) {
  if (offset + n > data_.size()) {
    data_.resize(offset + n, '\0');
  }
  std::memcpy(data_.data() + offset, p, n);
}

Buffer Buffer::Read(size_t offset, size_t n) const {
  if (offset >= data_.size()) {
    return Buffer();
  }
  size_t take = std::min(n, data_.size() - offset);
  return Buffer(data_.substr(offset, take));
}

void Encoder::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

uint8_t Decoder::GetU8() {
  if (pos_ >= data_.size()) {
    Fail();
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint64_t Decoder::GetFixed(size_t width) {
  if (pos_ + width > data_.size()) {
    Fail();
    pos_ = data_.size();
    return 0;
  }
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += width;
  return v;
}

uint64_t Decoder::GetVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) {
      Fail();
      return 0;
    }
    uint8_t byte = GetU8();
    if (!ok_) {
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

std::string Decoder::GetString() {
  uint64_t n = GetVarU64();
  if (!ok_ || pos_ + n > data_.size()) {
    Fail();
    return std::string();
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

void EncodeStringMap(Encoder* enc, const std::map<std::string, std::string>& m) {
  enc->PutVarU64(m.size());
  for (const auto& [k, v] : m) {
    enc->PutString(k);
    enc->PutString(v);
  }
}

std::map<std::string, std::string> DecodeStringMap(Decoder* dec) {
  std::map<std::string, std::string> m;
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    std::string k = dec->GetString();
    std::string v = dec->GetString();
    m.emplace(std::move(k), std::move(v));
  }
  return m;
}

}  // namespace mal
