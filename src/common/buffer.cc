#include "src/common/buffer.h"

#include <algorithm>

namespace mal {

std::string* Buffer::Detach(size_t reserve_total) {
  auto fresh = std::make_shared<std::string>();
  fresh->reserve(std::max(reserve_total, length_));
  if (length_ > 0) {
    fresh->assign(storage_->data() + offset_, length_);
  }
  storage_ = std::move(fresh);
  offset_ = 0;
  length_ = storage_->size();
  return storage_.get();
}

void Buffer::Append(const void* p, size_t n) {
  if (n == 0) {
    return;
  }
  if (storage_ == nullptr) {
    storage_ = std::make_shared<std::string>();
    storage_->reserve(n);
  } else if (UniqueFullSpan()) {
    // Sole owner of the whole storage: append in place, reallocation is
    // allowed because no other view can be dangled by it.
  } else if (AtTail() && storage_->size() + n <= storage_->capacity()) {
    // Shared storage, but this view ends at the storage tail and there is
    // spare capacity: the new bytes land past every existing view without
    // reallocating, so aliases (and decoders) stay valid. This is what
    // keeps repeated appends to a snapshotted/shipped buffer O(1) amortized.
  } else {
    // Shared and either not at the tail or out of capacity: take a private
    // copy with geometric growth so append chains stay amortized O(1).
    Detach(std::max(length_ + n, 2 * length_));
  }
  storage_->append(static_cast<const char*>(p), n);
  length_ += n;
}

void Buffer::Append(const Buffer& other) {
  if (other.length_ == 0) {
    return;
  }
  if (storage_ == nullptr) {
    *this = other;  // O(1): alias the source; COW protects both sides
    return;
  }
  if (other.storage_ == storage_) {
    // Self-alias: materialize the source first so appending (which may
    // extend our shared storage in place) cannot shift it under us.
    std::string tmp(other.View());
    Append(tmp.data(), tmp.size());
    return;
  }
  Append(other.data(), other.length_);
}

void Buffer::Resize(size_t n) {
  if (n == length_) {
    return;
  }
  if (n < length_) {
    length_ = n;  // O(1) truncate: the view shrinks, storage is untouched
    return;
  }
  if (storage_ == nullptr) {
    storage_ = std::make_shared<std::string>(n, '\0');
    length_ = n;
    return;
  }
  size_t extra = n - length_;
  if (UniqueFullSpan()) {
    storage_->resize(n, '\0');
  } else if (AtTail() && storage_->size() + extra <= storage_->capacity()) {
    storage_->resize(storage_->size() + extra, '\0');
  } else {
    Detach(std::max(n, 2 * length_));
    storage_->resize(n, '\0');
  }
  length_ = n;
}

void Buffer::Reserve(size_t n) {
  if (n <= length_) {
    return;
  }
  if (storage_ == nullptr) {
    storage_ = std::make_shared<std::string>();
    storage_->reserve(n);
    return;
  }
  if (UniqueFullSpan()) {
    storage_->reserve(n);
    return;
  }
  if (AtTail() && storage_->size() + (n - length_) <= storage_->capacity()) {
    return;  // future appends up to n total bytes fit in place
  }
  Detach(n);
}

void Buffer::Write(size_t offset, const void* p, size_t n) {
  size_t end = offset + n;
  if (!UniqueFullSpan()) {
    // Overwrites bytes other views may alias: copy-on-write.
    Detach(std::max(end, length_));
  }
  if (end > storage_->size()) {
    storage_->resize(end, '\0');
  }
  if (n > 0) {
    std::memcpy(storage_->data() + offset, p, n);
  }
  length_ = storage_->size();
}

Buffer Buffer::Read(size_t offset, size_t n) const {
  if (offset >= length_) {
    return Buffer();
  }
  size_t take = std::min(n, length_ - offset);
  return Buffer(storage_, offset_ + offset, take);
}

void Encoder::PutVarU64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

uint8_t Decoder::GetU8() {
  if (pos_ >= data_.size()) {
    Fail();
    return 0;
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

uint64_t Decoder::GetFixed(size_t width) {
  if (pos_ + width > data_.size()) {
    Fail();
    pos_ = data_.size();
    return 0;
  }
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += width;
  return v;
}

uint64_t Decoder::GetVarU64() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) {
      Fail();
      return 0;
    }
    uint8_t byte = GetU8();
    if (!ok_) {
      return 0;
    }
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

std::string Decoder::GetString() {
  uint64_t n = GetVarU64();
  if (!ok_ || pos_ + n > data_.size()) {
    Fail();
    return std::string();
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Buffer Decoder::GetBuffer() {
  uint64_t n = GetVarU64();
  if (!ok_ || pos_ + n > data_.size()) {
    Fail();
    return Buffer();
  }
  Buffer out;
  if (n > 0) {
    std::string_view backing = buffer_.View();
    if (backing.data() == data_.data() && backing.size() == data_.size()) {
      // Buffer-backed decode: alias the input instead of copying. The slice
      // keeps the whole arena alive, which is the memory-for-speed tradeoff
      // documented in docs/data_plane.md.
      out = buffer_.Read(pos_, static_cast<size_t>(n));
    } else {
      // View-backed decode: nothing refcounted to alias, copy out.
      out = Buffer(std::string(data_.substr(pos_, n)));
    }
  }
  pos_ += n;
  return out;
}

void EncodeStringMap(Encoder* enc, const std::map<std::string, std::string>& m) {
  enc->PutVarU64(m.size());
  for (const auto& [k, v] : m) {
    enc->PutString(k);
    enc->PutString(v);
  }
}

std::map<std::string, std::string> DecodeStringMap(Decoder* dec) {
  std::map<std::string, std::string> m;
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    std::string k = dec->GetString();
    std::string v = dec->GetString();
    m.emplace(std::move(k), std::move(v));
  }
  return m;
}

}  // namespace mal
