// Error handling primitives used across the Malacology codebase.
//
// We follow the storage-systems convention of returning rich error values
// rather than throwing: daemons must degrade gracefully on bad input from
// the network, and simulation code runs millions of operations where
// exception overhead and non-local control flow hurt auditability.
#ifndef MALACOLOGY_COMMON_STATUS_H_
#define MALACOLOGY_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace mal {

// Error taxonomy. Mirrors the error classes a Ceph-like stack surfaces:
// not-found/exists from the object store, stale-epoch from the CORFU
// protocol, permission/invalid from interface plumbing, timeouts from the
// simulated network, and aborts from transactional class execution.
enum class Code {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kStaleEpoch,    // request tagged with an out-of-date epoch (CORFU seal)
  kReadOnly,      // write-once position already written (CORFU)
  kNotWritten,    // read of an unwritten log position
  kTimedOut,
  kUnavailable,   // daemon down or resource revoked
  kCorruption,
  kAborted,       // transaction aborted by class logic
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,  // the request's end-to-end deadline budget ran out
  kBusy,              // server shed the request at admission (bounded inbox full)
  kWrongRank,         // sequencer op sent to a non-owner MDS rank; message
                      // carries "wrong_rank:<owner>:<map_epoch>"
  kDataLoss,          // unrecoverable: more shards lost than the erasure code
                      // tolerates (distinct from transient kUnavailable)
};

const char* CodeName(Code code);

// A cheap, copyable status value. `ok()` statuses carry no allocation.
class Status {
 public:
  Status() : code_(Code::kOk) {}
  Status(Code code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "not found") { return {Code::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "already exists") {
    return {Code::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m = "invalid argument") {
    return {Code::kInvalidArgument, std::move(m)};
  }
  static Status PermissionDenied(std::string m = "permission denied") {
    return {Code::kPermissionDenied, std::move(m)};
  }
  static Status StaleEpoch(std::string m = "stale epoch") {
    return {Code::kStaleEpoch, std::move(m)};
  }
  static Status ReadOnly(std::string m = "position already written") {
    return {Code::kReadOnly, std::move(m)};
  }
  static Status NotWritten(std::string m = "position not written") {
    return {Code::kNotWritten, std::move(m)};
  }
  static Status TimedOut(std::string m = "timed out") { return {Code::kTimedOut, std::move(m)}; }
  static Status Unavailable(std::string m = "unavailable") {
    return {Code::kUnavailable, std::move(m)};
  }
  static Status Corruption(std::string m = "corruption") {
    return {Code::kCorruption, std::move(m)};
  }
  static Status Aborted(std::string m = "aborted") { return {Code::kAborted, std::move(m)}; }
  static Status OutOfRange(std::string m = "out of range") {
    return {Code::kOutOfRange, std::move(m)};
  }
  static Status Unimplemented(std::string m = "unimplemented") {
    return {Code::kUnimplemented, std::move(m)};
  }
  static Status Internal(std::string m = "internal error") {
    return {Code::kInternal, std::move(m)};
  }
  static Status DeadlineExceeded(std::string m = "deadline exceeded") {
    return {Code::kDeadlineExceeded, std::move(m)};
  }
  static Status Busy(std::string m = "server busy") { return {Code::kBusy, std::move(m)}; }
  static Status WrongRank(std::string m = "wrong rank") {
    return {Code::kWrongRank, std::move(m)};
  }
  static Status DataLoss(std::string m = "data loss") {
    return {Code::kDataLoss, std::move(m)};
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Code code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

// Result<T>: either a value or an error Status. Accessing the value of an
// error result is a programming bug and asserts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}      // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(value_) : fallback;
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace mal

#endif  // MALACOLOGY_COMMON_STATUS_H_
