// Ambient request deadline, the time-budget analogue of trace::Current().
//
// A deadline is an *absolute* simulator-clock nanosecond timestamp (0 means
// "no deadline"). Like the trace context, it is captured by the simulator's
// event loop when work is scheduled and restored while that work runs, so a
// deadline set at the edge (e.g. a cephfs operation) follows the request
// through every hop — RPC handlers, CPU reservations, replication fan-out —
// without per-call-site plumbing. Actor::SendRequest stamps it into the
// envelope and clamps per-hop timeouts to the remaining budget; servers drop
// already-expired work before reserving CPU.
//
// This lives in common/ (not svc/) because the simulator core must be able
// to capture/restore it without depending on the service layer.
#ifndef MALACOLOGY_COMMON_DEADLINE_H_
#define MALACOLOGY_COMMON_DEADLINE_H_

#include <cstdint>

namespace mal {

// Ambient deadline of the currently-executing event, absolute sim-ns.
// 0 = no deadline.
uint64_t CurrentDeadline();
void SetCurrentDeadline(uint64_t deadline_ns);

// RAII save/set/restore, mirroring trace::ScopedContext.
class ScopedDeadline {
 public:
  explicit ScopedDeadline(uint64_t deadline_ns) : prev_(CurrentDeadline()) {
    SetCurrentDeadline(deadline_ns);
  }
  ~ScopedDeadline() { SetCurrentDeadline(prev_); }

  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;

 private:
  uint64_t prev_;
};

}  // namespace mal

#endif  // MALACOLOGY_COMMON_DEADLINE_H_
