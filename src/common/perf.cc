#include "src/common/perf.h"

#include <algorithm>
#include <sstream>

namespace mal {

void BoundedHistogram::Observe(double v) {
  min_ = observed_ == 0 ? v : std::min(min_, v);
  max_ = observed_ == 0 ? v : std::max(max_, v);
  ++observed_;
  if ((observed_ - 1) % stride_ != 0) {
    return;
  }
  if (samples_.size() >= cap_) {
    // Drop every other retained sample and keep only every (2*stride)-th
    // observation from here on. Deterministic, and the survivors remain an
    // evenly-spaced subsequence of the observation stream.
    std::vector<double> kept;
    kept.reserve(samples_.size() / 2 + 1);
    for (size_t i = 0; i < samples_.size(); i += 2) {
      kept.push_back(samples_[i]);
    }
    samples_ = std::move(kept);
    stride_ *= 2;
    if ((observed_ - 1) % stride_ != 0) {
      return;
    }
  }
  samples_.push_back(v);
}

void BoundedHistogram::MergeSamples(const std::vector<double>& samples,
                                    uint64_t observed) {
  bool empty_before = observed_ == 0;
  for (double v : samples) {
    min_ = empty_before ? v : std::min(min_, v);
    max_ = empty_before ? v : std::max(max_, v);
    empty_before = false;
  }
  observed_ += observed;
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  // The merged buffer may exceed cap_; that is fine for monitor-side
  // aggregates, which are rebuilt from scratch on every dump.
}

Histogram BoundedHistogram::ToHistogram() const {
  Histogram h;
  for (double v : samples_) {
    h.Add(v);
  }
  return h;
}

PerfSnapshot PerfRegistry::Snapshot(const std::string& entity,
                                    uint64_t time_ns) const {
  PerfSnapshot snap;
  snap.entity = entity;
  snap.time_ns = time_ns;
  snap.counters = counters_;
  snap.gauges = gauges_;
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] =
        PerfSnapshot::Hist{hist.samples(), hist.observed(), hist.min(), hist.max()};
  }
  return snap;
}

void PerfSnapshot::Encode(Buffer* out) const {
  Encoder enc(out);
  enc.PutString(entity);
  enc.PutU64(time_ns);
  enc.PutVarU64(counters.size());
  for (const auto& [name, value] : counters) {
    enc.PutString(name);
    enc.PutU64(value);
  }
  enc.PutVarU64(gauges.size());
  for (const auto& [name, value] : gauges) {
    enc.PutString(name);
    enc.PutF64(value);
  }
  enc.PutVarU64(histograms.size());
  for (const auto& [name, hist] : histograms) {
    enc.PutString(name);
    enc.PutU64(hist.observed);
    enc.PutF64(hist.min);
    enc.PutF64(hist.max);
    enc.PutVarU64(hist.samples.size());
    for (double v : hist.samples) {
      enc.PutF64(v);
    }
  }
}

Status PerfSnapshot::Decode(const Buffer& in, PerfSnapshot* out) {
  Decoder dec(in);
  out->entity = dec.GetString();
  out->time_ns = dec.GetU64();
  uint64_t n = dec.GetVarU64();
  for (uint64_t i = 0; i < n && dec.ok(); ++i) {
    std::string name = dec.GetString();
    out->counters[name] = dec.GetU64();
  }
  n = dec.GetVarU64();
  for (uint64_t i = 0; i < n && dec.ok(); ++i) {
    std::string name = dec.GetString();
    out->gauges[name] = dec.GetF64();
  }
  n = dec.GetVarU64();
  for (uint64_t i = 0; i < n && dec.ok(); ++i) {
    std::string name = dec.GetString();
    Hist hist;
    hist.observed = dec.GetU64();
    hist.min = dec.GetF64();
    hist.max = dec.GetF64();
    uint64_t samples = dec.GetVarU64();
    hist.samples.reserve(dec.ok() ? samples : 0);
    for (uint64_t j = 0; j < samples && dec.ok(); ++j) {
      hist.samples.push_back(dec.GetF64());
    }
    out->histograms[name] = std::move(hist);
  }
  return dec.Finish();
}

PerfSnapshot AggregateSnapshots(const std::vector<PerfSnapshot>& snapshots) {
  PerfSnapshot out;
  out.entity = "cluster";
  for (const PerfSnapshot& snap : snapshots) {
    out.time_ns = std::max(out.time_ns, snap.time_ns);
    for (const auto& [name, value] : snap.counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, hist] : snap.histograms) {
      PerfSnapshot::Hist& agg = out.histograms[name];
      if (hist.observed > 0) {
        agg.min = agg.observed == 0 ? hist.min : std::min(agg.min, hist.min);
        agg.max = agg.observed == 0 ? hist.max : std::max(agg.max, hist.max);
      }
      agg.observed += hist.observed;
      agg.samples.insert(agg.samples.end(), hist.samples.begin(),
                         hist.samples.end());
    }
  }
  return out;
}

namespace {

void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      default:
        *out << c;
    }
  }
  *out << '"';
}

void AppendSnapshotJson(std::ostringstream* out, const PerfSnapshot& snap,
                        int indent, uint64_t now_ns, uint64_t stale_after_ns) {
  std::string pad(indent, ' ');
  std::string pad2(indent + 2, ' ');
  uint64_t age_ns = now_ns > snap.time_ns ? now_ns - snap.time_ns : 0;
  *out << pad << "{\n";
  *out << pad2 << "\"entity\": ";
  AppendJsonString(out, snap.entity);
  *out << ",\n" << pad2 << "\"time_ns\": " << snap.time_ns << ",\n";
  *out << pad2 << "\"report_age_us\": " << age_ns / 1000 << ",\n";
  if (stale_after_ns > 0 && age_ns > stale_after_ns) {
    *out << pad2 << "\"stale\": true,\n";
  }
  *out << pad2 << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    *out << (first ? "" : ",") << "\n" << pad2 << "  ";
    AppendJsonString(out, name);
    *out << ": " << value;
    first = false;
  }
  *out << (first ? "" : "\n" + pad2) << "},\n";
  *out << pad2 << "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    *out << (first ? "" : ",") << "\n" << pad2 << "  ";
    AppendJsonString(out, name);
    *out << ": " << FormatDouble(value, 3);
    first = false;
  }
  *out << (first ? "" : "\n" + pad2) << "},\n";
  *out << pad2 << "\"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    Histogram h;
    for (double v : hist.samples) {
      h.Add(v);
    }
    *out << (first ? "" : ",") << "\n" << pad2 << "  ";
    AppendJsonString(out, name);
    *out << ": {\"count\": " << hist.observed
         << ", \"mean\": " << FormatDouble(h.mean(), 3)
         << ", \"p50\": " << FormatDouble(h.Quantile(0.5), 3)
         << ", \"p90\": " << FormatDouble(h.Quantile(0.9), 3)
         << ", \"p99\": " << FormatDouble(h.Quantile(0.99), 3)
         << ", \"min\": " << FormatDouble(hist.min, 3)
         << ", \"max\": " << FormatDouble(hist.max, 3) << "}";
    first = false;
  }
  *out << (first ? "" : "\n" + pad2) << "}\n";
  *out << pad << "}";
}

}  // namespace

std::string PerfDumpToJson(const std::vector<PerfSnapshot>& snapshots,
                           uint64_t now_ns) {
  return PerfDumpToJson(snapshots, now_ns, PerfDumpOptions{});
}

std::string PerfDumpToJson(const std::vector<PerfSnapshot>& snapshots,
                           uint64_t now_ns, const PerfDumpOptions& options) {
  std::ostringstream out;
  out << "{\n  \"time_ns\": " << now_ns << ",\n  \"entities\": [\n";
  for (size_t i = 0; i < snapshots.size(); ++i) {
    AppendSnapshotJson(&out, snapshots[i], 4, now_ns, options.stale_after_ns);
    out << (i + 1 < snapshots.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"cluster\": \n";
  AppendSnapshotJson(&out, AggregateSnapshots(snapshots), 2, now_ns, 0);
  for (const auto& [name, json] : options.sections) {
    out << ",\n  ";
    AppendJsonString(&out, name);
    out << ": " << json;
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace mal
