#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace mal {

void Histogram::Add(double v) {
  samples_.push_back(v);
  sorted_ = samples_.size() <= 1;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = samples_.size() <= 1;
}

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::min() const {
  if (samples_.empty()) {
    return 0;
  }
  Sort();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) {
    return 0;
  }
  Sort();
  return samples_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) {
    return 0;
  }
  double sum = 0;
  for (double v : samples_) {
    sum += v;
  }
  return sum / static_cast<double>(samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) {
    return 0;
  }
  double m = mean();
  double sq = 0;
  for (double v : samples_) {
    sq += (v - m) * (v - m);
  }
  return std::sqrt(sq / static_cast<double>(samples_.size() - 1));
}

double Histogram::Quantile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  Sort();
  q = std::clamp(q, 0.0, 1.0);
  double idx = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> Histogram::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  Sort();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double p = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(Quantile(p), p);
  }
  return out;
}

void ThroughputSeries::Record(uint64_t time_ns, uint64_t count) {
  windows_[time_ns / window_ns_] += count;
  total_ += count;
  last_ns_ = std::max(last_ns_, time_ns);
}

void ThroughputSeries::ExtendTo(uint64_t time_ns) {
  last_ns_ = std::max(last_ns_, time_ns);
}

std::vector<std::pair<double, double>> ThroughputSeries::Series() const {
  std::vector<std::pair<double, double>> out;
  if (windows_.empty() && last_ns_ == 0) {
    return out;
  }
  uint64_t last_window = last_ns_ / window_ns_;
  if (!windows_.empty()) {
    last_window = std::max(last_window, windows_.rbegin()->first);
  }
  double window_sec = static_cast<double>(window_ns_) / 1e9;
  for (uint64_t w = 0; w <= last_window; ++w) {
    auto it = windows_.find(w);
    uint64_t count = it == windows_.end() ? 0 : it->second;
    out.emplace_back(static_cast<double>(w) * window_sec,
                     static_cast<double>(count) / window_sec);
  }
  return out;
}

double ThroughputSeries::MeanRate(uint64_t from_ns, uint64_t to_ns) const {
  assert(to_ns > from_ns);
  uint64_t count = 0;
  for (const auto& [w, c] : windows_) {
    uint64_t start = w * window_ns_;
    if (start >= from_ns && start < to_ns) {
      count += c;
    }
  }
  return static_cast<double>(count) / (static_cast<double>(to_ns - from_ns) / 1e9);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace mal
