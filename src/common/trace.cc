#include "src/common/trace.h"

#include <algorithm>
#include <sstream>

namespace mal::trace {
namespace {

TraceCollector* g_collector = nullptr;
TraceContext g_current;

std::unordered_map<uint16_t, std::string>& MessageNames() {
  static std::unordered_map<uint16_t, std::string> names;
  return names;
}

// Builtin wire-enum names. Kept central (rather than per-module registrar
// arrays) so span names and log lines are consistent no matter which modules
// a binary links. Values mirror src/mon/messages.h, src/osd/messages.h, and
// src/mds/types.h.
const char* BuiltinMessageName(uint32_t type) {
  switch (type) {
    case 100: return "mon.paxos";
    case 101: return "mon.command";
    case 102: return "mon.get_map";
    case 103: return "mon.subscribe";
    case 104: return "mon.map_update";
    case 105: return "mon.log_entry";
    case 106: return "mon.get_cluster_log";
    case 107: return "mon.perf_report";
    case 108: return "mon.get_perf_dump";
    case 200: return "osd.op";
    case 201: return "osd.repop";
    case 202: return "osd.gossip";
    case 203: return "osd.pull";
    case 204: return "osd.scrub";
    case 205: return "osd.watch";
    case 206: return "osd.notify";
    case 207: return "osd.push";
    case 300: return "mds.client_request";
    case 301: return "mds.cap_revoke";
    case 302: return "mds.migrate";
    case 303: return "mds.authority_update";
    case 304: return "mds.load_report";
    case 305: return "mds.forward";
    case 306: return "mds.coherence";
    default: return nullptr;
  }
}

}  // namespace

TraceCollector* Collector() { return g_collector; }
void SetCollector(TraceCollector* collector) { g_collector = collector; }

const TraceContext& Current() { return g_current; }
void SetCurrent(const TraceContext& ctx) { g_current = ctx; }

void RegisterMessageName(uint16_t type, const char* name) {
  MessageNames()[type] = name;
}

std::string MessageTypeName(uint32_t type) {
  if (type <= UINT16_MAX) {
    auto& names = MessageNames();
    auto it = names.find(static_cast<uint16_t>(type));
    if (it != names.end()) {
      return it->second;  // registered overrides win over the builtin table
    }
  }
  if (const char* builtin = BuiltinMessageName(type)) {
    return builtin;
  }
  return "msg." + std::to_string(type);
}

std::string MessageName(uint16_t type) { return MessageTypeName(type); }

TraceContext TraceCollector::StartSpan(const std::string& name,
                                       const std::string& entity,
                                       uint64_t now_ns,
                                       const TraceContext& parent) {
  Span span;
  span.span_id = next_id_++;
  if (parent.valid()) {
    span.trace_id = parent.trace_id;
    span.parent_span_id = parent.span_id;
  } else {
    span.trace_id = next_id_++;
  }
  span.name = name;
  span.entity = entity;
  span.start_ns = now_ns;
  span.end_ns = now_ns;
  index_[span.span_id] = spans_.size();
  spans_.push_back(span);
  return TraceContext{span.trace_id, span.span_id, span.parent_span_id};
}

void TraceCollector::EndSpan(const TraceContext& ctx, uint64_t now_ns,
                             const std::string& status) {
  auto it = index_.find(ctx.span_id);
  if (it == index_.end()) {
    return;
  }
  Span& span = spans_[it->second];
  if (!span.open) {
    return;  // idempotent: late duplicate ends (e.g. timeout vs reply) are dropped
  }
  span.end_ns = now_ns;
  span.open = false;
  span.status = status;
}

const Span* TraceCollector::Find(uint64_t span_id) const {
  auto it = index_.find(span_id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::vector<const Span*> TraceCollector::TraceSpans(uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.trace_id == trace_id) {
      out.push_back(&span);
    }
  }
  return out;
}

std::vector<const Span*> TraceCollector::Roots(uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.trace_id != trace_id) {
      continue;
    }
    // A root is a span whose parent is unknown to this collector (either no
    // parent at all, or the parent span was never recorded).
    if (span.parent_span_id == 0 || index_.count(span.parent_span_id) == 0) {
      out.push_back(&span);
    }
  }
  return out;
}

std::vector<const Span*> TraceCollector::ChildrenOf(uint64_t span_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.parent_span_id == span_id && span.span_id != span_id) {
      out.push_back(&span);
    }
  }
  return out;
}

namespace {

void RenderSpan(const TraceCollector& collector, const Span& span, int depth,
                std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) {
    *out << "  ";
  }
  *out << span.name << " [" << span.entity << "] "
       << static_cast<double>(span.end_ns - span.start_ns) / 1e3 << "us"
       << " @" << static_cast<double>(span.start_ns) / 1e3 << "us";
  if (span.open) {
    *out << " (open)";
  } else if (span.status != "ok") {
    *out << " (" << span.status << ")";
  }
  *out << "\n";
  for (const Span* child : collector.ChildrenOf(span.span_id)) {
    RenderSpan(collector, *child, depth + 1, out);
  }
}

}  // namespace

std::string TraceCollector::RenderTree(uint64_t trace_id) const {
  std::ostringstream out;
  for (const Span* root : Roots(trace_id)) {
    RenderSpan(*this, *root, 0, &out);
  }
  return out.str();
}

std::map<std::string, HopStat> TraceCollector::HopStats(uint64_t trace_id) const {
  std::map<std::string, HopStat> out;
  for (const Span& span : spans_) {
    if (span.open) {
      continue;
    }
    if (trace_id != 0 && span.trace_id != trace_id) {
      continue;
    }
    HopStat& stat = out[span.name];
    stat.count += 1;
    stat.total_ns += span.end_ns - span.start_ns;
  }
  return out;
}

void TraceCollector::Clear() {
  spans_.clear();
  index_.clear();
}

}  // namespace mal::trace
