#include "src/common/trace.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace mal::trace {
namespace {

TraceCollector* g_collector = nullptr;
TraceContext g_current;

std::unordered_map<uint16_t, std::string>& MessageNames() {
  static std::unordered_map<uint16_t, std::string> names;
  return names;
}

// Builtin wire-enum names. Kept central (rather than per-module registrar
// arrays) so span names and log lines are consistent no matter which modules
// a binary links. Values mirror src/mon/messages.h, src/osd/messages.h, and
// src/mds/types.h.
const char* BuiltinMessageName(uint32_t type) {
  switch (type) {
    case 100: return "mon.paxos";
    case 101: return "mon.command";
    case 102: return "mon.get_map";
    case 103: return "mon.subscribe";
    case 104: return "mon.map_update";
    case 105: return "mon.log_entry";
    case 106: return "mon.get_cluster_log";
    case 107: return "mon.perf_report";
    case 108: return "mon.get_perf_dump";
    case 109: return "mon.query_series";
    case 110: return "mon.get_health";
    case 200: return "osd.op";
    case 201: return "osd.repop";
    case 202: return "osd.gossip";
    case 203: return "osd.pull";
    case 204: return "osd.scrub";
    case 205: return "osd.watch";
    case 206: return "osd.notify";
    case 207: return "osd.push";
    case 300: return "mds.client_request";
    case 301: return "mds.cap_revoke";
    case 302: return "mds.migrate";
    case 303: return "mds.authority_update";
    case 304: return "mds.load_report";
    case 305: return "mds.forward";
    case 306: return "mds.coherence";
    default: return nullptr;
  }
}

}  // namespace

TraceCollector* Collector() { return g_collector; }
void SetCollector(TraceCollector* collector) { g_collector = collector; }

const TraceContext& Current() { return g_current; }
void SetCurrent(const TraceContext& ctx) { g_current = ctx; }

void RegisterMessageName(uint16_t type, const char* name) {
  MessageNames()[type] = name;
}

std::string MessageTypeName(uint32_t type) {
  if (type <= UINT16_MAX) {
    auto& names = MessageNames();
    auto it = names.find(static_cast<uint16_t>(type));
    if (it != names.end()) {
      return it->second;  // registered overrides win over the builtin table
    }
  }
  if (const char* builtin = BuiltinMessageName(type)) {
    return builtin;
  }
  return "msg." + std::to_string(type);
}

std::string MessageName(uint16_t type) { return MessageTypeName(type); }

TraceContext TraceCollector::StartSpan(const std::string& name,
                                       const std::string& entity,
                                       uint64_t now_ns,
                                       const TraceContext& parent) {
  Span span;
  span.span_id = next_id_++;
  if (parent.valid()) {
    span.trace_id = parent.trace_id;
    span.parent_span_id = parent.span_id;
  } else {
    span.trace_id = next_id_++;
  }
  span.name = name;
  span.entity = entity;
  span.start_ns = now_ns;
  span.end_ns = now_ns;
  index_[span.span_id] = spans_.size();
  spans_.push_back(span);
  return TraceContext{span.trace_id, span.span_id, span.parent_span_id};
}

void TraceCollector::EndSpan(const TraceContext& ctx, uint64_t now_ns,
                             const std::string& status) {
  auto it = index_.find(ctx.span_id);
  if (it == index_.end()) {
    return;
  }
  Span& span = spans_[it->second];
  if (!span.open) {
    return;  // idempotent: late duplicate ends (e.g. timeout vs reply) are dropped
  }
  span.end_ns = now_ns;
  span.open = false;
  span.status = status;
}

const Span* TraceCollector::Find(uint64_t span_id) const {
  auto it = index_.find(span_id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::vector<const Span*> TraceCollector::TraceSpans(uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.trace_id == trace_id) {
      out.push_back(&span);
    }
  }
  return out;
}

std::vector<const Span*> TraceCollector::Roots(uint64_t trace_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.trace_id != trace_id) {
      continue;
    }
    // A root is a span whose parent is unknown to this collector (either no
    // parent at all, or the parent span was never recorded).
    if (span.parent_span_id == 0 || index_.count(span.parent_span_id) == 0) {
      out.push_back(&span);
    }
  }
  return out;
}

std::vector<const Span*> TraceCollector::ChildrenOf(uint64_t span_id) const {
  std::vector<const Span*> out;
  for (const Span& span : spans_) {
    if (span.parent_span_id == span_id && span.span_id != span_id) {
      out.push_back(&span);
    }
  }
  return out;
}

namespace {

void RenderSpan(const TraceCollector& collector, const Span& span, int depth,
                std::ostringstream* out) {
  for (int i = 0; i < depth; ++i) {
    *out << "  ";
  }
  *out << span.name << " [" << span.entity << "] "
       << static_cast<double>(span.end_ns - span.start_ns) / 1e3 << "us"
       << " @" << static_cast<double>(span.start_ns) / 1e3 << "us";
  if (span.open) {
    *out << " (open)";
  } else if (span.status != "ok") {
    *out << " (" << span.status << ")";
  }
  *out << "\n";
  for (const Span* child : collector.ChildrenOf(span.span_id)) {
    RenderSpan(collector, *child, depth + 1, out);
  }
}

}  // namespace

std::string TraceCollector::RenderTree(uint64_t trace_id) const {
  std::ostringstream out;
  for (const Span* root : Roots(trace_id)) {
    RenderSpan(*this, *root, 0, &out);
  }
  return out.str();
}

std::string TraceCollector::RenderSubtree(uint64_t span_id) const {
  const Span* span = Find(span_id);
  if (span == nullptr) {
    return "";
  }
  std::ostringstream out;
  RenderSpan(*this, *span, 0, &out);
  return out.str();
}

std::map<std::string, HopStat> TraceCollector::HopStats(uint64_t trace_id) const {
  std::map<std::string, HopStat> out;
  for (const Span& span : spans_) {
    if (span.open) {
      continue;
    }
    if (trace_id != 0 && span.trace_id != trace_id) {
      continue;
    }
    HopStat& stat = out[span.name];
    stat.count += 1;
    stat.total_ns += span.end_ns - span.start_ns;
  }
  return out;
}

void TraceCollector::Clear() {
  spans_.clear();
  index_.clear();
}

// -- Critical-path analysis ---------------------------------------------------

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.compare(0, std::strlen(prefix), prefix) == 0;
}

using ChildIndex = std::unordered_map<uint64_t, std::vector<const Span*>>;

// parent span id -> finished children, sorted by end_ns descending (ties:
// later start first, then span id for determinism).
ChildIndex BuildChildIndex(const TraceCollector& collector) {
  ChildIndex index;
  for (const Span& span : collector.spans()) {
    if (span.open || span.parent_span_id == 0 ||
        span.parent_span_id == span.span_id) {
      continue;
    }
    index[span.parent_span_id].push_back(&span);
  }
  for (auto& [parent, children] : index) {
    std::sort(children.begin(), children.end(), [](const Span* a, const Span* b) {
      if (a->end_ns != b->end_ns) {
        return a->end_ns > b->end_ns;
      }
      if (a->start_ns != b->start_ns) {
        return a->start_ns > b->start_ns;
      }
      return a->span_id > b->span_id;
    });
  }
  return index;
}

// Backward waterfall over [clip_start, clip_end] of `span`: repeatedly
// descend into the child whose completion gated progress (latest end not
// past the cursor); the gaps between picked children are `span`'s own time.
void WalkCriticalPath(const ChildIndex& index, const Span& span,
                      uint64_t clip_start, uint64_t clip_end,
                      std::map<std::string, uint64_t>* segments) {
  uint64_t cursor = clip_end;
  uint64_t self_ns = 0;
  auto it = index.find(span.span_id);
  if (it != index.end()) {
    for (const Span* child : it->second) {  // end_ns descending
      if (child->end_ns > cursor) {
        continue;  // overlaps work already on the path; hidden latency
      }
      if (child->end_ns <= clip_start || cursor <= clip_start) {
        break;
      }
      self_ns += cursor - child->end_ns;  // gap above the child: span's own work
      uint64_t child_start = std::max(child->start_ns, clip_start);
      WalkCriticalPath(index, *child, child_start,
                       std::max(child->end_ns, child_start), segments);
      cursor = child_start;
    }
  }
  if (cursor > clip_start) {
    self_ns += cursor - clip_start;
  }
  if (self_ns > 0) {
    (*segments)[ClassifySpanSelf(span)] += self_ns;
  }
}

}  // namespace

const char* ClassifySpanSelf(const Span& span) {
  if (StartsWith(span.name, "rpc:")) {
    return "network";
  }
  if (StartsWith(span.name, "handle:")) {
    if (StartsWith(span.entity, "mds.")) {
      return "seq_wait";
    }
    if (StartsWith(span.entity, "osd.")) {
      return "osd_commit";
    }
    if (StartsWith(span.entity, "mon.")) {
      return "mon";
    }
    return "other";
  }
  if (span.parent_span_id == 0) {
    return "queue";
  }
  return "other";
}

CriticalPath AnalyzeCriticalPath(const TraceCollector& collector, const Span& root) {
  CriticalPath out;
  if (root.open || root.end_ns < root.start_ns) {
    return out;
  }
  out.total_ns = root.end_ns - root.start_ns;
  ChildIndex index = BuildChildIndex(collector);
  WalkCriticalPath(index, root, root.start_ns, root.end_ns, &out.segment_ns);
  return out;
}

std::map<std::string, OpBreakdown> CriticalPathByOp(const TraceCollector& collector) {
  std::map<std::string, OpBreakdown> out;
  ChildIndex index = BuildChildIndex(collector);
  for (const Span& span : collector.spans()) {
    if (span.open || span.parent_span_id != 0) {
      continue;
    }
    OpBreakdown& op = out[span.name];
    op.count += 1;
    op.total_ns += span.end_ns - span.start_ns;
    WalkCriticalPath(index, span, span.start_ns, span.end_ns, &op.segment_ns);
  }
  return out;
}

std::vector<const Span*> SlowestRoots(const TraceCollector& collector, size_t n) {
  std::vector<const Span*> roots;
  for (const Span& span : collector.spans()) {
    if (!span.open && span.parent_span_id == 0) {
      roots.push_back(&span);
    }
  }
  std::sort(roots.begin(), roots.end(), [](const Span* a, const Span* b) {
    uint64_t da = a->end_ns - a->start_ns;
    uint64_t db = b->end_ns - b->start_ns;
    if (da != db) {
      return da > db;
    }
    return a->span_id < b->span_id;  // deterministic tie-break
  });
  if (roots.size() > n) {
    roots.resize(n);
  }
  return roots;
}

std::string CriticalPathJson(const TraceCollector& collector, size_t max_exemplars) {
  std::ostringstream out;
  out << "{\n    \"ops\": {";
  bool first = true;
  for (const auto& [name, op] : CriticalPathByOp(collector)) {
    out << (first ? "" : ",") << "\n      \"" << name << "\": {\"count\": " << op.count
        << ", \"total_us\": " << op.total_ns / 1000 << ", \"segments_us\": {";
    bool first_seg = true;
    for (const auto& [segment, ns] : op.segment_ns) {
      out << (first_seg ? "" : ", ") << "\"" << segment << "\": " << ns / 1000;
      first_seg = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "},\n    \"exemplars\": [";
  first = true;
  for (const Span* root : SlowestRoots(collector, max_exemplars)) {
    std::string tree = collector.RenderSubtree(root->span_id);
    std::string escaped;
    escaped.reserve(tree.size());
    for (char c : tree) {
      if (c == '"') {
        escaped += "\\\"";
      } else if (c == '\\') {
        escaped += "\\\\";
      } else if (c == '\n') {
        escaped += "\\n";
      } else {
        escaped += c;
      }
    }
    out << (first ? "" : ",") << "\n      {\"name\": \"" << root->name
        << "\", \"duration_us\": " << (root->end_ns - root->start_ns) / 1000
        << ", \"tree\": \"" << escaped << "\"}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "]\n  }";
  return out.str();
}

}  // namespace mal::trace
