// Deterministic random number generation for the simulator and workload
// generators. Every experiment seeds its own Rng so runs are reproducible
// bit-for-bit; nothing in the codebase touches std::random_device.
#ifndef MALACOLOGY_COMMON_RNG_H_
#define MALACOLOGY_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace mal {

// xoshiro256** seeded via splitmix64. Fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  uint64_t Next();

  // Uniform in [0, n). n == 0 returns 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double UniformDouble();

  // Uniform in [lo, hi).
  double UniformDouble(double lo, double hi);

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Exponential with the given mean (used for service/arrival times).
  double Exponential(double mean);

  // Normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Log-normal parameterized by the target median and sigma of the
  // underlying normal; heavy-tailed latencies in the network model.
  double LogNormal(double median, double sigma);

  // Sample an index in [0, weights.size()) proportional to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
};

// Zipfian generator over [0, n) with parameter theta (0 = uniform,
// typical skew 0.99). Used by workload generators for hot-object skew.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);
  uint64_t Next(Rng* rng);
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace mal

#endif  // MALACOLOGY_COMMON_RNG_H_
