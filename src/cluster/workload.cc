#include "src/cluster/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace mal::cluster {

SequencerClient::SequencerClient(Cluster* cluster, Client* client,
                                 SequencerClientOptions options)
    : cluster_(cluster), client_(client), options_(std::move(options)) {}

void SequencerClient::Start() {
  running_ = true;
  Loop();
}

void SequencerClient::Record(sim::Time issued_at, uint64_t position) {
  sim::Time now = cluster_->simulator().Now();
  latency_.Add(static_cast<double>(now - issued_at + options_.local_cost) / 1e3);  // usec
  throughput_.Record(now);
  if (events_.size() < 2'000'000) {
    events_.emplace_back(now, position);
  } else {
    // Cap memory on very long runs — but count what we drop, so a truncated
    // scatter plot is distinguishable from a complete one (the aggregate
    // latency/throughput stats above still see every op).
    if (events_dropped_ == 0) {
      MAL_WARN("workload") << "event sample cap (2M) reached; further (time, position) "
                              "samples are dropped and counted in events_dropped()";
    }
    ++events_dropped_;
  }
}

void SequencerClient::Loop() {
  if (!running_) {
    return;
  }
  sim::Time issued_at = cluster_->simulator().Now();
  if (options_.cached) {
    if (client_->mds.HasCap(options_.path)) {
      auto position = client_->mds.LocalNext(options_.path);
      if (position.ok()) {
        Record(issued_at, position.value());
        cluster_->simulator().Schedule(options_.local_cost, [this] { Loop(); });
        return;
      }
    }
    client_->mds.AcquireCap(options_.path, [this, issued_at](mal::Status status) {
      if (!running_) {
        return;
      }
      if (!status.ok()) {
        // Back off briefly on errors (e.g. recovery in progress) and retry.
        cluster_->simulator().Schedule(10 * sim::kMillisecond, [this] { Loop(); });
        return;
      }
      auto position = client_->mds.LocalNext(options_.path);
      if (position.ok()) {
        Record(issued_at, position.value());
      }
      cluster_->simulator().Schedule(options_.local_cost, [this] { Loop(); });
    });
    return;
  }
  // Round-trip mode: one RPC per position, immediate re-issue.
  client_->mds.SeqNext(options_.path, [this, issued_at](mal::Status status, uint64_t pos) {
    if (!running_) {
      return;
    }
    if (status.ok()) {
      Record(issued_at, pos);
    }
    cluster_->simulator().Schedule(options_.local_cost, [this] { Loop(); });
  });
}

double ArrivalConfig::RateAt(sim::Time now) const {
  switch (shape) {
    case Shape::kSteady:
      return base_rate_hz;
    case Shape::kDiurnal: {
      double phase = 2.0 * M_PI * static_cast<double>(now % diurnal_period) /
                     static_cast<double>(diurnal_period);
      return base_rate_hz * (1.0 + diurnal_amplitude * std::sin(phase));
    }
    case Shape::kFlashCrowd:
      if (now >= flash_start && now < flash_start + flash_duration) {
        return base_rate_hz * flash_multiplier;
      }
      return base_rate_hz;
  }
  return base_rate_hz;
}

double ArrivalConfig::PeakRate() const {
  switch (shape) {
    case Shape::kSteady:
      return base_rate_hz;
    case Shape::kDiurnal:
      return base_rate_hz * (1.0 + diurnal_amplitude);
    case Shape::kFlashCrowd:
      return base_rate_hz * std::max(1.0, flash_multiplier);
  }
  return base_rate_hz;
}

sim::Time ArrivalProcess::NextAfter(sim::Time now) {
  // Thinning: exponential candidate gaps at the peak rate; accept each
  // candidate with probability lambda(t)/peak. Peak >= lambda everywhere,
  // so acceptance is a true probability and the process is exact.
  const double peak = config_.PeakRate();
  sim::Time t = now;
  while (true) {
    double gap_s = rng_.Exponential(1.0 / peak);
    sim::Time gap = std::max<sim::Time>(
        1, static_cast<sim::Time>(gap_s * static_cast<double>(sim::kSecond)));
    t += gap;
    if (rng_.UniformDouble() * peak <= config_.RateAt(t)) {
      return t;
    }
  }
}

ScaleWorkload::ScaleWorkload(Cluster* cluster, ScaleWorkloadOptions options)
    : cluster_(cluster),
      options_(options),
      arrivals_(options.arrivals, options.seed),
      op_rng_(options.seed ^ 0x9e3779b97f4a7c15ULL),
      zipf_(options.num_objects, options.zipf_theta),
      seq_zipf_(std::max<uint64_t>(1, options.seq_paths.size()), options.zipf_theta),
      seq_ops_(options.seq_paths.size(), 0),
      payload_(mal::Buffer::FromString(std::string(options.append_size, 's'))),
      session_ops_(options.num_sessions, 0) {
  for (uint32_t i = 0; i < options_.num_client_actors; ++i) {
    clients_.push_back(cluster_->NewClient());
  }
}

void ScaleWorkload::Start() {
  running_ = true;
  Arrive();
}

void ScaleWorkload::Arrive() {
  if (!running_) {
    return;
  }
  sim::Time now = cluster_->simulator().Now();
  sim::Time next = arrivals_.NextAfter(now);
  cluster_->simulator().Schedule(next - now, [this] {
    if (!running_) {
      return;
    }
    uint64_t session = next_session_;
    next_session_ = (next_session_ + 1) % options_.num_sessions;
    IssueOp(session);
    Arrive();  // open loop: the next arrival does not wait for this op
  });
}

void ScaleWorkload::IssueOp(uint64_t session) {
  if (session_ops_[session]++ == 0) {
    ++sessions_started_;
  }
  ++issued_;
  Client* client = clients_[session % clients_.size()];
  sim::Time issued_at = cluster_->simulator().Now();
  auto finish = [this, issued_at](mal::Status status) {
    if (status.ok()) {
      ++completed_;
      sim::Time now = cluster_->simulator().Now();
      latency_.Add(static_cast<double>(now - issued_at) / 1e3);  // usec
      throughput_.Record(now);
    } else {
      ++failed_;
    }
  };
  if (options_.seq_fraction > 0.0 && op_rng_.Bernoulli(options_.seq_fraction)) {
    if (!options_.seq_paths.empty()) {
      // Multi-log mode: Zipf over the log list, hottest first.
      uint64_t log = seq_zipf_.Next(&op_rng_);
      ++seq_ops_[log];
      client->mds.SeqNext(options_.seq_paths[log],
                          [finish](mal::Status status, uint64_t) { finish(status); });
      return;
    }
    client->mds.SeqNext(options_.seq_path,
                        [finish](mal::Status status, uint64_t) { finish(status); });
    return;
  }
  uint64_t key = zipf_.Next(&op_rng_);
  client->rados.Append("scale." + std::to_string(key), payload_, finish);
}

mal::Status CreateSequencer(Cluster* cluster, Client* client, const std::string& path,
                            const mds::LeasePolicy& policy) {
  mal::Status result = mal::Status::TimedOut("create sequencer");
  bool done = false;
  client->mds.Create(path, mds::InodeType::kSequencer, policy, [&](mal::Status s) {
    result = s;
    done = true;
  });
  cluster->RunUntil([&] { return done; });
  return result;
}

}  // namespace mal::cluster
