#include "src/cluster/workload.h"

namespace mal::cluster {

SequencerClient::SequencerClient(Cluster* cluster, Client* client,
                                 SequencerClientOptions options)
    : cluster_(cluster), client_(client), options_(std::move(options)) {}

void SequencerClient::Start() {
  running_ = true;
  Loop();
}

void SequencerClient::Record(sim::Time issued_at, uint64_t position) {
  sim::Time now = cluster_->simulator().Now();
  latency_.Add(static_cast<double>(now - issued_at + options_.local_cost) / 1e3);  // usec
  throughput_.Record(now);
  if (keep_events_) {
    if (events_.size() >= 2'000'000) {
      keep_events_ = false;  // cap memory on very long runs
    } else {
      events_.emplace_back(now, position);
    }
  }
}

void SequencerClient::Loop() {
  if (!running_) {
    return;
  }
  sim::Time issued_at = cluster_->simulator().Now();
  if (options_.cached) {
    if (client_->mds.HasCap(options_.path)) {
      auto position = client_->mds.LocalNext(options_.path);
      if (position.ok()) {
        Record(issued_at, position.value());
        cluster_->simulator().Schedule(options_.local_cost, [this] { Loop(); });
        return;
      }
    }
    client_->mds.AcquireCap(options_.path, [this, issued_at](mal::Status status) {
      if (!running_) {
        return;
      }
      if (!status.ok()) {
        // Back off briefly on errors (e.g. recovery in progress) and retry.
        cluster_->simulator().Schedule(10 * sim::kMillisecond, [this] { Loop(); });
        return;
      }
      auto position = client_->mds.LocalNext(options_.path);
      if (position.ok()) {
        Record(issued_at, position.value());
      }
      cluster_->simulator().Schedule(options_.local_cost, [this] { Loop(); });
    });
    return;
  }
  // Round-trip mode: one RPC per position, immediate re-issue.
  client_->mds.SeqNext(options_.path, [this, issued_at](mal::Status status, uint64_t pos) {
    if (!running_) {
      return;
    }
    if (status.ok()) {
      Record(issued_at, pos);
    }
    cluster_->simulator().Schedule(options_.local_cost, [this] { Loop(); });
  });
}

mal::Status CreateSequencer(Cluster* cluster, Client* client, const std::string& path,
                            const mds::LeasePolicy& policy) {
  mal::Status result = mal::Status::TimedOut("create sequencer");
  bool done = false;
  client->mds.Create(path, mds::InodeType::kSequencer, policy, [&](mal::Status s) {
    result = s;
    done = true;
  });
  cluster->RunUntil([&] { return done; });
  return result;
}

}  // namespace mal::cluster
