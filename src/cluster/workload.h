// Closed-loop sequencer workload driver used by the evaluation benches
// (Figures 5-12) and the examples. Each SequencerClient hammers one
// sequencer inode — either by round-trips (kSeqNext RPCs) or through the
// cached capability protocol with local increments — recording per-op
// latency, windowed throughput, and the raw (time, position) event stream
// the Fig 5 scatter plots need.
#ifndef MALACOLOGY_CLUSTER_WORKLOAD_H_
#define MALACOLOGY_CLUSTER_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/stats.h"

namespace mal::cluster {

struct SequencerClientOptions {
  std::string path = "/zlog/seq";
  bool cached = false;  // false: round-trip RPCs; true: capability protocol
  // Simulated local work per obtained position (the client-side cost of
  // using a position; also the think time between requests).
  sim::Time local_cost = 5 * sim::kMicrosecond;
};

class SequencerClient {
 public:
  SequencerClient(Cluster* cluster, Client* client, SequencerClientOptions options);

  void Start();
  void Stop() { running_ = false; }

  const Histogram& latency() const { return latency_; }
  const ThroughputSeries& throughput() const { return throughput_; }
  uint64_t total_ops() const { return throughput_.total(); }
  // Raw event stream: (virtual time, position obtained).
  const std::vector<std::pair<sim::Time, uint64_t>>& events() const { return events_; }
  // Completed cap handoffs observed by this client.
  uint64_t cap_exchanges() const { return client_->mds.caps_released(); }
  Client* client() { return client_; }

 private:
  void Loop();
  void Record(sim::Time issued_at, uint64_t position);

  Cluster* cluster_;
  Client* client_;
  SequencerClientOptions options_;
  bool running_ = false;
  bool keep_events_ = true;
  Histogram latency_;
  ThroughputSeries throughput_{1 * sim::kSecond};
  std::vector<std::pair<sim::Time, uint64_t>> events_;
};

// Convenience: creates a round-trip (or cached) sequencer inode.
mal::Status CreateSequencer(Cluster* cluster, Client* client, const std::string& path,
                            const mds::LeasePolicy& policy);

}  // namespace mal::cluster

#endif  // MALACOLOGY_CLUSTER_WORKLOAD_H_
