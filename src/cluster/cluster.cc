#include "src/cluster/cluster.h"

#include <algorithm>

namespace mal::cluster {

namespace {

std::vector<uint32_t> Iota(uint32_t n) {
  std::vector<uint32_t> ids;
  ids.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ids.push_back(i);
  }
  return ids;
}

}  // namespace

Client::Client(sim::Simulator* simulator, sim::Network* network, uint32_t id,
               std::vector<uint32_t> mons, mds::MdsClientConfig mds_config)
    : Actor(simulator, network, sim::EntityName::Client(id)),
      rados(this, mons),
      mds(this, mds_config) {
  rados.set_perf(&perf);
}

std::unique_ptr<zlog::Log> Client::OpenLog(zlog::LogOptions options) {
  auto log = std::make_unique<zlog::Log>(this, &rados, &mds, std::move(options));
  log->set_perf(&perf);
  return log;
}

void Client::StartPerfReports(sim::Time interval) {
  if (interval == 0) {
    return;
  }
  StartPeriodic(interval, [this] {
    if (!perf.empty()) {
      rados.mon_client().ReportPerf(perf.Snapshot(name().ToString(), Now()));
    }
  });
}

void Client::HandleRequest(const sim::Envelope& request) {
  if (rados.OnMapUpdate(request)) {
    return;
  }
  if (rados.OnNotify(request)) {
    return;
  }
  if (mds.OnMessage(request)) {
    return;
  }
}

Cluster::Cluster(ClusterOptions options)
    : options_(options), network_(&simulator_, options.network) {}

void Cluster::Boot() {
  std::vector<uint32_t> mon_ids = Iota(options_.num_mons);
  for (uint32_t i = 0; i < options_.num_mons; ++i) {
    mons_.push_back(
        std::make_unique<mon::Monitor>(&simulator_, &network_, i, mon_ids, options_.mon));
  }
  for (auto& monitor : mons_) {
    monitor->Boot();
  }
  for (uint32_t i = 0; i < options_.num_osds; ++i) {
    osd::OsdConfig config = options_.osd;
    config.seed += i;  // decorrelate gossip peer choices
    config.subscribe_to_mon =
        options_.osd_subscribe_fraction >= 1.0 ||
        i < static_cast<uint32_t>(options_.osd_subscribe_fraction *
                                  static_cast<double>(options_.num_osds));
    osds_.push_back(std::make_unique<osd::Osd>(&simulator_, &network_, i, mon_ids, config));
    osds_.back()->Boot();
  }
  for (uint32_t i = 0; i < options_.num_mds; ++i) {
    mds::MdsConfig config = options_.mds;
    config.seed = options_.network.seed * 131 + i;
    mds_.push_back(
        std::make_unique<mds::MdsDaemon>(&simulator_, &network_, i, mon_ids, config));
    mds_.back()->Boot();
  }
  RunFor(options_.boot_settle);
}

Client* Cluster::NewClient(mds::MdsClientConfig mds_config) {
  // Validate the wiring before constructing the actor: a client homed at a
  // rank that does not exist would time out on every session RPC, which is
  // much harder to diagnose than an assert at the call site.
  assert(options_.num_mons >= 1 && "cluster has no monitors to connect to");
  assert(mds_config.home_mds < options_.num_mds && "client home_mds rank out of range");
  clients_.push_back(std::make_unique<Client>(&simulator_, &network_, next_client_id_++,
                                              Iota(options_.num_mons), mds_config));
  Client* client = clients_.back().get();
  bool connected = false;
  client->rados.Connect([&connected](mal::Status) { connected = true; });
  RunUntil([&connected] { return connected; });
  return client;
}

scrub::Agent* Cluster::NewScrubAgent(scrub::ScrubConfig config) {
  assert(options_.num_mons >= 1 && "cluster has no monitors to connect to");
  scrub_agents_.push_back(
      std::make_unique<scrub::Agent>(&simulator_, &network_,
                                     static_cast<uint32_t>(scrub_agents_.size()),
                                     Iota(options_.num_mons), config));
  scrub::Agent* agent = scrub_agents_.back().get();
  agent->Boot();
  // Let the connect round-trip settle so the agent's first tick sees a map.
  RunFor(100 * sim::kMillisecond);
  return agent;
}

void Cluster::RunFor(sim::Time duration) {
  simulator_.RunUntil(simulator_.Now() + duration);
}

bool Cluster::RunUntil(const std::function<bool()>& done, sim::Time timeout) {
  sim::Time deadline = simulator_.Now() + timeout;
  while (simulator_.Now() < deadline) {
    if (done()) {
      return true;
    }
    // Event-granular: run one event so the predicate is observed at the
    // exact virtual time it becomes true (latency measurements depend on
    // this). With an empty queue, idle-advance in 1 ms quanta.
    if (!simulator_.Step()) {
      simulator_.RunUntil(std::min(simulator_.Now() + sim::kMillisecond, deadline));
    }
  }
  return done();
}

}  // namespace mal::cluster
