// Cluster: one-call assembly of a full Malacology deployment inside a
// simulation — monitors (Paxos quorum), OSDs (replicated object store with
// object classes), metadata servers, and application clients. This is the
// entry point examples, benches, and integration tests build on.
#ifndef MALACOLOGY_CLUSTER_CLUSTER_H_
#define MALACOLOGY_CLUSTER_CLUSTER_H_

#include <cassert>
#include <functional>
#include <memory>
#include <vector>

#include "src/mds/mds.h"
#include "src/mds/mds_client.h"
#include "src/mon/monitor.h"
#include "src/osd/osd.h"
#include "src/rados/client.h"
#include "src/scrub/agent.h"
#include "src/zlog/log.h"

namespace mal::cluster {

struct ClusterOptions {
  uint32_t num_mons = 1;
  uint32_t num_osds = 3;
  uint32_t num_mds = 1;
  mon::MonitorConfig mon;
  osd::OsdConfig osd;
  // Fraction of OSDs that subscribe to monitor map pushes; the rest learn
  // purely via gossip (Fig 8 experiments).
  double osd_subscribe_fraction = 1.0;
  mds::MdsConfig mds;
  sim::NetworkConfig network;
  // How long Boot() settles (elections, registrations, subscriptions).
  sim::Time boot_settle = 3 * sim::kSecond;
};

// An application client actor bundling the three client libraries. Incoming
// pushes (map updates, cap revokes) are routed automatically.
class Client : public sim::Actor {
 public:
  Client(sim::Simulator* simulator, sim::Network* network, uint32_t id,
         std::vector<uint32_t> mons, mds::MdsClientConfig mds_config = {});

  rados::RadosClient rados;
  mds::MdsClient mds;
  // Client-side counters (rados.*, zlog.*). Wired into `rados` and every
  // log returned by OpenLog().
  mal::PerfRegistry perf;

  // Creates a ZLog handle bound to this client's libraries.
  std::unique_ptr<zlog::Log> OpenLog(zlog::LogOptions options = {});

  // Starts pushing this client's counter snapshot to the monitor every
  // `interval`. Off by default so closed-loop experiments keep their exact
  // message schedules; benches/tests opt in.
  void StartPerfReports(sim::Time interval);

 protected:
  void HandleRequest(const sim::Envelope& request) override;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options = {});

  // Boots every daemon and settles. Clients are created separately.
  void Boot();

  Client* NewClient(mds::MdsClientConfig mds_config = {});

  // Boots a background scrub/repair agent (entity "scrub.<n>") that walks
  // every EC pool in the map. Settles until its RADOS handle is connected.
  scrub::Agent* NewScrubAgent(scrub::ScrubConfig config = {});

  sim::Simulator& simulator() { return simulator_; }
  sim::Network& network() { return network_; }
  // Bounds-checked: a bad rank is a harness bug worth an immediate assert,
  // not a silent out-of-bounds deref.
  mon::Monitor& monitor(size_t i = 0) {
    assert(i < mons_.size() && "monitor rank out of range");
    return *mons_[i];
  }
  osd::Osd& osd(size_t i) {
    assert(i < osds_.size() && "osd rank out of range");
    return *osds_[i];
  }
  mds::MdsDaemon& mds(size_t i = 0) {
    assert(i < mds_.size() && "mds rank out of range");
    return *mds_[i];
  }
  size_t num_mons() const { return mons_.size(); }
  size_t num_osds() const { return osds_.size(); }
  size_t num_mds() const { return mds_.size(); }
  const ClusterOptions& options() const { return options_; }

  // Advances virtual time.
  void RunFor(sim::Time duration);
  // Runs until `done` returns true or `timeout` elapses; returns whether
  // the predicate was satisfied. The workhorse of the sync-style helpers.
  bool RunUntil(const std::function<bool()>& done, sim::Time timeout = 30 * sim::kSecond);

 private:
  ClusterOptions options_;
  sim::Simulator simulator_;
  sim::Network network_;
  std::vector<std::unique_ptr<mon::Monitor>> mons_;
  std::vector<std::unique_ptr<osd::Osd>> osds_;
  std::vector<std::unique_ptr<mds::MdsDaemon>> mds_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<scrub::Agent>> scrub_agents_;
  uint32_t next_client_id_ = 0;
};

}  // namespace mal::cluster

#endif  // MALACOLOGY_CLUSTER_CLUSTER_H_
