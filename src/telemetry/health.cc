#include "src/telemetry/health.h"

#include <algorithm>
#include <sstream>

#include "src/common/stats.h"

namespace mal::telemetry {

using script::Table;
using script::TableKey;
using script::Value;

const char* HealthStateName(HealthSeverity severity) {
  switch (severity) {
    case HealthSeverity::kOk:
      return "HEALTH_OK";
    case HealthSeverity::kWarn:
      return "HEALTH_WARN";
    case HealthSeverity::kErr:
      return "HEALTH_ERR";
  }
  return "HEALTH_OK";
}

const char* SeverityName(HealthSeverity severity) {
  switch (severity) {
    case HealthSeverity::kOk:
      return "OK";
    case HealthSeverity::kWarn:
      return "WARN";
    case HealthSeverity::kErr:
      return "ERR";
  }
  return "OK";
}

namespace {

Status WrongArg(const std::string& fn, const std::string& want) {
  return Status::InvalidArgument(fn + " expects " + want);
}

// (entity, metric, window_s) triple shared by every series_* host function.
struct SeriesArgs {
  std::string entity;
  std::string metric;
  uint64_t window_ns = 0;
};

Result<SeriesArgs> ParseSeriesArgs(const std::string& fn,
                                   const std::vector<Value>& args,
                                   bool want_window) {
  size_t need = want_window ? 3 : 2;
  if (args.size() < need || !args[0].is_string() || !args[1].is_string() ||
      (want_window && !args[2].is_number())) {
    return WrongArg(fn, want_window ? "(entity, metric, window_seconds)"
                                    : "(entity, metric)");
  }
  SeriesArgs out;
  out.entity = args[0].as_string();
  out.metric = args[1].as_string();
  if (want_window) {
    double w = args[2].as_number();
    if (w <= 0) {
      return WrongArg(fn, "a positive window");
    }
    out.window_ns = static_cast<uint64_t>(w * 1e9);
  }
  return out;
}

}  // namespace

void HealthEngine::RegisterHostApi(Rule* rule) {
  script::Interpreter* interp = rule->interp.get();
  const SeriesStore* store = store_;

  interp->RegisterHostFunction(
      "entities", [this](script::Interpreter&,
                         const std::vector<Value>& args) -> Result<Value> {
        std::string prefix;
        if (!args.empty()) {
          if (!args[0].is_string()) {
            return WrongArg("entities", "an optional string prefix");
          }
          prefix = args[0].as_string();
        }
        auto table = Table::Make();
        double i = 1;
        for (const std::string& entity : store_->Entities(prefix)) {
          table->Set(TableKey(i), Value(entity));
          i += 1;
        }
        return Value(table);
      });

  interp->RegisterHostFunction(
      "report_age", [this](script::Interpreter&,
                           const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1 || !args[0].is_string()) {
          return WrongArg("report_age", "(entity)");
        }
        uint64_t last = store_->LastReportNs(args[0].as_string());
        if (last == 0) {
          return Value(static_cast<double>(now_ns_) / 1e9);  // never reported
        }
        uint64_t age = now_ns_ > last ? now_ns_ - last : 0;
        return Value(static_cast<double>(age) / 1e9);
      });

  interp->RegisterHostFunction(
      "series_last", [store](script::Interpreter&,
                             const std::vector<Value>& args) -> Result<Value> {
        auto parsed = ParseSeriesArgs("series_last", args, /*want_window=*/false);
        if (!parsed.ok()) {
          return parsed.status();
        }
        const Series* s = store->Find(parsed.value().entity, parsed.value().metric);
        return Value(s == nullptr ? 0.0 : s->Last());
      });

  struct StatFn {
    const char* name;
    double (*pick)(const WindowStats&);
  };
  static const StatFn kStatFns[] = {
      {"series_sum", [](const WindowStats& s) { return s.sum; }},
      {"series_avg", [](const WindowStats& s) { return s.avg(); }},
      {"series_min", [](const WindowStats& s) { return s.min; }},
      {"series_max", [](const WindowStats& s) { return s.max; }},
      {"series_count",
       [](const WindowStats& s) { return static_cast<double>(s.count); }},
  };
  for (const StatFn& fn : kStatFns) {
    interp->RegisterHostFunction(
        fn.name, [this, fn](script::Interpreter&,
                            const std::vector<Value>& args) -> Result<Value> {
          auto parsed = ParseSeriesArgs(fn.name, args, /*want_window=*/true);
          if (!parsed.ok()) {
            return parsed.status();
          }
          const SeriesArgs& a = parsed.value();
          return Value(fn.pick(store_->Stats(a.entity, a.metric, a.window_ns, now_ns_)));
        });
  }

  interp->RegisterHostFunction(
      "series_rate", [this](script::Interpreter&,
                            const std::vector<Value>& args) -> Result<Value> {
        auto parsed = ParseSeriesArgs("series_rate", args, /*want_window=*/true);
        if (!parsed.ok()) {
          return parsed.status();
        }
        const SeriesArgs& a = parsed.value();
        WindowStats stats = store_->Stats(a.entity, a.metric, a.window_ns, now_ns_);
        return Value(stats.sum / (static_cast<double>(a.window_ns) / 1e9));
      });

  interp->RegisterHostFunction(
      "alert", [this](script::Interpreter&,
                      const std::vector<Value>& args) -> Result<Value> {
        if (args.size() < 3 || !args[0].is_string() || !args[1].is_string() ||
            !args[2].is_string()) {
          return WrongArg("alert", "(name, severity, message [, value])");
        }
        const std::string& sev = args[1].as_string();
        HealthSeverity severity;
        if (sev == "WARN") {
          severity = HealthSeverity::kWarn;
        } else if (sev == "ERR") {
          severity = HealthSeverity::kErr;
        } else {
          return WrongArg("alert", "severity \"WARN\" or \"ERR\"");
        }
        if (raising_ == nullptr) {
          return Status::Internal("alert() outside Evaluate()");
        }
        Alert a;
        a.name = args[0].as_string();
        a.rule = *current_rule_;
        a.severity = severity;
        a.message = args[2].as_string();
        if (args.size() > 3 && args[3].is_number()) {
          a.value = args[3].as_number();
        }
        a.since_ns = now_ns_;
        auto it = alerts_.find(a.name);
        if (it != alerts_.end()) {
          a.since_ns = it->second.since_ns;  // keep the original raise time
        }
        // Same name raised twice in one tick: keep the worst severity.
        auto [rit, inserted] = raising_->emplace(a.name, a);
        if (!inserted && severity > rit->second.severity) {
          rit->second = a;
        }
        return Value::Nil();
      });
}

Status HealthEngine::InstallRule(const std::string& name, const std::string& source,
                                 std::map<std::string, double> params) {
  auto chunk = script::Compile(source);
  if (!chunk.ok()) {
    return chunk.status();
  }
  auto rule = std::make_unique<Rule>();
  rule->name = name;
  rule->chunk = std::move(chunk).value();
  rule->interp = std::make_unique<script::Interpreter>();
  rule->interp->set_instruction_budget(1'000'000);
  rule->params = std::move(params);
  rule->interp->SetGlobal("state", Value(Table::Make()));
  RegisterHostApi(rule.get());
  RemoveRule(name);
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

void HealthEngine::RemoveRule(const std::string& name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if ((*it)->name == name) {
      rules_.erase(it);
      return;
    }
  }
}

std::vector<HealthEngine::Transition> HealthEngine::Evaluate(uint64_t now_ns) {
  now_ns_ = now_ns;
  ++evaluations_;
  std::map<std::string, Alert> raising;
  raising_ = &raising;
  for (const auto& rule : rules_) {
    current_rule_ = &rule->name;
    auto params = Table::Make();
    for (const auto& [key, value] : rule->params) {
      params->Set(TableKey(key), Value(value));
    }
    rule->interp->SetGlobal("params", Value(params));
    rule->interp->SetGlobal("now", Value(static_cast<double>(now_ns) / 1e9));
    Status run = rule->interp->Run(*rule->chunk);
    rule->interp->print_output().clear();
    if (!run.ok()) {
      // A broken rule must be visible, not silent: surface the runtime
      // error as its own WARN alert.
      Alert a;
      a.name = "rule_error:" + rule->name;
      a.rule = rule->name;
      a.severity = HealthSeverity::kWarn;
      a.message = run.ToString();
      a.since_ns = now_ns;
      auto it = alerts_.find(a.name);
      if (it != alerts_.end()) {
        a.since_ns = it->second.since_ns;
      }
      raising.emplace(a.name, a);
    }
  }
  raising_ = nullptr;
  current_rule_ = nullptr;

  std::vector<Transition> transitions;
  for (const auto& [name, alert] : raising) {
    auto it = alerts_.find(name);
    if (it == alerts_.end() || it->second.severity != alert.severity) {
      Transition t;
      t.severity = alert.severity;
      t.raised = true;
      t.text = std::string(HealthStateName(alert.severity)) + ": " + name + ": " +
               alert.message;
      transitions.push_back(std::move(t));
    }
  }
  for (const auto& [name, alert] : alerts_) {
    if (raising.find(name) == raising.end()) {
      Transition t;
      t.severity = HealthSeverity::kOk;
      t.raised = false;
      t.text = "HEALTH_OK: cleared " + name;
      transitions.push_back(std::move(t));
    }
  }
  alerts_ = std::move(raising);
  return transitions;
}

HealthSeverity HealthEngine::Overall() const {
  HealthSeverity worst = HealthSeverity::kOk;
  for (const auto& [name, alert] : alerts_) {
    worst = std::max(worst, alert.severity);
  }
  return worst;
}

std::vector<std::string> HealthEngine::RuleNames() const {
  std::vector<std::string> out;
  out.reserve(rules_.size());
  for (const auto& rule : rules_) {
    out.push_back(rule->name);
  }
  return out;
}

script::EngineStats HealthEngine::ConsumeScriptStats() {
  script::EngineStats out;
  for (const auto& rule : rules_) {
    const script::EngineStats& st = rule->interp->stats();
    out.instructions += st.instructions - rule->exported.instructions;
    out.vm_runs += st.vm_runs - rule->exported.vm_runs;
    out.oracle_runs += st.oracle_runs - rule->exported.oracle_runs;
    out.ic_hits += st.ic_hits - rule->exported.ic_hits;
    out.ic_misses += st.ic_misses - rule->exported.ic_misses;
    out.print_dropped += st.print_dropped - rule->exported.print_dropped;
    rule->exported = st;
  }
  return out;
}

std::string HealthEngine::ToJson(uint64_t now_ns) const {
  std::ostringstream out;
  out << "{\n    \"status\": \"" << HealthStateName(Overall()) << "\",\n"
      << "    \"alerts\": [";
  bool first = true;
  for (const auto& [name, alert] : alerts_) {
    out << (first ? "" : ",") << "\n      {\"name\": \"" << name << "\", \"severity\": \""
        << SeverityName(alert.severity) << "\", \"rule\": \"" << alert.rule
        << "\", \"value\": " << FormatDouble(alert.value, 3) << ", \"for_s\": "
        << FormatDouble(
               static_cast<double>(now_ns > alert.since_ns ? now_ns - alert.since_ns : 0) /
                   1e9,
               3)
        << ", \"message\": \"" << alert.message << "\"}";
    first = false;
  }
  out << (first ? "" : "\n    ") << "],\n    \"rules\": [";
  first = true;
  for (const auto& rule : rules_) {
    out << (first ? "" : ", ") << "\"" << rule->name << "\"";
    first = false;
  }
  out << "]\n  }";
  return out.str();
}

// -- Built-in rules ----------------------------------------------------------------

namespace {

// A daemon that stopped reporting is the canonical crash signal: the chaos
// engine's crash faults silence kMsgPerfReport until the heal restarts the
// daemon, so this rule drives the crash -> HEALTH_WARN -> heal -> HEALTH_OK
// arc asserted in tests.
constexpr const char* kStaleDaemonRule = R"(
local function check(prefix)
  for _, e in pairs(entities(prefix)) do
    local age = report_age(e)
    if age > params.max_age_s then
      alert("stale:" .. e, "WARN",
            e .. " has not sent a perf report for " .. age .. "s", age)
    end
  end
end
check("osd.")
check("mds.")
)";

// Tail-latency budget on the client append path.
constexpr const char* kZlogTailRule = R"(
for _, e in pairs(entities("client.")) do
  local p99 = series_max(e, "zlog.batch_us.p99", 60)
  if p99 > params.budget_us then
    alert("zlog_tail:" .. e, "WARN",
          e .. " zlog.batch_us p99 " .. p99 .. "us over 60s exceeds budget "
          .. params.budget_us .. "us", p99)
  end
end
)";

// Sequencer liveness: clients are finishing appends but no MDS granted a
// position recently -> the cached/local path is masking a dead sequencer.
constexpr const char* kSeqStallRule = R"(
local grants = 0
for _, e in pairs(entities("mds.")) do
  grants = grants + series_sum(e, "mds.seq.positions_granted", params.window_s)
end
local appends = 0
for _, e in pairs(entities("client.")) do
  appends = appends + series_sum(e, "zlog.appends", params.window_s)
                    + series_sum(e, "zlog.batches", params.window_s)
end
if appends > 0 and grants == 0 then
  alert("seq_stall", "ERR",
        "no sequencer grants in " .. params.window_s .. "s while clients completed "
        .. appends .. " appends", appends)
end
)";

// Write-load skew across OSDs (min_ops floor keeps idle clusters quiet).
constexpr const char* kOsdImbalanceRule = R"(
local max_ops = 0
local min_ops = 0
local n = 0
for _, e in pairs(entities("osd.")) do
  local ops = series_sum(e, "osd.op.write.count", 60)
  n = n + 1
  if n == 1 or ops > max_ops then max_ops = ops end
  if n == 1 or ops < min_ops then min_ops = ops end
end
if n > 1 and max_ops > params.min_ops and max_ops > min_ops * params.ratio then
  alert("osd_imbalance", "WARN",
        "osd write load imbalance: busiest " .. max_ops .. " ops vs idlest "
        .. min_ops .. " over 60s", max_ops)
end
)";

// Erasure-coded pools losing redundancy: the scrub agent publishes the
// number of objects it found degraded on its last full pass as a gauge.
// Any non-zero value means acked data is one more fault away from loss,
// so the cluster should be WARN until repair brings it back to zero.
constexpr const char* kEcDegradedRule = R"(
for _, e in pairs(entities("scrub.")) do
  local degraded = series_last(e, "scrub.degraded_objects")
  if degraded > params.max_degraded then
    alert("ec_degraded:" .. e, "WARN",
          e .. " last scrub pass found " .. degraded
          .. " EC objects below full redundancy", degraded)
  end
end
)";

// Scrub liveness: the agent tracks objects but has scanned nothing over
// the window. A stalled scrubber silently voids the self-healing story —
// degraded objects stay degraded — so this is an ERR, not a WARN.
constexpr const char* kScrubStalledRule = R"(
for _, e in pairs(entities("scrub.")) do
  local tracked = series_last(e, "scrub.objects_tracked")
  local scanned = series_sum(e, "scrub.objects_scanned", params.window_s)
  if tracked > 0 and scanned == 0 then
    alert("scrub_stalled:" .. e, "ERR",
          e .. " tracks " .. tracked .. " objects but scanned none in "
          .. params.window_s .. "s", tracked)
  end
end
)";

}  // namespace

void HealthEngine::InstallBuiltinRules() {
  InstallRule("stale_daemon", kStaleDaemonRule, {{"max_age_s", 5.0}});
  InstallRule("zlog_tail_latency", kZlogTailRule, {{"budget_us", 50000.0}});
  InstallRule("seq_stall", kSeqStallRule, {{"window_s", 10.0}});
  InstallRule("osd_op_imbalance", kOsdImbalanceRule,
              {{"ratio", 3.0}, {"min_ops", 1000.0}});
  InstallRule("ec_degraded", kEcDegradedRule, {{"max_degraded", 0.0}});
  InstallRule("scrub_stalled", kScrubStalledRule, {{"window_s", 10.0}});
}

}  // namespace mal::telemetry
