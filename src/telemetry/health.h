// MalScript-programmable cluster health rules.
//
// Mantle (§4.2 of the paper) shows load-balancing policy injected as Lua;
// the HealthEngine points the same interpreter at *monitoring* policy: each
// rule is a MalScript chunk the monitor runs every rollup tick against the
// time-series store. A rule inspects series through registered host
// functions and raises named alerts; an alert not re-raised on a tick is
// cleared automatically, so rules are written as pure "describe what is
// wrong right now" checks with no clear-side bookkeeping.
//
// Host API visible to rules (all windows in seconds of sim-time):
//   entities(prefix)                      -> array table of entity names
//   report_age(entity)                    -> seconds since last perf report
//   series_last(entity, metric)           -> latest value (counters: cumulative)
//   series_sum(entity, metric, window_s)  -> sum of raw points in window
//   series_avg / series_min / series_max / series_count (same signature)
//   series_rate(entity, metric, window_s) -> sum / window_s (per-second rate)
//   alert(name, severity, message [, value])  severity in {"WARN", "ERR"}
// plus globals: `now` (sim seconds), `params` (per-rule tuning table),
// `state` (table persisted across ticks, Mantle-style).
//
// Evaluation is deterministic: rules run in install order, host functions
// read only the SeriesStore, and a rule runtime error surfaces as a WARN
// alert named "rule_error:<rule>" instead of silently disabling the rule.
#ifndef MALACOLOGY_TELEMETRY_HEALTH_H_
#define MALACOLOGY_TELEMETRY_HEALTH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/script/interpreter.h"
#include "src/telemetry/series.h"

namespace mal::telemetry {

enum class HealthSeverity : uint8_t { kOk = 0, kWarn = 1, kErr = 2 };

// "HEALTH_OK" / "HEALTH_WARN" / "HEALTH_ERR" (Ceph's vocabulary).
const char* HealthStateName(HealthSeverity severity);
// "OK" / "WARN" / "ERR".
const char* SeverityName(HealthSeverity severity);

struct Alert {
  std::string name;            // identity; raised vs cleared is keyed on this
  std::string rule;            // rule that raised it
  HealthSeverity severity = HealthSeverity::kWarn;
  std::string message;
  double value = 0;            // the measured value behind the alert
  uint64_t since_ns = 0;       // sim-time the alert first fired
};

class HealthEngine {
 public:
  // One raised/cleared edge, rendered for the cluster log.
  struct Transition {
    HealthSeverity severity = HealthSeverity::kWarn;
    bool raised = false;  // false = cleared
    std::string text;
  };

  explicit HealthEngine(const SeriesStore* store) : store_(store) {}

  // Compiles and installs a rule; fails fast on syntax errors. `params` is
  // exposed to the script as the `params` table. Reinstalling a name
  // replaces the rule (and drops its persisted `state`).
  Status InstallRule(const std::string& name, const std::string& source,
                     std::map<std::string, double> params = {});
  void RemoveRule(const std::string& name);

  // Installs the shipped rules: stale_daemon, zlog_tail_latency, seq_stall,
  // osd_op_imbalance (docs/telemetry.md describes each).
  void InstallBuiltinRules();

  // Runs every rule against the store at `now_ns`; returns the raise/clear
  // edges since the previous evaluation (for the cluster log).
  std::vector<Transition> Evaluate(uint64_t now_ns);

  // Worst severity among firing alerts (kOk when none).
  HealthSeverity Overall() const;
  const std::map<std::string, Alert>& alerts() const { return alerts_; }
  std::vector<std::string> RuleNames() const;
  size_t rule_count() const { return rules_.size(); }
  uint64_t evaluations() const { return evaluations_; }

  // {"status": "HEALTH_*", "alerts": [...], "rules": [...]} — deterministic.
  std::string ToJson(uint64_t now_ns) const;

  // Script-engine counter deltas summed across every rule interpreter since
  // the previous call (the monitor drains this into its perf registry).
  script::EngineStats ConsumeScriptStats();

 private:
  struct Rule {
    std::string name;
    std::shared_ptr<script::Block> chunk;
    std::unique_ptr<script::Interpreter> interp;
    std::map<std::string, double> params;
    script::EngineStats exported;  // stats() snapshot at last consume
  };

  void RegisterHostApi(Rule* rule);

  const SeriesStore* store_;
  std::vector<std::unique_ptr<Rule>> rules_;   // install order = eval order
  std::map<std::string, Alert> alerts_;        // currently firing, by name
  // Scratch for the tick being evaluated (host `alert()` writes here).
  std::map<std::string, Alert>* raising_ = nullptr;
  const std::string* current_rule_ = nullptr;
  uint64_t now_ns_ = 0;
  uint64_t evaluations_ = 0;
};

}  // namespace mal::telemetry

#endif  // MALACOLOGY_TELEMETRY_HEALTH_H_
