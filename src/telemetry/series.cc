#include "src/telemetry/series.h"

#include <algorithm>
#include <sstream>

#include "src/common/stats.h"

namespace mal::telemetry {

void Window::Encode(mal::Encoder* enc) const {
  enc->PutU64(start_ns);
  enc->PutU64(count);
  enc->PutF64(min);
  enc->PutF64(max);
  enc->PutF64(sum);
  enc->PutF64(last);
}

Window Window::Decode(mal::Decoder* dec) {
  Window w;
  w.start_ns = dec->GetU64();
  w.count = dec->GetU64();
  w.min = dec->GetF64();
  w.max = dec->GetF64();
  w.sum = dec->GetF64();
  w.last = dec->GetF64();
  return w;
}

void RollupRing::Observe(uint64_t time_ns, double value) {
  uint64_t start = time_ns - time_ns % width_ns_;
  if (windows_.empty() || windows_.back().start_ns != start) {
    // Reports arrive in nondecreasing sim-time order per entity, so a new
    // bucket closes the previous window for good.
    windows_.push_back(Window{start, 0, value, value, 0, value});
    if (windows_.size() > cap_) {
      windows_.pop_front();
    }
  }
  Window& w = windows_.back();
  w.min = w.count == 0 ? value : std::min(w.min, value);
  w.max = w.count == 0 ? value : std::max(w.max, value);
  w.sum += value;
  w.last = value;
  ++w.count;
}

std::vector<Window> RollupRing::Since(uint64_t since_ns) const {
  std::vector<Window> out;
  for (const Window& w : windows_) {
    if (w.start_ns + width_ns_ > since_ns) {
      out.push_back(w);
    }
  }
  return out;
}

void Series::Observe(uint64_t time_ns, double value) {
  raw_.push_back(SeriesPoint{time_ns, value});
  if (raw_.size() > raw_cap_) {
    raw_.pop_front();
  }
  r10_.Observe(time_ns, value);
  r60_.Observe(time_ns, value);
}

double Series::Last() const {
  if (kind_ == MetricKind::kCounter) {
    return cumulative_;
  }
  return raw_.empty() ? 0 : raw_.back().value;
}

Series* SeriesStore::FindOrCreate(const std::string& entity,
                                  const std::string& metric, MetricKind kind) {
  auto& metrics = entities_[entity];
  auto it = metrics.find(metric);
  if (it == metrics.end()) {
    it = metrics
             .emplace(metric, Series(kind, limits_.raw_cap, limits_.w10_cap,
                                     limits_.w60_cap))
             .first;
  }
  return &it->second;
}

void SeriesStore::ObserveMetric(const std::string& entity, const std::string& metric,
                                MetricKind kind, uint64_t time_ns, double value) {
  Series* series = FindOrCreate(entity, metric, kind);
  if (kind == MetricKind::kCounter) {
    // Ingest the delta since the previous report. A cumulative value lower
    // than the last one means the daemon restarted and its registry reset;
    // the post-restart value is itself the delta.
    double prev = series->cumulative();
    double delta = value >= prev ? value - prev : value;
    series->set_cumulative(value);
    series->Observe(time_ns, delta);
    return;
  }
  series->Observe(time_ns, value);
}

void SeriesStore::Ingest(const mal::PerfSnapshot& snapshot) {
  const std::string& entity = snapshot.entity;
  uint64_t t = snapshot.time_ns;
  uint64_t& last = last_report_ns_[entity];
  last = std::max(last, t);
  for (const auto& [name, value] : snapshot.counters) {
    ObserveMetric(entity, name, MetricKind::kCounter, t,
                  static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    ObserveMetric(entity, name, MetricKind::kGauge, t, value);
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    if (hist.observed == 0) {
      continue;
    }
    Histogram h;
    for (double v : hist.samples) {
      h.Add(v);
    }
    ObserveMetric(entity, name + ".p99", MetricKind::kDerived, t, h.Quantile(0.99));
    ObserveMetric(entity, name + ".mean", MetricKind::kDerived, t, h.mean());
    // Exact running extremes ride the snapshot (see BoundedHistogram), so
    // alert rules on tails do not inherit decimation error.
    ObserveMetric(entity, name + ".min", MetricKind::kDerived, t, hist.min);
    ObserveMetric(entity, name + ".max", MetricKind::kDerived, t, hist.max);
    ObserveMetric(entity, name + ".count", MetricKind::kCounter, t,
                  static_cast<double>(hist.observed));
  }
}

const Series* SeriesStore::Find(const std::string& entity,
                                const std::string& metric) const {
  auto eit = entities_.find(entity);
  if (eit == entities_.end()) {
    return nullptr;
  }
  auto mit = eit->second.find(metric);
  return mit == eit->second.end() ? nullptr : &mit->second;
}

std::vector<std::string> SeriesStore::Entities(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [entity, metrics] : entities_) {
    if (entity.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(entity);
    }
  }
  return out;
}

std::vector<std::string> SeriesStore::Metrics(const std::string& entity) const {
  std::vector<std::string> out;
  auto it = entities_.find(entity);
  if (it == entities_.end()) {
    return out;
  }
  for (const auto& [metric, series] : it->second) {
    out.push_back(metric);
  }
  return out;
}

std::vector<Window> SeriesStore::Query(const std::string& entity,
                                       const std::string& metric,
                                       Resolution resolution,
                                       uint64_t since_ns) const {
  const Series* series = Find(entity, metric);
  if (series == nullptr) {
    return {};
  }
  switch (resolution) {
    case Resolution::kRaw: {
      std::vector<Window> out;
      for (const SeriesPoint& p : series->raw()) {
        if (p.time_ns >= since_ns) {
          out.push_back(Window{p.time_ns, 1, p.value, p.value, p.value, p.value});
        }
      }
      return out;
    }
    case Resolution::k10s:
      return series->rollup10().Since(since_ns);
    case Resolution::k60s:
      return series->rollup60().Since(since_ns);
  }
  return {};
}

WindowStats SeriesStore::Stats(const std::string& entity, const std::string& metric,
                               uint64_t window_ns, uint64_t now_ns) const {
  WindowStats out;
  const Series* series = Find(entity, metric);
  if (series == nullptr) {
    return out;
  }
  uint64_t from = now_ns > window_ns ? now_ns - window_ns : 0;
  for (const SeriesPoint& p : series->raw()) {
    if (p.time_ns < from || p.time_ns > now_ns) {
      continue;
    }
    out.min = out.count == 0 ? p.value : std::min(out.min, p.value);
    out.max = out.count == 0 ? p.value : std::max(out.max, p.value);
    out.sum += p.value;
    out.last = p.value;
    ++out.count;
  }
  return out;
}

uint64_t SeriesStore::LastReportNs(const std::string& entity) const {
  auto it = last_report_ns_.find(entity);
  return it == last_report_ns_.end() ? 0 : it->second;
}

size_t SeriesStore::series_count() const {
  size_t n = 0;
  for (const auto& [entity, metrics] : entities_) {
    n += metrics.size();
  }
  return n;
}

namespace {

void AppendWindows(std::ostringstream* out, const std::vector<Window>& windows,
                   size_t max_windows) {
  size_t start = windows.size() > max_windows ? windows.size() - max_windows : 0;
  *out << "[";
  for (size_t i = start; i < windows.size(); ++i) {
    const Window& w = windows[i];
    *out << (i == start ? "" : ", ") << "{\"start_s\": "
         << FormatDouble(static_cast<double>(w.start_ns) / 1e9, 3)
         << ", \"count\": " << w.count << ", \"min\": " << FormatDouble(w.min, 3)
         << ", \"max\": " << FormatDouble(w.max, 3)
         << ", \"sum\": " << FormatDouble(w.sum, 3)
         << ", \"last\": " << FormatDouble(w.last, 3) << "}";
  }
  *out << "]";
}

}  // namespace

std::string SeriesStore::ToJson(uint64_t now_ns, size_t max_windows) const {
  std::ostringstream out;
  out << "{";
  bool first_entity = true;
  for (const auto& [entity, metrics] : entities_) {
    out << (first_entity ? "" : ",") << "\n    \"" << entity << "\": {";
    first_entity = false;
    uint64_t report_ns = LastReportNs(entity);
    out << "\n      \"report_age_us\": "
        << (now_ns > report_ns ? (now_ns - report_ns) / 1000 : 0);
    for (const auto& [metric, series] : metrics) {
      out << ",\n      \"" << metric << "\": {\"last\": "
          << FormatDouble(series.Last(), 3) << ", \"w10\": ";
      std::vector<Window> w10(series.rollup10().windows().begin(),
                              series.rollup10().windows().end());
      AppendWindows(&out, w10, max_windows);
      out << ", \"w60\": ";
      std::vector<Window> w60(series.rollup60().windows().begin(),
                              series.rollup60().windows().end());
      AppendWindows(&out, w60, max_windows);
      out << "}";
    }
    out << "\n    }";
  }
  out << "\n  }";
  return out.str();
}

}  // namespace mal::telemetry
