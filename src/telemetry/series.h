// Monitor-side time-series store for the programmable telemetry layer.
//
// Every kMsgPerfReport snapshot the monitor receives is ingested into
// per-entity, per-metric series. A series keeps three resolutions, each a
// bounded ring:
//   raw  — one point per report (the report's sim-time stamp);
//   10s  — rollup windows with min/max/sum/count/last per window;
//   60s  — the same, one minute wide.
// Counters are ingested as per-report deltas (so a window's `sum` is the
// increase inside that window and survives daemon restarts resetting the
// cumulative value); gauges as sampled values; histograms as derived
// sub-metrics (<name>.p99/.mean/.min/.max/.count) so alert rules can watch
// tail latency without shipping raw samples around.
//
// Everything is deterministic — plain arithmetic over snapshot contents,
// ordered maps, no RNG — so two same-seed runs produce byte-identical
// series dumps, and bounded: ring capacities cap memory per series no
// matter how long the cluster runs.
#ifndef MALACOLOGY_TELEMETRY_SERIES_H_
#define MALACOLOGY_TELEMETRY_SERIES_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/common/perf.h"

namespace mal::telemetry {

enum class Resolution : uint8_t { kRaw = 0, k10s = 1, k60s = 2 };

inline constexpr uint64_t kWindow10sNs = 10ull * 1000 * 1000 * 1000;
inline constexpr uint64_t kWindow60sNs = 60ull * 1000 * 1000 * 1000;

// One rollup window (or, for raw resolution queries, one point dressed up
// as a single-observation window).
struct Window {
  uint64_t start_ns = 0;
  uint64_t count = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  double last = 0;

  void Encode(mal::Encoder* enc) const;
  static Window Decode(mal::Decoder* dec);
};

struct SeriesPoint {
  uint64_t time_ns = 0;
  double value = 0;
};

// Fixed-capacity ring of rollup windows. Observations are bucketed by
// time / width; a new bucket closes the current window and evicts the
// oldest once the ring is full.
class RollupRing {
 public:
  RollupRing(uint64_t width_ns, size_t cap) : width_ns_(width_ns), cap_(cap) {}

  void Observe(uint64_t time_ns, double value);

  const std::deque<Window>& windows() const { return windows_; }
  std::vector<Window> Since(uint64_t since_ns) const;
  uint64_t width_ns() const { return width_ns_; }

 private:
  uint64_t width_ns_;
  size_t cap_;
  std::deque<Window> windows_;  // oldest -> newest; back() is the open window
};

// How a metric's raw points are derived from snapshots (affects both
// ingestion and what Last() means).
enum class MetricKind : uint8_t {
  kCounter = 0,  // points are per-report deltas; Last() is the cumulative
  kGauge = 1,    // points are sampled values
  kDerived = 2,  // computed from a histogram at ingest (gauge semantics)
};

class Series {
 public:
  Series(MetricKind kind, size_t raw_cap, size_t w10_cap, size_t w60_cap)
      : kind_(kind),
        raw_cap_(raw_cap),
        r10_(kWindow10sNs, w10_cap),
        r60_(kWindow60sNs, w60_cap) {}

  void Observe(uint64_t time_ns, double value);

  MetricKind kind() const { return kind_; }
  const std::deque<SeriesPoint>& raw() const { return raw_; }
  const RollupRing& rollup10() const { return r10_; }
  const RollupRing& rollup60() const { return r60_; }

  // Latest raw value; for counters the latest *cumulative* value.
  double Last() const;
  void set_cumulative(double v) { cumulative_ = v; }
  double cumulative() const { return cumulative_; }

 private:
  MetricKind kind_;
  size_t raw_cap_;
  std::deque<SeriesPoint> raw_;
  RollupRing r10_;
  RollupRing r60_;
  double cumulative_ = 0;  // counters: latest cumulative value seen
};

// Aggregate of raw points inside a query window (what the MalScript rule
// host functions are built on).
struct WindowStats {
  uint64_t count = 0;
  double min = 0;
  double max = 0;
  double sum = 0;
  double last = 0;

  double avg() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

class SeriesStore {
 public:
  struct Limits {
    size_t raw_cap = 512;
    size_t w10_cap = 90;   // 15 minutes of 10s windows
    size_t w60_cap = 120;  // 2 hours of 60s windows
  };

  SeriesStore() = default;
  explicit SeriesStore(Limits limits) : limits_(limits) {}

  // Folds one report into the store. `snapshot.time_ns` (the reporter's
  // sim-clock stamp) is the observation time for every derived point.
  void Ingest(const mal::PerfSnapshot& snapshot);

  const Series* Find(const std::string& entity, const std::string& metric) const;

  // Entities with at least one series, filtered by name prefix ("" = all).
  std::vector<std::string> Entities(const std::string& prefix = "") const;
  std::vector<std::string> Metrics(const std::string& entity) const;

  // Rollup windows (or raw points for kRaw) newer than `since_ns`.
  std::vector<Window> Query(const std::string& entity, const std::string& metric,
                            Resolution resolution, uint64_t since_ns) const;

  // Stats over the raw points in [now_ns - window_ns, now_ns]. Counters
  // contribute per-report deltas, so `sum` reads as "increase over the
  // window"; an unknown series yields a zeroed result.
  WindowStats Stats(const std::string& entity, const std::string& metric,
                    uint64_t window_ns, uint64_t now_ns) const;

  // Sim-time of the entity's newest report, or 0 if it never reported.
  uint64_t LastReportNs(const std::string& entity) const;

  size_t series_count() const;
  bool empty() const { return entities_.empty(); }
  const Limits& limits() const { return limits_; }

  // Deterministic JSON rendering: entities -> metrics -> {last, w10, w60}.
  // `max_windows` caps how many trailing windows of each resolution are
  // emitted (keeps the monitor dump readable).
  std::string ToJson(uint64_t now_ns, size_t max_windows = 6) const;

 private:
  Series* FindOrCreate(const std::string& entity, const std::string& metric,
                       MetricKind kind);
  void ObserveMetric(const std::string& entity, const std::string& metric,
                     MetricKind kind, uint64_t time_ns, double value);

  Limits limits_;
  std::map<std::string, std::map<std::string, Series>> entities_;
  std::map<std::string, uint64_t> last_report_ns_;
};

}  // namespace mal::telemetry

#endif  // MALACOLOGY_TELEMETRY_SERIES_H_
