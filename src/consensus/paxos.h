// Multi-decree Paxos, the consensus engine under the monitor's Service
// Metadata interface (paper §4.1: "A Paxos monitoring service is
// responsible for integrating state changes into cluster maps").
//
// Design: leader-based Multi-Paxos. A node that believes it should lead
// runs Phase 1 (Prepare/Promise) once for a ballot covering all instances;
// after that each client value is decided with a single Phase 2
// (Accept/Accepted) round plus a Commit broadcast. Ballots are
// (round << 16 | node_id), so ballots are unique per node and totally
// ordered.
//
// The class is transport- and clock-agnostic: the owner supplies send and
// commit callbacks and drives timeouts. This makes it directly usable both
// under the simulated monitor daemon and in deterministic unit tests that
// deliver, drop, duplicate, and reorder messages arbitrarily.
#ifndef MALACOLOGY_CONSENSUS_PAXOS_H_
#define MALACOLOGY_CONSENSUS_PAXOS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace mal::consensus {

enum class PaxosMsgType : uint8_t {
  kPrepare = 0,
  kPromise = 1,
  kNack = 2,      // ballot rejected; carries the higher promised ballot
  kAccept = 3,
  kAccepted = 4,
  kCommit = 5,
  kCatchupRequest = 6,  // ask a peer for committed values from an instance
};

struct AcceptedEntry {
  uint64_t instance = 0;
  uint64_t ballot = 0;
  mal::Buffer value;
};

struct PaxosMessage {
  PaxosMsgType type = PaxosMsgType::kPrepare;
  uint32_t from = 0;
  uint64_t ballot = 0;
  uint64_t instance = 0;
  mal::Buffer value;
  // kPromise: uncommitted accepted tail + how far the acceptor has committed.
  std::vector<AcceptedEntry> accepted_tail;
  uint64_t committed_through = 0;  // first *uncommitted* instance

  void Encode(mal::Encoder* enc) const;
  static mal::Result<PaxosMessage> Decode(mal::Decoder* dec);
};

// Role snapshot for introspection/tests.
enum class PaxosRole { kFollower, kCandidate, kLeader };

class PaxosNode {
 public:
  using SendFn = std::function<void(uint32_t peer, const PaxosMessage&)>;
  // Called exactly once per instance, in instance order.
  using CommitFn = std::function<void(uint64_t instance, const mal::Buffer& value)>;

  PaxosNode(uint32_t node_id, std::vector<uint32_t> members, SendFn send, CommitFn on_commit);

  uint32_t node_id() const { return node_id_; }
  PaxosRole role() const { return role_; }
  bool IsLeader() const { return role_ == PaxosRole::kLeader; }
  uint64_t current_ballot() const { return current_ballot_; }
  // The highest ballot this node has promised; its low 16 bits are the node
  // id of the ballot owner, i.e. the best guess at the current leader.
  uint64_t promised_ballot() const { return promised_ballot_; }
  // First instance that has not been committed (== log length).
  uint64_t committed_through() const { return first_uncommitted_; }

  // Starts Phase 1 with a ballot higher than any seen. The owner calls this
  // at startup (lowest id) or when it suspects the leader failed.
  void StartElection();

  // Relinquishes leadership/candidacy (e.g. the owning daemon crashed).
  // Durable acceptor state (promises, accepted values) is retained.
  void StepDown() { role_ = PaxosRole::kFollower; }

  // Submits a value. Queued until this node is leader; if another node is
  // leader the owner should forward values there instead (the monitor does).
  // Returns the instance the value was assigned if leader, nullopt if queued.
  std::optional<uint64_t> Propose(mal::Buffer value);

  size_t pending_proposals() const { return pending_.size(); }

  // Feeds an incoming message. Safe against duplicates and reordering.
  void HandleMessage(const PaxosMessage& msg);

  // Owner-driven retransmission: resend Phase 1 or in-flight Phase 2 for
  // liveness after message loss. Call on a timer.
  void Retransmit();

  // Leader liveness signal: re-broadcasts Prepare at the current ballot
  // (idempotent for acceptors). No-op unless this node leads.
  void Heartbeat();

 private:
  struct InstanceState {
    // Acceptor state.
    uint64_t accepted_ballot = 0;
    mal::Buffer accepted_value;
    bool has_accepted = false;
    // Committed state.
    bool committed = false;
    mal::Buffer committed_value;
    // Leader (proposer) bookkeeping.
    std::set<uint32_t> accept_votes;
    bool in_flight = false;
  };

  uint64_t MakeBallot(uint64_t round) const { return (round << 16) | node_id_; }
  uint64_t BallotRound(uint64_t ballot) const { return ballot >> 16; }
  size_t Quorum() const { return members_.size() / 2 + 1; }

  void Broadcast(const PaxosMessage& msg);
  void BecomeLeader();
  void LeaderAdvance();  // assign queued proposals to instances
  void CommitInstance(uint64_t instance, const mal::Buffer& value);
  void DeliverCommitted();
  InstanceState& State(uint64_t instance) { return instances_[instance]; }

  void OnPrepare(const PaxosMessage& msg);
  void OnPromise(const PaxosMessage& msg);
  void OnNack(const PaxosMessage& msg);
  void OnAccept(const PaxosMessage& msg);
  void OnAccepted(const PaxosMessage& msg);
  void OnCommit(const PaxosMessage& msg);
  void OnCatchupRequest(const PaxosMessage& msg);

  uint32_t node_id_;
  std::vector<uint32_t> members_;
  SendFn send_;
  CommitFn on_commit_;

  PaxosRole role_ = PaxosRole::kFollower;
  uint64_t promised_ballot_ = 0;   // acceptor promise
  uint64_t current_ballot_ = 0;    // ballot this node is leading/campaigning with
  std::set<uint32_t> promise_votes_;
  // Highest accepted entries gathered during Phase 1, per instance.
  std::map<uint64_t, AcceptedEntry> phase1_accepted_;
  uint64_t phase1_max_committed_ = 0;

  std::map<uint64_t, InstanceState> instances_;
  uint64_t first_uncommitted_ = 0;  // next instance to deliver to on_commit_
  uint64_t next_instance_ = 0;      // leader: next instance to assign
  std::deque<mal::Buffer> pending_;
};

}  // namespace mal::consensus

#endif  // MALACOLOGY_CONSENSUS_PAXOS_H_
