#include "src/consensus/paxos.h"

#include <algorithm>
#include <cassert>

namespace mal::consensus {

void PaxosMessage::Encode(mal::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutU32(from);
  enc->PutU64(ballot);
  enc->PutU64(instance);
  enc->PutBuffer(value);
  enc->PutVarU64(accepted_tail.size());
  for (const AcceptedEntry& e : accepted_tail) {
    enc->PutU64(e.instance);
    enc->PutU64(e.ballot);
    enc->PutBuffer(e.value);
  }
  enc->PutU64(committed_through);
}

mal::Result<PaxosMessage> PaxosMessage::Decode(mal::Decoder* dec) {
  PaxosMessage msg;
  msg.type = static_cast<PaxosMsgType>(dec->GetU8());
  msg.from = dec->GetU32();
  msg.ballot = dec->GetU64();
  msg.instance = dec->GetU64();
  msg.value = dec->GetBuffer();
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    AcceptedEntry e;
    e.instance = dec->GetU64();
    e.ballot = dec->GetU64();
    e.value = dec->GetBuffer();
    msg.accepted_tail.push_back(std::move(e));
  }
  msg.committed_through = dec->GetU64();
  mal::Status s = dec->Finish();
  if (!s.ok()) {
    return s;
  }
  return msg;
}

PaxosNode::PaxosNode(uint32_t node_id, std::vector<uint32_t> members, SendFn send,
                     CommitFn on_commit)
    : node_id_(node_id),
      members_(std::move(members)),
      send_(std::move(send)),
      on_commit_(std::move(on_commit)) {
  assert(std::find(members_.begin(), members_.end(), node_id_) != members_.end());
}

void PaxosNode::Broadcast(const PaxosMessage& msg) {
  for (uint32_t peer : members_) {
    if (peer != node_id_) {
      send_(peer, msg);
    }
  }
}

void PaxosNode::StartElection() {
  role_ = PaxosRole::kCandidate;
  uint64_t round = std::max(BallotRound(promised_ballot_), BallotRound(current_ballot_)) + 1;
  current_ballot_ = MakeBallot(round);
  promise_votes_.clear();
  phase1_accepted_.clear();
  phase1_max_committed_ = first_uncommitted_;

  PaxosMessage prepare;
  prepare.type = PaxosMsgType::kPrepare;
  prepare.from = node_id_;
  prepare.ballot = current_ballot_;
  prepare.instance = first_uncommitted_;
  Broadcast(prepare);
  // Self-deliver.
  OnPrepare(prepare);
}

std::optional<uint64_t> PaxosNode::Propose(mal::Buffer value) {
  pending_.push_back(std::move(value));
  if (role_ == PaxosRole::kLeader) {
    uint64_t instance = next_instance_;
    LeaderAdvance();
    return instance;
  }
  return std::nullopt;
}

void PaxosNode::HandleMessage(const PaxosMessage& msg) {
  switch (msg.type) {
    case PaxosMsgType::kPrepare:
      OnPrepare(msg);
      break;
    case PaxosMsgType::kPromise:
      OnPromise(msg);
      break;
    case PaxosMsgType::kNack:
      OnNack(msg);
      break;
    case PaxosMsgType::kAccept:
      OnAccept(msg);
      break;
    case PaxosMsgType::kAccepted:
      OnAccepted(msg);
      break;
    case PaxosMsgType::kCommit:
      OnCommit(msg);
      break;
    case PaxosMsgType::kCatchupRequest:
      OnCatchupRequest(msg);
      break;
  }
}

void PaxosNode::OnPrepare(const PaxosMessage& msg) {
  if (msg.ballot < promised_ballot_) {
    PaxosMessage nack;
    nack.type = PaxosMsgType::kNack;
    nack.from = node_id_;
    nack.ballot = promised_ballot_;
    send_(msg.from, nack);
    return;
  }
  promised_ballot_ = msg.ballot;
  if (msg.from != node_id_ && role_ != PaxosRole::kFollower) {
    // Someone else holds a ballot at least as high; step down.
    role_ = PaxosRole::kFollower;
  }
  PaxosMessage promise;
  promise.type = PaxosMsgType::kPromise;
  promise.from = node_id_;
  promise.ballot = msg.ballot;
  promise.committed_through = first_uncommitted_;
  // Ship our accepted-but-uncommitted tail so the new leader re-proposes it.
  for (const auto& [instance, state] : instances_) {
    if (instance >= msg.instance && state.has_accepted && !state.committed) {
      promise.accepted_tail.push_back({instance, state.accepted_ballot, state.accepted_value});
    }
  }
  if (msg.from == node_id_) {
    OnPromise(promise);
  } else {
    send_(msg.from, promise);
  }
}

void PaxosNode::OnPromise(const PaxosMessage& msg) {
  if (role_ != PaxosRole::kCandidate || msg.ballot != current_ballot_) {
    return;  // stale promise for an old campaign
  }
  promise_votes_.insert(msg.from);
  phase1_max_committed_ = std::max(phase1_max_committed_, msg.committed_through);
  for (const AcceptedEntry& e : msg.accepted_tail) {
    auto it = phase1_accepted_.find(e.instance);
    if (it == phase1_accepted_.end() || e.ballot > it->second.ballot) {
      phase1_accepted_[e.instance] = e;
    }
  }
  if (promise_votes_.size() >= Quorum()) {
    BecomeLeader();
  }
}

void PaxosNode::OnNack(const PaxosMessage& msg) {
  if (msg.ballot <= current_ballot_) {
    return;
  }
  // A higher ballot exists; remember it so the next election outbids it.
  promised_ballot_ = std::max(promised_ballot_, msg.ballot);
  if (role_ != PaxosRole::kFollower) {
    role_ = PaxosRole::kFollower;
  }
}

void PaxosNode::BecomeLeader() {
  role_ = PaxosRole::kLeader;
  next_instance_ = std::max(first_uncommitted_, phase1_max_committed_);
  // Re-propose every accepted-but-uncommitted value we learned in Phase 1
  // under our ballot (Paxos safety: highest-ballot value per instance wins).
  for (const auto& [instance, entry] : phase1_accepted_) {
    if (instance < next_instance_) {
      continue;  // already committed somewhere; catchup will deliver it
    }
    InstanceState& state = State(instance);
    if (state.committed) {
      continue;
    }
    state.accept_votes.clear();
    state.in_flight = true;
    state.accepted_ballot = current_ballot_;
    state.accepted_value = entry.value;
    state.has_accepted = true;
    state.accept_votes.insert(node_id_);
    next_instance_ = std::max(next_instance_, instance + 1);

    PaxosMessage accept;
    accept.type = PaxosMsgType::kAccept;
    accept.from = node_id_;
    accept.ballot = current_ballot_;
    accept.instance = instance;
    accept.value = entry.value;
    Broadcast(accept);
  }
  // If we are behind the quorum's committed state, ask a peer for history.
  if (first_uncommitted_ < phase1_max_committed_) {
    PaxosMessage req;
    req.type = PaxosMsgType::kCatchupRequest;
    req.from = node_id_;
    req.instance = first_uncommitted_;
    Broadcast(req);
  }
  LeaderAdvance();
}

void PaxosNode::LeaderAdvance() {
  while (!pending_.empty()) {
    uint64_t instance = next_instance_++;
    InstanceState& state = State(instance);
    state.accepted_ballot = current_ballot_;
    state.accepted_value = std::move(pending_.front());
    pending_.pop_front();
    state.has_accepted = true;
    state.in_flight = true;
    state.accept_votes.clear();
    state.accept_votes.insert(node_id_);

    PaxosMessage accept;
    accept.type = PaxosMsgType::kAccept;
    accept.from = node_id_;
    accept.ballot = current_ballot_;
    accept.instance = instance;
    accept.value = state.accepted_value;
    Broadcast(accept);

    if (members_.size() == 1) {
      CommitInstance(instance, state.accepted_value);
    }
  }
}

void PaxosNode::OnAccept(const PaxosMessage& msg) {
  if (msg.ballot < promised_ballot_) {
    PaxosMessage nack;
    nack.type = PaxosMsgType::kNack;
    nack.from = node_id_;
    nack.ballot = promised_ballot_;
    send_(msg.from, nack);
    return;
  }
  promised_ballot_ = msg.ballot;
  InstanceState& state = State(msg.instance);
  if (state.committed) {
    // Already decided: tell the (possibly new) leader directly.
    PaxosMessage commit;
    commit.type = PaxosMsgType::kCommit;
    commit.from = node_id_;
    commit.ballot = msg.ballot;
    commit.instance = msg.instance;
    commit.value = state.committed_value;
    send_(msg.from, commit);
    return;
  }
  state.accepted_ballot = msg.ballot;
  state.accepted_value = msg.value;
  state.has_accepted = true;

  PaxosMessage accepted;
  accepted.type = PaxosMsgType::kAccepted;
  accepted.from = node_id_;
  accepted.ballot = msg.ballot;
  accepted.instance = msg.instance;
  send_(msg.from, accepted);
}

void PaxosNode::OnAccepted(const PaxosMessage& msg) {
  if (role_ != PaxosRole::kLeader || msg.ballot != current_ballot_) {
    return;
  }
  InstanceState& state = State(msg.instance);
  if (state.committed || !state.in_flight) {
    return;
  }
  state.accept_votes.insert(msg.from);
  if (state.accept_votes.size() >= Quorum()) {
    state.in_flight = false;
    CommitInstance(msg.instance, state.accepted_value);
    PaxosMessage commit;
    commit.type = PaxosMsgType::kCommit;
    commit.from = node_id_;
    commit.ballot = current_ballot_;
    commit.instance = msg.instance;
    commit.value = state.committed_value;
    Broadcast(commit);
  }
}

void PaxosNode::OnCommit(const PaxosMessage& msg) {
  CommitInstance(msg.instance, msg.value);
}

void PaxosNode::OnCatchupRequest(const PaxosMessage& msg) {
  // Send every committed value from msg.instance forward.
  for (uint64_t i = msg.instance; i < first_uncommitted_; ++i) {
    auto it = instances_.find(i);
    if (it == instances_.end() || !it->second.committed) {
      break;
    }
    PaxosMessage commit;
    commit.type = PaxosMsgType::kCommit;
    commit.from = node_id_;
    commit.instance = i;
    commit.value = it->second.committed_value;
    send_(msg.from, commit);
  }
}

void PaxosNode::CommitInstance(uint64_t instance, const mal::Buffer& value) {
  InstanceState& state = State(instance);
  if (state.committed) {
    return;
  }
  state.committed = true;
  state.committed_value = value;
  DeliverCommitted();
}

void PaxosNode::DeliverCommitted() {
  while (true) {
    auto it = instances_.find(first_uncommitted_);
    if (it == instances_.end() || !it->second.committed) {
      return;
    }
    on_commit_(first_uncommitted_, it->second.committed_value);
    ++first_uncommitted_;
  }
}

void PaxosNode::Heartbeat() {
  if (role_ != PaxosRole::kLeader) {
    return;
  }
  PaxosMessage prepare;
  prepare.type = PaxosMsgType::kPrepare;
  prepare.from = node_id_;
  prepare.ballot = current_ballot_;
  prepare.instance = first_uncommitted_;
  Broadcast(prepare);
}

void PaxosNode::Retransmit() {
  if (role_ == PaxosRole::kCandidate) {
    // Re-broadcast Prepare for the current campaign.
    PaxosMessage prepare;
    prepare.type = PaxosMsgType::kPrepare;
    prepare.from = node_id_;
    prepare.ballot = current_ballot_;
    prepare.instance = first_uncommitted_;
    Broadcast(prepare);
    return;
  }
  if (role_ == PaxosRole::kLeader) {
    for (auto& [instance, state] : instances_) {
      if (state.in_flight && !state.committed) {
        PaxosMessage accept;
        accept.type = PaxosMsgType::kAccept;
        accept.from = node_id_;
        accept.ballot = current_ballot_;
        accept.instance = instance;
        accept.value = state.accepted_value;
        Broadcast(accept);
      }
    }
    return;
  }
  // Follower: pull missing history if we suspect we are behind.
  PaxosMessage req;
  req.type = PaxosMsgType::kCatchupRequest;
  req.from = node_id_;
  req.instance = first_uncommitted_;
  Broadcast(req);
}

}  // namespace mal::consensus
