#include "src/cephfs/file_client.h"

namespace mal::cephfs {

void FileClient::WriteFile(const std::string& path, mal::Buffer data,
                           DoneHandler on_done) {
  // Arm the op's end-to-end budget: every hop below (lookup/create, striped
  // writes, size record) inherits the shrinking deadline ambiently.
  svc::ScopedOpDeadline budget(rados_->owner(), options_.op_deadline);
  auto shared = std::make_shared<mal::Buffer>(std::move(data));
  // Resolve or create the inode first.
  mds_->Lookup(path, [this, path, shared, on_done = std::move(on_done)](
                         mal::Status status, const mds::MdsReply& reply) {
    if (status.ok()) {
      WriteData(reply.inode.ino, shared, path, on_done);
      return;
    }
    if (status.code() != mal::Code::kNotFound) {
      on_done(status);
      return;
    }
    mds_->Create(path, mds::InodeType::kFile, mds::LeasePolicy{},
                 [this, path, shared, on_done](mal::Status create_status) {
                   if (!create_status.ok() &&
                       create_status.code() != mal::Code::kAlreadyExists) {
                     on_done(create_status);
                     return;
                   }
                   mds_->Lookup(path, [this, path, shared, on_done](
                                          mal::Status lookup_status,
                                          const mds::MdsReply& reply) {
                     if (!lookup_status.ok()) {
                       on_done(lookup_status);
                       return;
                     }
                     WriteData(reply.inode.ino, shared, path, on_done);
                   });
                 });
  });
}

void FileClient::WriteData(uint64_t ino, std::shared_ptr<mal::Buffer> data,
                           const std::string& path, DoneHandler on_done) {
  auto extents = rados::StripeRange(DataPrefix(ino), options_.object_size, 0, data->size());
  auto record_size = [this, path, size = data->size(), on_done](mal::Status status) {
    if (!status.ok()) {
      on_done(status);
      return;
    }
    mds::ClientRequest req;
    req.op = mds::MdsOp::kSetSize;
    req.path = path;
    req.seq_value = size;
    mds_->Request(req, [on_done](mal::Status set_status, const mds::MdsReply&) {
      on_done(set_status);
    });
  };
  if (extents.empty()) {
    record_size(mal::Status::Ok());
    return;
  }
  auto pending = std::make_shared<size_t>(extents.size());
  auto first_error = std::make_shared<mal::Status>();
  for (const rados::Extent& extent : extents) {
    osd::Op op;
    op.type = osd::Op::Type::kWriteFull;  // whole-file writes replace stripes
    op.data = data->Read(extent.logical, extent.length);
    rados_->Execute(extent.oid, {op},
                    [pending, first_error, record_size](mal::Status status,
                                                        const osd::OsdOpReply& reply) {
                      mal::Status op_status = status;
                      if (status.ok() && !reply.results.empty()) {
                        op_status = reply.results[0].status;
                      }
                      if (!op_status.ok() && first_error->ok()) {
                        *first_error = op_status;
                      }
                      if (--*pending == 0) {
                        record_size(*first_error);
                      }
                    });
  }
}

void FileClient::ReadFile(const std::string& path, DataHandler on_data) {
  svc::ScopedOpDeadline budget(rados_->owner(), options_.op_deadline);
  mds_->Lookup(path, [this, on_data = std::move(on_data)](mal::Status status,
                                                          const mds::MdsReply& reply) {
    if (!status.ok()) {
      on_data(status, mal::Buffer());
      return;
    }
    if (reply.inode.type != mds::InodeType::kFile) {
      on_data(mal::Status::InvalidArgument("not a regular file"), mal::Buffer());
      return;
    }
    uint64_t size = reply.inode.size;
    if (size == 0) {
      on_data(mal::Status::Ok(), mal::Buffer());
      return;
    }
    auto extents =
        rados::StripeRange(DataPrefix(reply.inode.ino), options_.object_size, 0, size);
    auto assembled = std::make_shared<mal::Buffer>();
    assembled->Resize(size);
    auto pending = std::make_shared<size_t>(extents.size());
    auto first_error = std::make_shared<mal::Status>();
    for (const rados::Extent& extent : extents) {
      osd::Op op;
      op.type = osd::Op::Type::kRead;
      op.offset = extent.offset;
      op.length = extent.length;
      uint64_t logical = extent.logical;
      uint64_t wanted = extent.length;
      rados_->Execute(extent.oid, {op},
                      [assembled, pending, first_error, on_data, logical, wanted](
                          mal::Status read_status, const osd::OsdOpReply& reply) {
                        mal::Status op_status = read_status;
                        mal::Buffer out;
                        if (read_status.ok() && !reply.results.empty()) {
                          op_status = reply.results[0].status;
                          out = reply.results[0].out;
                        }
                        if (!op_status.ok()) {
                          if (first_error->ok()) {
                            *first_error = op_status;
                          }
                        } else {
                          out.Resize(wanted);
                          assembled->Write(logical, out.data(), out.size());
                        }
                        if (--*pending == 0) {
                          if (first_error->ok()) {
                            on_data(mal::Status::Ok(), *assembled);
                          } else {
                            on_data(*first_error, mal::Buffer());
                          }
                        }
                      });
    }
  });
}

void FileClient::Stat(const std::string& path, StatHandler on_stat) {
  svc::ScopedOpDeadline budget(rados_->owner(), options_.op_deadline);
  mds_->Lookup(path, [on_stat = std::move(on_stat)](mal::Status status,
                                                    const mds::MdsReply& reply) {
    on_stat(status, reply.inode);
  });
}

void FileClient::Unlink(const std::string& path, DoneHandler on_done) {
  svc::ScopedOpDeadline budget(rados_->owner(), options_.op_deadline);
  mds::ClientRequest req;
  req.op = mds::MdsOp::kUnlink;
  req.path = path;
  mds_->Request(req, [on_done = std::move(on_done)](mal::Status status,
                                                    const mds::MdsReply&) {
    on_done(status);
  });
}

}  // namespace mal::cephfs
