// Thin CephFS-style file client: the POSIX-ish face of the stack (the
// "file" API of the paper's Figure 1). Metadata (inodes, sizes) lives in
// the metadata service; file data stripes over RADOS objects named by the
// inode number, exactly the split CephFS uses.
#ifndef MALACOLOGY_CEPHFS_FILE_CLIENT_H_
#define MALACOLOGY_CEPHFS_FILE_CLIENT_H_

#include <functional>
#include <string>

#include "src/mds/mds_client.h"
#include "src/rados/client.h"
#include "src/rados/striper.h"
#include "src/svc/deadline.h"

namespace mal::cephfs {

struct FileClientOptions {
  uint64_t object_size = 64 * 1024;  // file data stripe unit
  // End-to-end budget for each public operation (0 = none). The deadline
  // rides every hop the op fans out into — MDS lookups, striped OSD
  // writes, retries — shrinking as simulated time passes; see svc/.
  sim::Time op_deadline = 0;
};

class FileClient {
 public:
  using DoneHandler = std::function<void(mal::Status)>;
  using DataHandler = std::function<void(mal::Status, const mal::Buffer&)>;
  using StatHandler = std::function<void(mal::Status, const mds::Inode&)>;

  FileClient(mds::MdsClient* mds, rados::RadosClient* rados,
             FileClientOptions options = {})
      : mds_(mds), rados_(rados), options_(options) {}

  void Mkdir(const std::string& path, DoneHandler on_done) {
    svc::ScopedOpDeadline budget(rados_->owner(), options_.op_deadline);
    mds_->Mkdir(path, std::move(on_done));
  }

  // Whole-file write: creates the inode if needed, stripes the data into
  // RADOS, records the size in the inode.
  void WriteFile(const std::string& path, mal::Buffer data, DoneHandler on_done);

  // Whole-file read: resolves the inode, gathers the stripes.
  void ReadFile(const std::string& path, DataHandler on_data);

  void Stat(const std::string& path, StatHandler on_stat);
  void Unlink(const std::string& path, DoneHandler on_done);

 private:
  std::string DataPrefix(uint64_t ino) const { return "file." + std::to_string(ino); }
  void WriteData(uint64_t ino, std::shared_ptr<mal::Buffer> data, const std::string& path,
                 DoneHandler on_done);

  mds::MdsClient* mds_;
  rados::RadosClient* rados_;
  FileClientOptions options_;
};

}  // namespace mal::cephfs

#endif  // MALACOLOGY_CEPHFS_FILE_CLIENT_H_
