// RBD-style virtual block device: a fixed-size image striped over objects,
// with image-wide snapshots ("Snapshots in the block device" is the
// paper's Table 1 example of a co-designed Metadata interface).
//
// Layout:
//   rbd.<name>.header      — omap: size, object_size, snaps.<name> = 1
//   rbd.<name>.<index>     — data objects of `object_size` bytes
#ifndef MALACOLOGY_RBD_IMAGE_H_
#define MALACOLOGY_RBD_IMAGE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/rados/client.h"
#include "src/rados/striper.h"

namespace mal::rbd {

class Image {
 public:
  using DoneHandler = std::function<void(mal::Status)>;
  using DataHandler = std::function<void(mal::Status, const mal::Buffer&)>;

  Image(rados::RadosClient* rados, std::string name)
      : rados_(rados), name_(std::move(name)) {}

  // Creates the image (fails with kAlreadyExists if present).
  void Create(uint64_t size, uint64_t object_size, DoneHandler on_done);
  // Opens an existing image (loads size/object_size from the header).
  void Open(DoneHandler on_done);

  uint64_t size() const { return size_; }
  uint64_t object_size() const { return object_size_; }

  // Block I/O at arbitrary byte offsets; ranges must lie inside the image.
  void WriteAt(uint64_t offset, mal::Buffer data, DoneHandler on_done);
  void ReadAt(uint64_t offset, uint64_t length, DataHandler on_data);

  // Image-wide snapshot: snapshots every data object written so far plus
  // records the snapshot in the header. Reading at a snapshot sees the
  // image exactly as it was.
  void Snapshot(const std::string& snap_name, DoneHandler on_done);
  void ReadAtSnapshot(const std::string& snap_name, uint64_t offset, uint64_t length,
                      DataHandler on_data);

 private:
  std::string HeaderOid() const { return "rbd." + name_ + ".header"; }
  std::string DataPrefix() const { return "rbd." + name_; }
  mal::Status CheckRange(uint64_t offset, uint64_t length) const;
  // Runs `op_for_extent` for every extent and assembles results in order.
  void ForEachExtent(uint64_t offset, uint64_t length, bool snapshot_read,
                     const std::string& snap_name, DataHandler on_data);

  rados::RadosClient* rados_;
  std::string name_;
  uint64_t size_ = 0;
  uint64_t object_size_ = 0;
  bool open_ = false;
};

}  // namespace mal::rbd

#endif  // MALACOLOGY_RBD_IMAGE_H_
