#include "src/rbd/image.h"

namespace mal::rbd {

namespace {

uint64_t ParseU64(const std::string& s) {
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

void Image::Create(uint64_t size, uint64_t object_size, DoneHandler on_done) {
  if (size == 0 || object_size == 0) {
    on_done(mal::Status::InvalidArgument("size and object_size must be positive"));
    return;
  }
  std::vector<osd::Op> ops(3);
  ops[0].type = osd::Op::Type::kCreate;
  ops[0].excl = true;
  ops[1].type = osd::Op::Type::kOmapSet;
  ops[1].key = "size";
  ops[1].value = std::to_string(size);
  ops[2].type = osd::Op::Type::kOmapSet;
  ops[2].key = "object_size";
  ops[2].value = std::to_string(object_size);
  rados_->Execute(HeaderOid(), std::move(ops),
                  [this, size, object_size, on_done = std::move(on_done)](
                      mal::Status status, const osd::OsdOpReply& reply) {
                    if (!status.ok()) {
                      on_done(status);
                      return;
                    }
                    for (const osd::OpResult& result : reply.results) {
                      if (!result.status.ok()) {
                        on_done(result.status);
                        return;
                      }
                    }
                    size_ = size;
                    object_size_ = object_size;
                    open_ = true;
                    on_done(mal::Status::Ok());
                  });
}

void Image::Open(DoneHandler on_done) {
  std::vector<osd::Op> ops(2);
  ops[0].type = osd::Op::Type::kOmapGet;
  ops[0].key = "size";
  ops[1].type = osd::Op::Type::kOmapGet;
  ops[1].key = "object_size";
  rados_->Execute(HeaderOid(), std::move(ops),
                  [this, on_done = std::move(on_done)](mal::Status status,
                                                       const osd::OsdOpReply& reply) {
                    if (!status.ok()) {
                      on_done(status);
                      return;
                    }
                    if (reply.results.size() < 2 || !reply.results[0].status.ok() ||
                        !reply.results[1].status.ok()) {
                      on_done(mal::Status::NotFound("image " + name_));
                      return;
                    }
                    size_ = ParseU64(reply.results[0].out.ToString());
                    object_size_ = ParseU64(reply.results[1].out.ToString());
                    open_ = size_ > 0 && object_size_ > 0;
                    on_done(open_ ? mal::Status::Ok()
                                  : mal::Status::Corruption("bad image header"));
                  });
}

mal::Status Image::CheckRange(uint64_t offset, uint64_t length) const {
  if (!open_) {
    return mal::Status::Unavailable("image not open");
  }
  if (offset + length > size_) {
    return mal::Status::OutOfRange("I/O past end of image");
  }
  return mal::Status::Ok();
}

void Image::WriteAt(uint64_t offset, mal::Buffer data, DoneHandler on_done) {
  mal::Status range = CheckRange(offset, data.size());
  if (!range.ok()) {
    on_done(range);
    return;
  }
  auto extents = rados::StripeRange(DataPrefix(), object_size_, offset, data.size());
  if (extents.empty()) {
    on_done(mal::Status::Ok());
    return;
  }
  auto pending = std::make_shared<size_t>(extents.size());
  auto first_error = std::make_shared<mal::Status>();
  for (const rados::Extent& extent : extents) {
    osd::Op op;
    op.type = osd::Op::Type::kWrite;
    op.offset = extent.offset;
    op.data = data.Read(extent.logical, extent.length);
    rados_->Execute(extent.oid, {op},
                    [pending, first_error, on_done](mal::Status status,
                                                    const osd::OsdOpReply& reply) {
                      mal::Status op_status = status;
                      if (status.ok() && !reply.results.empty()) {
                        op_status = reply.results[0].status;
                      }
                      if (!op_status.ok() && first_error->ok()) {
                        *first_error = op_status;
                      }
                      if (--*pending == 0) {
                        on_done(*first_error);
                      }
                    });
  }
}

void Image::ForEachExtent(uint64_t offset, uint64_t length, bool snapshot_read,
                          const std::string& snap_name, DataHandler on_data) {
  auto extents = rados::StripeRange(DataPrefix(), object_size_, offset, length);
  auto assembled = std::make_shared<mal::Buffer>();
  assembled->Resize(length);
  auto pending = std::make_shared<size_t>(extents.size());
  auto first_error = std::make_shared<mal::Status>();
  if (extents.empty()) {
    on_data(mal::Status::Ok(), mal::Buffer());
    return;
  }
  for (const rados::Extent& extent : extents) {
    osd::Op op;
    if (snapshot_read) {
      op.type = osd::Op::Type::kSnapRead;
      op.key = snap_name;
    } else {
      op.type = osd::Op::Type::kRead;
      op.offset = extent.offset;
      op.length = extent.length;
    }
    uint64_t logical = extent.logical;
    uint64_t ext_offset = extent.offset;
    uint64_t ext_length = extent.length;
    rados_->Execute(
        extent.oid, {op},
        [assembled, pending, first_error, on_data, logical, ext_offset, ext_length,
         snapshot_read](mal::Status status, const osd::OsdOpReply& reply) {
          mal::Status op_status = status;
          mal::Buffer out;
          if (status.ok() && !reply.results.empty()) {
            op_status = reply.results[0].status;
            out = reply.results[0].out;
          }
          if (op_status.code() == mal::Code::kNotFound) {
            // Unwritten region of a sparse image reads as zeros.
            op_status = mal::Status::Ok();
            out = mal::Buffer();
          }
          if (!op_status.ok()) {
            if (first_error->ok()) {
              *first_error = op_status;
            }
          } else {
            // Snapshot reads return the whole object; slice our extent.
            mal::Buffer slice =
                snapshot_read ? out.Read(ext_offset, ext_length) : std::move(out);
            slice.Resize(ext_length);  // zero-pad short objects
            assembled->Write(logical, slice.data(), slice.size());
          }
          if (--*pending == 0) {
            if (first_error->ok()) {
              on_data(mal::Status::Ok(), *assembled);
            } else {
              on_data(*first_error, mal::Buffer());
            }
          }
        });
  }
}

void Image::ReadAt(uint64_t offset, uint64_t length, DataHandler on_data) {
  mal::Status range = CheckRange(offset, length);
  if (!range.ok()) {
    on_data(range, mal::Buffer());
    return;
  }
  ForEachExtent(offset, length, /*snapshot_read=*/false, "", std::move(on_data));
}

void Image::Snapshot(const std::string& snap_name, DoneHandler on_done) {
  if (!open_) {
    on_done(mal::Status::Unavailable("image not open"));
    return;
  }
  // Snapshot every data object (create empty objects for unwritten regions
  // so the snapshot is total), then record the snapshot in the header.
  uint64_t num_objects = (size_ + object_size_ - 1) / object_size_;
  auto pending = std::make_shared<uint64_t>(num_objects);
  auto first_error = std::make_shared<mal::Status>();
  for (uint64_t index = 0; index < num_objects; ++index) {
    std::vector<osd::Op> ops(2);
    ops[0].type = osd::Op::Type::kCreate;
    ops[1].type = osd::Op::Type::kSnapCreate;
    ops[1].key = snap_name;
    rados_->Execute(DataPrefix() + "." + std::to_string(index), std::move(ops),
                    [this, snap_name, pending, first_error, on_done](
                        mal::Status status, const osd::OsdOpReply& reply) {
                      mal::Status op_status = status;
                      if (status.ok()) {
                        for (const osd::OpResult& result : reply.results) {
                          if (!result.status.ok()) {
                            op_status = result.status;
                          }
                        }
                      }
                      if (!op_status.ok() && first_error->ok()) {
                        *first_error = op_status;
                      }
                      if (--*pending != 0) {
                        return;
                      }
                      if (!first_error->ok()) {
                        on_done(*first_error);
                        return;
                      }
                      rados_->OmapSet(HeaderOid(), "snaps." + snap_name, "1", on_done);
                    });
  }
}

void Image::ReadAtSnapshot(const std::string& snap_name, uint64_t offset, uint64_t length,
                           DataHandler on_data) {
  mal::Status range = CheckRange(offset, length);
  if (!range.ok()) {
    on_data(range, mal::Buffer());
    return;
  }
  ForEachExtent(offset, length, /*snapshot_read=*/true, snap_name, std::move(on_data));
}

}  // namespace mal::rbd
