#include "src/script/parser.h"

#include <utility>

#include "src/script/lexer.h"

namespace mal::script {
namespace {

// Binding powers for binary operators (higher binds tighter). Mirrors Lua:
// or < and < comparison < concat < additive < multiplicative < unary < pow.
int LeftBindingPower(TokenType t) {
  switch (t) {
    case TokenType::kOr:
      return 1;
    case TokenType::kAnd:
      return 2;
    case TokenType::kLt:
    case TokenType::kLe:
    case TokenType::kGt:
    case TokenType::kGe:
    case TokenType::kEq:
    case TokenType::kNe:
      return 3;
    case TokenType::kConcat:
      return 4;  // right associative
    case TokenType::kPlus:
    case TokenType::kMinus:
      return 5;
    case TokenType::kStar:
    case TokenType::kSlash:
    case TokenType::kPercent:
      return 6;
    case TokenType::kCaret:
      return 8;  // right associative, binds tighter than unary
    default:
      return 0;
  }
}

BinOp ToBinOp(TokenType t) {
  switch (t) {
    case TokenType::kOr:
      return BinOp::kOr;
    case TokenType::kAnd:
      return BinOp::kAnd;
    case TokenType::kLt:
      return BinOp::kLt;
    case TokenType::kLe:
      return BinOp::kLe;
    case TokenType::kGt:
      return BinOp::kGt;
    case TokenType::kGe:
      return BinOp::kGe;
    case TokenType::kEq:
      return BinOp::kEq;
    case TokenType::kNe:
      return BinOp::kNe;
    case TokenType::kConcat:
      return BinOp::kConcat;
    case TokenType::kPlus:
      return BinOp::kAdd;
    case TokenType::kMinus:
      return BinOp::kSub;
    case TokenType::kStar:
      return BinOp::kMul;
    case TokenType::kSlash:
      return BinOp::kDiv;
    case TokenType::kPercent:
      return BinOp::kMod;
    case TokenType::kCaret:
      return BinOp::kPow;
    default:
      return BinOp::kAdd;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<Block>> ParseChunk() {
    auto block = std::make_shared<Block>();
    Status s = ParseBlockInto(block.get());
    if (!s.ok()) {
      return s;
    }
    if (!Check(TokenType::kEof)) {
      return ErrorHere("unexpected token '" + Peek().text + "'");
    }
    return block;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (Check(t)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ErrorHere(const std::string& msg) const {
    return Status::InvalidArgument("parse error at line " + std::to_string(Peek().line) + ": " +
                                   msg);
  }

  Status Expect(TokenType t, const char* what) {
    if (!Match(t)) {
      return ErrorHere(std::string("expected ") + what + ", got '" + Peek().text + "'");
    }
    return Status::Ok();
  }

  // Does the current token end a block?
  bool BlockEnds() const {
    switch (Peek().type) {
      case TokenType::kEnd:
      case TokenType::kElse:
      case TokenType::kElseif:
      case TokenType::kUntil:
      case TokenType::kEof:
        return true;
      default:
        return false;
    }
  }

  Status ParseBlockInto(Block* block) {
    while (!BlockEnds()) {
      if (Match(TokenType::kSemi)) {
        continue;
      }
      Result<StmtPtr> stmt = ParseStatement();
      if (!stmt.ok()) {
        return stmt.status();
      }
      bool is_return = stmt.value()->kind == Stmt::Kind::kReturn;
      block->stmts.push_back(std::move(stmt).value());
      if (is_return) {
        break;  // return must be the last statement of a block
      }
    }
    return Status::Ok();
  }

  Result<StmtPtr> ParseStatement() {
    int line = Peek().line;
    switch (Peek().type) {
      case TokenType::kIf:
        return ParseIf();
      case TokenType::kWhile:
        return ParseWhile();
      case TokenType::kRepeat:
        return ParseRepeat();
      case TokenType::kFor:
        return ParseFor();
      case TokenType::kFunction:
        return ParseFunctionStatement();
      case TokenType::kLocal:
        return ParseLocal();
      case TokenType::kReturn: {
        Advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kReturn;
        stmt->line = line;
        if (!BlockEnds() && !Check(TokenType::kSemi)) {
          Result<ExprPtr> e = ParseExpr();
          if (!e.ok()) {
            return e.status();
          }
          stmt->expr = std::move(e).value();
        }
        return StmtPtr(std::move(stmt));
      }
      case TokenType::kBreak: {
        Advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kBreak;
        stmt->line = line;
        return StmtPtr(std::move(stmt));
      }
      case TokenType::kDo: {
        Advance();
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = Stmt::Kind::kDo;
        stmt->line = line;
        Status s = ParseBlockInto(&stmt->body);
        if (!s.ok()) {
          return s;
        }
        Status e = Expect(TokenType::kEnd, "'end'");
        if (!e.ok()) {
          return e;
        }
        return StmtPtr(std::move(stmt));
      }
      default:
        return ParseExprStatement();
    }
  }

  // Either a call statement or an assignment (possibly multi-target).
  Result<StmtPtr> ParseExprStatement() {
    int line = Peek().line;
    Result<ExprPtr> first = ParseSuffixedExpr();
    if (!first.ok()) {
      return first.status();
    }
    if (Check(TokenType::kAssign) || Check(TokenType::kComma)) {
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kAssign;
      stmt->line = line;
      stmt->targets.push_back(std::move(first).value());
      while (Match(TokenType::kComma)) {
        Result<ExprPtr> t = ParseSuffixedExpr();
        if (!t.ok()) {
          return t.status();
        }
        stmt->targets.push_back(std::move(t).value());
      }
      for (const ExprPtr& t : stmt->targets) {
        if (t->kind != Expr::Kind::kName && t->kind != Expr::Kind::kIndex) {
          return ErrorHere("cannot assign to this expression");
        }
      }
      Status s = Expect(TokenType::kAssign, "'='");
      if (!s.ok()) {
        return s;
      }
      do {
        Result<ExprPtr> v = ParseExpr();
        if (!v.ok()) {
          return v.status();
        }
        stmt->values.push_back(std::move(v).value());
      } while (Match(TokenType::kComma));
      return StmtPtr(std::move(stmt));
    }
    if (first.value()->kind != Expr::Kind::kCall) {
      return ErrorHere("expression is not a statement (only calls and assignments)");
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->line = line;
    stmt->expr = std::move(first).value();
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseIf() {
    int line = Peek().line;
    Advance();  // if
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = line;
    while (true) {
      Result<ExprPtr> cond = ParseExpr();
      if (!cond.ok()) {
        return cond.status();
      }
      Status s = Expect(TokenType::kThen, "'then'");
      if (!s.ok()) {
        return s;
      }
      stmt->conditions.push_back(std::move(cond).value());
      stmt->blocks.emplace_back();
      Status b = ParseBlockInto(&stmt->blocks.back());
      if (!b.ok()) {
        return b;
      }
      if (Match(TokenType::kElseif)) {
        continue;
      }
      if (Match(TokenType::kElse)) {
        stmt->else_block = std::make_unique<Block>();
        Status e = ParseBlockInto(stmt->else_block.get());
        if (!e.ok()) {
          return e;
        }
      }
      Status e = Expect(TokenType::kEnd, "'end'");
      if (!e.ok()) {
        return e;
      }
      return StmtPtr(std::move(stmt));
    }
  }

  Result<StmtPtr> ParseWhile() {
    int line = Peek().line;
    Advance();  // while
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->line = line;
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) {
      return cond.status();
    }
    stmt->expr = std::move(cond).value();
    Status s = Expect(TokenType::kDo, "'do'");
    if (!s.ok()) {
      return s;
    }
    Status b = ParseBlockInto(&stmt->body);
    if (!b.ok()) {
      return b;
    }
    Status e = Expect(TokenType::kEnd, "'end'");
    if (!e.ok()) {
      return e;
    }
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseRepeat() {
    int line = Peek().line;
    Advance();  // repeat
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kRepeat;
    stmt->line = line;
    Status b = ParseBlockInto(&stmt->body);
    if (!b.ok()) {
      return b;
    }
    Status s = Expect(TokenType::kUntil, "'until'");
    if (!s.ok()) {
      return s;
    }
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) {
      return cond.status();
    }
    stmt->expr = std::move(cond).value();
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseFor() {
    int line = Peek().line;
    Advance();  // for
    if (!Check(TokenType::kName)) {
      return ErrorHere("expected loop variable name");
    }
    std::string first_name = Advance().text;
    if (Match(TokenType::kAssign)) {
      // numeric for
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kNumericFor;
      stmt->line = line;
      stmt->for_var = first_name;
      Result<ExprPtr> start = ParseExpr();
      if (!start.ok()) {
        return start.status();
      }
      stmt->for_start = std::move(start).value();
      Status c = Expect(TokenType::kComma, "','");
      if (!c.ok()) {
        return c;
      }
      Result<ExprPtr> stop = ParseExpr();
      if (!stop.ok()) {
        return stop.status();
      }
      stmt->for_stop = std::move(stop).value();
      if (Match(TokenType::kComma)) {
        Result<ExprPtr> step = ParseExpr();
        if (!step.ok()) {
          return step.status();
        }
        stmt->for_step = std::move(step).value();
      }
      Status s = Expect(TokenType::kDo, "'do'");
      if (!s.ok()) {
        return s;
      }
      Status b = ParseBlockInto(&stmt->body);
      if (!b.ok()) {
        return b;
      }
      Status e = Expect(TokenType::kEnd, "'end'");
      if (!e.ok()) {
        return e;
      }
      return StmtPtr(std::move(stmt));
    }
    // generic for: for k[, v, ...] in expr do ... end
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kGenericFor;
    stmt->line = line;
    stmt->for_names.push_back(first_name);
    while (Match(TokenType::kComma)) {
      if (!Check(TokenType::kName)) {
        return ErrorHere("expected name in for-in list");
      }
      stmt->for_names.push_back(Advance().text);
    }
    Status in = Expect(TokenType::kIn, "'in'");
    if (!in.ok()) {
      return in;
    }
    Result<ExprPtr> iter = ParseExpr();
    if (!iter.ok()) {
      return iter.status();
    }
    stmt->for_iterable = std::move(iter).value();
    Status s = Expect(TokenType::kDo, "'do'");
    if (!s.ok()) {
      return s;
    }
    Status b = ParseBlockInto(&stmt->body);
    if (!b.ok()) {
      return b;
    }
    Status e = Expect(TokenType::kEnd, "'end'");
    if (!e.ok()) {
      return e;
    }
    return StmtPtr(std::move(stmt));
  }

  // function name(...)  /  function a.b.c(...)  — sugar for assignment.
  Result<StmtPtr> ParseFunctionStatement() {
    int line = Peek().line;
    Advance();  // function
    if (!Check(TokenType::kName)) {
      return ErrorHere("expected function name");
    }
    auto target = std::make_unique<Expr>();
    target->kind = Expr::Kind::kName;
    target->line = line;
    target->name = Advance().text;
    ExprPtr lhs = std::move(target);
    while (Match(TokenType::kDot)) {
      if (!Check(TokenType::kName)) {
        return ErrorHere("expected name after '.'");
      }
      auto idx = std::make_unique<Expr>();
      idx->kind = Expr::Kind::kIndex;
      idx->line = line;
      idx->object = std::move(lhs);
      auto key = std::make_unique<Expr>();
      key->kind = Expr::Kind::kString;
      key->line = line;
      key->string_value = Advance().text;
      idx->key = std::move(key);
      lhs = std::move(idx);
    }
    Result<ExprPtr> fn = ParseFunctionBody(line);
    if (!fn.ok()) {
      return fn.status();
    }
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kAssign;
    stmt->line = line;
    stmt->targets.push_back(std::move(lhs));
    stmt->values.push_back(std::move(fn).value());
    return StmtPtr(std::move(stmt));
  }

  Result<StmtPtr> ParseLocal() {
    int line = Peek().line;
    Advance();  // local
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kLocal;
    stmt->line = line;
    if (Match(TokenType::kFunction)) {
      if (!Check(TokenType::kName)) {
        return ErrorHere("expected function name");
      }
      stmt->local_names.push_back(Advance().text);
      Result<ExprPtr> fn = ParseFunctionBody(line);
      if (!fn.ok()) {
        return fn.status();
      }
      stmt->local_values.push_back(std::move(fn).value());
      return StmtPtr(std::move(stmt));
    }
    do {
      if (!Check(TokenType::kName)) {
        return ErrorHere("expected local variable name");
      }
      stmt->local_names.push_back(Advance().text);
    } while (Match(TokenType::kComma));
    if (Match(TokenType::kAssign)) {
      do {
        Result<ExprPtr> v = ParseExpr();
        if (!v.ok()) {
          return v.status();
        }
        stmt->local_values.push_back(std::move(v).value());
      } while (Match(TokenType::kComma));
    }
    return StmtPtr(std::move(stmt));
  }

  // Parses "(params) block end" after the `function` keyword and name.
  Result<ExprPtr> ParseFunctionBody(int line) {
    Status s = Expect(TokenType::kLParen, "'('");
    if (!s.ok()) {
      return s;
    }
    auto fn = std::make_unique<Expr>();
    fn->kind = Expr::Kind::kFunction;
    fn->line = line;
    fn->body = std::make_shared<Block>();
    if (!Check(TokenType::kRParen)) {
      do {
        if (Match(TokenType::kEllipsis)) {
          fn->is_vararg = true;
          break;
        }
        if (!Check(TokenType::kName)) {
          return ErrorHere("expected parameter name");
        }
        fn->params.push_back(Advance().text);
      } while (Match(TokenType::kComma));
    }
    Status rp = Expect(TokenType::kRParen, "')'");
    if (!rp.ok()) {
      return rp;
    }
    Status b = ParseBlockInto(fn->body.get());
    if (!b.ok()) {
      return b;
    }
    Status e = Expect(TokenType::kEnd, "'end'");
    if (!e.ok()) {
      return e;
    }
    return ExprPtr(std::move(fn));
  }

  Result<ExprPtr> ParseExpr(int min_bp = 0) {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr expr = std::move(lhs).value();
    while (true) {
      TokenType op = Peek().type;
      int bp = LeftBindingPower(op);
      if (bp == 0 || bp <= min_bp) {
        return ExprPtr(std::move(expr));
      }
      int line = Peek().line;
      Advance();
      // Left-associative ops parse the rhs at their own power (so an equal-
      // power op breaks out); right-associative ops at one less (so it nests).
      bool right_assoc = (op == TokenType::kConcat || op == TokenType::kCaret);
      Result<ExprPtr> rhs = ParseExpr(right_assoc ? bp - 1 : bp);
      if (!rhs.ok()) {
        return rhs;
      }
      auto bin = std::make_unique<Expr>();
      bin->kind = Expr::Kind::kBinary;
      bin->line = line;
      bin->bin_op = ToBinOp(op);
      bin->lhs = std::move(expr);
      bin->rhs = std::move(rhs).value();
      expr = std::move(bin);
    }
  }

  Result<ExprPtr> ParseUnary() {
    int line = Peek().line;
    UnOp op;
    if (Match(TokenType::kNot)) {
      op = UnOp::kNot;
    } else if (Match(TokenType::kMinus)) {
      op = UnOp::kNeg;
    } else if (Match(TokenType::kHash)) {
      op = UnOp::kLen;
    } else {
      return ParseSuffixedExpr();
    }
    Result<ExprPtr> operand = ParseExpr(6);  // unary binds tighter than * /
    if (!operand.ok()) {
      return operand;
    }
    auto un = std::make_unique<Expr>();
    un->kind = Expr::Kind::kUnary;
    un->line = line;
    un->un_op = op;
    un->lhs = std::move(operand).value();
    return ExprPtr(std::move(un));
  }

  // primary expr followed by [index], .field, (args) suffixes.
  Result<ExprPtr> ParseSuffixedExpr() {
    Result<ExprPtr> primary = ParsePrimary();
    if (!primary.ok()) {
      return primary;
    }
    ExprPtr expr = std::move(primary).value();
    while (true) {
      int line = Peek().line;
      if (Match(TokenType::kDot)) {
        if (!Check(TokenType::kName)) {
          return ErrorHere("expected field name after '.'");
        }
        auto idx = std::make_unique<Expr>();
        idx->kind = Expr::Kind::kIndex;
        idx->line = line;
        idx->object = std::move(expr);
        auto key = std::make_unique<Expr>();
        key->kind = Expr::Kind::kString;
        key->line = line;
        key->string_value = Advance().text;
        idx->key = std::move(key);
        expr = std::move(idx);
      } else if (Match(TokenType::kLBracket)) {
        Result<ExprPtr> key = ParseExpr();
        if (!key.ok()) {
          return key;
        }
        Status s = Expect(TokenType::kRBracket, "']'");
        if (!s.ok()) {
          return s;
        }
        auto idx = std::make_unique<Expr>();
        idx->kind = Expr::Kind::kIndex;
        idx->line = line;
        idx->object = std::move(expr);
        idx->key = std::move(key).value();
        expr = std::move(idx);
      } else if (Check(TokenType::kLParen) || Check(TokenType::kString)) {
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::kCall;
        call->line = line;
        call->callee = std::move(expr);
        if (Check(TokenType::kString)) {
          // f "literal" sugar
          auto arg = std::make_unique<Expr>();
          arg->kind = Expr::Kind::kString;
          arg->line = line;
          arg->string_value = Advance().text;
          call->args.push_back(std::move(arg));
        } else {
          Advance();  // (
          if (!Check(TokenType::kRParen)) {
            do {
              Result<ExprPtr> a = ParseExpr();
              if (!a.ok()) {
                return a;
              }
              call->args.push_back(std::move(a).value());
            } while (Match(TokenType::kComma));
          }
          Status s = Expect(TokenType::kRParen, "')'");
          if (!s.ok()) {
            return s;
          }
        }
        expr = std::move(call);
      } else {
        return ExprPtr(std::move(expr));
      }
    }
  }

  Result<ExprPtr> ParsePrimary() {
    int line = Peek().line;
    auto make = [line](Expr::Kind k) {
      auto e = std::make_unique<Expr>();
      e->kind = k;
      e->line = line;
      return e;
    };
    switch (Peek().type) {
      case TokenType::kNil:
        Advance();
        return ExprPtr(make(Expr::Kind::kNil));
      case TokenType::kTrue:
        Advance();
        return ExprPtr(make(Expr::Kind::kTrue));
      case TokenType::kFalse:
        Advance();
        return ExprPtr(make(Expr::Kind::kFalse));
      case TokenType::kEllipsis:
        Advance();
        return ExprPtr(make(Expr::Kind::kVararg));
      case TokenType::kNumber: {
        auto e = make(Expr::Kind::kNumber);
        e->number = Advance().number;
        return ExprPtr(std::move(e));
      }
      case TokenType::kString: {
        auto e = make(Expr::Kind::kString);
        e->string_value = Advance().text;
        return ExprPtr(std::move(e));
      }
      case TokenType::kName: {
        auto e = make(Expr::Kind::kName);
        e->name = Advance().text;
        return ExprPtr(std::move(e));
      }
      case TokenType::kLParen: {
        Advance();
        Result<ExprPtr> inner = ParseExpr();
        if (!inner.ok()) {
          return inner;
        }
        Status s = Expect(TokenType::kRParen, "')'");
        if (!s.ok()) {
          return s;
        }
        return inner;
      }
      case TokenType::kFunction: {
        Advance();
        return ParseFunctionBody(line);
      }
      case TokenType::kLBrace:
        return ParseTableCtor();
      default:
        return ErrorHere("unexpected token '" + Peek().text + "' in expression");
    }
  }

  Result<ExprPtr> ParseTableCtor() {
    int line = Peek().line;
    Advance();  // {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kTableCtor;
    e->line = line;
    while (!Check(TokenType::kRBrace)) {
      if (Check(TokenType::kLBracket)) {
        Advance();
        Result<ExprPtr> key = ParseExpr();
        if (!key.ok()) {
          return key;
        }
        Status s = Expect(TokenType::kRBracket, "']'");
        if (!s.ok()) {
          return s;
        }
        Status a = Expect(TokenType::kAssign, "'='");
        if (!a.ok()) {
          return a;
        }
        Result<ExprPtr> value = ParseExpr();
        if (!value.ok()) {
          return value;
        }
        e->fields.emplace_back(std::move(key).value(), std::move(value).value());
      } else if (Check(TokenType::kName) && Peek(1).type == TokenType::kAssign) {
        auto key = std::make_unique<Expr>();
        key->kind = Expr::Kind::kString;
        key->line = Peek().line;
        key->string_value = Advance().text;
        Advance();  // =
        Result<ExprPtr> value = ParseExpr();
        if (!value.ok()) {
          return value;
        }
        e->fields.emplace_back(std::move(key), std::move(value).value());
      } else {
        Result<ExprPtr> item = ParseExpr();
        if (!item.ok()) {
          return item;
        }
        e->array_items.push_back(std::move(item).value());
      }
      if (!Match(TokenType::kComma) && !Match(TokenType::kSemi)) {
        break;
      }
    }
    Status s = Expect(TokenType::kRBrace, "'}'");
    if (!s.ok()) {
      return s;
    }
    return ExprPtr(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<Block>> Parse(const std::string& source) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) {
    return tokens.status();
  }
  return Parser(std::move(tokens).value()).ParseChunk();
}

}  // namespace mal::script
