// Dispatch-loop register VM for MalScript bytecode (see bytecode.h for the
// instruction set and docs/malscript_vm.md for the design).
//
// One Vm per Interpreter: it owns the shared value stack (frames are base
// offsets into it) and the per-chunk inline-cache state. Budget and call-
// depth accounting share the interpreter's counters with the tree-walking
// oracle, so mixed-engine call chains keep the same sandbox limits.
#ifndef MALACOLOGY_SCRIPT_VM_H_
#define MALACOLOGY_SCRIPT_VM_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/script/bytecode.h"
#include "src/script/interpreter.h"
#include "src/script/value.h"

namespace mal::script {

class Vm {
 public:
  explicit Vm(Interpreter* interp) : interp_(interp) {}

  // Executes a chunk's top-level proto against the interpreter's globals.
  Status RunChunk(const std::shared_ptr<const CompiledChunk>& chunk);

  // Calls a compiled-form closure with already-evaluated arguments (host
  // bridges and the tree-walker enter compiled code through this).
  Result<Value> CallClosure(const Value& callee, const std::vector<Value>& args,
                            int line);

 private:
  // Inline-cache entry for a `t.field` / constant-key site. `shape == 0`
  // never matches a live table; a hit with a null slot is a cached absence
  // (sound because inserting the key bumps the table's shape).
  struct FieldIc {
    uint64_t shape = 0;
    Value* slot = nullptr;
  };

  // Per-(interpreter × chunk) cache state. Chunks are shared across
  // interpreters via the compile cache, so IC state cannot live in the chunk
  // itself. `pin` keeps the chunk alive while cached slot pointers exist.
  struct ChunkState {
    std::shared_ptr<const CompiledChunk> pin;
    std::vector<Value*> global_slots;  // cached globals-map nodes, by name id
    std::vector<FieldIc> field_ics;
  };

  struct IterState {
    std::vector<std::pair<TableKey, Value>> entries;
    size_t pos = 0;
  };

  ChunkState& StateFor(const std::shared_ptr<const CompiledChunk>& chunk);

  // Invokes a compiled closure whose arguments are already on the stack at
  // [child_base, child_base + nargs). Takes a raw pointer so the hot
  // compiled-to-compiled call path never touches the shared_ptr refcount:
  // the caller's register (or the host bridge's Value) pins the closure for
  // the duration of the call, and a stack_ resize moves the register's Value
  // but never the heap Closure it points at.
  // The return value travels through *out rather than a Result<Value>: the
  // out-slot is a C++ stack local in the caller (stable across stack_
  // resizes), and skipping the variant wrap/unwrap is measurable on the
  // per-call fast path.
  Status CallCompiled(const Closure* closure, size_t child_base, size_t nargs,
                      int line, Value* out);

  // Routes a kCall to the right engine (host fn / compiled closure / AST
  // closure via the tree-walker).
  Result<Value> DispatchCall(const Value& callee, size_t argbase, size_t nargs, int line);

  Status Execute(const std::shared_ptr<const CompiledChunk>& chunk_sp,
                 ChunkState& cs, const Proto& proto, const Closure* closure,
                 size_t base, size_t nargs, Value* out);

  Interpreter* interp_;
  std::vector<Value> stack_;
  size_t top_ = 0;  // first free stack slot above the active frames
  std::map<const CompiledChunk*, std::unique_ptr<ChunkState>> states_;
  const CompiledChunk* last_chunk_ = nullptr;  // one-entry StateFor cache
  ChunkState* last_state_ = nullptr;
};

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_VM_H_
