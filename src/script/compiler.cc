#include "src/script/compiler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mal::script {
namespace {

// Registers/cells/iterator slots are uint16 operands; stay well clear of the
// ceiling so arithmetic on windows (call bases, control triples) cannot wrap.
constexpr int kMaxRegs = 60000;
constexpr int kMaxSlots = 60000;
constexpr size_t kMaxFieldKeys = 65000;

uint64_t DoubleBits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// Names declared by `local` statements directly in a block's statement list
// (not nested blocks). This is the walker's "whole scope" declaration set:
// a nested function referencing one of these resolves to this scope no
// matter where in the block the declaration sits.
std::set<std::string> TopLocals(const Block& b) {
  std::set<std::string> names;
  for (const StmtPtr& stmt : b.stmts) {
    if (stmt->kind == Stmt::Kind::kLocal) {
      for (const std::string& n : stmt->local_names) {
        names.insert(n);
      }
    }
  }
  return names;
}

// ---------------------------------------------------------------------------
// Capture analysis.
//
// Two passes over each function body:
//  - FreeOf(fn): the set of names a function expression references but does
//    not bind itself (directly or through its own nested functions).
//  - Analyze(): walks each function's scopes and, for every nested function,
//    resolves its free names against the enclosing scopes' declaration sets;
//    a hit marks that (scope, name) as captured, so the compiler gives the
//    name a heap cell instead of a register.
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  // Block* -> names that must live in cells because a nested function
  // captures them.
  std::map<const Block*, std::set<std::string>> captured;

  void AnalyzeChunk(const Block& chunk) {
    std::vector<AScope> stack;
    stack.push_back(AScope{&chunk, /*is_globals=*/true, {}});
    WalkBlockB(chunk, stack);
  }

 private:
  // --- pass A: free names of a function expression -------------------------

  struct FScope {
    std::set<std::string> decls;   // whole-scope declarations
    std::set<std::string> active;  // positionally activated so far
  };

  std::map<const Expr*, std::set<std::string>> free_memo_;

  const std::set<std::string>& FreeOf(const Expr& fn) {
    auto it = free_memo_.find(&fn);
    if (it != free_memo_.end()) {
      return it->second;
    }
    std::set<std::string> free;
    std::vector<FScope> stack;
    FScope top;
    for (const std::string& p : fn.params) {
      top.decls.insert(p);
      top.active.insert(p);
    }
    if (fn.is_vararg) {
      top.decls.insert("arg");
      top.active.insert("arg");
    }
    for (const std::string& n : TopLocals(*fn.body)) {
      top.decls.insert(n);
    }
    stack.push_back(std::move(top));
    WalkBlockA(*fn.body, stack, free);
    return free_memo_[&fn] = std::move(free);
  }

  static void RefA(const std::string& name, std::vector<FScope>& stack,
                   std::set<std::string>& free) {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->active.count(name) != 0) {
        return;
      }
    }
    free.insert(name);
  }

  void NestedFnA(const Expr& fn, std::vector<FScope>& stack, std::set<std::string>& free) {
    for (const std::string& n : FreeOf(fn)) {
      bool bound = false;
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->decls.count(n) != 0) {
          bound = true;
          break;
        }
      }
      if (!bound) {
        free.insert(n);
      }
    }
  }

  void WalkExprA(const Expr& e, std::vector<FScope>& stack, std::set<std::string>& free) {
    switch (e.kind) {
      case Expr::Kind::kNil:
      case Expr::Kind::kTrue:
      case Expr::Kind::kFalse:
      case Expr::Kind::kNumber:
      case Expr::Kind::kString:
        return;
      case Expr::Kind::kVararg:
        RefA("arg", stack, free);
        return;
      case Expr::Kind::kName:
        RefA(e.name, stack, free);
        return;
      case Expr::Kind::kIndex:
        WalkExprA(*e.object, stack, free);
        WalkExprA(*e.key, stack, free);
        return;
      case Expr::Kind::kBinary:
        WalkExprA(*e.lhs, stack, free);
        WalkExprA(*e.rhs, stack, free);
        return;
      case Expr::Kind::kUnary:
        WalkExprA(*e.lhs, stack, free);
        return;
      case Expr::Kind::kCall:
        WalkExprA(*e.callee, stack, free);
        for (const ExprPtr& a : e.args) {
          WalkExprA(*a, stack, free);
        }
        return;
      case Expr::Kind::kFunction:
        NestedFnA(e, stack, free);
        return;
      case Expr::Kind::kTableCtor:
        for (const ExprPtr& item : e.array_items) {
          WalkExprA(*item, stack, free);
        }
        for (const auto& [k, v] : e.fields) {
          WalkExprA(*k, stack, free);
          WalkExprA(*v, stack, free);
        }
        return;
    }
  }

  void PushBlockScopeA(const Block& b, std::vector<FScope>& stack,
                       const std::vector<std::string>& pre_active) {
    FScope s;
    s.decls = TopLocals(b);
    for (const std::string& n : pre_active) {
      s.decls.insert(n);
      s.active.insert(n);
    }
    stack.push_back(std::move(s));
  }

  void WalkBlockA(const Block& b, std::vector<FScope>& stack, std::set<std::string>& free) {
    for (const StmtPtr& sp : b.stmts) {
      const Stmt& s = *sp;
      switch (s.kind) {
        case Stmt::Kind::kExpr:
        case Stmt::Kind::kReturn:
          if (s.expr != nullptr) {
            WalkExprA(*s.expr, stack, free);
          }
          break;
        case Stmt::Kind::kAssign:
          for (const ExprPtr& v : s.values) {
            WalkExprA(*v, stack, free);
          }
          for (const ExprPtr& t : s.targets) {
            if (t->kind == Expr::Kind::kName) {
              RefA(t->name, stack, free);
            } else {
              WalkExprA(*t, stack, free);
            }
          }
          break;
        case Stmt::Kind::kLocal:
          for (const ExprPtr& v : s.local_values) {
            WalkExprA(*v, stack, free);
          }
          for (const std::string& n : s.local_names) {
            stack.back().active.insert(n);
          }
          break;
        case Stmt::Kind::kIf:
          for (size_t i = 0; i < s.conditions.size(); ++i) {
            WalkExprA(*s.conditions[i], stack, free);
            PushBlockScopeA(s.blocks[i], stack, {});
            WalkBlockA(s.blocks[i], stack, free);
            stack.pop_back();
          }
          if (s.else_block != nullptr) {
            PushBlockScopeA(*s.else_block, stack, {});
            WalkBlockA(*s.else_block, stack, free);
            stack.pop_back();
          }
          break;
        case Stmt::Kind::kWhile:
          WalkExprA(*s.expr, stack, free);
          PushBlockScopeA(s.body, stack, {});
          WalkBlockA(s.body, stack, free);
          stack.pop_back();
          break;
        case Stmt::Kind::kRepeat:
          PushBlockScopeA(s.body, stack, {});
          WalkBlockA(s.body, stack, free);
          WalkExprA(*s.expr, stack, free);  // until-cond sees body locals
          stack.pop_back();
          break;
        case Stmt::Kind::kNumericFor:
          WalkExprA(*s.for_start, stack, free);
          WalkExprA(*s.for_stop, stack, free);
          if (s.for_step != nullptr) {
            WalkExprA(*s.for_step, stack, free);
          }
          PushBlockScopeA(s.body, stack, {s.for_var});
          WalkBlockA(s.body, stack, free);
          stack.pop_back();
          break;
        case Stmt::Kind::kGenericFor: {
          WalkExprA(*s.for_iterable, stack, free);
          std::vector<std::string> vars(
              s.for_names.begin(),
              s.for_names.begin() +
                  static_cast<long>(std::min<size_t>(2, s.for_names.size())));
          PushBlockScopeA(s.body, stack, vars);
          WalkBlockA(s.body, stack, free);
          stack.pop_back();
          break;
        }
        case Stmt::Kind::kBreak:
          break;
        case Stmt::Kind::kDo:
          PushBlockScopeA(s.body, stack, {});
          WalkBlockA(s.body, stack, free);
          stack.pop_back();
          break;
      }
    }
  }

  // --- pass B: mark captured (scope, name) pairs ---------------------------

  struct AScope {
    const Block* block;
    bool is_globals;
    std::set<std::string> decls;
  };

  void MarkCapturesFor(const Expr& fn, std::vector<AScope>& stack) {
    for (const std::string& n : FreeOf(fn)) {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->is_globals) {
          break;  // resolves as a global
        }
        if (it->decls.count(n) != 0) {
          captured[it->block].insert(n);
          break;
        }
      }
    }
  }

  void AnalyzeFunction(const Expr& fn) {
    std::vector<AScope> stack;
    AScope top;
    top.block = fn.body.get();
    top.is_globals = false;
    for (const std::string& p : fn.params) {
      top.decls.insert(p);
    }
    if (fn.is_vararg) {
      top.decls.insert("arg");
    }
    for (const std::string& n : TopLocals(*fn.body)) {
      top.decls.insert(n);
    }
    stack.push_back(std::move(top));
    WalkBlockB(*fn.body, stack);
  }

  void WalkExprB(const Expr& e, std::vector<AScope>& stack) {
    switch (e.kind) {
      case Expr::Kind::kNil:
      case Expr::Kind::kTrue:
      case Expr::Kind::kFalse:
      case Expr::Kind::kNumber:
      case Expr::Kind::kString:
      case Expr::Kind::kVararg:
      case Expr::Kind::kName:
        return;
      case Expr::Kind::kIndex:
        WalkExprB(*e.object, stack);
        WalkExprB(*e.key, stack);
        return;
      case Expr::Kind::kBinary:
        WalkExprB(*e.lhs, stack);
        WalkExprB(*e.rhs, stack);
        return;
      case Expr::Kind::kUnary:
        WalkExprB(*e.lhs, stack);
        return;
      case Expr::Kind::kCall:
        WalkExprB(*e.callee, stack);
        for (const ExprPtr& a : e.args) {
          WalkExprB(*a, stack);
        }
        return;
      case Expr::Kind::kFunction:
        MarkCapturesFor(e, stack);
        AnalyzeFunction(e);
        return;
      case Expr::Kind::kTableCtor:
        for (const ExprPtr& item : e.array_items) {
          WalkExprB(*item, stack);
        }
        for (const auto& [k, v] : e.fields) {
          WalkExprB(*k, stack);
          WalkExprB(*v, stack);
        }
        return;
    }
  }

  void PushBlockScopeB(const Block& b, std::vector<AScope>& stack,
                       const std::vector<std::string>& extra_decls) {
    AScope s;
    s.block = &b;
    s.is_globals = false;
    s.decls = TopLocals(b);
    for (const std::string& n : extra_decls) {
      s.decls.insert(n);
    }
    stack.push_back(std::move(s));
  }

  void WalkBlockB(const Block& b, std::vector<AScope>& stack) {
    for (const StmtPtr& sp : b.stmts) {
      const Stmt& s = *sp;
      switch (s.kind) {
        case Stmt::Kind::kExpr:
        case Stmt::Kind::kReturn:
          if (s.expr != nullptr) {
            WalkExprB(*s.expr, stack);
          }
          break;
        case Stmt::Kind::kAssign:
          for (const ExprPtr& v : s.values) {
            WalkExprB(*v, stack);
          }
          for (const ExprPtr& t : s.targets) {
            if (t->kind != Expr::Kind::kName) {
              WalkExprB(*t, stack);
            }
          }
          break;
        case Stmt::Kind::kLocal:
          for (const ExprPtr& v : s.local_values) {
            WalkExprB(*v, stack);
          }
          break;
        case Stmt::Kind::kIf:
          for (size_t i = 0; i < s.conditions.size(); ++i) {
            WalkExprB(*s.conditions[i], stack);
            PushBlockScopeB(s.blocks[i], stack, {});
            WalkBlockB(s.blocks[i], stack);
            stack.pop_back();
          }
          if (s.else_block != nullptr) {
            PushBlockScopeB(*s.else_block, stack, {});
            WalkBlockB(*s.else_block, stack);
            stack.pop_back();
          }
          break;
        case Stmt::Kind::kWhile:
          WalkExprB(*s.expr, stack);
          PushBlockScopeB(s.body, stack, {});
          WalkBlockB(s.body, stack);
          stack.pop_back();
          break;
        case Stmt::Kind::kRepeat:
          PushBlockScopeB(s.body, stack, {});
          WalkBlockB(s.body, stack);
          WalkExprB(*s.expr, stack);
          stack.pop_back();
          break;
        case Stmt::Kind::kNumericFor:
          WalkExprB(*s.for_start, stack);
          WalkExprB(*s.for_stop, stack);
          if (s.for_step != nullptr) {
            WalkExprB(*s.for_step, stack);
          }
          PushBlockScopeB(s.body, stack, {s.for_var});
          WalkBlockB(s.body, stack);
          stack.pop_back();
          break;
        case Stmt::Kind::kGenericFor: {
          WalkExprB(*s.for_iterable, stack);
          std::vector<std::string> vars(
              s.for_names.begin(),
              s.for_names.begin() +
                  static_cast<long>(std::min<size_t>(2, s.for_names.size())));
          PushBlockScopeB(s.body, stack, vars);
          WalkBlockB(s.body, stack);
          stack.pop_back();
          break;
        }
        case Stmt::Kind::kBreak:
          break;
        case Stmt::Kind::kDo:
          PushBlockScopeB(s.body, stack, {});
          WalkBlockB(s.body, stack);
          stack.pop_back();
          break;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Bytecode generation.
// ---------------------------------------------------------------------------

struct Binding {
  bool is_cell = false;
  uint16_t index = 0;  // register or cell slot
};

struct Scope {
  const Block* block = nullptr;
  bool is_globals = false;
  std::set<std::string> decls;  // whole-scope declarations (upvalue lookups)
  std::map<std::string, uint16_t> cell_slots;
  std::map<std::string, Binding> active;  // positionally activated bindings
  int reg_watermark = 0;
};

struct LoopCtx {
  std::vector<size_t> break_jumps;
};

struct FuncState {
  FuncState* parent = nullptr;
  Proto* proto = nullptr;
  std::vector<Scope> scopes;
  std::vector<LoopCtx> loops;
  std::map<std::string, uint16_t> upval_ids;
  int next_reg = 0;
  int max_reg = 0;
  int next_cell = 0;
  int next_iter = 0;
};

enum class NameKind { kReg, kCell, kUpval, kGlobal };

struct NameRef {
  NameKind kind;
  int32_t index;
};

class Compiler {
 public:
  Result<std::shared_ptr<const CompiledChunk>> Compile(const Block& chunk) {
    analyzer_.AnalyzeChunk(chunk);
    auto out = std::make_shared<CompiledChunk>();
    out_ = out.get();

    out_->protos.push_back(std::make_unique<Proto>());
    FuncState fs;
    fs.proto = out_->protos[0].get();
    Scope globals;
    globals.block = &chunk;
    globals.is_globals = true;
    fs.scopes.push_back(std::move(globals));
    CompileBlock(fs, chunk);
    Emit(fs, Op::kReturnNil);
    FinishProto(fs);

    if (failed_) {
      return error_;
    }
    return std::shared_ptr<const CompiledChunk>(std::move(out));
  }

 private:
  Analyzer analyzer_;
  CompiledChunk* out_ = nullptr;
  std::map<std::string, int32_t> global_ids_;
  std::map<std::string, int32_t> str_consts_;
  std::map<uint64_t, int32_t> num_consts_;  // keyed by bit pattern (-0, NaN)
  std::map<std::string, uint16_t> str_field_keys_;
  std::map<uint64_t, uint16_t> num_field_keys_;
  bool failed_ = false;
  Status error_ = Status::Ok();

  void Fail(const std::string& msg) {
    if (!failed_) {
      failed_ = true;
      error_ = Status::InvalidArgument("bytecode compile: " + msg);
    }
  }

  // --- emission helpers ----------------------------------------------------

  size_t Emit(FuncState& fs, Op op, uint16_t a = 0, uint16_t b = 0, uint16_t c = 0,
              int32_t d = 0, int32_t line = 0) {
    size_t at = fs.proto->code.size();
    fs.proto->code.push_back(Instr{op, a, b, c, d, line});
    return at;
  }

  void PatchJump(FuncState& fs, size_t at) {
    fs.proto->code[at].d = static_cast<int32_t>(fs.proto->code.size());
  }

  uint16_t AllocReg(FuncState& fs) {
    if (fs.next_reg >= kMaxRegs) {
      Fail("register overflow");
      return 0;
    }
    int r = fs.next_reg++;
    if (fs.next_reg > fs.max_reg) {
      fs.max_reg = fs.next_reg;
    }
    return static_cast<uint16_t>(r);
  }

  void FreeTo(FuncState& fs, int mark) { fs.next_reg = mark; }

  void FinishProto(FuncState& fs) {
    fs.proto->num_regs = static_cast<uint16_t>(fs.max_reg);
    fs.proto->num_cells = static_cast<uint16_t>(fs.next_cell);
    fs.proto->num_iters = static_cast<uint16_t>(fs.next_iter);
  }

  // --- pools ---------------------------------------------------------------

  int32_t NumConst(double d) {
    auto [it, inserted] = num_consts_.try_emplace(DoubleBits(d), 0);
    if (inserted) {
      it->second = static_cast<int32_t>(out_->consts.size());
      out_->consts.push_back(Value(d));
    }
    return it->second;
  }

  int32_t StrConst(const std::string& s) {
    auto [it, inserted] = str_consts_.try_emplace(s, 0);
    if (inserted) {
      it->second = static_cast<int32_t>(out_->consts.size());
      out_->consts.push_back(Value(s));
    }
    return it->second;
  }

  int32_t GlobalId(const std::string& name) {
    auto [it, inserted] = global_ids_.try_emplace(name, 0);
    if (inserted) {
      it->second = static_cast<int32_t>(out_->global_names.size());
      out_->global_names.push_back(name);
    }
    return it->second;
  }

  // Field-key pool id for a folded constant key, or nullopt when the key must
  // go through the dynamic path (NaN keys break TableKey ordering the same
  // way they do in the walker, so we leave them to the shared Table code).
  std::optional<uint16_t> FieldKeyId(const Value& key) {
    if (key.is_string()) {
      auto [it, inserted] = str_field_keys_.try_emplace(key.as_string(), 0);
      if (inserted) {
        if (out_->field_keys.size() >= kMaxFieldKeys) {
          Fail("field key overflow");
          return std::nullopt;
        }
        it->second = static_cast<uint16_t>(out_->field_keys.size());
        out_->field_keys.push_back(TableKey(key.as_string()));
      }
      return it->second;
    }
    if (key.is_number() && !std::isnan(key.as_number())) {
      auto [it, inserted] = num_field_keys_.try_emplace(DoubleBits(key.as_number()), 0);
      if (inserted) {
        if (out_->field_keys.size() >= kMaxFieldKeys) {
          Fail("field key overflow");
          return std::nullopt;
        }
        it->second = static_cast<uint16_t>(out_->field_keys.size());
        out_->field_keys.push_back(TableKey(key.as_number()));
      }
      return it->second;
    }
    return std::nullopt;
  }

  int32_t AllocIc() { return static_cast<int32_t>(out_->num_field_ics++); }

  // --- constant folding ----------------------------------------------------

  // Returns the value `e` evaluates to when that is knowable at compile time
  // without side effects or errors; identical arithmetic expressions to the
  // walker so folded results are bit-for-bit what the oracle computes.
  std::optional<Value> Fold(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNil:
        return Value::Nil();
      case Expr::Kind::kTrue:
        return Value(true);
      case Expr::Kind::kFalse:
        return Value(false);
      case Expr::Kind::kNumber:
        return Value(e.number);
      case Expr::Kind::kString:
        return Value(e.string_value);
      case Expr::Kind::kUnary: {
        std::optional<Value> v = Fold(*e.lhs);
        if (!v.has_value()) {
          return std::nullopt;
        }
        switch (e.un_op) {
          case UnOp::kNeg:
            if (v->is_number()) {
              return Value(-v->as_number());
            }
            return std::nullopt;  // runtime error; keep the walker's message
          case UnOp::kNot:
            return Value(!v->Truthy());
          case UnOp::kLen:
            if (v->is_string()) {
              return Value(static_cast<double>(v->as_string().size()));
            }
            return std::nullopt;
        }
        return std::nullopt;
      }
      case Expr::Kind::kBinary: {
        if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
          std::optional<Value> a = Fold(*e.lhs);
          if (!a.has_value()) {
            return std::nullopt;
          }
          bool t = a->Truthy();
          if (e.bin_op == BinOp::kAnd) {
            return t ? Fold(*e.rhs) : a;
          }
          return t ? a : Fold(*e.rhs);
        }
        std::optional<Value> a = Fold(*e.lhs);
        if (!a.has_value()) {
          return std::nullopt;
        }
        std::optional<Value> b = Fold(*e.rhs);
        if (!b.has_value()) {
          return std::nullopt;
        }
        switch (e.bin_op) {
          case BinOp::kEq:
            return Value(a->Equals(*b));
          case BinOp::kNe:
            return Value(!a->Equals(*b));
          case BinOp::kConcat:
            if ((a->is_string() || a->is_number()) && (b->is_string() || b->is_number())) {
              return Value(a->ToString() + b->ToString());
            }
            return std::nullopt;
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe: {
            if (a->is_number() && b->is_number()) {
              double x = a->as_number();
              double y = b->as_number();
              switch (e.bin_op) {
                case BinOp::kLt:
                  return Value(x < y);
                case BinOp::kLe:
                  return Value(x <= y);
                case BinOp::kGt:
                  return Value(x > y);
                default:
                  return Value(x >= y);
              }
            }
            if (a->is_string() && b->is_string()) {
              int cmp = a->as_string().compare(b->as_string());
              switch (e.bin_op) {
                case BinOp::kLt:
                  return Value(cmp < 0);
                case BinOp::kLe:
                  return Value(cmp <= 0);
                case BinOp::kGt:
                  return Value(cmp > 0);
                default:
                  return Value(cmp >= 0);
              }
            }
            return std::nullopt;
          }
          default:
            break;
        }
        if (!a->is_number() || !b->is_number()) {
          return std::nullopt;
        }
        double x = a->as_number();
        double y = b->as_number();
        switch (e.bin_op) {
          case BinOp::kAdd:
            return Value(x + y);
          case BinOp::kSub:
            return Value(x - y);
          case BinOp::kMul:
            return Value(x * y);
          case BinOp::kDiv:
            return Value(x / y);
          case BinOp::kMod:
            return Value(x - std::floor(x / y) * y);
          case BinOp::kPow:
            return Value(std::pow(x, y));
          default:
            return std::nullopt;
        }
      }
      default:
        return std::nullopt;
    }
  }

  void LoadConstVal(FuncState& fs, uint16_t dst, const Value& v, int line) {
    if (v.is_nil()) {
      Emit(fs, Op::kLoadNil, dst, 0, 0, 0, line);
    } else if (v.is_bool()) {
      Emit(fs, Op::kLoadBool, dst, v.as_bool() ? 1 : 0, 0, 0, line);
    } else if (v.is_number()) {
      Emit(fs, Op::kLoadK, dst, 0, 0, NumConst(v.as_number()), line);
    } else {
      Emit(fs, Op::kLoadK, dst, 0, 0, StrConst(v.as_string()), line);
    }
  }

  // Effect-free, error-free expressions: evaluating them cannot change
  // observable behavior, so instruction order around them is flexible
  // (used to skip kCheckTable before simple dynamic keys).
  static bool IsSimple(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNil:
      case Expr::Kind::kTrue:
      case Expr::Kind::kFalse:
      case Expr::Kind::kNumber:
      case Expr::Kind::kString:
      case Expr::Kind::kName:
      case Expr::Kind::kVararg:
        return true;
      default:
        return false;
    }
  }

  // --- scopes and name resolution ------------------------------------------

  void OpenScope(FuncState& fs, const Block& block,
                 const std::vector<std::string>& extra_decls) {
    Scope s;
    s.block = &block;
    s.decls = TopLocals(block);
    for (const std::string& n : extra_decls) {
      s.decls.insert(n);
    }
    s.reg_watermark = fs.next_reg;
    auto cap = analyzer_.captured.find(&block);
    if (cap != analyzer_.captured.end()) {
      for (const std::string& n : cap->second) {
        if (fs.next_cell >= kMaxSlots) {
          Fail("cell overflow");
          return;
        }
        uint16_t slot = static_cast<uint16_t>(fs.next_cell++);
        s.cell_slots[n] = slot;
        Emit(fs, Op::kNewCell, 0, slot);
      }
    }
    fs.scopes.push_back(std::move(s));
  }

  void CloseScope(FuncState& fs) {
    FreeTo(fs, fs.scopes.back().reg_watermark);
    fs.scopes.pop_back();
  }

  NameRef Resolve(FuncState& fs, const std::string& name) {
    for (auto it = fs.scopes.rbegin(); it != fs.scopes.rend(); ++it) {
      if (it->is_globals) {
        break;  // top-level chunk locals are globals
      }
      auto b = it->active.find(name);
      if (b != it->active.end()) {
        return NameRef{b->second.is_cell ? NameKind::kCell : NameKind::kReg,
                       b->second.index};
      }
    }
    if (fs.parent != nullptr) {
      int32_t uv = ResolveUpval(fs, name);
      if (uv >= 0) {
        return NameRef{NameKind::kUpval, uv};
      }
    }
    return NameRef{NameKind::kGlobal, GlobalId(name)};
  }

  // Returns this function's upvalue index for `name`, or -1 when no enclosing
  // function declares it (global). The analyzer guarantees any name found
  // here has a cell in its declaring scope.
  int32_t ResolveUpval(FuncState& fs, const std::string& name) {
    auto cached = fs.upval_ids.find(name);
    if (cached != fs.upval_ids.end()) {
      return cached->second;
    }
    FuncState* p = fs.parent;
    if (p == nullptr) {
      return -1;
    }
    for (auto it = p->scopes.rbegin(); it != p->scopes.rend(); ++it) {
      if (it->is_globals) {
        break;
      }
      if (it->decls.count(name) != 0) {
        auto slot = it->cell_slots.find(name);
        if (slot == it->cell_slots.end()) {
          Fail("capture analysis missed '" + name + "'");
          return -1;
        }
        uint16_t idx = static_cast<uint16_t>(fs.proto->upvals.size());
        fs.proto->upvals.push_back(
            UpvalDesc{UpvalDesc::Src::kParentCell, slot->second});
        fs.upval_ids[name] = idx;
        return idx;
      }
    }
    int32_t up = ResolveUpval(*p, name);
    if (up < 0) {
      return -1;
    }
    uint16_t idx = static_cast<uint16_t>(fs.proto->upvals.size());
    fs.proto->upvals.push_back(
        UpvalDesc{UpvalDesc::Src::kParentUpval, static_cast<uint16_t>(up)});
    fs.upval_ids[name] = idx;
    return idx;
  }

  void LoadName(FuncState& fs, uint16_t dst, const std::string& name, int line) {
    NameRef r = Resolve(fs, name);
    switch (r.kind) {
      case NameKind::kReg:
        if (r.index != dst) {
          Emit(fs, Op::kMove, dst, static_cast<uint16_t>(r.index), 0, 0, line);
        }
        return;
      case NameKind::kCell:
        Emit(fs, Op::kGetCell, dst, static_cast<uint16_t>(r.index), 0, 0, line);
        return;
      case NameKind::kUpval:
        Emit(fs, Op::kGetUpval, dst, static_cast<uint16_t>(r.index), 0, 0, line);
        return;
      case NameKind::kGlobal:
        Emit(fs, Op::kGetGlobal, dst, 0, 0, r.index, line);
        return;
    }
  }

  void StoreName(FuncState& fs, uint16_t src, const std::string& name, int line) {
    NameRef r = Resolve(fs, name);
    switch (r.kind) {
      case NameKind::kReg:
        if (r.index != src) {
          Emit(fs, Op::kMove, static_cast<uint16_t>(r.index), src, 0, 0, line);
        }
        return;
      case NameKind::kCell:
        Emit(fs, Op::kSetCell, src, static_cast<uint16_t>(r.index), 0, 0, line);
        return;
      case NameKind::kUpval:
        Emit(fs, Op::kSetUpval, src, static_cast<uint16_t>(r.index), 0, 0, line);
        return;
      case NameKind::kGlobal:
        Emit(fs, Op::kSetGlobal, src, 0, 0, r.index, line);
        return;
    }
  }

  // Binds a loop variable freshly each iteration from a source register.
  // alias_ok lets generic-for bind its transfer registers directly (nothing
  // else writes them within an iteration); numeric-for must copy because the
  // control register keeps advancing independently of body assignments.
  void BindLoopVar(FuncState& fs, const std::string& name, uint16_t src, bool alias_ok,
                   int line) {
    Scope& sc = fs.scopes.back();
    auto cell = sc.cell_slots.find(name);
    if (cell != sc.cell_slots.end()) {
      Emit(fs, Op::kSetCell, src, cell->second, 0, 0, line);
      sc.active[name] = Binding{true, cell->second};
      return;
    }
    if (alias_ok) {
      sc.active[name] = Binding{false, src};
      return;
    }
    uint16_t home = AllocReg(fs);
    Emit(fs, Op::kMove, home, src, 0, 0, line);
    sc.active[name] = Binding{false, home};
  }

  // --- expressions ---------------------------------------------------------

  // Compiles `e` into some register: an existing local register when the
  // expression is just a register-resident name (no code emitted), otherwise
  // a fresh temp. Callers bracket with a next_reg mark and FreeTo.
  uint16_t ExprAny(FuncState& fs, const Expr& e) {
    const std::string* nm = nullptr;
    static const std::string kArg = "arg";
    if (e.kind == Expr::Kind::kName) {
      nm = &e.name;
    } else if (e.kind == Expr::Kind::kVararg) {
      nm = &kArg;
    }
    if (nm != nullptr) {
      NameRef r = Resolve(fs, *nm);
      if (r.kind == NameKind::kReg) {
        return static_cast<uint16_t>(r.index);
      }
    }
    uint16_t t = AllocReg(fs);
    ExprToReg(fs, e, t);
    return t;
  }

  void ExprToReg(FuncState& fs, const Expr& e, uint16_t dst) {
    if (failed_) {
      return;
    }
    std::optional<Value> folded = Fold(e);
    if (folded.has_value()) {
      LoadConstVal(fs, dst, *folded, e.line);
      return;
    }
    switch (e.kind) {
      case Expr::Kind::kNil:
      case Expr::Kind::kTrue:
      case Expr::Kind::kFalse:
      case Expr::Kind::kNumber:
      case Expr::Kind::kString:
        return;  // unreachable: always folded
      case Expr::Kind::kVararg:
        LoadName(fs, dst, "arg", e.line);
        return;
      case Expr::Kind::kName:
        LoadName(fs, dst, e.name, e.line);
        return;
      case Expr::Kind::kIndex:
        CompileIndexRead(fs, e, dst);
        return;
      case Expr::Kind::kBinary:
        CompileBinary(fs, e, dst);
        return;
      case Expr::Kind::kUnary: {
        int mark = fs.next_reg;
        uint16_t b = ExprAny(fs, *e.lhs);
        Op op = e.un_op == UnOp::kNeg   ? Op::kNeg
                : e.un_op == UnOp::kNot ? Op::kNot
                                        : Op::kLen;
        Emit(fs, op, dst, b, 0, 0, e.line);
        FreeTo(fs, mark);
        return;
      }
      case Expr::Kind::kCall:
        CompileCall(fs, e, dst, /*want_result=*/true);
        return;
      case Expr::Kind::kFunction: {
        int32_t pidx = CompileProto(fs, e);
        Emit(fs, Op::kClosure, dst, 0, 0, pidx, e.line);
        return;
      }
      case Expr::Kind::kTableCtor:
        CompileTableCtor(fs, e, dst);
        return;
    }
  }

  void CompileIndexRead(FuncState& fs, const Expr& e, uint16_t dst) {
    int mark = fs.next_reg;
    uint16_t obj = ExprAny(fs, *e.object);
    std::optional<Value> key = Fold(*e.key);
    std::optional<uint16_t> fk;
    if (key.has_value()) {
      fk = FieldKeyId(*key);
    }
    if (fk.has_value()) {
      Emit(fs, Op::kGetField, dst, obj, *fk, AllocIc(), e.line);
    } else {
      // The walker reports "attempt to index" before evaluating the key, so
      // keys that might themselves error need the table check hoisted.
      if (!IsSimple(*e.key)) {
        Emit(fs, Op::kCheckTable, obj, 0, 0, 0, e.line);
      }
      uint16_t kr = ExprAny(fs, *e.key);
      Emit(fs, Op::kGetIndex, dst, obj, kr, 0, e.line);
    }
    FreeTo(fs, mark);
  }

  void CompileBinary(FuncState& fs, const Expr& e, uint16_t dst) {
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      std::optional<Value> lk = Fold(*e.lhs);
      if (lk.has_value()) {
        bool t = lk->Truthy();
        bool short_circuits = (e.bin_op == BinOp::kAnd) ? !t : t;
        if (short_circuits) {
          LoadConstVal(fs, dst, *lk, e.line);
        } else {
          ExprToReg(fs, *e.rhs, dst);
        }
        return;
      }
      ExprToReg(fs, *e.lhs, dst);
      size_t skip = Emit(fs, e.bin_op == BinOp::kAnd ? Op::kJmpIfNot : Op::kJmpIf, dst,
                         0, 0, 0, e.line);
      ExprToReg(fs, *e.rhs, dst);
      PatchJump(fs, skip);
      return;
    }
    int mark = fs.next_reg;
    // Arithmetic with a constant-number RHS fuses the constant into the
    // instruction (K-variant): one dispatch instead of LoadK + arith, and
    // the VM can skip the RHS type check. Error parity with the walker
    // holds because both report the LHS type when the LHS is not a number,
    // and a number constant can never be the offending operand.
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod:
      case BinOp::kPow: {
        std::optional<Value> rk = Fold(*e.rhs);
        if (rk.has_value() && rk->is_number()) {
          uint16_t b = ExprAny(fs, *e.lhs);
          Op kop;
          switch (e.bin_op) {
            case BinOp::kAdd:
              kop = Op::kAddK;
              break;
            case BinOp::kSub:
              kop = Op::kSubK;
              break;
            case BinOp::kMul:
              kop = Op::kMulK;
              break;
            case BinOp::kDiv:
              kop = Op::kDivK;
              break;
            case BinOp::kMod:
              kop = Op::kModK;
              break;
            default:
              kop = Op::kPowK;
              break;
          }
          Emit(fs, kop, dst, b, 0, NumConst(rk->as_number()), e.line);
          FreeTo(fs, mark);
          return;
        }
        break;
      }
      default:
        break;
    }
    uint16_t b = ExprAny(fs, *e.lhs);
    uint16_t c = ExprAny(fs, *e.rhs);
    Op op;
    switch (e.bin_op) {
      case BinOp::kAdd:
        op = Op::kAdd;
        break;
      case BinOp::kSub:
        op = Op::kSub;
        break;
      case BinOp::kMul:
        op = Op::kMul;
        break;
      case BinOp::kDiv:
        op = Op::kDiv;
        break;
      case BinOp::kMod:
        op = Op::kMod;
        break;
      case BinOp::kPow:
        op = Op::kPow;
        break;
      case BinOp::kConcat:
        op = Op::kConcat;
        break;
      case BinOp::kEq:
        op = Op::kEq;
        break;
      case BinOp::kNe:
        op = Op::kNe;
        break;
      case BinOp::kLt:
        op = Op::kLt;
        break;
      case BinOp::kLe:
        op = Op::kLe;
        break;
      case BinOp::kGt:
        op = Op::kGt;
        break;
      case BinOp::kGe:
        op = Op::kGe;
        break;
      default:
        Fail("unexpected binary op");
        return;
    }
    Emit(fs, op, dst, b, c, 0, e.line);
    FreeTo(fs, mark);
  }

  void CompileCall(FuncState& fs, const Expr& e, uint16_t dst, bool want_result) {
    int mark = fs.next_reg;
    uint16_t f = AllocReg(fs);
    ExprToReg(fs, *e.callee, f);
    for (const ExprPtr& a : e.args) {
      uint16_t r = AllocReg(fs);
      ExprToReg(fs, *a, r);
    }
    // The result lands directly in dst (c operand), so statement-position
    // calls and `x = f(...)` both avoid a separate kMove dispatch.
    Emit(fs, Op::kCall, f, static_cast<uint16_t>(e.args.size()),
         want_result ? dst : f, 0, e.line);
    FreeTo(fs, mark);
  }

  void CompileTableCtor(FuncState& fs, const Expr& e, uint16_t dst) {
    Emit(fs, Op::kNewTable, dst, 0, 0, 0, e.line);
    for (size_t i = 0; i < e.array_items.size(); ++i) {
      int mark = fs.next_reg;
      uint16_t v = ExprAny(fs, *e.array_items[i]);
      std::optional<uint16_t> fk = FieldKeyId(Value(static_cast<double>(i + 1)));
      if (!fk.has_value()) {
        Fail("table constructor too large");
        return;
      }
      Emit(fs, Op::kSetFieldRaw, dst, v, *fk, 0, e.array_items[i]->line);
      FreeTo(fs, mark);
    }
    for (const auto& [key_expr, value_expr] : e.fields) {
      int mark = fs.next_reg;
      std::optional<Value> key = Fold(*key_expr);
      std::optional<uint16_t> fk;
      if (key.has_value()) {
        fk = FieldKeyId(*key);
      }
      if (fk.has_value()) {
        uint16_t v = ExprAny(fs, *value_expr);
        Emit(fs, Op::kSetFieldRaw, dst, v, *fk, 0, value_expr->line);
      } else {
        // Dynamic (or non-number/string) key: the walker evaluates key then
        // value, and only then rejects bad key types — kSetIndex preserves
        // that by validating after both operands exist.
        uint16_t kr = ExprAny(fs, *key_expr);
        uint16_t vr = ExprAny(fs, *value_expr);
        Emit(fs, Op::kSetIndex, dst, kr, vr, 0, key_expr->line);
      }
      FreeTo(fs, mark);
    }
  }

  int32_t CompileProto(FuncState& parent, const Expr& e) {
    out_->protos.push_back(std::make_unique<Proto>());
    int32_t pidx = static_cast<int32_t>(out_->protos.size() - 1);
    Proto* proto = out_->protos[pidx].get();
    proto->num_params = static_cast<uint16_t>(e.params.size());
    proto->is_vararg = e.is_vararg;

    FuncState fs;
    fs.parent = &parent;
    fs.proto = proto;

    std::vector<std::string> pre;
    pre.reserve(e.params.size() + 1);
    for (const std::string& p : e.params) {
      pre.push_back(p);
    }
    if (e.is_vararg) {
      pre.push_back("arg");
    }
    OpenScope(fs, *e.body, pre);
    Scope& top = fs.scopes.back();

    // Parameters occupy registers 0..n-1 (the calling convention). Later
    // duplicates win, like repeated Define in the walker's frame.
    for (size_t i = 0; i < e.params.size(); ++i) {
      uint16_t r = AllocReg(fs);
      auto cell = top.cell_slots.find(e.params[i]);
      if (cell != top.cell_slots.end()) {
        Emit(fs, Op::kSetCell, r, cell->second);
        top.active[e.params[i]] = Binding{true, cell->second};
      } else {
        top.active[e.params[i]] = Binding{false, r};
      }
    }
    if (e.is_vararg) {
      uint16_t v = AllocReg(fs);
      Emit(fs, Op::kVarargTab, v);
      auto cell = top.cell_slots.find("arg");
      if (cell != top.cell_slots.end()) {
        Emit(fs, Op::kSetCell, v, cell->second);
        top.active["arg"] = Binding{true, cell->second};
      } else {
        top.active["arg"] = Binding{false, v};
      }
    }

    CompileBlock(fs, *e.body);
    Emit(fs, Op::kReturnNil);
    CloseScope(fs);
    FinishProto(fs);
    return pidx;
  }

  // --- statements ----------------------------------------------------------

  void CompileScopedBlock(FuncState& fs, const Block& b) {
    OpenScope(fs, b, {});
    CompileBlock(fs, b);
    CloseScope(fs);
  }

  void CompileBlock(FuncState& fs, const Block& b) {
    for (const StmtPtr& s : b.stmts) {
      if (failed_) {
        return;
      }
      CompileStmt(fs, *s);
    }
  }

  void CompileStmt(FuncState& fs, const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kExpr: {
        int mark = fs.next_reg;
        if (s.expr->kind == Expr::Kind::kCall) {
          CompileCall(fs, *s.expr, 0, /*want_result=*/false);
        } else {
          (void)ExprAny(fs, *s.expr);
        }
        FreeTo(fs, mark);
        return;
      }
      case Stmt::Kind::kAssign:
        CompileAssign(fs, s);
        return;
      case Stmt::Kind::kLocal:
        CompileLocal(fs, s);
        return;
      case Stmt::Kind::kIf:
        CompileIf(fs, s);
        return;
      case Stmt::Kind::kWhile:
        CompileWhile(fs, s);
        return;
      case Stmt::Kind::kRepeat:
        CompileRepeat(fs, s);
        return;
      case Stmt::Kind::kNumericFor:
        CompileNumericFor(fs, s);
        return;
      case Stmt::Kind::kGenericFor:
        CompileGenericFor(fs, s);
        return;
      case Stmt::Kind::kReturn: {
        if (s.expr != nullptr) {
          int mark = fs.next_reg;
          uint16_t r = ExprAny(fs, *s.expr);
          Emit(fs, Op::kReturn, r, 0, 0, 0, s.line);
          FreeTo(fs, mark);
        } else {
          Emit(fs, Op::kReturnNil, 0, 0, 0, 0, s.line);
        }
        return;
      }
      case Stmt::Kind::kBreak:
        // `break` outside any loop unwinds the whole call in the walker
        // (Flow::kBreak propagates to the frame boundary); return nil does
        // exactly that.
        if (fs.loops.empty()) {
          Emit(fs, Op::kReturnNil, 0, 0, 0, 0, s.line);
        } else {
          fs.loops.back().break_jumps.push_back(Emit(fs, Op::kJmp, 0, 0, 0, 0, s.line));
        }
        return;
      case Stmt::Kind::kDo:
        CompileScopedBlock(fs, s.body);
        return;
    }
  }

  void CompileAssign(FuncState& fs, const Stmt& s) {
    int mark = fs.next_reg;
    // All values first (walker semantics: `a, b = b, a` swaps).
    std::vector<uint16_t> vals;
    vals.reserve(s.values.size());
    for (const ExprPtr& v : s.values) {
      uint16_t t = AllocReg(fs);
      ExprToReg(fs, *v, t);
      vals.push_back(t);
    }
    int32_t nil_tmp = -1;
    for (size_t i = 0; i < s.targets.size(); ++i) {
      uint16_t src;
      if (i < vals.size()) {
        src = vals[i];
      } else {
        if (nil_tmp < 0) {
          nil_tmp = AllocReg(fs);
          Emit(fs, Op::kLoadNil, static_cast<uint16_t>(nil_tmp), 0, 0, 0, s.line);
        }
        src = static_cast<uint16_t>(nil_tmp);
      }
      const Expr& target = *s.targets[i];
      if (target.kind == Expr::Kind::kName) {
        StoreName(fs, src, target.name, target.line);
      } else if (target.kind == Expr::Kind::kIndex) {
        int m2 = fs.next_reg;
        uint16_t obj = ExprAny(fs, *target.object);
        std::optional<Value> key = Fold(*target.key);
        std::optional<uint16_t> fk;
        if (key.has_value()) {
          fk = FieldKeyId(*key);
        }
        if (fk.has_value()) {
          Emit(fs, Op::kSetField, obj, src, *fk, AllocIc(), target.line);
        } else {
          if (!IsSimple(*target.key)) {
            Emit(fs, Op::kCheckTable, obj, 0, 0, 0, target.line);
          }
          uint16_t kr = ExprAny(fs, *target.key);
          Emit(fs, Op::kSetIndex, obj, kr, src, 0, target.line);
        }
        FreeTo(fs, m2);
      } else {
        Fail("unexpected assignment target");
        return;
      }
    }
    FreeTo(fs, mark);
  }

  void CompileLocal(FuncState& fs, const Stmt& s) {
    Scope& sc = fs.scopes.back();
    int mark = fs.next_reg;
    std::vector<uint16_t> vals;
    vals.reserve(s.local_values.size());
    for (const ExprPtr& v : s.local_values) {
      uint16_t t = AllocReg(fs);
      ExprToReg(fs, *v, t);
      vals.push_back(t);
    }
    if (sc.is_globals) {
      // Top-level chunk: `local` defines a global (the walker runs the chunk
      // directly in the globals environment; class-method discovery relies
      // on this).
      int32_t nil_tmp = -1;
      for (size_t i = 0; i < s.local_names.size(); ++i) {
        uint16_t src;
        if (i < vals.size()) {
          src = vals[i];
        } else {
          if (nil_tmp < 0) {
            nil_tmp = AllocReg(fs);
            Emit(fs, Op::kLoadNil, static_cast<uint16_t>(nil_tmp), 0, 0, 0, s.line);
          }
          src = static_cast<uint16_t>(nil_tmp);
        }
        Emit(fs, Op::kSetGlobal, src, 0, 0, GlobalId(s.local_names[i]), s.line);
      }
      FreeTo(fs, mark);
      return;
    }
    // Real locals. Value temps sit at mark..mark+n-1; a name with no prior
    // binding in this scope claims its value temp as its home register, so
    // the claimed registers must survive until scope close — next_reg is
    // deliberately not restored here.
    for (size_t i = 0; i < s.local_names.size(); ++i) {
      const std::string& name = s.local_names[i];
      bool have_val = i < vals.size();
      auto cell = sc.cell_slots.find(name);
      if (cell != sc.cell_slots.end()) {
        uint16_t src;
        if (have_val) {
          src = vals[i];
        } else {
          src = AllocReg(fs);
          Emit(fs, Op::kLoadNil, src, 0, 0, 0, s.line);
        }
        Emit(fs, Op::kSetCell, src, cell->second, 0, 0, s.line);
        sc.active[name] = Binding{true, cell->second};
        continue;
      }
      auto existing = sc.active.find(name);
      if (existing != sc.active.end() && !existing->second.is_cell) {
        // Redeclaration in the same scope overwrites the same slot, exactly
        // like repeated Define into one Environment.
        uint16_t src;
        if (have_val) {
          src = vals[i];
        } else {
          src = AllocReg(fs);
          Emit(fs, Op::kLoadNil, src, 0, 0, 0, s.line);
        }
        if (existing->second.index != src) {
          Emit(fs, Op::kMove, existing->second.index, src, 0, 0, s.line);
        }
        continue;
      }
      uint16_t home;
      if (have_val) {
        home = vals[i];  // claim the value temp in place
      } else {
        home = AllocReg(fs);
        Emit(fs, Op::kLoadNil, home, 0, 0, 0, s.line);
      }
      sc.active[name] = Binding{false, home};
    }
  }

  void CompileIf(FuncState& fs, const Stmt& s) {
    std::vector<size_t> end_jumps;
    bool done = false;
    for (size_t i = 0; i < s.conditions.size() && !done; ++i) {
      std::optional<Value> k = Fold(*s.conditions[i]);
      if (k.has_value()) {
        if (k->Truthy()) {
          CompileScopedBlock(fs, s.blocks[i]);
          done = true;  // later branches and else are unreachable
        }
        continue;  // folded-false branch: skip entirely
      }
      int mark = fs.next_reg;
      uint16_t c = ExprAny(fs, *s.conditions[i]);
      size_t jf = Emit(fs, Op::kJmpIfNot, c, 0, 0, 0, s.conditions[i]->line);
      FreeTo(fs, mark);
      CompileScopedBlock(fs, s.blocks[i]);
      end_jumps.push_back(Emit(fs, Op::kJmp));
      PatchJump(fs, jf);
    }
    if (!done && s.else_block != nullptr) {
      CompileScopedBlock(fs, *s.else_block);
    }
    for (size_t j : end_jumps) {
      PatchJump(fs, j);
    }
  }

  void FinishLoop(FuncState& fs) {
    for (size_t j : fs.loops.back().break_jumps) {
      PatchJump(fs, j);
    }
    fs.loops.pop_back();
  }

  void CompileWhile(FuncState& fs, const Stmt& s) {
    std::optional<Value> k = Fold(*s.expr);
    if (k.has_value() && !k->Truthy()) {
      return;  // never entered; condition is effect-free
    }
    fs.loops.push_back(LoopCtx{});
    size_t top = fs.proto->code.size();
    size_t jf = SIZE_MAX;
    if (!k.has_value()) {
      int mark = fs.next_reg;
      uint16_t c = ExprAny(fs, *s.expr);
      jf = Emit(fs, Op::kJmpIfNot, c, 0, 0, 0, s.line);
      FreeTo(fs, mark);
    }
    CompileScopedBlock(fs, s.body);
    Emit(fs, Op::kJmp, 0, 0, 0, static_cast<int32_t>(top), s.line);
    if (jf != SIZE_MAX) {
      PatchJump(fs, jf);
    }
    FinishLoop(fs);
  }

  void CompileRepeat(FuncState& fs, const Stmt& s) {
    fs.loops.push_back(LoopCtx{});
    size_t top = fs.proto->code.size();
    OpenScope(fs, s.body, {});  // cells refresh every iteration
    CompileBlock(fs, s.body);
    // until-condition runs inside the body scope.
    std::optional<Value> k = Fold(*s.expr);
    if (k.has_value()) {
      if (!k->Truthy()) {
        Emit(fs, Op::kJmp, 0, 0, 0, static_cast<int32_t>(top), s.line);
      }
      // truthy: fall through out of the loop
    } else {
      int mark = fs.next_reg;
      uint16_t c = ExprAny(fs, *s.expr);
      Emit(fs, Op::kJmpIfNot, c, 0, 0, static_cast<int32_t>(top), s.line);
      FreeTo(fs, mark);
    }
    CloseScope(fs);
    FinishLoop(fs);
  }

  void CompileNumericFor(FuncState& fs, const Stmt& s) {
    fs.loops.push_back(LoopCtx{});
    int mark = fs.next_reg;
    uint16_t ctrl = AllocReg(fs);  // i
    AllocReg(fs);                  // limit
    AllocReg(fs);                  // step
    ExprToReg(fs, *s.for_start, ctrl);
    ExprToReg(fs, *s.for_stop, static_cast<uint16_t>(ctrl + 1));
    bool has_step = s.for_step != nullptr;
    if (has_step) {
      ExprToReg(fs, *s.for_step, static_cast<uint16_t>(ctrl + 2));
    } else {
      Emit(fs, Op::kLoadK, static_cast<uint16_t>(ctrl + 2), 0, 0, NumConst(1.0), s.line);
    }
    size_t prep = Emit(fs, Op::kForPrep, ctrl, 0, has_step ? 1 : 0, 0, s.line);
    size_t body_top = fs.proto->code.size();
    OpenScope(fs, s.body, {s.for_var});
    BindLoopVar(fs, s.for_var, ctrl, /*alias_ok=*/false, s.line);
    CompileBlock(fs, s.body);
    CloseScope(fs);
    Emit(fs, Op::kForLoop, ctrl, 0, 0, static_cast<int32_t>(body_top), s.line);
    PatchJump(fs, prep);
    FinishLoop(fs);
    FreeTo(fs, mark);
  }

  void CompileGenericFor(FuncState& fs, const Stmt& s) {
    fs.loops.push_back(LoopCtx{});
    int mark = fs.next_reg;
    uint16_t t = ExprAny(fs, *s.for_iterable);
    if (fs.next_iter >= kMaxSlots) {
      Fail("iterator overflow");
      return;
    }
    uint16_t islot = static_cast<uint16_t>(fs.next_iter++);
    Emit(fs, Op::kIterPrep, t, islot, 0, 0, s.line);
    FreeTo(fs, mark);
    uint16_t kreg = AllocReg(fs);
    uint16_t vreg = AllocReg(fs);
    (void)vreg;  // kIterNext writes kreg and kreg+1
    size_t top = fs.proto->code.size();
    size_t next = Emit(fs, Op::kIterNext, kreg, islot, 0, 0, s.line);
    OpenScope(fs, s.body,
              std::vector<std::string>(
                  s.for_names.begin(),
                  s.for_names.begin() +
                      static_cast<long>(std::min<size_t>(2, s.for_names.size()))));
    BindLoopVar(fs, s.for_names[0], kreg, /*alias_ok=*/true, s.line);
    if (s.for_names.size() > 1) {
      BindLoopVar(fs, s.for_names[1], static_cast<uint16_t>(kreg + 1),
                  /*alias_ok=*/true, s.line);
    }
    CompileBlock(fs, s.body);
    CloseScope(fs);
    Emit(fs, Op::kJmp, 0, 0, 0, static_cast<int32_t>(top), s.line);
    PatchJump(fs, next);
    FinishLoop(fs);
    FreeTo(fs, mark);
  }
};

}  // namespace

Result<std::shared_ptr<const CompiledChunk>> CompileToBytecode(const Block& chunk) {
  Compiler compiler;
  return compiler.Compile(chunk);
}

}  // namespace mal::script
