#include "src/script/interpreter.h"

#include <cmath>
#include <cstdlib>

#include "src/script/compiler.h"
#include "src/script/parser.h"
#include "src/script/stdlib.h"
#include "src/script/vm.h"

namespace mal::script {

Value Environment::Get(const std::string& name) const {
  const Environment* env = this;
  while (env != nullptr) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) {
      return it->second;
    }
    env = env->parent_.get();
  }
  return Value::Nil();
}

void Environment::Set(const std::string& name, Value value) {
  Environment* env = this;
  Environment* root = this;
  while (env != nullptr) {
    auto it = env->vars_.find(name);
    if (it != env->vars_.end()) {
      it->second = std::move(value);
      return;
    }
    root = env;
    env = env->parent_.get();
  }
  root->vars_[name] = std::move(value);  // implicit global
}

void Environment::Define(const std::string& name, Value value) {
  vars_[name] = std::move(value);
}

std::vector<std::string> Environment::LocalNames() const {
  std::vector<std::string> names;
  names.reserve(vars_.size());
  for (const auto& [name, value] : vars_) {
    names.push_back(name);
  }
  return names;
}

bool Environment::Has(const std::string& name) const {
  const Environment* env = this;
  while (env != nullptr) {
    if (env->vars_.count(name) != 0) {
      return true;
    }
    env = env->parent_.get();
  }
  return false;
}

Value* Environment::FindLocalSlot(const std::string& name) {
  auto it = vars_.find(name);
  return it == vars_.end() ? nullptr : &it->second;
}

Value* Environment::DefineSlot(const std::string& name) { return &vars_[name]; }

namespace {

// Process-wide Compile() cache. Daemons re-install the same interface source
// on every version bump and health rules recompile per tick; keying by source
// text means each distinct script pays for parsing + bytecode translation
// once. Bounded: on overflow the whole map is dropped (chunks stay alive via
// the shared_ptrs already handed out).
struct CompileCache {
  std::map<std::string, std::shared_ptr<Block>> chunks;
  CompileCacheStats stats;
};

CompileCache& TheCompileCache() {
  static CompileCache* cache = new CompileCache();
  return *cache;
}

constexpr size_t kCompileCacheCap = 512;

}  // namespace

Result<std::shared_ptr<Block>> Compile(const std::string& source) {
  CompileCache& cache = TheCompileCache();
  auto it = cache.chunks.find(source);
  if (it != cache.chunks.end()) {
    ++cache.stats.hits;
    return it->second;
  }
  ++cache.stats.misses;
  Result<std::shared_ptr<Block>> parsed = Parse(source);
  if (!parsed.ok()) {
    return parsed;  // parse errors are not cached
  }
  std::shared_ptr<Block> chunk = parsed.value();
  Result<std::shared_ptr<const CompiledChunk>> compiled = CompileToBytecode(*chunk);
  if (compiled.ok()) {
    chunk->compiled = compiled.value();
  }
  // On translation failure the chunk still runs on the tree-walker.
  if (cache.chunks.size() >= kCompileCacheCap) {
    cache.chunks.clear();
  }
  cache.chunks.emplace(source, chunk);
  return chunk;
}

CompileCacheStats GetCompileCacheStats() { return TheCompileCache().stats; }

namespace {

// Control-flow signal threaded through statement execution.
enum class Flow { kNormal, kBreak, kReturn };

Status RuntimeError(int line, const std::string& msg) {
  return Status::InvalidArgument("runtime error at line " + std::to_string(line) + ": " + msg);
}

// True when MAL_SCRIPT_ORACLE forces the tree-walker process-wide. Checked
// per top-level entry (not per op), so the getenv cost is negligible and
// differential harnesses can flip it at runtime.
bool OracleForcedByEnv() {
  const char* v = std::getenv("MAL_SCRIPT_ORACLE");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

// Walks the AST. One Evaluator per top-level entry; recursion shares the
// interpreter's budget counter.
class Evaluator {
 public:
  explicit Evaluator(Interpreter* interp) : interp_(interp) {}

  Status ExecBlock(const Block& block, const std::shared_ptr<Environment>& env, Flow* flow,
                   Value* ret) {
    for (const StmtPtr& stmt : block.stmts) {
      Status s = ExecStmt(*stmt, env, flow, ret);
      if (!s.ok()) {
        return s;
      }
      if (*flow != Flow::kNormal) {
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  Result<Value> CallValue(const Value& callee, const std::vector<Value>& args, int line) {
    if (callee.is_host_function()) {
      return callee.as_host_function()->fn(*interp_, args);
    }
    if (!callee.is_closure()) {
      return RuntimeError(line, std::string("attempt to call a ") + callee.TypeName() +
                                    " value");
    }
    const auto& closure = callee.as_closure();
    if (closure->is_compiled()) {
      // Compiled-form closures only run on the VM (they have no AST body);
      // it does its own depth/budget accounting on the shared counters.
      return interp_->EnsureVm().CallClosure(callee, args, line);
    }
    if (++interp_->call_depth_ > kMaxScriptCallDepth) {
      --interp_->call_depth_;
      return RuntimeError(line, "call stack overflow");
    }
    auto frame = std::make_shared<Environment>(closure->env());
    const auto& params = closure->params();
    for (size_t i = 0; i < params.size(); ++i) {
      frame->Define(params[i], i < args.size() ? args[i] : Value::Nil());
    }
    if (closure->is_vararg()) {
      auto rest = Table::Make();
      for (size_t i = params.size(); i < args.size(); ++i) {
        rest->Set(TableKey(static_cast<double>(i - params.size() + 1)), args[i]);
      }
      frame->Define("arg", Value(rest));
    }
    Flow flow = Flow::kNormal;
    Value ret;
    Status s = ExecBlock(*closure->body(), frame, &flow, &ret);
    --interp_->call_depth_;
    if (!s.ok()) {
      return s;
    }
    return flow == Flow::kReturn ? ret : Value::Nil();
  }

 private:
  Status Tick(int line) {
    if (interp_->instruction_budget_ != 0 &&
        ++interp_->instructions_executed_ > interp_->instruction_budget_) {
      return Status::Aborted("script exceeded instruction budget at line " +
                             std::to_string(line));
    }
    return Status::Ok();
  }

  Status ExecStmt(const Stmt& stmt, const std::shared_ptr<Environment>& env, Flow* flow,
                  Value* ret) {
    Status tick = Tick(stmt.line);
    if (!tick.ok()) {
      return tick;
    }
    switch (stmt.kind) {
      case Stmt::Kind::kExpr: {
        Result<Value> v = Eval(*stmt.expr, env);
        return v.status();
      }
      case Stmt::Kind::kAssign:
        return ExecAssign(stmt, env);
      case Stmt::Kind::kLocal:
        return ExecLocal(stmt, env);
      case Stmt::Kind::kIf:
        return ExecIf(stmt, env, flow, ret);
      case Stmt::Kind::kWhile:
        return ExecWhile(stmt, env, flow, ret);
      case Stmt::Kind::kRepeat:
        return ExecRepeat(stmt, env, flow, ret);
      case Stmt::Kind::kNumericFor:
        return ExecNumericFor(stmt, env, flow, ret);
      case Stmt::Kind::kGenericFor:
        return ExecGenericFor(stmt, env, flow, ret);
      case Stmt::Kind::kReturn: {
        if (stmt.expr != nullptr) {
          Result<Value> v = Eval(*stmt.expr, env);
          if (!v.ok()) {
            return v.status();
          }
          *ret = std::move(v).value();
        } else {
          *ret = Value::Nil();
        }
        *flow = Flow::kReturn;
        return Status::Ok();
      }
      case Stmt::Kind::kBreak:
        *flow = Flow::kBreak;
        return Status::Ok();
      case Stmt::Kind::kDo: {
        auto scope = std::make_shared<Environment>(env);
        return ExecBlock(stmt.body, scope, flow, ret);
      }
    }
    return Status::Internal("unknown statement kind");
  }

  Status ExecAssign(const Stmt& stmt, const std::shared_ptr<Environment>& env) {
    // Evaluate all values first (supports `a, b = b, a`).
    std::vector<Value> values;
    values.reserve(stmt.values.size());
    for (const ExprPtr& ve : stmt.values) {
      Result<Value> v = Eval(*ve, env);
      if (!v.ok()) {
        return v.status();
      }
      values.push_back(std::move(v).value());
    }
    for (size_t i = 0; i < stmt.targets.size(); ++i) {
      Value v = i < values.size() ? values[i] : Value::Nil();
      const Expr& target = *stmt.targets[i];
      if (target.kind == Expr::Kind::kName) {
        env->Set(target.name, std::move(v));
      } else {
        Result<Value> obj = Eval(*target.object, env);
        if (!obj.ok()) {
          return obj.status();
        }
        if (!obj.value().is_table()) {
          return RuntimeError(target.line, std::string("attempt to index a ") +
                                               obj.value().TypeName() + " value");
        }
        Result<Value> key = Eval(*target.key, env);
        if (!key.ok()) {
          return key.status();
        }
        Result<TableKey> tk = TableKey::FromValue(key.value());
        if (!tk.ok()) {
          return tk.status();
        }
        obj.value().as_table()->Set(tk.value(), std::move(v));
      }
    }
    return Status::Ok();
  }

  Status ExecLocal(const Stmt& stmt, const std::shared_ptr<Environment>& env) {
    std::vector<Value> values;
    values.reserve(stmt.local_values.size());
    for (const ExprPtr& ve : stmt.local_values) {
      Result<Value> v = Eval(*ve, env);
      if (!v.ok()) {
        return v.status();
      }
      values.push_back(std::move(v).value());
    }
    for (size_t i = 0; i < stmt.local_names.size(); ++i) {
      env->Define(stmt.local_names[i], i < values.size() ? values[i] : Value::Nil());
    }
    return Status::Ok();
  }

  Status ExecIf(const Stmt& stmt, const std::shared_ptr<Environment>& env, Flow* flow,
                Value* ret) {
    for (size_t i = 0; i < stmt.conditions.size(); ++i) {
      Result<Value> cond = Eval(*stmt.conditions[i], env);
      if (!cond.ok()) {
        return cond.status();
      }
      if (cond.value().Truthy()) {
        auto scope = std::make_shared<Environment>(env);
        return ExecBlock(stmt.blocks[i], scope, flow, ret);
      }
    }
    if (stmt.else_block != nullptr) {
      auto scope = std::make_shared<Environment>(env);
      return ExecBlock(*stmt.else_block, scope, flow, ret);
    }
    return Status::Ok();
  }

  Status ExecWhile(const Stmt& stmt, const std::shared_ptr<Environment>& env, Flow* flow,
                   Value* ret) {
    while (true) {
      Status tick = Tick(stmt.line);
      if (!tick.ok()) {
        return tick;
      }
      Result<Value> cond = Eval(*stmt.expr, env);
      if (!cond.ok()) {
        return cond.status();
      }
      if (!cond.value().Truthy()) {
        return Status::Ok();
      }
      auto scope = std::make_shared<Environment>(env);
      Status s = ExecBlock(stmt.body, scope, flow, ret);
      if (!s.ok()) {
        return s;
      }
      if (*flow == Flow::kBreak) {
        *flow = Flow::kNormal;
        return Status::Ok();
      }
      if (*flow == Flow::kReturn) {
        return Status::Ok();
      }
    }
  }

  Status ExecRepeat(const Stmt& stmt, const std::shared_ptr<Environment>& env, Flow* flow,
                    Value* ret) {
    while (true) {
      Status tick = Tick(stmt.line);
      if (!tick.ok()) {
        return tick;
      }
      auto scope = std::make_shared<Environment>(env);
      Status s = ExecBlock(stmt.body, scope, flow, ret);
      if (!s.ok()) {
        return s;
      }
      if (*flow == Flow::kBreak) {
        *flow = Flow::kNormal;
        return Status::Ok();
      }
      if (*flow == Flow::kReturn) {
        return Status::Ok();
      }
      // Condition is evaluated in the loop body's scope, like Lua.
      Result<Value> cond = Eval(*stmt.expr, scope);
      if (!cond.ok()) {
        return cond.status();
      }
      if (cond.value().Truthy()) {
        return Status::Ok();
      }
    }
  }

  Status ExecNumericFor(const Stmt& stmt, const std::shared_ptr<Environment>& env, Flow* flow,
                        Value* ret) {
    Result<Value> start = Eval(*stmt.for_start, env);
    if (!start.ok()) {
      return start.status();
    }
    Result<Value> stop = Eval(*stmt.for_stop, env);
    if (!stop.ok()) {
      return stop.status();
    }
    double step = 1.0;
    if (stmt.for_step != nullptr) {
      Result<Value> sv = Eval(*stmt.for_step, env);
      if (!sv.ok()) {
        return sv.status();
      }
      if (!sv.value().is_number()) {
        return RuntimeError(stmt.line, "for step must be a number");
      }
      step = sv.value().as_number();
    }
    if (!start.value().is_number() || !stop.value().is_number()) {
      return RuntimeError(stmt.line, "for bounds must be numbers");
    }
    if (step == 0.0) {
      return RuntimeError(stmt.line, "for step must be nonzero");
    }
    for (double i = start.value().as_number();
         step > 0 ? i <= stop.value().as_number() : i >= stop.value().as_number(); i += step) {
      Status tick = Tick(stmt.line);
      if (!tick.ok()) {
        return tick;
      }
      auto scope = std::make_shared<Environment>(env);
      scope->Define(stmt.for_var, Value(i));
      Status s = ExecBlock(stmt.body, scope, flow, ret);
      if (!s.ok()) {
        return s;
      }
      if (*flow == Flow::kBreak) {
        *flow = Flow::kNormal;
        return Status::Ok();
      }
      if (*flow == Flow::kReturn) {
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  // `for k, v in t do` iterates table entries in key order. We accept a table
  // directly or the result of pairs(t) (which returns the table itself).
  Status ExecGenericFor(const Stmt& stmt, const std::shared_ptr<Environment>& env, Flow* flow,
                        Value* ret) {
    Result<Value> iterable = Eval(*stmt.for_iterable, env);
    if (!iterable.ok()) {
      return iterable.status();
    }
    if (!iterable.value().is_table()) {
      return RuntimeError(stmt.line, "for-in expects a table (or pairs(table))");
    }
    // Snapshot keys so body mutations don't invalidate iteration.
    std::vector<std::pair<TableKey, Value>> entries(
        iterable.value().as_table()->entries().begin(),
        iterable.value().as_table()->entries().end());
    for (const auto& [key, value] : entries) {
      Status tick = Tick(stmt.line);
      if (!tick.ok()) {
        return tick;
      }
      auto scope = std::make_shared<Environment>(env);
      Value key_value = std::holds_alternative<double>(key.k)
                            ? Value(std::get<double>(key.k))
                            : Value(std::get<std::string>(key.k));
      scope->Define(stmt.for_names[0], key_value);
      if (stmt.for_names.size() > 1) {
        scope->Define(stmt.for_names[1], value);
      }
      Status s = ExecBlock(stmt.body, scope, flow, ret);
      if (!s.ok()) {
        return s;
      }
      if (*flow == Flow::kBreak) {
        *flow = Flow::kNormal;
        return Status::Ok();
      }
      if (*flow == Flow::kReturn) {
        return Status::Ok();
      }
    }
    return Status::Ok();
  }

  Result<Value> Eval(const Expr& expr, const std::shared_ptr<Environment>& env) {
    Status tick = Tick(expr.line);
    if (!tick.ok()) {
      return tick;
    }
    switch (expr.kind) {
      case Expr::Kind::kNil:
        return Value::Nil();
      case Expr::Kind::kTrue:
        return Value(true);
      case Expr::Kind::kFalse:
        return Value(false);
      case Expr::Kind::kNumber:
        return Value(expr.number);
      case Expr::Kind::kString:
        return Value(expr.string_value);
      case Expr::Kind::kVararg:
        return env->Get("arg");
      case Expr::Kind::kName:
        return env->Get(expr.name);
      case Expr::Kind::kIndex: {
        Result<Value> obj = Eval(*expr.object, env);
        if (!obj.ok()) {
          return obj;
        }
        if (obj.value().is_string()) {
          // Allow s:len()-free length via #; string indexing is not supported.
          return RuntimeError(expr.line, "attempt to index a string value");
        }
        if (!obj.value().is_table()) {
          return RuntimeError(expr.line, std::string("attempt to index a ") +
                                             obj.value().TypeName() + " value");
        }
        Result<Value> key = Eval(*expr.key, env);
        if (!key.ok()) {
          return key;
        }
        Result<TableKey> tk = TableKey::FromValue(key.value());
        if (!tk.ok()) {
          return tk.status();
        }
        return obj.value().as_table()->Get(tk.value());
      }
      case Expr::Kind::kBinary:
        return EvalBinary(expr, env);
      case Expr::Kind::kUnary:
        return EvalUnary(expr, env);
      case Expr::Kind::kCall: {
        Result<Value> callee = Eval(*expr.callee, env);
        if (!callee.ok()) {
          return callee;
        }
        std::vector<Value> args;
        args.reserve(expr.args.size());
        for (const ExprPtr& a : expr.args) {
          Result<Value> v = Eval(*a, env);
          if (!v.ok()) {
            return v;
          }
          args.push_back(std::move(v).value());
        }
        return CallValue(callee.value(), args, expr.line);
      }
      case Expr::Kind::kFunction: {
        auto closure = std::make_shared<Closure>(expr.params, expr.is_vararg, expr.body, env);
        return Value(std::move(closure));
      }
      case Expr::Kind::kTableCtor: {
        auto table = Table::Make();
        for (size_t i = 0; i < expr.array_items.size(); ++i) {
          Result<Value> v = Eval(*expr.array_items[i], env);
          if (!v.ok()) {
            return v;
          }
          table->Set(TableKey(static_cast<double>(i + 1)), std::move(v).value());
        }
        for (const auto& [key_expr, value_expr] : expr.fields) {
          Result<Value> key = Eval(*key_expr, env);
          if (!key.ok()) {
            return key;
          }
          Result<Value> value = Eval(*value_expr, env);
          if (!value.ok()) {
            return value;
          }
          Result<TableKey> tk = TableKey::FromValue(key.value());
          if (!tk.ok()) {
            return tk.status();
          }
          table->Set(tk.value(), std::move(value).value());
        }
        return Value(std::move(table));
      }
    }
    return Status::Internal("unknown expression kind");
  }

  Result<Value> EvalBinary(const Expr& expr, const std::shared_ptr<Environment>& env) {
    // Short-circuit logic first.
    if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
      Result<Value> lhs = Eval(*expr.lhs, env);
      if (!lhs.ok()) {
        return lhs;
      }
      bool lhs_truthy = lhs.value().Truthy();
      if (expr.bin_op == BinOp::kAnd) {
        return lhs_truthy ? Eval(*expr.rhs, env) : lhs;
      }
      return lhs_truthy ? lhs : Eval(*expr.rhs, env);
    }
    Result<Value> lhs = Eval(*expr.lhs, env);
    if (!lhs.ok()) {
      return lhs;
    }
    Result<Value> rhs = Eval(*expr.rhs, env);
    if (!rhs.ok()) {
      return rhs;
    }
    const Value& a = lhs.value();
    const Value& b = rhs.value();
    switch (expr.bin_op) {
      case BinOp::kEq:
        return Value(a.Equals(b));
      case BinOp::kNe:
        return Value(!a.Equals(b));
      case BinOp::kConcat:
        if ((a.is_string() || a.is_number()) && (b.is_string() || b.is_number())) {
          return Value(a.ToString() + b.ToString());
        }
        return RuntimeError(expr.line, std::string("attempt to concatenate a ") +
                                           (a.is_string() || a.is_number() ? b.TypeName()
                                                                           : a.TypeName()) +
                                           " value");
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        if (a.is_number() && b.is_number()) {
          double x = a.as_number();
          double y = b.as_number();
          switch (expr.bin_op) {
            case BinOp::kLt:
              return Value(x < y);
            case BinOp::kLe:
              return Value(x <= y);
            case BinOp::kGt:
              return Value(x > y);
            default:
              return Value(x >= y);
          }
        }
        if (a.is_string() && b.is_string()) {
          int cmp = a.as_string().compare(b.as_string());
          switch (expr.bin_op) {
            case BinOp::kLt:
              return Value(cmp < 0);
            case BinOp::kLe:
              return Value(cmp <= 0);
            case BinOp::kGt:
              return Value(cmp > 0);
            default:
              return Value(cmp >= 0);
          }
        }
        return RuntimeError(expr.line, std::string("attempt to compare ") + a.TypeName() +
                                           " with " + b.TypeName());
      }
      default:
        break;
    }
    // Arithmetic.
    if (!a.is_number() || !b.is_number()) {
      return RuntimeError(expr.line, std::string("attempt to perform arithmetic on a ") +
                                         (a.is_number() ? b.TypeName() : a.TypeName()) +
                                         " value");
    }
    double x = a.as_number();
    double y = b.as_number();
    switch (expr.bin_op) {
      case BinOp::kAdd:
        return Value(x + y);
      case BinOp::kSub:
        return Value(x - y);
      case BinOp::kMul:
        return Value(x * y);
      case BinOp::kDiv:
        return Value(x / y);  // IEEE semantics, inf on /0 like Lua
      case BinOp::kMod:
        return Value(x - std::floor(x / y) * y);  // Lua modulo
      case BinOp::kPow:
        return Value(std::pow(x, y));
      default:
        return Status::Internal("unhandled binary op");
    }
  }

  Result<Value> EvalUnary(const Expr& expr, const std::shared_ptr<Environment>& env) {
    Result<Value> operand = Eval(*expr.lhs, env);
    if (!operand.ok()) {
      return operand;
    }
    const Value& v = operand.value();
    switch (expr.un_op) {
      case UnOp::kNeg:
        if (!v.is_number()) {
          return RuntimeError(expr.line, std::string("attempt to negate a ") + v.TypeName() +
                                             " value");
        }
        return Value(-v.as_number());
      case UnOp::kNot:
        return Value(!v.Truthy());
      case UnOp::kLen:
        if (v.is_string()) {
          return Value(static_cast<double>(v.as_string().size()));
        }
        if (v.is_table()) {
          return Value(static_cast<double>(v.as_table()->ArrayLength()));
        }
        return RuntimeError(expr.line, std::string("attempt to get length of a ") +
                                           v.TypeName() + " value");
    }
    return Status::Internal("unhandled unary op");
  }

  Interpreter* interp_;
};

Interpreter::Interpreter() : globals_(std::make_shared<Environment>()) {
  InstallStdlib(this);
}

Interpreter::~Interpreter() = default;

void Interpreter::RegisterHostFunction(const std::string& name, HostFunction fn) {
  globals_->Define(name, Value::Host(name, std::move(fn)));
}

bool Interpreter::UseVm() const {
  switch (engine_) {
    case Engine::kVm:
      return true;
    case Engine::kOracle:
      return false;
    case Engine::kAuto:
      return !OracleForcedByEnv();
  }
  return true;
}

Vm& Interpreter::EnsureVm() {
  if (vm_ == nullptr) {
    vm_ = std::make_shared<Vm>(this);
  }
  return *vm_;
}

Result<Value> Interpreter::CallAstClosureFromVm(const Value& callee,
                                                const std::vector<Value>& args, int line) {
  // Budget counter deliberately NOT reset: this is a nested call inside a
  // VM frame, sharing the top-level entry's budget.
  Evaluator eval(this);
  return eval.CallValue(callee, args, line);
}

Status Interpreter::Run(const Block& chunk) {
  instructions_executed_ = 0;
  Status s;
  if (chunk.compiled != nullptr && UseVm()) {
    ++stats_.vm_runs;
    s = EnsureVm().RunChunk(chunk.compiled);
  } else {
    ++stats_.oracle_runs;
    Evaluator eval(this);
    Flow flow = Flow::kNormal;
    Value ret;
    s = eval.ExecBlock(chunk, globals_, &flow, &ret);
  }
  stats_.instructions += instructions_executed_;
  return s;
}

Status Interpreter::RunSource(const std::string& source) {
  Result<std::shared_ptr<Block>> chunk = Compile(source);
  if (!chunk.ok()) {
    return chunk.status();
  }
  return Run(*chunk.value());
}

Result<Value> Interpreter::CallGlobal(const std::string& name, const std::vector<Value>& args) {
  Value fn = globals_->Get(name);
  if (fn.is_nil()) {
    return Status::NotFound("no global function '" + name + "'");
  }
  return Call(fn, args);
}

Result<Value> Interpreter::Call(const Value& callee, const std::vector<Value>& args) {
  instructions_executed_ = 0;
  // Dispatch by closure form, not by the engine knob: a compiled closure has
  // no AST body, so it must run on the VM even when the oracle is pinned
  // (and vice versa — Evaluator::CallValue routes each form to its engine).
  if (callee.is_closure() && callee.as_closure()->is_compiled()) {
    ++stats_.vm_runs;
    Result<Value> r = EnsureVm().CallClosure(callee, args, 0);
    stats_.instructions += instructions_executed_;
    return r;
  }
  ++stats_.oracle_runs;
  Evaluator eval(this);
  Result<Value> r = eval.CallValue(callee, args, 0);
  stats_.instructions += instructions_executed_;
  return r;
}

}  // namespace mal::script
