// Recursive-descent parser for MalScript.
#ifndef MALACOLOGY_SCRIPT_PARSER_H_
#define MALACOLOGY_SCRIPT_PARSER_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/script/ast.h"

namespace mal::script {

// Parses a full chunk (sequence of statements) into a Block.
// Returns InvalidArgument with line information on syntax errors.
Result<std::shared_ptr<Block>> Parse(const std::string& source);

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_PARSER_H_
