#include "src/script/stdlib.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/script/interpreter.h"

namespace mal::script {
namespace {

Status WrongArg(const char* fn, const char* want) {
  return Status::InvalidArgument(std::string(fn) + ": expected " + want);
}

Result<double> NumArg(const std::vector<Value>& args, size_t i, const char* fn) {
  if (i >= args.size() || !args[i].is_number()) {
    return WrongArg(fn, "number argument");
  }
  return args[i].as_number();
}

Result<std::string> StrArg(const std::vector<Value>& args, size_t i, const char* fn) {
  if (i >= args.size() || !args[i].is_string()) {
    return WrongArg(fn, "string argument");
  }
  return args[i].as_string();
}

Result<std::shared_ptr<Table>> TableArg(const std::vector<Value>& args, size_t i,
                                        const char* fn) {
  if (i >= args.size() || !args[i].is_table()) {
    return WrongArg(fn, "table argument");
  }
  return args[i].as_table();
}

void DefineMathLib(Interpreter* interp) {
  auto math = Table::Make();
  auto def1 = [&math](const char* name, double (*fn)(double)) {
    math->Set(TableKey(name),
              Value::Host(std::string("math.") + name,
                          [fn, name](Interpreter&, const std::vector<Value>& args)
                              -> Result<Value> {
                            Result<double> x = NumArg(args, 0, name);
                            if (!x.ok()) {
                              return x.status();
                            }
                            return Value(fn(x.value()));
                          }));
  };
  def1("floor", [](double x) { return std::floor(x); });
  def1("ceil", [](double x) { return std::ceil(x); });
  def1("abs", [](double x) { return std::fabs(x); });
  def1("sqrt", [](double x) { return std::sqrt(x); });
  def1("exp", [](double x) { return std::exp(x); });
  def1("log", [](double x) { return std::log(x); });
  math->Set(TableKey("max"),
            Value::Host("math.max", [](Interpreter&, const std::vector<Value>& args)
                                        -> Result<Value> {
              if (args.empty()) {
                return WrongArg("math.max", "at least one number");
              }
              double best = -HUGE_VAL;
              for (const Value& v : args) {
                if (!v.is_number()) {
                  return WrongArg("math.max", "number arguments");
                }
                best = std::max(best, v.as_number());
              }
              return Value(best);
            }));
  math->Set(TableKey("min"),
            Value::Host("math.min", [](Interpreter&, const std::vector<Value>& args)
                                        -> Result<Value> {
              if (args.empty()) {
                return WrongArg("math.min", "at least one number");
              }
              double best = HUGE_VAL;
              for (const Value& v : args) {
                if (!v.is_number()) {
                  return WrongArg("math.min", "number arguments");
                }
                best = std::min(best, v.as_number());
              }
              return Value(best);
            }));
  math->Set(TableKey("huge"), Value(HUGE_VAL));
  math->Set(TableKey("pi"), Value(M_PI));
  interp->SetGlobal("math", Value(math));
}

void DefineStringLib(Interpreter* interp) {
  auto str = Table::Make();
  str->Set(TableKey("len"),
           Value::Host("string.len", [](Interpreter&, const std::vector<Value>& args)
                                         -> Result<Value> {
             Result<std::string> s = StrArg(args, 0, "string.len");
             if (!s.ok()) {
               return s.status();
             }
             return Value(static_cast<double>(s.value().size()));
           }));
  str->Set(TableKey("sub"),
           Value::Host("string.sub", [](Interpreter&, const std::vector<Value>& args)
                                         -> Result<Value> {
             Result<std::string> s = StrArg(args, 0, "string.sub");
             Result<double> i = NumArg(args, 1, "string.sub");
             if (!s.ok() || !i.ok()) {
               return WrongArg("string.sub", "(string, number [, number])");
             }
             const std::string& text = s.value();
             auto n = static_cast<int64_t>(text.size());
             int64_t from = static_cast<int64_t>(i.value());
             int64_t to = n;
             if (args.size() > 2 && args[2].is_number()) {
               to = static_cast<int64_t>(args[2].as_number());
             }
             // Lua 1-based with negative-from-end semantics.
             if (from < 0) {
               from = std::max<int64_t>(n + from + 1, 1);
             } else if (from == 0) {
               from = 1;
             }
             if (to < 0) {
               to = n + to + 1;
             } else if (to > n) {
               to = n;
             }
             if (from > to) {
               return Value(std::string());
             }
             return Value(text.substr(from - 1, to - from + 1));
           }));
  str->Set(TableKey("find"),
           Value::Host("string.find", [](Interpreter&, const std::vector<Value>& args)
                                          -> Result<Value> {
             Result<std::string> s = StrArg(args, 0, "string.find");
             Result<std::string> needle = StrArg(args, 1, "string.find");
             if (!s.ok() || !needle.ok()) {
               return WrongArg("string.find", "(string, string)");
             }
             size_t pos = s.value().find(needle.value());
             if (pos == std::string::npos) {
               return Value::Nil();
             }
             return Value(static_cast<double>(pos + 1));
           }));
  str->Set(TableKey("rep"),
           Value::Host("string.rep", [](Interpreter&, const std::vector<Value>& args)
                                         -> Result<Value> {
             Result<std::string> s = StrArg(args, 0, "string.rep");
             Result<double> n = NumArg(args, 1, "string.rep");
             if (!s.ok() || !n.ok()) {
               return WrongArg("string.rep", "(string, number)");
             }
             if (n.value() < 0 || n.value() > 1e6) {
               return WrongArg("string.rep", "count in [0, 1e6]");
             }
             std::string out;
             for (int64_t i = 0; i < static_cast<int64_t>(n.value()); ++i) {
               out += s.value();
             }
             return Value(out);
           }));
  str->Set(TableKey("upper"),
           Value::Host("string.upper", [](Interpreter&, const std::vector<Value>& args)
                                           -> Result<Value> {
             Result<std::string> s = StrArg(args, 0, "string.upper");
             if (!s.ok()) {
               return s.status();
             }
             std::string out = s.value();
             std::transform(out.begin(), out.end(), out.begin(),
                            [](unsigned char c) { return std::toupper(c); });
             return Value(out);
           }));
  str->Set(TableKey("lower"),
           Value::Host("string.lower", [](Interpreter&, const std::vector<Value>& args)
                                           -> Result<Value> {
             Result<std::string> s = StrArg(args, 0, "string.lower");
             if (!s.ok()) {
               return s.status();
             }
             std::string out = s.value();
             std::transform(out.begin(), out.end(), out.begin(),
                            [](unsigned char c) { return std::tolower(c); });
             return Value(out);
           }));
  interp->SetGlobal("string", Value(str));
}

void DefineTableLib(Interpreter* interp) {
  auto table = Table::Make();
  table->Set(TableKey("insert"),
             Value::Host("table.insert", [](Interpreter&, const std::vector<Value>& args)
                                             -> Result<Value> {
               Result<std::shared_ptr<Table>> t = TableArg(args, 0, "table.insert");
               if (!t.ok()) {
                 return t.status();
               }
               if (args.size() < 2) {
                 return WrongArg("table.insert", "(table, value)");
               }
               size_t n = t.value()->ArrayLength();
               t.value()->Set(TableKey(static_cast<double>(n + 1)), args[1]);
               return Value::Nil();
             }));
  table->Set(TableKey("remove"),
             Value::Host("table.remove", [](Interpreter&, const std::vector<Value>& args)
                                             -> Result<Value> {
               Result<std::shared_ptr<Table>> t = TableArg(args, 0, "table.remove");
               if (!t.ok()) {
                 return t.status();
               }
               size_t n = t.value()->ArrayLength();
               if (n == 0) {
                 return Value::Nil();
               }
               auto idx = n;
               if (args.size() > 1 && args[1].is_number()) {
                 idx = static_cast<size_t>(args[1].as_number());
                 if (idx < 1 || idx > n) {
                   return WrongArg("table.remove", "index in range");
                 }
               }
               Value removed = t.value()->Get(TableKey(static_cast<double>(idx)));
               for (size_t i = idx; i < n; ++i) {
                 t.value()->Set(TableKey(static_cast<double>(i)),
                                t.value()->Get(TableKey(static_cast<double>(i + 1))));
               }
               t.value()->Set(TableKey(static_cast<double>(n)), Value::Nil());
               return removed;
             }));
  interp->SetGlobal("table", Value(table));
}

}  // namespace

void InstallStdlib(Interpreter* interp) {
  interp->RegisterHostFunction(
      "print", [](Interpreter& self, const std::vector<Value>& args) -> Result<Value> {
        std::string line;
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) {
            line += "\t";
          }
          line += args[i].ToString();
        }
        if (self.print_limit() != 0 && self.print_output().size() >= self.print_limit()) {
          self.NotePrintDropped();  // buffer full until the host drains it
        } else {
          self.print_output().push_back(std::move(line));
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "type", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        if (args.empty()) {
          return WrongArg("type", "one argument");
        }
        return Value(std::string(args[0].TypeName()));
      });
  interp->RegisterHostFunction(
      "tostring", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        if (args.empty()) {
          return WrongArg("tostring", "one argument");
        }
        return Value(args[0].ToString());
      });
  interp->RegisterHostFunction(
      "tonumber", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        if (args.empty()) {
          return Value::Nil();
        }
        if (args[0].is_number()) {
          return args[0];
        }
        if (args[0].is_string()) {
          const std::string& s = args[0].as_string();
          char* end = nullptr;
          double v = std::strtod(s.c_str(), &end);
          if (end != s.c_str() && end == s.c_str() + s.size()) {
            return Value(v);
          }
        }
        return Value::Nil();
      });
  // pairs(t) just returns the table; the generic-for handles iteration.
  interp->RegisterHostFunction(
      "pairs", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        if (args.empty() || !args[0].is_table()) {
          return WrongArg("pairs", "table argument");
        }
        return args[0];
      });
  interp->RegisterHostFunction(
      "ipairs", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        if (args.empty() || !args[0].is_table()) {
          return WrongArg("ipairs", "table argument");
        }
        // Return a table containing only the array part, preserving order.
        auto out = Table::Make();
        size_t n = args[0].as_table()->ArrayLength();
        for (size_t i = 1; i <= n; ++i) {
          out->Set(TableKey(static_cast<double>(i)),
                   args[0].as_table()->Get(TableKey(static_cast<double>(i))));
        }
        return Value(out);
      });
  interp->RegisterHostFunction(
      "assert", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        if (args.empty() || !args[0].Truthy()) {
          std::string msg = args.size() > 1 ? args[1].ToString() : "assertion failed!";
          return Status::Aborted(msg);
        }
        return args[0];
      });
  interp->RegisterHostFunction(
      "error", [](Interpreter&, const std::vector<Value>& args) -> Result<Value> {
        return Status::Aborted(args.empty() ? "error" : args[0].ToString());
      });
  DefineMathLib(interp);
  DefineStringLib(interp);
  DefineTableLib(interp);
}

}  // namespace mal::script
