// Abstract syntax tree for MalScript. Plain structs with owning unique_ptrs;
// the interpreter walks the tree directly.
#ifndef MALACOLOGY_SCRIPT_AST_H_
#define MALACOLOGY_SCRIPT_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace mal::script {

struct Expr;
struct Stmt;
struct CompiledChunk;  // src/script/bytecode.h
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod, kPow, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr,
};

enum class UnOp { kNeg, kNot, kLen };

struct Block {
  std::vector<StmtPtr> stmts;

  // Register-bytecode translation, attached by Compile() when the chunk
  // compiles cleanly; null means the tree-walking interpreter runs it.
  std::shared_ptr<const CompiledChunk> compiled;
};

struct Expr {
  enum class Kind {
    kNil, kTrue, kFalse, kNumber, kString, kVararg,
    kName, kIndex, kBinary, kUnary, kCall, kFunction, kTableCtor,
  };

  Kind kind;
  int line = 0;

  // kNumber / kString
  double number = 0;
  std::string string_value;

  // kName
  std::string name;

  // kIndex: object[key]  (a.b parses to a["b"])
  ExprPtr object;
  ExprPtr key;

  // kBinary / kUnary
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ExprPtr lhs;
  ExprPtr rhs;

  // kCall
  ExprPtr callee;
  std::vector<ExprPtr> args;

  // kFunction
  std::vector<std::string> params;
  bool is_vararg = false;
  std::shared_ptr<Block> body;  // shared so closures can hold it cheaply

  // kTableCtor: array_items become [1..n]; fields are explicit keys
  std::vector<ExprPtr> array_items;
  std::vector<std::pair<ExprPtr, ExprPtr>> fields;
};

struct Stmt {
  enum class Kind {
    kExpr,        // expression statement (function call)
    kAssign,      // lhs_targets = rhs_values
    kLocal,       // local names = values
    kIf,
    kWhile,
    kRepeat,
    kNumericFor,  // for name = start, stop [, step] do ... end
    kGenericFor,  // for k, v in pairs(t) do ... end
    kReturn,
    kBreak,
    kDo,          // do ... end scope block
  };

  Kind kind;
  int line = 0;

  ExprPtr expr;  // kExpr / kWhile cond / kRepeat cond / kReturn value

  // kAssign
  std::vector<ExprPtr> targets;  // each kName or kIndex
  std::vector<ExprPtr> values;

  // kLocal
  std::vector<std::string> local_names;
  std::vector<ExprPtr> local_values;

  // kIf: parallel arrays of conditions/blocks; else_block optional
  std::vector<ExprPtr> conditions;
  std::vector<Block> blocks;
  std::unique_ptr<Block> else_block;

  // loops / do
  Block body;

  // kNumericFor
  std::string for_var;
  ExprPtr for_start;
  ExprPtr for_stop;
  ExprPtr for_step;

  // kGenericFor
  std::vector<std::string> for_names;
  ExprPtr for_iterable;
};

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_AST_H_
