// Register bytecode for MalScript (the paper embeds LuaJIT precisely so that
// programmability does not cost performance; this is our analogue).
//
// A CompiledChunk is produced once per source by the compiler
// (src/script/compiler.cc) and executed by the dispatch-loop VM
// (src/script/vm.cc). The tree-walking interpreter remains as a
// differential-testing oracle (MAL_SCRIPT_ORACLE=1 forces it).
//
// Design notes:
//  - Register machine: every function body (Proto) declares how many value
//    registers its frame needs; locals and temporaries live in registers, so
//    variable access never touches an Environment map.
//  - Captured locals live in heap cells (shared_ptr<Value>) so closures see
//    mutations; a fresh cell is created each time the declaring scope is
//    entered, which reproduces the tree-walker's fresh-Environment-per-
//    iteration capture semantics.
//  - Globals are resolved to interned per-chunk name slots; the VM caches a
//    pointer to the Environment's map node after first lookup (map nodes are
//    stable and globals are never erased), making monomorphic global reads a
//    single pointer dereference.
//  - `t.field` and constant-key `t[k]` sites carry an inline-cache index.
//    Each Table has a monotonically bumped shape id (structural changes
//    only); an IC entry caches {shape id, slot pointer} and hits while the
//    table's shape is unchanged.
//  - Every instruction carries its source line so runtime errors and budget
//    aborts render exactly like the tree-walker's.
#ifndef MALACOLOGY_SCRIPT_BYTECODE_H_
#define MALACOLOGY_SCRIPT_BYTECODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/script/value.h"

namespace mal::script {

enum class Op : uint8_t {
  kLoadK,     // R[a] = K[d]
  kLoadNil,   // R[a] = nil
  kLoadBool,  // R[a] = (b != 0)
  kMove,      // R[a] = R[b]

  kGetGlobal,  // R[a] = globals[global_names[d]]   (slot-cached)
  kSetGlobal,  // globals[global_names[d]] = R[a]   (defines if absent)
  kGetUpval,   // R[a] = *upvals[b]
  kSetUpval,   // *upvals[b] = R[a]
  kNewCell,    // cells[b] = fresh nil cell (scope entry)
  kGetCell,    // R[a] = *cells[b]
  kSetCell,    // *cells[b] = R[a]

  kAdd,     // R[a] = R[b] + R[c]   (numbers only, like the walker)
  kSub,     // R[a] = R[b] - R[c]
  kMul,     // R[a] = R[b] * R[c]
  kDiv,     // R[a] = R[b] / R[c]
  kMod,     // R[a] = R[b] mod R[c] (Lua modulo)
  kPow,     // R[a] = R[b] ^ R[c]
  kAddK,    // R[a] = R[b] + K[d]   (K[d] is always a number constant,
  kSubK,    // R[a] = R[b] - K[d]    so only the register operand needs a
  kMulK,    // R[a] = R[b] * K[d]    type check; hot-loop strength-reduction
  kDivK,    // R[a] = R[b] / K[d]    that fuses LoadK + arith into one
  kModK,    // R[a] = R[b] mod K[d]  dispatch)
  kPowK,    // R[a] = R[b] ^ K[d]
  kConcat,  // R[a] = R[b] .. R[c]
  kEq,      // R[a] = R[b] == R[c]
  kNe,      // R[a] = R[b] ~= R[c]
  kLt,      // number/string compare; mixed types error
  kLe,
  kGt,
  kGe,
  kNot,  // R[a] = not R[b]
  kNeg,  // R[a] = -R[b]
  kLen,  // R[a] = #R[b]

  kJmp,       // pc = d
  kJmpIf,     // if truthy(R[a]) pc = d
  kJmpIfNot,  // if !truthy(R[a]) pc = d

  kNewTable,    // R[a] = {}
  kGetField,    // R[a] = R[b][field_keys[c]]      (IC index d)
  kSetField,    // R[a][field_keys[c]] = R[b]      (IC index d)
  kSetFieldRaw, // R[a][field_keys[c]] = R[b]      (no IC: table-ctor fills)
  kGetIndex,    // R[a] = R[b][R[c]]               (dynamic key)
  kSetIndex,    // R[a][R[b]] = R[c]
  kCheckTable,  // error "attempt to index a T value" unless R[a] is a table

  kCall,       // R[c] = R[a](R[a+1] .. R[a+b])
  kClosure,    // R[a] = closure(protos[d]) capturing per UpvalDesc list
  kVarargTab,  // R[a] = table of args beyond num_params (vararg prologue)

  kForPrep,  // control triple at R[a..a+2]; c=has_step; validate, skip to d
  kForLoop,  // R[a] += R[a+2]; loop to d while in range
  kIterPrep, // iters[b] = snapshot of R[a] (must be a table)
  kIterNext, // exhausted ? pc = d : (R[a], R[a+1]) = next entry of iters[b]

  kReturn,     // return R[a]
  kReturnNil,  // return nil
};

struct Instr {
  Op op;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  int32_t d = 0;     // jump target (absolute pc) or pool index
  int32_t line = 0;  // source line for errors / budget aborts
};

// Where a closure's upvalue comes from at kClosure time.
struct UpvalDesc {
  enum class Src : uint8_t {
    kParentCell,   // creating frame's cells[index]
    kParentUpval,  // creating closure's upvals[index]
  };
  Src src = Src::kParentCell;
  uint16_t index = 0;
};

struct Proto {
  uint16_t num_params = 0;
  bool is_vararg = false;
  uint16_t num_regs = 0;   // frame size in registers
  uint16_t num_cells = 0;  // captured-local cell slots
  uint16_t num_iters = 0;  // generic-for iterator slots
  std::vector<Instr> code;
  std::vector<UpvalDesc> upvals;
};

struct CompiledChunk {
  std::vector<std::unique_ptr<Proto>> protos;  // protos[0] = top level
  std::vector<Value> consts;
  std::vector<TableKey> field_keys;       // constant keys for (Get|Set)Field*
  std::vector<std::string> global_names;  // interned global slots
  uint32_t num_field_ics = 0;             // inline-cache entries to allocate
};

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_BYTECODE_H_
