// Dynamically-typed values for the Malacology script engine.
//
// The paper embeds Lua (via community LuaJIT bindings) into the OSD, MDS,
// and balancer. We cannot ship Lua here, so src/script implements a small
// Lua-like language ("MalScript") with the features those call sites use:
// nil/bool/number/string scalars, tables with string and numeric keys,
// first-class functions with closures, and host functions bridging into
// C++ daemon internals. Execution is sandboxed by an instruction budget.
#ifndef MALACOLOGY_SCRIPT_VALUE_H_
#define MALACOLOGY_SCRIPT_VALUE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace mal::script {

class Table;
class Closure;
class Interpreter;
class Value;

// Host (C++) function callable from script. Receives evaluated arguments,
// returns a value or an error that surfaces as a script runtime error.
using HostFunction = std::function<Result<Value>(Interpreter&, const std::vector<Value>&)>;

struct HostFunctionBox {
  std::string name;
  HostFunction fn;
};

class Value {
 public:
  using Variant = std::variant<std::monostate, bool, double, std::string,
                               std::shared_ptr<Table>, std::shared_ptr<Closure>,
                               std::shared_ptr<HostFunctionBox>>;

  Value() = default;  // nil
  Value(bool b) : v_(b) {}                       // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}                     // NOLINT(google-explicit-constructor)
  Value(int64_t i) : v_(static_cast<double>(i)) {}  // NOLINT(google-explicit-constructor)
  Value(int i) : v_(static_cast<double>(i)) {}   // NOLINT(google-explicit-constructor)
  Value(std::string s) : v_(std::move(s)) {}     // NOLINT(google-explicit-constructor)
  Value(const char* s) : v_(std::string(s)) {}   // NOLINT(google-explicit-constructor)
  Value(std::shared_ptr<Table> t) : v_(std::move(t)) {}    // NOLINT
  Value(std::shared_ptr<Closure> c) : v_(std::move(c)) {}  // NOLINT
  Value(std::shared_ptr<HostFunctionBox> f) : v_(std::move(f)) {}  // NOLINT

  static Value Nil() { return Value(); }
  static Value Host(std::string name, HostFunction fn);

  bool is_nil() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_table() const { return std::holds_alternative<std::shared_ptr<Table>>(v_); }
  bool is_closure() const { return std::holds_alternative<std::shared_ptr<Closure>>(v_); }
  bool is_host_function() const {
    return std::holds_alternative<std::shared_ptr<HostFunctionBox>>(v_);
  }
  bool is_callable() const { return is_closure() || is_host_function(); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  // Unchecked read for VM paths that already verified is_number() (or hold a
  // structural invariant, e.g. for-loop control registers): skips std::get's
  // throw branch. Undefined behavior if the value is not a number.
  double num_unchecked() const { return *std::get_if<double>(&v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const std::shared_ptr<Table>& as_table() const { return std::get<std::shared_ptr<Table>>(v_); }
  const std::shared_ptr<Closure>& as_closure() const {
    return std::get<std::shared_ptr<Closure>>(v_);
  }
  const std::shared_ptr<HostFunctionBox>& as_host_function() const {
    return std::get<std::shared_ptr<HostFunctionBox>>(v_);
  }

  // Lua truthiness: only nil and false are falsey. Inline: the VM tests
  // truthiness on every conditional jump.
  bool Truthy() const {
    if (std::holds_alternative<std::monostate>(v_)) {
      return false;
    }
    if (const bool* b = std::get_if<bool>(&v_)) {
      return *b;
    }
    return true;
  }

  // In-place scalar stores for the VM's hot paths. When the destination
  // already holds the same alternative these are a single store, skipping
  // the variant's generic destroy-then-construct assignment (and, for the
  // temporary-Value idiom, the temporary itself).
  void SetNumber(double d) {
    if (double* p = std::get_if<double>(&v_)) {
      *p = d;
    } else {
      v_ = d;
    }
  }
  void SetBool(bool b) {
    if (bool* p = std::get_if<bool>(&v_)) {
      *p = b;
    } else {
      v_ = b;
    }
  }
  void SetNil() {
    if (!std::holds_alternative<std::monostate>(v_)) {
      v_ = Variant();
    }
  }
  // Copy assignment with a number fast path (the overwhelmingly common case
  // in register moves, constant loads, and cached global/field reads).
  void CopyFrom(const Value& o) {
    if (const double* p = std::get_if<double>(&o.v_)) {
      SetNumber(*p);
    } else {
      v_ = o.v_;
    }
  }

  // Structural equality for scalars, identity for tables/functions.
  bool Equals(const Value& other) const;

  // Human-readable rendering (used by print and error messages).
  std::string ToString() const;
  const char* TypeName() const;

 private:
  Variant v_;
};

// Table keys: numbers and strings (the subset Mantle/object classes use).
struct TableKey {
  std::variant<double, std::string> k;

  TableKey(double d) : k(d) {}                 // NOLINT(google-explicit-constructor)
  TableKey(std::string s) : k(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  TableKey(const char* s) : k(std::string(s)) {}  // NOLINT(google-explicit-constructor)

  bool operator<(const TableKey& o) const { return k < o.k; }
  bool operator==(const TableKey& o) const { return k == o.k; }

  static Result<TableKey> FromValue(const Value& v);
  std::string ToString() const;
};

class Table {
 public:
  Table();

  Value Get(const TableKey& key) const;
  void Set(const TableKey& key, Value value);

  // Lua-style '#': number of consecutive integer keys starting at 1.
  size_t ArrayLength() const;

  const std::map<TableKey, Value>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  // Structural version used by the VM's inline caches: bumped (from a global
  // monotonic counter, so ids are never reused) whenever a key is inserted
  // or erased — value overwrites keep the shape. An IC entry caching
  // {shape_id, slot pointer} stays valid while the shape is unchanged,
  // because map nodes are stable until erased.
  uint64_t shape_id() const { return shape_id_; }

  // Pointer to the stored value for `key`, or nullptr when absent.
  Value* FindSlot(const TableKey& key);

  static std::shared_ptr<Table> Make() { return std::make_shared<Table>(); }

 private:
  std::map<TableKey, Value> entries_;
  uint64_t shape_id_;
};

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_VALUE_H_
