#include "src/script/value.h"

#include <cmath>
#include <cstdio>

namespace mal::script {

Value Value::Host(std::string name, HostFunction fn) {
  auto box = std::make_shared<HostFunctionBox>();
  box->name = std::move(name);
  box->fn = std::move(fn);
  return Value(std::move(box));
}

bool Value::Equals(const Value& other) const {
  if (v_.index() != other.v_.index()) {
    return false;
  }
  if (is_nil()) {
    return true;
  }
  if (is_bool()) {
    return as_bool() == other.as_bool();
  }
  if (is_number()) {
    return as_number() == other.as_number();
  }
  if (is_string()) {
    return as_string() == other.as_string();
  }
  if (is_table()) {
    return as_table() == other.as_table();
  }
  if (is_closure()) {
    return as_closure() == other.as_closure();
  }
  return as_host_function() == other.as_host_function();
}

namespace {

std::string NumberToString(double d) {
  // Integers print without a decimal point, like Lua.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.14g", d);
  return buf;
}

}  // namespace

std::string Value::ToString() const {
  if (is_nil()) {
    return "nil";
  }
  if (is_bool()) {
    return as_bool() ? "true" : "false";
  }
  if (is_number()) {
    return NumberToString(as_number());
  }
  if (is_string()) {
    return as_string();
  }
  if (is_table()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "table:%p", static_cast<void*>(as_table().get()));
    return buf;
  }
  if (is_closure()) {
    return "function";
  }
  return "builtin:" + as_host_function()->name;
}

const char* Value::TypeName() const {
  if (is_nil()) {
    return "nil";
  }
  if (is_bool()) {
    return "boolean";
  }
  if (is_number()) {
    return "number";
  }
  if (is_string()) {
    return "string";
  }
  if (is_table()) {
    return "table";
  }
  return "function";
}

Result<TableKey> TableKey::FromValue(const Value& v) {
  if (v.is_number()) {
    return TableKey(v.as_number());
  }
  if (v.is_string()) {
    return TableKey(v.as_string());
  }
  return Status::InvalidArgument(std::string("table key must be number or string, got ") +
                                 v.TypeName());
}

std::string TableKey::ToString() const {
  if (std::holds_alternative<double>(k)) {
    return Value(std::get<double>(k)).ToString();
  }
  return std::get<std::string>(k);
}

namespace {
// Global shape-id source. Monotonic so a stale inline-cache entry can never
// collide with a new shape (no ABA), even across tables.
uint64_t g_next_shape_id = 1;
}  // namespace

Table::Table() : shape_id_(g_next_shape_id++) {}

Value Table::Get(const TableKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? Value::Nil() : it->second;
}

void Table::Set(const TableKey& key, Value value) {
  if (value.is_nil()) {
    if (entries_.erase(key) != 0) {
      shape_id_ = g_next_shape_id++;
    }
    return;
  }
  auto [it, inserted] = entries_.insert_or_assign(key, std::move(value));
  if (inserted) {
    shape_id_ = g_next_shape_id++;
  }
}

Value* Table::FindSlot(const TableKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

size_t Table::ArrayLength() const {
  size_t n = 0;
  while (true) {
    auto it = entries_.find(TableKey(static_cast<double>(n + 1)));
    if (it == entries_.end()) {
      return n;
    }
    ++n;
  }
}

}  // namespace mal::script
