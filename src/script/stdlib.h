// Standard library installed into every MalScript interpreter: print, type,
// tostring/tonumber, pairs, math.*, string.*, table.*.
#ifndef MALACOLOGY_SCRIPT_STDLIB_H_
#define MALACOLOGY_SCRIPT_STDLIB_H_

namespace mal::script {

class Interpreter;

void InstallStdlib(Interpreter* interp);

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_STDLIB_H_
