// Tree-walking interpreter for MalScript with sandboxed execution.
//
// Usage:
//   Interpreter interp;
//   interp.RegisterHostFunction("now", ...);
//   auto chunk = Compile("function f(x) return x*2 end");
//   interp.Run(*chunk);                 // defines f in globals
//   auto r = interp.CallGlobal("f", {Value(21.0)});   // 42
//
// Sandboxing (paper §4: "the flexibility of the runtime allows execution
// sandboxing in order to address security and performance concerns"):
// every evaluated AST node consumes one unit of instruction budget; scripts
// exceeding the budget are aborted with kAborted. The host environment is
// only reachable through explicitly registered host functions.
#ifndef MALACOLOGY_SCRIPT_INTERPRETER_H_
#define MALACOLOGY_SCRIPT_INTERPRETER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/script/ast.h"
#include "src/script/value.h"

namespace mal::script {

// Lexical environment: chain of scopes. Closures capture their defining
// environment by shared_ptr.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  // Looks up through the chain; nil if absent anywhere.
  Value Get(const std::string& name) const;

  // Assigns to the nearest scope that defines `name`; if none, defines a
  // global (walks to the root), matching Lua semantics.
  void Set(const std::string& name, Value value);

  // Defines in this scope (local declaration / parameter binding).
  void Define(const std::string& name, Value value);

  bool Has(const std::string& name) const;

  // Names defined directly in this scope (not parents). Used to discover
  // the methods a script class chunk defines.
  std::vector<std::string> LocalNames() const;
  const std::map<std::string, Value>& local_vars() const { return vars_; }

 private:
  std::shared_ptr<Environment> parent_;
  std::map<std::string, Value> vars_;
};

// A script function plus its captured environment.
class Closure {
 public:
  Closure(std::vector<std::string> params, bool is_vararg, std::shared_ptr<Block> body,
          std::shared_ptr<Environment> env)
      : params_(std::move(params)),
        is_vararg_(is_vararg),
        body_(std::move(body)),
        env_(std::move(env)) {}

  const std::vector<std::string>& params() const { return params_; }
  bool is_vararg() const { return is_vararg_; }
  const std::shared_ptr<Block>& body() const { return body_; }
  const std::shared_ptr<Environment>& env() const { return env_; }

 private:
  std::vector<std::string> params_;
  bool is_vararg_;
  std::shared_ptr<Block> body_;
  std::shared_ptr<Environment> env_;
};

// Compiles source to an AST chunk; cached and shared by daemons that install
// the same interface version.
Result<std::shared_ptr<Block>> Compile(const std::string& source);

class Interpreter {
 public:
  Interpreter();

  // Hard cap on AST nodes evaluated per top-level Run/Call. 0 = unlimited.
  void set_instruction_budget(uint64_t budget) { instruction_budget_ = budget; }
  uint64_t instructions_executed() const { return instructions_executed_; }

  std::shared_ptr<Environment> globals() { return globals_; }

  void SetGlobal(const std::string& name, Value v) { globals_->Define(name, v); }
  Value GetGlobal(const std::string& name) const { return globals_->Get(name); }
  void RegisterHostFunction(const std::string& name, HostFunction fn);

  // Lines emitted by the script's print(); the host decides where they go
  // (e.g. the monitor's centralized cluster log).
  std::vector<std::string>& print_output() { return print_output_; }

  // Executes a chunk in the global environment.
  Status Run(const Block& chunk);

  // Compiles and runs source.
  Status RunSource(const std::string& source);

  // Calls a global function by name.
  Result<Value> CallGlobal(const std::string& name, const std::vector<Value>& args);

  // Calls any callable value.
  Result<Value> Call(const Value& callee, const std::vector<Value>& args);

 private:
  friend class Evaluator;

  std::shared_ptr<Environment> globals_;
  uint64_t instruction_budget_ = 10'000'000;
  uint64_t instructions_executed_ = 0;
  std::vector<std::string> print_output_;
  int call_depth_ = 0;
};

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_INTERPRETER_H_
