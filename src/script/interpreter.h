// Tree-walking interpreter for MalScript with sandboxed execution.
//
// Usage:
//   Interpreter interp;
//   interp.RegisterHostFunction("now", ...);
//   auto chunk = Compile("function f(x) return x*2 end");
//   interp.Run(*chunk);                 // defines f in globals
//   auto r = interp.CallGlobal("f", {Value(21.0)});   // 42
//
// Sandboxing (paper §4: "the flexibility of the runtime allows execution
// sandboxing in order to address security and performance concerns"):
// every evaluated AST node consumes one unit of instruction budget; scripts
// exceeding the budget are aborted with kAborted. The host environment is
// only reachable through explicitly registered host functions.
#ifndef MALACOLOGY_SCRIPT_INTERPRETER_H_
#define MALACOLOGY_SCRIPT_INTERPRETER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/script/ast.h"
#include "src/script/value.h"

namespace mal::script {

class Vm;
struct CompiledChunk;

// Closure calls deeper than this abort with "call stack overflow". Shared by
// the tree-walker and the bytecode VM (one counter, so mixed-engine and
// host-reentrant call chains are bounded together).
inline constexpr int kMaxScriptCallDepth = 200;

// Lexical environment: chain of scopes. Closures capture their defining
// environment by shared_ptr.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  // Looks up through the chain; nil if absent anywhere.
  Value Get(const std::string& name) const;

  // Assigns to the nearest scope that defines `name`; if none, defines a
  // global (walks to the root), matching Lua semantics.
  void Set(const std::string& name, Value value);

  // Defines in this scope (local declaration / parameter binding).
  void Define(const std::string& name, Value value);

  bool Has(const std::string& name) const;

  // Names defined directly in this scope (not parents). Used to discover
  // the methods a script class chunk defines.
  std::vector<std::string> LocalNames() const;
  const std::map<std::string, Value>& local_vars() const { return vars_; }

  // Slot pointers for the VM's global caches. Map nodes are stable, and
  // globals are never erased, so a returned pointer stays valid for the
  // environment's lifetime.
  Value* FindLocalSlot(const std::string& name);
  Value* DefineSlot(const std::string& name);

 private:
  std::shared_ptr<Environment> parent_;
  std::map<std::string, Value> vars_;
};

// A script function. Two forms behind one type: the tree-walker's AST form
// (body + captured environment) and the VM's compiled form (proto index into
// a chunk + captured cells). Either engine can call either form.
class Closure {
 public:
  Closure(std::vector<std::string> params, bool is_vararg, std::shared_ptr<Block> body,
          std::shared_ptr<Environment> env)
      : params_(std::move(params)),
        is_vararg_(is_vararg),
        body_(std::move(body)),
        env_(std::move(env)) {}

  Closure(std::shared_ptr<const CompiledChunk> chunk, uint32_t proto_index,
          std::vector<std::shared_ptr<Value>> upvals)
      : is_vararg_(false),
        chunk_(std::move(chunk)),
        proto_index_(proto_index),
        upvals_(std::move(upvals)) {}

  bool is_compiled() const { return chunk_ != nullptr; }

  // AST form.
  const std::vector<std::string>& params() const { return params_; }
  bool is_vararg() const { return is_vararg_; }
  const std::shared_ptr<Block>& body() const { return body_; }
  const std::shared_ptr<Environment>& env() const { return env_; }

  // Compiled form.
  const std::shared_ptr<const CompiledChunk>& chunk() const { return chunk_; }
  uint32_t proto_index() const { return proto_index_; }
  const std::vector<std::shared_ptr<Value>>& upvals() const { return upvals_; }

 private:
  std::vector<std::string> params_;
  bool is_vararg_;
  std::shared_ptr<Block> body_;
  std::shared_ptr<Environment> env_;

  std::shared_ptr<const CompiledChunk> chunk_;
  uint32_t proto_index_ = 0;
  std::vector<std::shared_ptr<Value>> upvals_;
};

// Compiles source to an AST chunk with the register-bytecode translation
// attached (Block::compiled). Results are cached process-wide by source
// text, so daemons installing the same interface version share one chunk.
Result<std::shared_ptr<Block>> Compile(const std::string& source);

// Process-wide Compile() cache statistics (exported as script.compile_cache.*).
struct CompileCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};
CompileCacheStats GetCompileCacheStats();

// Per-interpreter execution statistics, exported through PerfRegistry by the
// daemons that run scripts (see docs/observability.md).
struct EngineStats {
  uint64_t instructions = 0;   // budget units consumed (AST nodes or bytecode ops)
  uint64_t vm_runs = 0;        // top-level entries executed by the bytecode VM
  uint64_t oracle_runs = 0;    // top-level entries executed by the tree-walker
  uint64_t ic_hits = 0;        // inline-cache hits (field + global sites)
  uint64_t ic_misses = 0;      // inline-cache misses
  uint64_t print_dropped = 0;  // print() lines dropped by the output cap
};

class Interpreter {
 public:
  // Which engine executes compiled chunks. kAuto prefers the bytecode VM
  // (unless MAL_SCRIPT_ORACLE=1 forces the tree-walker process-wide);
  // kOracle pins the tree-walker; kVm pins the VM (still falls back to the
  // walker for chunks with no attached bytecode).
  enum class Engine { kAuto, kVm, kOracle };

  Interpreter();
  ~Interpreter();

  // Hard cap on budget units consumed per top-level Run/Call (AST nodes on
  // the tree-walker, bytecode ops on the VM). 0 = unlimited.
  void set_instruction_budget(uint64_t budget) { instruction_budget_ = budget; }
  uint64_t instructions_executed() const { return instructions_executed_; }

  void set_engine(Engine e) { engine_ = e; }
  Engine engine() const { return engine_; }

  // Cumulative counters across this interpreter's lifetime.
  const EngineStats& stats() const { return stats_; }

  std::shared_ptr<Environment> globals() { return globals_; }

  void SetGlobal(const std::string& name, Value v) { globals_->Define(name, v); }
  Value GetGlobal(const std::string& name) const { return globals_->Get(name); }
  void RegisterHostFunction(const std::string& name, HostFunction fn);

  // Lines emitted by the script's print(); the host decides where they go
  // (e.g. the monitor's centralized cluster log). Bounded: once the buffer
  // holds print_limit lines further prints are dropped and counted, so
  // persistent interpreters (Mantle, health rules) can't grow without bound
  // between host drains.
  std::vector<std::string>& print_output() { return print_output_; }
  void set_print_limit(size_t limit) { print_limit_ = limit; }
  size_t print_limit() const { return print_limit_; }
  void NotePrintDropped() { ++stats_.print_dropped; }

  // Executes a chunk in the global environment.
  Status Run(const Block& chunk);

  // Compiles and runs source.
  Status RunSource(const std::string& source);

  // Calls a global function by name.
  Result<Value> CallGlobal(const std::string& name, const std::vector<Value>& args);

  // Calls any callable value.
  Result<Value> Call(const Value& callee, const std::vector<Value>& args);

 private:
  friend class Evaluator;
  friend class Vm;

  // True when compiled chunks should run on the VM.
  bool UseVm() const;

  // Lazily constructs the VM (it holds the value stack and per-chunk caches).
  Vm& EnsureVm();

  // Walker entry used by the VM when it calls an AST-form closure.
  Result<Value> CallAstClosureFromVm(const Value& callee, const std::vector<Value>& args,
                                     int line);

  std::shared_ptr<Environment> globals_;
  uint64_t instruction_budget_ = 10'000'000;
  uint64_t instructions_executed_ = 0;
  std::vector<std::string> print_output_;
  size_t print_limit_ = 10'000;
  int call_depth_ = 0;
  Engine engine_ = Engine::kAuto;
  EngineStats stats_;
  std::shared_ptr<Vm> vm_;
};

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_INTERPRETER_H_
