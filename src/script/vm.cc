#include "src/script/vm.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <variant>

namespace mal::script {

namespace {

// Identical rendering to the tree-walker's RuntimeError so differential
// tests can compare raw status messages.
Status RuntimeError(int line, const std::string& msg) {
  return Status::InvalidArgument("runtime error at line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Vm::ChunkState& Vm::StateFor(const std::shared_ptr<const CompiledChunk>& chunk) {
  const CompiledChunk* key = chunk.get();
  if (key == last_chunk_) {
    return *last_state_;
  }
  auto it = states_.find(key);
  if (it == states_.end()) {
    auto cs = std::make_unique<ChunkState>();
    cs->pin = chunk;
    cs->global_slots.assign(chunk->global_names.size(), nullptr);
    cs->field_ics.assign(chunk->num_field_ics, FieldIc{});
    it = states_.emplace(key, std::move(cs)).first;
  }
  last_chunk_ = key;
  last_state_ = it->second.get();
  return *last_state_;
}

Status Vm::RunChunk(const std::shared_ptr<const CompiledChunk>& chunk) {
  const Proto& proto = *chunk->protos[0];
  size_t base = top_;
  size_t need = base + proto.num_regs;
  if (stack_.size() < need) {
    stack_.resize(need + 64);
  }
  size_t saved_top = top_;
  top_ = base + proto.num_regs;
  Value ignored;
  Status s = Execute(chunk, StateFor(chunk), proto, nullptr, base, 0, &ignored);
  top_ = saved_top;
  if (top_ == 0) {
    stack_.clear();  // keep capacity, drop retained values between runs
  }
  return s;
}

Result<Value> Vm::CallClosure(const Value& callee, const std::vector<Value>& args,
                              int line) {
  size_t child_base = top_;
  size_t need = child_base + args.size();
  if (stack_.size() < need) {
    stack_.resize(need + 64);
  }
  for (size_t i = 0; i < args.size(); ++i) {
    stack_[child_base + i] = args[i];
  }
  Value ret;
  Status s = CallCompiled(callee.as_closure().get(), child_base, args.size(), line, &ret);
  if (top_ == 0) {
    stack_.clear();
  }
  if (!s.ok()) {
    return s;
  }
  return ret;
}

Status Vm::CallCompiled(const Closure* closure, size_t child_base, size_t nargs,
                        int line, Value* out) {
  if (++interp_->call_depth_ > kMaxScriptCallDepth) {
    --interp_->call_depth_;
    return RuntimeError(line, "call stack overflow");
  }
  const std::shared_ptr<const CompiledChunk>& chunk = closure->chunk();
  const Proto& proto = *chunk->protos[closure->proto_index()];
  size_t frame = std::max<size_t>(proto.num_regs, nargs);
  size_t need = child_base + frame;
  if (stack_.size() < need) {
    stack_.resize(need + 64);
  }
  for (size_t i = nargs; i < proto.num_params; ++i) {
    stack_[child_base + i] = Value::Nil();  // missing arguments arrive as nil
  }
  size_t saved_top = top_;
  top_ = child_base + frame;
  Status s = Execute(chunk, StateFor(chunk), proto, closure, child_base, nargs, out);
  top_ = saved_top;
  --interp_->call_depth_;
  return s;
}

// Invokes whatever callable sits in the caller's call window (arguments are
// at [argbase, argbase + nargs) on the stack). Host functions get a copied
// argument vector; AST-form closures are handed to the tree-walker with the
// shared budget and depth counters.
Result<Value> Vm::DispatchCall(const Value& callee, size_t argbase, size_t nargs,
                               int line) {
  if (callee.is_host_function()) {
    std::vector<Value> args(stack_.begin() + static_cast<long>(argbase),
                            stack_.begin() + static_cast<long>(argbase + nargs));
    return callee.as_host_function()->fn(*interp_, args);
  }
  if (!callee.is_closure()) {
    return RuntimeError(line,
                        std::string("attempt to call a ") + callee.TypeName() + " value");
  }
  if (callee.as_closure()->is_compiled()) {
    Value ret;
    Status s = CallCompiled(callee.as_closure().get(), argbase, nargs, line, &ret);
    if (!s.ok()) {
      return s;
    }
    return ret;
  }
  std::vector<Value> args(stack_.begin() + static_cast<long>(argbase),
                          stack_.begin() + static_cast<long>(argbase + nargs));
  return interp_->CallAstClosureFromVm(callee, args, line);
}

// Token-threaded dispatch: on GCC/Clang every opcode body ends in its own
// indirect jump (labels-as-values), so the branch predictor learns the
// opcode-to-opcode transitions of the hot loop instead of funneling every
// instruction through one maximally-mispredicted switch. The #else branch
// keeps a plain switch for other compilers; both share the same bodies.
#if defined(__GNUC__) || defined(__clang__)
#define MAL_VM_CGOTO 1
#endif

#if MAL_VM_CGOTO
#define VM_CASE(name) C_##name
#define VM_NEXT()                                                              \
  do {                                                                         \
    in = code + pc;                                                            \
    ++pc;                                                                      \
    if (budget != 0 && ++interp_->instructions_executed_ > budget) {           \
      return Unwind(Status::Aborted(                                           \
          "script exceeded instruction budget at line " +                      \
          std::to_string(in->line)));                                          \
    }                                                                          \
    goto* kDispatch[static_cast<size_t>(in->op)];                              \
  } while (0)
#else
#define VM_CASE(name) case Op::name
#define VM_NEXT() break
#endif

// Executes `proto` and, via an inline frame stack, every compiled closure it
// (transitively) calls — compiled-to-compiled calls are a frame push/pop
// inside this one dispatch loop, never a C++ recursion. Only host functions
// and AST-form closures leave the loop (DispatchCall), and those may recurse
// back in through CallClosure.
Status Vm::Execute(const std::shared_ptr<const CompiledChunk>& chunk_sp,
                   ChunkState& cs, const Proto& proto, const Closure* closure,
                   size_t base, size_t nargs, Value* out) {
  const uint64_t budget = interp_->instruction_budget_;
  EngineStats& stats = interp_->stats_;
  // IC hit/miss counts accumulate in locals (registers) and flush to the
  // interpreter's stats at every exit from the loop — a per-access RMW on
  // interp_ memory is measurable in field/global-heavy loops.
  uint64_t ic_hits = 0;
  uint64_t ic_misses = 0;
  auto FlushIc = [&] {
    stats.ic_hits += ic_hits;
    stats.ic_misses += ic_misses;
    ic_hits = 0;
    ic_misses = 0;
  };

  // Suspended caller frames for calls inlined into this loop. Everything a
  // frame needs to resume: where in which proto, the register window, and
  // the frame-local cell/iterator slots (moved, not copied).
  struct Frame {
    const CompiledChunk* chunk;
    ChunkState* cs;
    const Proto* proto;
    const Closure* closure;
    const Instr* code;
    size_t pc;
    size_t base;
    size_t nargs;
    uint16_t ret_reg;  // caller register receiving the call result
    bool has_cells;    // whether cells/iters were parked here (the vectors
    bool has_iters;    //  may hold stale capacity from an earlier call)
    std::vector<std::shared_ptr<Value>> cells;
    std::vector<IterState> iters;
  };
  // Frame slots are reused across calls (nframes is the live count), so the
  // hot push/pop path is plain field stores — no vector ctor/dtor per call.
  std::vector<Frame> frames;
  size_t nframes = 0;

  // High-water mark of register use across this activation's inline frames.
  // top_ itself is only synced before control can leave the loop (host or
  // AST callees), so plain compiled-to-compiled calls never touch it.
  size_t water = top_;

  // Current-frame state, rebound on inline call/return.
  const CompiledChunk* chunkp = chunk_sp.get();
  ChunkState* csp = &cs;
  const Proto* protop = &proto;
  const Instr* code = protop->code.data();

  // Frame-local captured-cell and iterator slots. Empty vectors don't
  // allocate, so plain functions pay nothing here.
  std::vector<std::shared_ptr<Value>> cells(protop->num_cells);
  std::vector<IterState> iters(protop->num_iters);

  // Refreshed after anything that may resize the stack (host functions and
  // AST closures can re-enter the VM through the interpreter).
  Value* regs = stack_.data() + base;

  size_t pc = 0;
  const Instr* in = nullptr;

  // Error exits drop all inlined frames at once: the C++ caller restores
  // top_ itself, but the per-frame call-depth increments must be repaid.
  auto Unwind = [&](Status s) {
    FlushIc();
    interp_->call_depth_ -= nframes;
    return s;
  };

#if MAL_VM_CGOTO
  // Must mirror the declaration order of enum class Op exactly. Grouped
  // bodies (arith, ordered compares, eq/ne) share a label.
  static const void* const kDispatch[] = {
      &&C_kLoadK, &&C_kLoadNil, &&C_kLoadBool, &&C_kMove,
      &&C_kGetGlobal, &&C_kSetGlobal, &&C_kGetUpval, &&C_kSetUpval,
      &&C_kNewCell, &&C_kGetCell, &&C_kSetCell,
      &&C_Arith, &&C_Arith, &&C_Arith, &&C_Arith, &&C_Arith, &&C_Arith,
      &&C_ArithK, &&C_ArithK, &&C_ArithK, &&C_ArithK, &&C_ArithK, &&C_ArithK,
      &&C_kConcat, &&C_EqNe, &&C_EqNe, &&C_Cmp, &&C_Cmp, &&C_Cmp, &&C_Cmp,
      &&C_kNot, &&C_kNeg, &&C_kLen,
      &&C_kJmp, &&C_kJmpIf, &&C_kJmpIfNot,
      &&C_kNewTable, &&C_kGetField, &&C_kSetField, &&C_kSetFieldRaw,
      &&C_kGetIndex, &&C_kSetIndex, &&C_kCheckTable,
      &&C_kCall, &&C_kClosure, &&C_kVarargTab,
      &&C_kForPrep, &&C_kForLoop, &&C_kIterPrep, &&C_kIterNext,
      &&C_kReturn, &&C_kReturnNil,
  };
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) ==
                static_cast<size_t>(Op::kReturnNil) + 1);
  VM_NEXT();
#else
  for (;;) {
    in = code + pc;
    ++pc;
    if (budget != 0 && ++interp_->instructions_executed_ > budget) {
      return Unwind(Status::Aborted("script exceeded instruction budget at line " +
                                    std::to_string(in->line)));
    }
    switch (in->op) {
#endif

      VM_CASE(kLoadK):
        regs[in->a].CopyFrom(chunkp->consts[in->d]);
        VM_NEXT();
      VM_CASE(kLoadNil):
        regs[in->a].SetNil();
        VM_NEXT();
      VM_CASE(kLoadBool):
        regs[in->a].SetBool(in->b != 0);
        VM_NEXT();
      VM_CASE(kMove):
        if (in->a != in->b) {
          regs[in->a].CopyFrom(regs[in->b]);
        }
        VM_NEXT();

      VM_CASE(kGetGlobal): {
        Value*& slot = csp->global_slots[in->d];
        if (slot != nullptr) {
          ++ic_hits;
          regs[in->a].CopyFrom(*slot);
        } else {
          // Negative lookups are not cached: defining the global later
          // creates a new map node the stale cache couldn't see.
          ++ic_misses;
          Value* p = interp_->globals_->FindLocalSlot(chunkp->global_names[in->d]);
          if (p != nullptr) {
            slot = p;
            regs[in->a] = *p;
          } else {
            regs[in->a] = Value::Nil();
          }
        }
        VM_NEXT();
      }
      VM_CASE(kSetGlobal): {
        Value*& slot = csp->global_slots[in->d];
        if (slot != nullptr) {
          ++ic_hits;
          slot->CopyFrom(regs[in->a]);
        } else {
          ++ic_misses;
          Value* p = interp_->globals_->DefineSlot(chunkp->global_names[in->d]);
          *p = regs[in->a];
          slot = p;
        }
        VM_NEXT();
      }

      VM_CASE(kGetUpval):
        regs[in->a].CopyFrom(*closure->upvals()[in->b]);
        VM_NEXT();
      VM_CASE(kSetUpval):
        closure->upvals()[in->b]->CopyFrom(regs[in->a]);
        VM_NEXT();
      VM_CASE(kNewCell):
        cells[in->b] = std::make_shared<Value>();
        VM_NEXT();
      VM_CASE(kGetCell):
        regs[in->a].CopyFrom(*cells[in->b]);
        VM_NEXT();
      VM_CASE(kSetCell):
        cells[in->b]->CopyFrom(regs[in->a]);
        VM_NEXT();

#if MAL_VM_CGOTO
      C_Arith: {
#else
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kPow: {
#endif
        const Value& x = regs[in->b];
        const Value& y = regs[in->c];
        if (!x.is_number() || !y.is_number()) {
          return Unwind(RuntimeError(
              in->line, std::string("attempt to perform arithmetic on a ") +
                            (x.is_number() ? y.TypeName() : x.TypeName()) + " value"));
        }
        double a = x.num_unchecked();
        double b = y.num_unchecked();
        double r;
        switch (in->op) {
          case Op::kAdd:
            r = a + b;
            break;
          case Op::kSub:
            r = a - b;
            break;
          case Op::kMul:
            r = a * b;
            break;
          case Op::kDiv:
            r = a / b;  // IEEE semantics, inf on /0 like Lua
            break;
          case Op::kMod:
            r = a - std::floor(a / b) * b;  // Lua modulo
            break;
          default:
            r = std::pow(a, b);
            break;
        }
        regs[in->a].SetNumber(r);
        VM_NEXT();
      }
#if MAL_VM_CGOTO
      C_ArithK: {
#else
      case Op::kAddK:
      case Op::kSubK:
      case Op::kMulK:
      case Op::kDivK:
      case Op::kModK:
      case Op::kPowK: {
#endif
        const Value& x = regs[in->b];
        if (!x.is_number()) {
          return Unwind(RuntimeError(
              in->line, std::string("attempt to perform arithmetic on a ") +
                            x.TypeName() + " value"));
        }
        double a = x.num_unchecked();
        double b = chunkp->consts[in->d].num_unchecked();  // compiler guarantees number
        double r;
        switch (in->op) {
          case Op::kAddK:
            r = a + b;
            break;
          case Op::kSubK:
            r = a - b;
            break;
          case Op::kMulK:
            r = a * b;
            break;
          case Op::kDivK:
            r = a / b;
            break;
          case Op::kModK:
            r = a - std::floor(a / b) * b;
            break;
          default:
            r = std::pow(a, b);
            break;
        }
        regs[in->a].SetNumber(r);
        VM_NEXT();
      }
      VM_CASE(kConcat): {
        const Value& x = regs[in->b];
        const Value& y = regs[in->c];
        if ((x.is_string() || x.is_number()) && (y.is_string() || y.is_number())) {
          regs[in->a] = Value(x.ToString() + y.ToString());
        } else {
          return Unwind(RuntimeError(
              in->line, std::string("attempt to concatenate a ") +
                            (x.is_string() || x.is_number() ? y.TypeName()
                                                            : x.TypeName()) +
                            " value"));
        }
        VM_NEXT();
      }
#if MAL_VM_CGOTO
      C_EqNe: {
#else
      case Op::kEq:
      case Op::kNe: {
#endif
        const Value& x = regs[in->b];
        const Value& y = regs[in->c];
        bool eq = x.is_number() && y.is_number()
                      ? x.num_unchecked() == y.num_unchecked()
                      : x.Equals(y);
        regs[in->a].SetBool(in->op == Op::kEq ? eq : !eq);
        VM_NEXT();
      }
#if MAL_VM_CGOTO
      C_Cmp: {
#else
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
#endif
        const Value& x = regs[in->b];
        const Value& y = regs[in->c];
        bool r;
        if (x.is_number() && y.is_number()) {
          double a = x.num_unchecked();
          double b = y.num_unchecked();
          r = in->op == Op::kLt   ? a < b
              : in->op == Op::kLe ? a <= b
              : in->op == Op::kGt ? a > b
                                  : a >= b;
        } else if (x.is_string() && y.is_string()) {
          int cmp = x.as_string().compare(y.as_string());
          r = in->op == Op::kLt   ? cmp < 0
              : in->op == Op::kLe ? cmp <= 0
              : in->op == Op::kGt ? cmp > 0
                                  : cmp >= 0;
        } else {
          return Unwind(RuntimeError(in->line, std::string("attempt to compare ") +
                                                   x.TypeName() + " with " +
                                                   y.TypeName()));
        }
        regs[in->a].SetBool(r);
        VM_NEXT();
      }
      VM_CASE(kNot):
        regs[in->a].SetBool(!regs[in->b].Truthy());
        VM_NEXT();
      VM_CASE(kNeg): {
        const Value& v = regs[in->b];
        if (!v.is_number()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to negate a ") +
                                                   v.TypeName() + " value"));
        }
        regs[in->a].SetNumber(-v.num_unchecked());
        VM_NEXT();
      }
      VM_CASE(kLen): {
        const Value& v = regs[in->b];
        if (v.is_string()) {
          regs[in->a].SetNumber(static_cast<double>(v.as_string().size()));
        } else if (v.is_table()) {
          size_t n = v.as_table()->ArrayLength();
          regs[in->a].SetNumber(static_cast<double>(n));
        } else {
          return Unwind(RuntimeError(in->line,
                                     std::string("attempt to get length of a ") +
                                         v.TypeName() + " value"));
        }
        VM_NEXT();
      }

      VM_CASE(kJmp):
        pc = static_cast<size_t>(in->d);
        VM_NEXT();
      VM_CASE(kJmpIf):
        if (regs[in->a].Truthy()) {
          pc = static_cast<size_t>(in->d);
        }
        VM_NEXT();
      VM_CASE(kJmpIfNot):
        if (!regs[in->a].Truthy()) {
          pc = static_cast<size_t>(in->d);
        }
        VM_NEXT();

      VM_CASE(kNewTable):
        regs[in->a] = Value(Table::Make());
        VM_NEXT();
      VM_CASE(kGetField): {
        const Value& tv = regs[in->b];
        if (!tv.is_table()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to index a ") +
                                                   tv.TypeName() + " value"));
        }
        Table* t = tv.as_table().get();
        FieldIc& ic = csp->field_ics[in->d];
        if (ic.shape == t->shape_id()) {
          ++ic_hits;
          if (ic.slot != nullptr) {
            if (ic.slot->is_number()) {
              regs[in->a].SetNumber(ic.slot->num_unchecked());
            } else {
              Value tmp = *ic.slot;  // regs[a] may hold the last table ref
              regs[in->a] = std::move(tmp);
            }
          } else {
            regs[in->a].SetNil();  // cached absence
          }
        } else {
          ++ic_misses;
          Value* slot = t->FindSlot(chunkp->field_keys[in->c]);
          ic.shape = t->shape_id();
          ic.slot = slot;
          Value tmp = slot != nullptr ? *slot : Value::Nil();
          regs[in->a] = std::move(tmp);
        }
        VM_NEXT();
      }
      VM_CASE(kSetField): {
        const Value& tv = regs[in->a];
        if (!tv.is_table()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to index a ") +
                                                   tv.TypeName() + " value"));
        }
        Table* t = tv.as_table().get();
        const Value& v = regs[in->b];
        FieldIc& ic = csp->field_ics[in->d];
        if (!v.is_nil() && ic.shape == t->shape_id() && ic.slot != nullptr) {
          // Overwriting an existing key keeps the shape: pure slot store.
          ++ic_hits;
          if (v.is_number()) {
            ic.slot->SetNumber(v.num_unchecked());
          } else {
            Value tmp = v;
            *ic.slot = std::move(tmp);
          }
        } else {
          ++ic_misses;
          t->Set(chunkp->field_keys[in->c], v);
          ic.shape = t->shape_id();
          ic.slot = t->FindSlot(chunkp->field_keys[in->c]);
        }
        VM_NEXT();
      }
      VM_CASE(kSetFieldRaw): {
        const Value& tv = regs[in->a];
        if (!tv.is_table()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to index a ") +
                                                   tv.TypeName() + " value"));
        }
        tv.as_table()->Set(chunkp->field_keys[in->c], regs[in->b]);
        VM_NEXT();
      }
      VM_CASE(kGetIndex): {
        const Value& tv = regs[in->b];
        if (!tv.is_table()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to index a ") +
                                                   tv.TypeName() + " value"));
        }
        Result<TableKey> tk = TableKey::FromValue(regs[in->c]);
        if (!tk.ok()) {
          return Unwind(tk.status());
        }
        Value tmp = tv.as_table()->Get(tk.value());
        regs[in->a] = std::move(tmp);
        VM_NEXT();
      }
      VM_CASE(kSetIndex): {
        const Value& tv = regs[in->a];
        if (!tv.is_table()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to index a ") +
                                                   tv.TypeName() + " value"));
        }
        Result<TableKey> tk = TableKey::FromValue(regs[in->b]);
        if (!tk.ok()) {
          return Unwind(tk.status());
        }
        tv.as_table()->Set(tk.value(), regs[in->c]);
        VM_NEXT();
      }
      VM_CASE(kCheckTable):
        if (!regs[in->a].is_table()) {
          return Unwind(RuntimeError(in->line, std::string("attempt to index a ") +
                                                   regs[in->a].TypeName() + " value"));
        }
        VM_NEXT();

      VM_CASE(kCall): {
        const Value& cv = regs[in->a];
        if (cv.is_closure()) {
          const Closure* ncl = cv.as_closure().get();
          if (ncl->is_compiled()) {
            // Inline frame push: the call never leaves this dispatch loop.
            // Taking the Closure raw is safe — the caller's register pins it
            // until the result overwrites that register after the return, and
            // a stack_ resize moves the register's Value, not the Closure.
            if (interp_->call_depth_ + 1 > kMaxScriptCallDepth) {
              return Unwind(RuntimeError(in->line, "call stack overflow"));
            }
            ++interp_->call_depth_;
            const CompiledChunk* nchunk = ncl->chunk().get();
            const Proto* nproto = nchunk->protos[ncl->proto_index()].get();
            size_t child_base = base + in->a + 1;
            size_t call_nargs = in->b;
            size_t frame_size = std::max<size_t>(nproto->num_regs, call_nargs);
            size_t need = child_base + frame_size;
            if (stack_.size() < need) {
              stack_.resize(need + 64);
            }
            for (size_t i = call_nargs; i < nproto->num_params; ++i) {
              stack_[child_base + i] = Value::Nil();  // missing args arrive as nil
            }
            if (nframes == frames.size()) {
              frames.emplace_back();
            }
            Frame& f = frames[nframes++];
            f.chunk = chunkp;
            f.cs = csp;
            f.proto = protop;
            f.closure = closure;
            f.code = code;
            f.pc = pc;
            f.base = base;
            f.nargs = nargs;
            f.ret_reg = in->c;
            // Leaf functions (no captured cells, no generic-for state) skip
            // the vector shuffles entirely — the common case.
            f.has_cells = !cells.empty() || nproto->num_cells != 0;
            if (f.has_cells) {
              f.cells = std::move(cells);
              cells = std::vector<std::shared_ptr<Value>>(nproto->num_cells);
            }
            f.has_iters = !iters.empty() || nproto->num_iters != 0;
            if (f.has_iters) {
              f.iters = std::move(iters);
              iters = std::vector<IterState>(nproto->num_iters);
            }
            if (nchunk != chunkp) {  // cross-chunk call: switch IC state
              csp = &StateFor(ncl->chunk());
              chunkp = nchunk;
            }
            protop = nproto;
            closure = ncl;
            code = nproto->code.data();
            pc = 0;
            base = child_base;
            nargs = call_nargs;
            if (need > water) {
              water = need;
            }
            regs = stack_.data() + base;
            VM_NEXT();
          }
        }
        // Host functions and AST-form closures leave the loop; pin the
        // callee in a temporary since those paths can outlive a stack_
        // resize while still holding references. Sync top_ so re-entrant
        // CallClosure frames land above every live register.
        top_ = water;
        FlushIc();  // host callees may observe engine stats
        Result<Value> r = DispatchCall(Value(cv), base + in->a + 1, in->b, in->line);
        if (!r.ok()) {
          return Unwind(r.status());
        }
        regs = stack_.data() + base;  // the callee may have resized the stack
        regs[in->c] = std::move(r).value();
        VM_NEXT();
      }
      VM_CASE(kClosure): {
        const Proto& p = *chunkp->protos[in->d];
        std::vector<std::shared_ptr<Value>> ups;
        ups.reserve(p.upvals.size());
        for (const UpvalDesc& ud : p.upvals) {
          ups.push_back(ud.src == UpvalDesc::Src::kParentCell ? cells[ud.index]
                                                              : closure->upvals()[ud.index]);
        }
        regs[in->a] = Value(std::make_shared<Closure>(
            csp->pin, static_cast<uint32_t>(in->d), std::move(ups)));
        VM_NEXT();
      }
      VM_CASE(kVarargTab): {
        auto rest = Table::Make();
        for (size_t i = protop->num_params; i < nargs; ++i) {
          rest->Set(TableKey(static_cast<double>(i - protop->num_params + 1)), regs[i]);
        }
        regs[in->a] = Value(std::move(rest));
        VM_NEXT();
      }

      VM_CASE(kForPrep): {
        const Value& iv = regs[in->a];
        const Value& lim = regs[in->a + 1];
        const Value& st = regs[in->a + 2];
        // Error precedence matches the walker: explicit-step type first,
        // then bounds, then zero step.
        if (in->c != 0 && !st.is_number()) {
          return Unwind(RuntimeError(in->line, "for step must be a number"));
        }
        if (!iv.is_number() || !lim.is_number()) {
          return Unwind(RuntimeError(in->line, "for bounds must be numbers"));
        }
        // Implicit step (c == 0) is a compiler-emitted 1.0 constant, so the
        // unchecked read is covered even without the type check above.
        double s = st.num_unchecked();
        if (s == 0.0) {
          return Unwind(RuntimeError(in->line, "for step must be nonzero"));
        }
        double i = iv.num_unchecked();
        double l = lim.num_unchecked();
        if (!(s > 0 ? i <= l : i >= l)) {
          pc = static_cast<size_t>(in->d);
        }
        VM_NEXT();
      }
      VM_CASE(kForLoop): {
        double s = regs[in->a + 2].num_unchecked();
        double i = regs[in->a].num_unchecked() + s;  // same accumulation as `i += step`
        regs[in->a].SetNumber(i);
        double l = regs[in->a + 1].num_unchecked();
        if (s > 0 ? i <= l : i >= l) {
          pc = static_cast<size_t>(in->d);
        }
        VM_NEXT();
      }
      VM_CASE(kIterPrep): {
        const Value& tv = regs[in->a];
        if (!tv.is_table()) {
          return Unwind(RuntimeError(in->line, "for-in expects a table (or pairs(table))"));
        }
        IterState& it = iters[in->b];
        it.entries.assign(tv.as_table()->entries().begin(),
                          tv.as_table()->entries().end());
        it.pos = 0;
        VM_NEXT();
      }
      VM_CASE(kIterNext): {
        IterState& it = iters[in->b];
        if (it.pos >= it.entries.size()) {
          pc = static_cast<size_t>(in->d);
          VM_NEXT();
        }
        const auto& [key, value] = it.entries[it.pos++];
        regs[in->a] = std::holds_alternative<double>(key.k)
                          ? Value(std::get<double>(key.k))
                          : Value(std::get<std::string>(key.k));
        regs[in->a + 1] = value;
        VM_NEXT();
      }

      VM_CASE(kReturn): {
        if (nframes == 0) {
          FlushIc();
          *out = std::move(regs[in->a]);  // frame is dead past this point
          return Status::Ok();
        }
        Value* child_regs = regs;  // no resize between here and the move below
        Frame& f = frames[--nframes];
        --interp_->call_depth_;
        chunkp = f.chunk;
        csp = f.cs;
        protop = f.proto;
        closure = f.closure;
        code = f.code;
        pc = f.pc;
        base = f.base;
        nargs = f.nargs;
        if (f.has_cells) {
          cells = std::move(f.cells);
        }
        if (f.has_iters) {
          iters = std::move(f.iters);
        }
        regs = stack_.data() + base;
        regs[f.ret_reg] = std::move(child_regs[in->a]);
        VM_NEXT();
      }
      VM_CASE(kReturnNil): {
        if (nframes == 0) {
          FlushIc();
          out->SetNil();
          return Status::Ok();
        }
        Frame& f = frames[--nframes];
        --interp_->call_depth_;
        chunkp = f.chunk;
        csp = f.cs;
        protop = f.proto;
        closure = f.closure;
        code = f.code;
        pc = f.pc;
        base = f.base;
        nargs = f.nargs;
        if (f.has_cells) {
          cells = std::move(f.cells);
        }
        if (f.has_iters) {
          iters = std::move(f.iters);
        }
        regs = stack_.data() + base;
        regs[f.ret_reg].SetNil();
        VM_NEXT();
      }

#if !MAL_VM_CGOTO
    }
  }
#endif
}

#undef VM_CASE
#undef VM_NEXT

}  // namespace mal::script
