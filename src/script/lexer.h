// Tokenizer for MalScript (Lua-like surface syntax).
#ifndef MALACOLOGY_SCRIPT_LEXER_H_
#define MALACOLOGY_SCRIPT_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace mal::script {

enum class TokenType {
  // literals
  kNumber,
  kString,
  kName,
  // keywords
  kAnd, kOr, kNot, kIf, kThen, kElse, kElseif, kEnd, kWhile, kDo, kFor,
  kFunction, kLocal, kReturn, kTrue, kFalse, kNil, kBreak, kIn, kRepeat, kUntil,
  // symbols
  kPlus, kMinus, kStar, kSlash, kPercent, kCaret, kHash,
  kEq, kNe, kLe, kGe, kLt, kGt, kAssign,
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kColon, kComma, kDot, kConcat, kEllipsis,
  kEof,
};

struct Token {
  TokenType type;
  std::string text;   // raw text for names, decoded text for strings
  double number = 0;  // value for kNumber
  int line = 0;
};

const char* TokenTypeName(TokenType t);

// Tokenizes source. On lexical error, returns InvalidArgument with the line.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_LEXER_H_
