// AST -> register bytecode compiler for MalScript. See bytecode.h for the
// instruction set and docs/malscript_vm.md for the design.
#ifndef MALACOLOGY_SCRIPT_COMPILER_H_
#define MALACOLOGY_SCRIPT_COMPILER_H_

#include <memory>

#include "src/common/status.h"
#include "src/script/ast.h"
#include "src/script/bytecode.h"

namespace mal::script {

// Compiles a parsed chunk. Fails only on internal limits (register/constant
// pool overflow); callers fall back to the tree-walking oracle in that case.
Result<std::shared_ptr<const CompiledChunk>> CompileToBytecode(const Block& chunk);

}  // namespace mal::script

#endif  // MALACOLOGY_SCRIPT_COMPILER_H_
