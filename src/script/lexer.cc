#include "src/script/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace mal::script {
namespace {

const std::map<std::string, TokenType>& Keywords() {
  static const auto* kKeywords = new std::map<std::string, TokenType>{
      {"and", TokenType::kAnd},       {"or", TokenType::kOr},
      {"not", TokenType::kNot},       {"if", TokenType::kIf},
      {"then", TokenType::kThen},     {"else", TokenType::kElse},
      {"elseif", TokenType::kElseif}, {"end", TokenType::kEnd},
      {"while", TokenType::kWhile},   {"do", TokenType::kDo},
      {"for", TokenType::kFor},       {"function", TokenType::kFunction},
      {"local", TokenType::kLocal},   {"return", TokenType::kReturn},
      {"true", TokenType::kTrue},     {"false", TokenType::kFalse},
      {"nil", TokenType::kNil},       {"break", TokenType::kBreak},
      {"in", TokenType::kIn},         {"repeat", TokenType::kRepeat},
      {"until", TokenType::kUntil},
  };
  return *kKeywords;
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) {
        tokens.push_back({TokenType::kEof, "", 0, line_});
        return tokens;
      }
      Result<Token> tok = Next();
      if (!tok.ok()) {
        return tok.status();
      }
      tokens.push_back(std::move(tok).value());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }
  bool Match(char expected) {
    if (Peek() == expected) {
      Advance();
      return true;
    }
    return false;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && Peek(1) == '-') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else {
        return;
      }
    }
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("lex error at line " + std::to_string(line_) + ": " + msg);
  }

  Token Simple(TokenType t, std::string text) { return {t, std::move(text), 0, line_}; }

  Result<Token> Next() {
    int start_line = line_;
    char c = Advance();
    switch (c) {
      case '+':
        return Simple(TokenType::kPlus, "+");
      case '-':
        return Simple(TokenType::kMinus, "-");
      case '*':
        return Simple(TokenType::kStar, "*");
      case '/':
        return Simple(TokenType::kSlash, "/");
      case '%':
        return Simple(TokenType::kPercent, "%");
      case '^':
        return Simple(TokenType::kCaret, "^");
      case '#':
        return Simple(TokenType::kHash, "#");
      case '(':
        return Simple(TokenType::kLParen, "(");
      case ')':
        return Simple(TokenType::kRParen, ")");
      case '{':
        return Simple(TokenType::kLBrace, "{");
      case '}':
        return Simple(TokenType::kRBrace, "}");
      case '[':
        return Simple(TokenType::kLBracket, "[");
      case ']':
        return Simple(TokenType::kRBracket, "]");
      case ';':
        return Simple(TokenType::kSemi, ";");
      case ':':
        return Simple(TokenType::kColon, ":");
      case ',':
        return Simple(TokenType::kComma, ",");
      case '=':
        return Match('=') ? Simple(TokenType::kEq, "==") : Simple(TokenType::kAssign, "=");
      case '~':
        if (Match('=')) {
          return Simple(TokenType::kNe, "~=");
        }
        return Error("unexpected '~'");
      case '<':
        return Match('=') ? Simple(TokenType::kLe, "<=") : Simple(TokenType::kLt, "<");
      case '>':
        return Match('=') ? Simple(TokenType::kGe, ">=") : Simple(TokenType::kGt, ">");
      case '.':
        if (Match('.')) {
          if (Match('.')) {
            return Simple(TokenType::kEllipsis, "...");
          }
          return Simple(TokenType::kConcat, "..");
        }
        if (std::isdigit(static_cast<unsigned char>(Peek()))) {
          --pos_;  // re-scan as a number like ".5"
          return LexNumber();
        }
        return Simple(TokenType::kDot, ".");
      case '"':
      case '\'':
        return LexString(c, start_line);
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      --pos_;
      return LexNumber();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      --pos_;
      return LexName();
    }
    return Error(std::string("unexpected character '") + c + "'");
  }

  Result<Token> LexNumber() {
    size_t start = pos_;
    if (Peek() == '0' && (Peek(1) == 'x' || Peek(1) == 'X')) {
      Advance();
      Advance();
      while (std::isxdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
    } else {
      while (std::isdigit(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (Peek() == '.') {
        Advance();
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      }
      if (Peek() == 'e' || Peek() == 'E') {
        Advance();
        if (Peek() == '+' || Peek() == '-') {
          Advance();
        }
        while (std::isdigit(static_cast<unsigned char>(Peek()))) {
          Advance();
        }
      }
    }
    std::string text = src_.substr(start, pos_ - start);
    Token tok{TokenType::kNumber, text, std::strtod(text.c_str(), nullptr), line_};
    return tok;
  }

  Result<Token> LexString(char quote, int start_line) {
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Status::InvalidArgument("lex error at line " + std::to_string(start_line) +
                                       ": unterminated string");
      }
      char c = Advance();
      if (c == quote) {
        return Token{TokenType::kString, out, 0, start_line};
      }
      if (c == '\\') {
        if (AtEnd()) {
          return Error("unterminated escape");
        }
        char e = Advance();
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case '\\':
            out += '\\';
            break;
          case '"':
            out += '"';
            break;
          case '\'':
            out += '\'';
            break;
          case '0':
            out += '\0';
            break;
          default:
            return Error(std::string("bad escape '\\") + e + "'");
        }
      } else {
        out += c;
      }
    }
  }

  Result<Token> LexName() {
    size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      Advance();
    }
    std::string text = src_.substr(start, pos_ - start);
    auto it = Keywords().find(text);
    if (it != Keywords().end()) {
      return Token{it->second, text, 0, line_};
    }
    return Token{TokenType::kName, text, 0, line_};
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kNumber:
      return "number";
    case TokenType::kString:
      return "string";
    case TokenType::kName:
      return "name";
    case TokenType::kEof:
      return "<eof>";
    case TokenType::kAssign:
      return "=";
    case TokenType::kEq:
      return "==";
    case TokenType::kEnd:
      return "end";
    default:
      return "token";
  }
}

Result<std::vector<Token>> Lex(const std::string& source) { return LexerImpl(source).Run(); }

}  // namespace mal::script
