#include "src/chaos/chaos.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/log.h"
#include "src/mds/types.h"

namespace mal::chaos {

std::string ChaosEvent::ToString() const {
  return "t=" + std::to_string(time) + " " + kind + (detail.empty() ? "" : " " + detail);
}

// ---------------------------------------------------------------------------
// Runner

namespace {

// Fault classes, indexed to line up with the weight vector built in Inject.
enum FaultClass : size_t {
  kOsdCrash = 0,
  kMdsCrash,
  kMonCrash,
  kLeaderCrash,
  kPartition,
  kBurst,
  kOsdPermLoss,
  kShardCorrupt,
  kNumClasses,
};

}  // namespace

Runner::Runner(cluster::Cluster* cluster, FaultPlan plan)
    : cluster_(cluster), plan_(plan), rng_(plan.seed) {}

void Runner::Arm() {
  if (armed_) {
    return;
  }
  armed_ = true;
  // Permanent loss needs a monitor client to submit kOsdFail. Create it
  // only when the class is enabled: a client changes the message trace, so
  // plans without the class must not pay for it.
  if (plan_.w_osd_perm_loss > 0 && chaos_client_ == nullptr) {
    chaos_client_ = cluster_->NewClient();
    if (plan_.mon_request_timeout > 0) {
      chaos_client_->rados.mon_client().set_request_timeout(plan_.mon_request_timeout);
    }
  }
  auto* sim = &cluster_->simulator();
  end_time_ = sim->Now() + plan_.duration;
  sim->Schedule(plan_.duration, [this] {
    done_injecting_ = true;
    HealAll();
  });
  ScheduleNext();
}

void Runner::ScheduleNext() {
  if (done_injecting_) {
    return;
  }
  auto* sim = &cluster_->simulator();
  auto gap = std::max<sim::Time>(
      1, static_cast<sim::Time>(rng_.Exponential(static_cast<double>(plan_.mean_interval))));
  if (sim->Now() + gap >= end_time_) {
    return;  // the end-of-plan event heals whatever is still outstanding
  }
  sim->Schedule(gap, [this] {
    Inject();
    ScheduleNext();
  });
}

int Runner::LeaderIndex() const {
  for (size_t i = 0; i < cluster_->num_mons(); ++i) {
    const auto& mon = cluster_->monitor(i);
    if (mon.alive() && mon.IsLeader()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

uint32_t Runner::PickUp(uint32_t count, const std::set<uint32_t>& down) {
  std::vector<uint32_t> up;
  for (uint32_t i = 0; i < count; ++i) {
    if (down.count(i) == 0) {
      up.push_back(i);
    }
  }
  return up[rng_.NextBelow(up.size())];
}

void Runner::Inject() {
  // A majority of monitors must stay up AND connected; an isolated monitor
  // counts against the budget just like a crashed one.
  uint32_t num_mons = static_cast<uint32_t>(cluster_->num_mons());
  uint32_t mons_out =
      static_cast<uint32_t>(down_mons_.size()) + (partitioned_mon_ >= 0 ? 1 : 0);
  uint32_t mon_budget = (num_mons - 1) / 2;  // max simultaneously out
  bool mon_ok = mons_out < mon_budget;

  std::vector<double> weights(kNumClasses, 0.0);
  size_t osds_out = down_osds_.size() + lost_osds_.size();
  if (cluster_->num_osds() > osds_out && down_osds_.size() < plan_.max_down_osds) {
    weights[kOsdCrash] = plan_.w_osd_crash;
  }
  // The redundancy-damage classes (permanent loss, bit-rot) respect a
  // spacing floor: an m=1 erasure code provably survives them only if the
  // scrubber completes a repair pass between consecutive hits, so back-to-
  // back damage would test the code's tolerance, not the repair machinery.
  bool damage_ok = last_damage_ == 0 ||
                   cluster_->simulator().Now() - last_damage_ >= plan_.min_damage_interval;
  // Permanent loss keeps at least one OSD alive (a cluster with zero
  // stores has nothing left to verify) and needs the mon client.
  if (plan_.w_osd_perm_loss > 0 && chaos_client_ != nullptr && damage_ok &&
      lost_osds_.size() < plan_.max_lost_osds && cluster_->num_osds() >= osds_out + 2) {
    weights[kOsdPermLoss] = plan_.w_osd_perm_loss;
  }
  if (plan_.w_shard_corrupt > 0 && damage_ok && !ShardCandidates().empty()) {
    weights[kShardCorrupt] = plan_.w_shard_corrupt;
  }
  if (cluster_->num_mds() > down_mds_.size() && down_mds_.size() < plan_.max_down_mds) {
    weights[kMdsCrash] = plan_.w_mds_crash;
  }
  if (mon_ok) {
    weights[kMonCrash] = plan_.w_mon_crash;
    if (LeaderIndex() >= 0) {
      weights[kLeaderCrash] = plan_.w_leader_crash;
    }
  }
  if (partition_edges_.empty()) {
    weights[kPartition] = plan_.w_partition;
  }
  if (!burst_active_) {
    weights[kBurst] = plan_.w_burst;
  }
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0) {
    return;  // nothing feasible right now; try again next interval
  }
  switch (rng_.WeightedIndex(weights)) {
    case kOsdCrash:
      InjectOsdCrash();
      break;
    case kMdsCrash:
      InjectMdsCrash();
      break;
    case kMonCrash:
      InjectMonCrash(/*target_leader=*/false);
      break;
    case kLeaderCrash:
      InjectMonCrash(/*target_leader=*/true);
      break;
    case kPartition:
      InjectPartition();
      break;
    case kBurst:
      InjectBurst();
      break;
    case kOsdPermLoss:
      InjectOsdPermLoss();
      break;
    case kShardCorrupt:
      InjectShardCorrupt();
      break;
    default:
      break;
  }
}

sim::Time Runner::Uniform(sim::Time lo, sim::Time hi) {
  if (hi <= lo) {
    return lo;
  }
  return lo + rng_.NextBelow(hi - lo);
}

void Runner::Record(const char* kind, std::string detail) {
  events_.push_back(ChaosEvent{cluster_->simulator().Now(), kind, std::move(detail)});
}

void Runner::InjectOsdCrash() {
  std::set<uint32_t> out = down_osds_;
  out.insert(lost_osds_.begin(), lost_osds_.end());
  uint32_t id = PickUp(static_cast<uint32_t>(cluster_->num_osds()), out);
  down_osds_.insert(id);
  Record("osd_crash", "osd." + std::to_string(id));
  cluster_->osd(id).Crash();
  sim::Time downtime = Uniform(plan_.min_downtime, plan_.max_downtime);
  cluster_->simulator().Schedule(downtime, [this, id] { RecoverOsd(id); });
}

void Runner::RecoverOsd(uint32_t id) {
  if (down_osds_.erase(id) == 0) {
    return;
  }
  Record("osd_recover", "osd." + std::to_string(id));
  cluster_->osd(id).Recover();
  TrackRecovery("osd_crash", [this, id] { return !cluster_->osd(id).rejoining(); });
}

void Runner::InjectMdsCrash() {
  uint32_t id = PickUp(static_cast<uint32_t>(cluster_->num_mds()), down_mds_);
  down_mds_.insert(id);
  Record("mds_crash", "mds." + std::to_string(id));
  cluster_->mds(id).Crash();
  sim::Time downtime = Uniform(plan_.min_downtime, plan_.max_downtime);
  cluster_->simulator().Schedule(downtime, [this, id] { RecoverMds(id); });
}

void Runner::RecoverMds(uint32_t id) {
  if (down_mds_.erase(id) == 0) {
    return;
  }
  Record("mds_recover", "mds." + std::to_string(id));
  cluster_->mds(id).Recover();
  TrackRecovery("mds_crash", [this, id] { return cluster_->mds(id).alive(); });
}

void Runner::InjectMonCrash(bool target_leader) {
  int leader = LeaderIndex();
  uint32_t id = (target_leader && leader >= 0)
                    ? static_cast<uint32_t>(leader)
                    : PickUp(static_cast<uint32_t>(cluster_->num_mons()), down_mons_);
  std::string cls = target_leader ? "leader_crash" : "mon_crash";
  down_mons_.insert(id);
  Record(cls.c_str(), "mon." + std::to_string(id));
  cluster_->monitor(id).Crash();
  sim::Time downtime = Uniform(plan_.min_downtime, plan_.max_downtime);
  cluster_->simulator().Schedule(downtime,
                                 [this, id, cls] { RecoverMon(id, cls); });
}

void Runner::RecoverMon(uint32_t id, std::string cls) {
  if (down_mons_.erase(id) == 0) {
    return;
  }
  Record((cls == "leader_crash") ? "leader_recover" : "mon_recover",
         "mon." + std::to_string(id));
  cluster_->monitor(id).Recover();
  // Recovered when some monitor (not necessarily this one) leads again.
  TrackRecovery(std::move(cls), [this] { return LeaderIndex() >= 0; });
}

void Runner::InjectPartition() {
  // Candidate victims: any up daemon; a monitor only if isolating it still
  // leaves a connected majority.
  uint32_t num_mons = static_cast<uint32_t>(cluster_->num_mons());
  uint32_t mon_budget = (num_mons - 1) / 2;
  bool mon_ok = down_mons_.size() < mon_budget;
  std::vector<sim::EntityName> candidates;
  if (mon_ok) {
    for (uint32_t i = 0; i < num_mons; ++i) {
      if (down_mons_.count(i) == 0) {
        candidates.push_back(sim::EntityName::Mon(i));
      }
    }
  }
  for (uint32_t i = 0; i < cluster_->num_osds(); ++i) {
    if (down_osds_.count(i) == 0 && lost_osds_.count(i) == 0) {
      candidates.push_back(sim::EntityName::Osd(i));
    }
  }
  for (uint32_t i = 0; i < cluster_->num_mds(); ++i) {
    if (down_mds_.count(i) == 0) {
      candidates.push_back(sim::EntityName::Mds(i));
    }
  }
  if (candidates.empty()) {
    return;
  }
  sim::EntityName victim = candidates[rng_.NextBelow(candidates.size())];
  if (victim.type == sim::EntityType::kMon) {
    partitioned_mon_ = static_cast<int>(victim.id);
  }
  // Cut the victim off from every other daemon (clients keep their links:
  // a half-partition, which is the nastier case for fencing logic).
  auto cut = [&](sim::EntityName other) {
    if (other == victim) {
      return;
    }
    cluster_->network().SetPartitioned(victim, other, true);
    partition_edges_.emplace_back(victim, other);
  };
  for (uint32_t i = 0; i < num_mons; ++i) {
    cut(sim::EntityName::Mon(i));
  }
  for (uint32_t i = 0; i < cluster_->num_osds(); ++i) {
    cut(sim::EntityName::Osd(i));
  }
  for (uint32_t i = 0; i < cluster_->num_mds(); ++i) {
    cut(sim::EntityName::Mds(i));
  }
  Record("partition_start", victim.ToString());
  sim::Time duration = Uniform(plan_.min_downtime, plan_.max_downtime);
  cluster_->simulator().Schedule(duration, [this] { LiftPartition(); });
}

void Runner::LiftPartition() {
  if (partition_edges_.empty()) {
    return;
  }
  sim::EntityName victim = partition_edges_.front().first;
  for (const auto& [a, b] : partition_edges_) {
    cluster_->network().SetPartitioned(a, b, false);
  }
  partition_edges_.clear();
  partitioned_mon_ = -1;
  Record("partition_heal", victim.ToString());
  recovery_ns_["partition"].push_back(0);
}

void Runner::InjectBurst() {
  burst_active_ = true;
  cluster_->network().SetDefaultFaults(plan_.burst);
  Record("burst_start", "loss=" + std::to_string(plan_.burst.loss_prob) +
                            " dup=" + std::to_string(plan_.burst.dup_prob) +
                            " reorder=" + std::to_string(plan_.burst.reorder_prob));
  sim::Time duration = Uniform(plan_.min_burst, plan_.max_burst);
  cluster_->simulator().Schedule(duration, [this] { LiftBurst(); });
}

void Runner::LiftBurst() {
  if (!burst_active_) {
    return;
  }
  burst_active_ = false;
  cluster_->network().SetDefaultFaults(sim::FaultSpec{});
  Record("burst_end", "");
  recovery_ns_["burst"].push_back(0);
}

void Runner::InjectOsdPermLoss() {
  std::set<uint32_t> out = down_osds_;
  out.insert(lost_osds_.begin(), lost_osds_.end());
  uint32_t id = PickUp(static_cast<uint32_t>(cluster_->num_osds()), out);
  lost_osds_.insert(id);
  last_damage_ = cluster_->simulator().Now();
  Record("osd_perm_loss", "osd." + std::to_string(id));
  cluster_->osd(id).Crash();
  cluster_->osd(id).store().Clear();  // the disk is gone, not just the daemon
  MarkOsdFailed(id);
  // Recovered when every surviving (currently-up) OSD has adopted a map
  // that no longer lists the victim as up — placement has rerouted.
  TrackRecovery("osd_perm_loss", [this, id] {
    for (uint32_t i = 0; i < cluster_->num_osds(); ++i) {
      if (lost_osds_.count(i) != 0 || down_osds_.count(i) != 0) {
        continue;
      }
      const auto& map = cluster_->osd(i).osd_map();
      auto it = map.osds.find(id);
      if (it != map.osds.end() && it->second.up) {
        return false;
      }
    }
    return true;
  });
}

void Runner::MarkOsdFailed(uint32_t id) {
  mon::Transaction fail;
  fail.op = mon::Transaction::Op::kOsdFail;
  fail.daemon_id = id;
  chaos_client_->rados.mon_client().SubmitTransaction(fail, [this, id](mal::Status) {
    // The fail may race a monitor failover and be dropped on the floor; a
    // lost disk the map keeps routing to would wedge every repair, so
    // verify against the freshest monitor and resubmit until it sticks.
    cluster_->simulator().Schedule(500 * sim::kMillisecond, [this, id] {
      const mon::OsdMap* map = &cluster_->monitor(0).osd_map();
      for (size_t i = 1; i < cluster_->num_mons(); ++i) {
        if (cluster_->monitor(i).osd_map().epoch > map->epoch) {
          map = &cluster_->monitor(i).osd_map();
        }
      }
      auto it = map->osds.find(id);
      if (it != map->osds.end() && it->second.up) {
        MarkOsdFailed(id);
      }
    });
  });
}

std::vector<std::pair<uint32_t, std::string>> Runner::ShardCandidates() const {
  std::vector<std::pair<uint32_t, std::string>> out;
  for (uint32_t i = 0; i < cluster_->num_osds(); ++i) {
    if (down_osds_.count(i) != 0 || lost_osds_.count(i) != 0) {
      continue;
    }
    for (const std::string& oid : cluster_->osd(i).store().List()) {
      if (osd::ParseEcShardOid(oid).has_value()) {
        out.emplace_back(i, oid);
      }
    }
  }
  return out;
}

void Runner::InjectShardCorrupt() {
  auto candidates = ShardCandidates();
  if (candidates.empty()) {
    return;
  }
  auto [osd_id, oid] = candidates[rng_.NextBelow(candidates.size())];
  auto object = cluster_->osd(osd_id).store().Get(oid);
  if (!object.ok() || object.value()->data.size() == 0) {
    return;  // zero-length shard: nothing to rot
  }
  uint64_t byte = rng_.NextBelow(object.value()->data.size());
  uint32_t bit = static_cast<uint32_t>(rng_.NextBelow(8));
  cluster_->osd(osd_id).store().FlipBit(oid, byte, bit);
  last_damage_ = cluster_->simulator().Now();
  Record("shard_corrupt", "osd." + std::to_string(osd_id) + " " + oid +
                              " byte=" + std::to_string(byte) +
                              " bit=" + std::to_string(bit));
  // No heal to schedule: silent corruption stays until scrub catches it.
}

void Runner::HealAll() {
  Record("heal_all", "");
  // Copy: the Recover* helpers mutate the down-sets.
  for (uint32_t id : std::set<uint32_t>(down_osds_)) {
    RecoverOsd(id);
  }
  for (uint32_t id : std::set<uint32_t>(down_mds_)) {
    RecoverMds(id);
  }
  for (uint32_t id : std::set<uint32_t>(down_mons_)) {
    RecoverMon(id, "mon_crash");
  }
  LiftPartition();
  LiftBurst();
}

bool Runner::quiescent() const {
  return down_osds_.empty() && down_mds_.empty() && down_mons_.empty() &&
         partition_edges_.empty() && !burst_active_;
}

void Runner::TrackRecovery(std::string cls, std::function<bool()> recovered) {
  PollRecovery(std::move(cls),
               std::make_shared<std::function<bool()>>(std::move(recovered)),
               cluster_->simulator().Now(), 0);
}

void Runner::PollRecovery(std::string cls, std::shared_ptr<std::function<bool()>> recovered,
                          sim::Time start, int polls) {
  // 1200 polls = 60 s of virtual time: give up and record the cap rather
  // than poll forever (a cluster that has not recovered by then will fail
  // the checkers anyway).
  if ((*recovered)() || polls > 1200) {
    recovery_ns_[cls].push_back(cluster_->simulator().Now() - start);
    return;
  }
  cluster_->simulator().Schedule(
      50 * sim::kMillisecond, [this, cls = std::move(cls), recovered, start, polls]() mutable {
        PollRecovery(std::move(cls), std::move(recovered), start, polls + 1);
      });
}

std::string Runner::TraceString() const {
  std::string out;
  for (const auto& event : events_) {
    out += event.ToString();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Checkers

Checkers::Checkers(cluster::Cluster* cluster) : cluster_(cluster) {}

void Checkers::WatchSequencer(std::string path) {
  watched_paths_.push_back(std::move(path));
}

void Checkers::Arm(sim::Time interval) {
  if (armed_) {
    return;
  }
  armed_ = true;
  // Event-driven epoch monotonicity at every OSD: hook map application
  // (chained, so experiment hooks keep working).
  for (size_t i = 0; i < cluster_->num_osds(); ++i) {
    auto* osd = &cluster_->osd(i);
    std::string observer = "osd." + std::to_string(i) + ".applied";
    auto prev = osd->on_map_applied;
    osd->on_map_applied = [this, observer, prev](mon::Epoch epoch) {
      CheckEpoch(observer, epoch);
      if (prev) {
        prev(epoch);
      }
    };
  }
  cluster_->simulator().Schedule(interval, [this, interval] { SampleLoop(interval); });
}

void Checkers::SampleLoop(sim::Time interval) {
  Sample();
  cluster_->simulator().Schedule(interval, [this, interval] { SampleLoop(interval); });
}

void Checkers::RecordAck(uint64_t position, std::string tag) {
  auto [it, fresh] = acked_.emplace(position, std::move(tag));
  if (!fresh) {
    Violation("position " + std::to_string(position) + " acked twice");
  }
}

void Checkers::RecordAck(const std::string& path, uint64_t position, std::string tag) {
  auto [it, fresh] = acked_by_path_[path].emplace(position, std::move(tag));
  if (!fresh) {
    Violation(path + " position " + std::to_string(position) + " acked twice");
  }
}

void Checkers::RecordEcAck(const std::string& pool, const std::string& object,
                           std::string payload) {
  // Unlike log positions, objects are mutable: the newest acked write is
  // the one that must survive.
  ec_acked_[pool][object] = std::move(payload);
}

void Checkers::CheckEpoch(const std::string& observer, uint64_t epoch) {
  uint64_t& best = max_epoch_[observer];
  if (epoch < best) {
    Violation(observer + " epoch regressed " + std::to_string(best) + " -> " +
              std::to_string(epoch));
    return;
  }
  best = epoch;
}

void Checkers::Violation(std::string what) {
  MAL_WARN("chaos") << "INVARIANT VIOLATION: " << what;
  violations_.push_back("t=" + std::to_string(cluster_->simulator().Now()) + " " +
                        std::move(what));
}

void Checkers::Sample() {
  ++samples_;
  // Map epochs are monotonic at every observer. Monitor and OSD map state
  // models durable storage (survives crashes); the MDS keeps its last map
  // across restart, so none of these may ever regress.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> epochs_at_commit;
  for (size_t i = 0; i < cluster_->num_mons(); ++i) {
    const auto& mon = cluster_->monitor(i);
    std::string who = "mon." + std::to_string(i);
    CheckEpoch(who + ".osd_epoch", mon.osd_map().epoch);
    CheckEpoch(who + ".mds_epoch", mon.mds_map().epoch);
    // At most one leader per ballot, ever (ballots are globally unique
    // proposal rounds; two monitors leading on the same ballot would mean
    // a split brain that Paxos promises forbid).
    if (mon.alive() && mon.IsLeader()) {
      auto [it, fresh] =
          ballot_leader_.emplace(mon.paxos_ballot(), static_cast<uint32_t>(i));
      if (!fresh && it->second != i) {
        Violation("two leaders for ballot " + std::to_string(mon.paxos_ballot()) +
                  ": mon." + std::to_string(it->second) + " and mon." + std::to_string(i));
      }
    }
    // No split epochs: commits apply deterministically, so two monitors at
    // the same committed-through point must agree on every map epoch.
    auto pair = std::make_pair(mon.osd_map().epoch, mon.mds_map().epoch);
    auto [it, fresh] = epochs_at_commit.emplace(mon.paxos_committed_through(), pair);
    if (!fresh && it->second != pair) {
      Violation("epoch split at commit " + std::to_string(mon.paxos_committed_through()) +
                ": mon." + std::to_string(i) + " disagrees");
    }
  }
  for (size_t i = 0; i < cluster_->num_osds(); ++i) {
    CheckEpoch("osd." + std::to_string(i), cluster_->osd(i).osd_map().epoch);
  }
  for (size_t i = 0; i < cluster_->num_mds(); ++i) {
    CheckEpoch("mds." + std::to_string(i), cluster_->mds(i).mds_map().epoch);
  }
  // At most one writable capability holder per file per instant, across
  // all live metadata servers (§4.3.1 exclusivity).
  std::map<std::string, std::vector<std::string>> holders;
  for (size_t i = 0; i < cluster_->num_mds(); ++i) {
    const auto& mds = cluster_->mds(i);
    if (!mds.alive()) {
      continue;
    }
    for (const auto& [path, holder] : mds.HeldCaps()) {
      holders[path].push_back("mds." + std::to_string(i) + ":" + holder.ToString());
    }
  }
  for (const auto& [path, who] : holders) {
    if (who.size() > 1) {
      std::string all;
      for (const auto& w : who) {
        all += (all.empty() ? "" : ", ") + w;
      }
      Violation("multiple writable cap holders for " + path + ": " + all);
    }
  }
  // The inode-embedded sequencer counter never regresses (§4.3.2: grants
  // recorded durably before the reply leaves the MDS).
  for (const auto& path : watched_paths_) {
    uint64_t tail = 0;
    bool found = false;
    for (size_t i = 0; i < cluster_->num_mds(); ++i) {
      const auto* inode = cluster_->mds(i).GetInode(path);
      if (inode != nullptr && inode->type == mds::InodeType::kSequencer) {
        tail = std::max(tail, inode->seq_tail);
        found = true;
      }
    }
    if (!found) {
      // Once a watched sequencer inode has been observed, SOME daemon must
      // always hold it (live or journaled on a crashed rank; migration
      // erases the source only after the target installed). Found nowhere =
      // the handoff dropped the inode and its grant counter.
      if (seq_floor_.count(path) != 0) {
        Violation("sequencer inode lost for " + path);
      }
      continue;
    }
    uint64_t& floor = seq_floor_[path];
    if (tail < floor) {
      Violation("sequencer tail regressed for " + path + ": " + std::to_string(floor) +
                " -> " + std::to_string(tail));
    } else {
      floor = tail;
    }
  }
}

struct Checkers::LogScan {
  zlog::Log* log = nullptr;
  // Which ack map this scan is checked against (the shared legacy map or
  // one log's map in a multi-log run) and the violation-message prefix.
  const std::map<uint64_t, std::string>* acks = nullptr;
  std::string label;
  uint64_t pos = 0;
  uint64_t max = 0;
  int retries = 0;
  std::function<void()> done;
};

void Checkers::VerifyLog(zlog::Log* log, std::function<void()> on_done) {
  VerifyAgainst(&acked_, "", log, std::move(on_done));
}

void Checkers::VerifyLog(const std::string& path, zlog::Log* log,
                         std::function<void()> on_done) {
  VerifyAgainst(&acked_by_path_[path], path + " ", log, std::move(on_done));
}

void Checkers::VerifyAgainst(const std::map<uint64_t, std::string>* acks,
                             std::string label, zlog::Log* log,
                             std::function<void()> on_done) {
  if (acks->empty()) {
    on_done();
    return;
  }
  auto scan = std::make_shared<LogScan>();
  scan->log = log;
  scan->acks = acks;
  scan->label = std::move(label);
  scan->max = acks->rbegin()->first;
  scan->done = std::move(on_done);
  VerifyStep(std::move(scan));
}

void Checkers::VerifyStep(std::shared_ptr<LogScan> scan) {
  if (scan->pos > scan->max) {
    scan->done();
    return;
  }
  uint64_t pos = scan->pos;
  scan->log->Read(pos, [this, scan](mal::Status status, zlog::EntryState state,
                                    const mal::Buffer& data) {
    uint64_t pos = scan->pos;
    auto it = scan->acks->find(pos);
    if (status.ok()) {
      if (state == zlog::EntryState::kData) {
        if (it != scan->acks->end() && data.View() != it->second) {
          Violation(scan->label + "payload mismatch at acked position " +
                    std::to_string(pos));
        }
      } else if (it != scan->acks->end()) {
        // kFilled/kTrimmed where an ack was issued = a lost committed write.
        Violation(scan->label + "acked append lost at position " + std::to_string(pos) +
                  " (filled)");
      }
      ++scan->pos;
      scan->retries = 0;
      VerifyStep(std::move(scan));
      return;
    }
    if (status.code() == mal::Code::kNotWritten) {
      if (it != scan->acks->end()) {
        Violation(scan->label + "acked append lost at position " + std::to_string(pos) +
                  " (hole)");
      }
      // Fill the hole so the committed prefix is contiguous. kReadOnly
      // means a writer landed the position concurrently: re-read it.
      scan->log->Fill(pos, [this, scan, pos](mal::Status fill_status) {
        if (fill_status.ok()) {
          ++scan->pos;
          scan->retries = 0;
        } else if (fill_status.code() != mal::Code::kReadOnly && ++scan->retries > 8) {
          Violation(scan->label + "fill failed at position " + std::to_string(pos) + ": " +
                    fill_status.ToString());
          ++scan->pos;
          scan->retries = 0;
        }
        VerifyStep(std::move(scan));
      });
      return;
    }
    if (status.code() == mal::Code::kStaleEpoch) {
      if (++scan->retries > 32) {
        Violation(scan->label + "verify stuck on stale epoch at position " +
                  std::to_string(pos));
        scan->done();
        return;
      }
      // The log handle pre-dates a recovery seal; relearn the epoch.
      scan->log->Open([this, scan](mal::Status) { VerifyStep(std::move(scan)); });
      return;
    }
    if (++scan->retries <= 8) {
      VerifyStep(std::move(scan));  // transient (kUnavailable/kTimedOut): retry
      return;
    }
    Violation(scan->label + "verify read failed at position " + std::to_string(pos) +
              ": " + status.ToString());
    ++scan->pos;
    scan->retries = 0;
    VerifyStep(std::move(scan));
  });
}

struct Checkers::EcScan {
  ec::Pool* pool = nullptr;
  const std::map<std::string, std::string>* acks = nullptr;
  std::map<std::string, std::string>::const_iterator it;
  int retries = 0;
  std::function<void()> done;
};

void Checkers::VerifyEcPool(ec::Pool* pool, std::function<void()> on_done) {
  auto pit = ec_acked_.find(pool->name());
  if (pit == ec_acked_.end() || pit->second.empty()) {
    on_done();
    return;
  }
  auto scan = std::make_shared<EcScan>();
  scan->pool = pool;
  scan->acks = &pit->second;
  scan->it = pit->second.begin();
  scan->done = std::move(on_done);
  VerifyEcStep(std::move(scan));
}

void Checkers::VerifyEcStep(std::shared_ptr<EcScan> scan) {
  if (scan->it == scan->acks->end()) {
    scan->done();
    return;
  }
  const std::string& object = scan->it->first;
  scan->pool->Read(object, [this, scan](mal::Status status, const mal::Buffer& data) {
    const std::string& object = scan->it->first;
    if (status.ok()) {
      if (data.View() != scan->it->second) {
        Violation("ec " + scan->pool->name() + "/" + object +
                  " payload mismatch after heal");
      }
      ++scan->it;
      scan->retries = 0;
      VerifyEcStep(std::move(scan));
      return;
    }
    bool transient = status.code() == mal::Code::kUnavailable ||
                     status.code() == mal::Code::kTimedOut ||
                     status.code() == mal::Code::kBusy;
    if (transient && ++scan->retries <= 8) {
      VerifyEcStep(std::move(scan));
      return;
    }
    // kDataLoss / kNotFound (or a transient that never clears): an acked
    // object no longer reads back — the invariant the EC pool promises.
    Violation("ec " + scan->pool->name() + "/" + object + " acked object lost: " +
              status.ToString());
    ++scan->it;
    scan->retries = 0;
    VerifyEcStep(std::move(scan));
  });
}

uint32_t Checkers::EcMissingShards(const std::string& pool, uint32_t k) const {
  auto pit = ec_acked_.find(pool);
  if (pit == ec_acked_.end() || cluster_->num_mons() == 0) {
    return 0;
  }
  // Freshest map any monitor holds: the authoritative placement view.
  const mon::OsdMap* map = &cluster_->monitor(0).osd_map();
  for (size_t i = 1; i < cluster_->num_mons(); ++i) {
    if (cluster_->monitor(i).osd_map().epoch > map->epoch) {
      map = &cluster_->monitor(i).osd_map();
    }
  }
  uint32_t default_replicas = cluster_->options().osd.replicas;
  uint32_t missing = 0;
  for (const auto& [object, payload] : pit->second) {
    std::string logical = osd::PoolOid(pool, object);
    uint64_t stamp = ec::Checksum(mal::Buffer::FromString(payload));
    for (uint32_t s = 0; s < k + 1; ++s) {
      std::string shard_oid = osd::EcShardOid(logical, s);
      auto acting = osd::ActingSetForOid(shard_oid, *map, default_replicas);
      bool healthy = false;
      if (!acting.empty() && acting[0] < cluster_->num_osds()) {
        auto stored = cluster_->osd(acting[0]).store().Get(shard_oid);
        if (stored.ok()) {
          const auto& xattrs = stored.value()->xattrs;
          auto cksum = xattrs.find(ec::kShardCksumXattr);
          auto gen = xattrs.find(ec::kShardStampXattr);
          healthy = cksum != xattrs.end() && gen != xattrs.end() &&
                    std::strtoull(cksum->second.c_str(), nullptr, 10) ==
                        ec::Checksum(stored.value()->data) &&
                    std::strtoull(gen->second.c_str(), nullptr, 10) == stamp;
        }
      }
      if (!healthy) {
        ++missing;
      }
    }
  }
  return missing;
}

std::string Checkers::Report() const {
  std::string out = "samples=" + std::to_string(samples_) +
                    " acked=" + std::to_string(acked_count()) +
                    " violations=" + std::to_string(violations_.size()) + "\n";
  for (const auto& violation : violations_) {
    out += violation;
    out += '\n';
  }
  return out;
}

}  // namespace mal::chaos
