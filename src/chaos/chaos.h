// Deterministic chaos engine: seeded fault schedules against a live
// cluster, plus cluster-wide invariant checkers.
//
// The contract is reproducibility: a FaultPlan seed fully determines the
// fault schedule (which daemon crashes when, partition endpoints, burst
// windows), and because the simulator itself is deterministic, the same
// seed replays the exact same event trace — Runner::TraceString() is the
// artifact to diff. Fault injection draws only from the Runner's own Rng
// and the Network's dedicated fault stream, so a plan with everything
// disabled perturbs nothing (bench output stays byte-identical).
//
// Checkers assert the safety properties the paper's designs rely on:
// CORFU write-once/no-ack-loss (§4.4.2), monotonic map epochs and a
// single Paxos leader per ballot (§4.1), exclusive write capabilities
// (§4.3.1), and a never-regressing sequencer counter (§4.3.2).
#ifndef MALACOLOGY_CHAOS_CHAOS_H_
#define MALACOLOGY_CHAOS_CHAOS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/ec/pool.h"

namespace mal::chaos {

// One entry of the reproducible fault/heal trace.
struct ChaosEvent {
  sim::Time time = 0;
  std::string kind;    // "osd_crash", "mon_recover", "burst_start", ...
  std::string detail;  // entity / endpoints / parameters
  std::string ToString() const;
};

// Seeded description of a chaos run. Weights select among fault classes
// that are currently feasible (quorum-preserving: at most a minority of
// monitors down or isolated at once).
struct FaultPlan {
  uint64_t seed = 1;
  sim::Time duration = 30 * sim::kSecond;     // injection window
  sim::Time mean_interval = 2 * sim::kSecond;  // exponential inter-fault gap
  sim::Time min_downtime = 500 * sim::kMillisecond;
  sim::Time max_downtime = 4 * sim::kSecond;
  sim::Time min_burst = 200 * sim::kMillisecond;
  sim::Time max_burst = 2 * sim::kSecond;
  // Loss/dup/reorder rates applied cluster-wide during a burst.
  sim::FaultSpec burst{0.05, 0.05, 0.10, 2 * sim::kMillisecond};

  double w_osd_crash = 1.0;
  double w_mds_crash = 1.0;
  double w_mon_crash = 1.0;
  double w_leader_crash = 1.0;  // crash specifically the Paxos leader
  double w_partition = 1.0;     // isolate one daemon from all other daemons
  double w_burst = 1.0;
  // Robustness classes for EC/scrub runs; default off so existing plans
  // draw the exact same RNG sequence and replay byte-identically.
  double w_osd_perm_loss = 0.0;  // destroy an OSD and its store forever
  double w_shard_corrupt = 0.0;  // flip one bit in a stored EC shard

  uint32_t max_down_osds = 1;
  uint32_t max_down_mds = 1;
  uint32_t max_lost_osds = 1;  // permanent losses over the whole run
  // Spacing floor between redundancy-damage faults (permanent loss, shard
  // corruption): an m=1 erasure code only provably survives them when the
  // scrubber gets a full repair pass in between. Set to 0 to explore the
  // beyond-tolerance regime where acked data may genuinely be lost.
  sim::Time min_damage_interval = 5 * sim::kSecond;
  // Per-attempt monitor RPC timeout for the runner's own client (the one
  // that submits kOsdFail for permanent losses). 0 keeps the transport
  // default (5s); damage plans set ~1s so a down-OSD map update is not
  // stalled behind a dead monitor while the scrubber's repair window runs
  // out (see min_damage_interval).
  sim::Time mon_request_timeout = 0;
};

// Injects the plan's faults into a booted cluster. Every fault schedules
// its own heal; after `plan.duration` no new faults start and HealAll()
// restores a fault-free cluster, so `quiescent()` eventually holds.
class Runner {
 public:
  Runner(cluster::Cluster* cluster, FaultPlan plan);

  // Starts the schedule (call once, after Cluster::Boot).
  void Arm();

  // Force-heals everything immediately: recovers crashed daemons, lifts
  // partitions and bursts. Called automatically at the end of the plan.
  void HealAll();

  // True when no injected fault is still outstanding.
  bool quiescent() const;

  const std::vector<ChaosEvent>& events() const { return events_; }
  // Canonical trace for the seed-reproducibility contract: identical
  // across runs with the same plan against the same cluster options.
  std::string TraceString() const;

  // Heal-to-recovered latency samples (ns), per fault class. Recovery is
  // observed at: OSD map catch-up complete, a monitor holding leadership
  // again, MDS process restart; partitions/bursts recover instantly.
  const std::map<std::string, std::vector<sim::Time>>& recovery_ns() const {
    return recovery_ns_;
  }

 private:
  void ScheduleNext();
  void Inject();
  void Record(const char* kind, std::string detail);
  sim::Time Uniform(sim::Time lo, sim::Time hi);
  // Polls `recovered` (no RNG, fixed 50 ms cadence) and records the
  // heal-to-recovered latency for `cls` when it first holds.
  void TrackRecovery(std::string cls, std::function<bool()> recovered);
  void PollRecovery(std::string cls, std::shared_ptr<std::function<bool()>> recovered,
                    sim::Time start, int polls);

  void InjectOsdCrash();
  void InjectMdsCrash();
  void InjectMonCrash(bool target_leader);
  void InjectPartition();
  void InjectBurst();
  // Permanent loss: crash + wipe the store + mark the OSD failed in the
  // map (via the runner's own client). Never healed — the data is gone and
  // only scrub rebuild brings the redundancy back on the survivors.
  void InjectOsdPermLoss();
  // Silent bit-rot: flip one bit of a stored EC shard object on a live
  // OSD. No heal either — checksum scrubbing must catch and repair it.
  void InjectShardCorrupt();
  // Submits kOsdFail for a lost OSD and resubmits (500 ms cadence, no RNG)
  // until the freshest monitor map stops listing it up — the transaction
  // may race a monitor failover and be dropped.
  void MarkOsdFailed(uint32_t id);
  // All stored ".shard" objects on up OSDs, in deterministic order.
  std::vector<std::pair<uint32_t, std::string>> ShardCandidates() const;

  // Heal primitives; each is a no-op if the fault is no longer active, so
  // the per-fault scheduled heal and HealAll() compose safely.
  void RecoverOsd(uint32_t id);
  void RecoverMds(uint32_t id);
  void RecoverMon(uint32_t id, std::string cls);
  void LiftPartition();
  void LiftBurst();

  // Live monitor currently believing itself leader, or -1.
  int LeaderIndex() const;
  uint32_t PickUp(uint32_t count, const std::set<uint32_t>& down);

  cluster::Cluster* cluster_;
  FaultPlan plan_;
  mal::Rng rng_;
  sim::Time end_time_ = 0;
  bool armed_ = false;
  bool done_injecting_ = false;

  std::set<uint32_t> down_osds_;
  std::set<uint32_t> down_mds_;
  std::set<uint32_t> down_mons_;
  // Permanently destroyed OSDs: never recovered, excluded from heal and
  // quiescence (a dead disk is a steady state, not an outstanding fault).
  std::set<uint32_t> lost_osds_;
  // When the last redundancy-damage fault landed (0 = never); gates the
  // damage classes behind plan.min_damage_interval.
  sim::Time last_damage_ = 0;
  // Lazily created at Arm() when permanent loss is enabled: submits the
  // kOsdFail transactions that take lost OSDs out of the map.
  cluster::Client* chaos_client_ = nullptr;
  // Active partition edges (empty when none).
  std::vector<std::pair<sim::EntityName, sim::EntityName>> partition_edges_;
  // When a monitor is the isolated endpoint it counts against quorum.
  int partitioned_mon_ = -1;
  bool burst_active_ = false;

  std::vector<ChaosEvent> events_;
  std::map<std::string, std::vector<sim::Time>> recovery_ns_;
};

// Cluster-wide invariant checkers. Arm() starts periodic instantaneous
// sampling; RecordAck() feeds the workload's acked appends; VerifyLog()
// is the post-heal deep scan. Violations accumulate as deterministic
// strings — any entry is a test failure.
class Checkers {
 public:
  explicit Checkers(cluster::Cluster* cluster);

  // Starts sampling every `interval` and hooks OSD map application.
  void Arm(sim::Time interval = 200 * sim::kMillisecond);

  // Registers a sequencer inode path whose embedded counter must never
  // regress (max across MDS daemons, sampled).
  void WatchSequencer(std::string path);

  // Workload-side: an append was acked at `position` carrying `tag`.
  // Flags the same position acked twice immediately.
  void RecordAck(uint64_t position, std::string tag);
  // EC-pool workload-side: `object` in `pool` was fully committed with
  // `payload` (all shards + index acked). Later writes of the same object
  // replace the expectation.
  void RecordEcAck(const std::string& pool, const std::string& object, std::string payload);
  // Path-scoped variant for multi-log runs (sharded sequencers): each log
  // keeps its own position space, so ack-twice and verify are checked per
  // log instead of in one shared map.
  void RecordAck(const std::string& path, uint64_t position, std::string tag);

  // Post-heal scan of [0, max acked]: every acked position must read back
  // kData with its exact payload (no acked-append loss, no silent
  // overwrite); unwritten holes are filled so the committed prefix is
  // contiguous. `log` must be an open handle on the verified log.
  void VerifyLog(zlog::Log* log, std::function<void()> on_done);
  // Multi-log variant: verifies `log` against the acks recorded for `path`
  // via the path-scoped RecordAck. The paper's migration/failover claim is
  // exactly this: every log's committed prefix survives, no matter which
  // rank its sequencer lived on when the faults hit.
  void VerifyLog(const std::string& path, zlog::Log* log, std::function<void()> on_done);

  // Post-heal scan of an EC pool: every acked object must read back its
  // exact payload (degraded reads are fine — kDataLoss or a mismatch is
  // not). `pool` must be a handle on the verified pool.
  void VerifyEcPool(ec::Pool* pool, std::function<void()> on_done);

  // White-box redundancy audit against the freshest monitor map: counts
  // acked (object, shard) slots whose canonical home does not hold a
  // checksum-valid shard of the object's acked generation. Zero means
  // scrub restored full k+1 redundancy on the surviving OSDs.
  uint32_t EcMissingShards(const std::string& pool, uint32_t k) const;

  const std::vector<std::string>& violations() const { return violations_; }
  uint64_t samples() const { return samples_; }
  uint64_t acked_count() const {
    uint64_t count = acked_.size();
    for (const auto& [path, acks] : acked_by_path_) {
      count += acks.size();
    }
    return count;
  }
  // Deterministic checker summary (diffed by the reproducibility test).
  std::string Report() const;

 private:
  struct LogScan;
  struct EcScan;

  void Sample();
  void VerifyEcStep(std::shared_ptr<EcScan> scan);
  void SampleLoop(sim::Time interval);
  void CheckEpoch(const std::string& observer, uint64_t epoch);
  void Violation(std::string what);
  void VerifyStep(std::shared_ptr<LogScan> scan);
  void VerifyAgainst(const std::map<uint64_t, std::string>* acks, std::string label,
                     zlog::Log* log, std::function<void()> on_done);

  cluster::Cluster* cluster_;
  std::vector<std::string> violations_;
  std::map<uint64_t, std::string> acked_;  // position -> payload tag
  // Multi-log runs: per-path ack maps (position spaces are independent).
  std::map<std::string, std::map<uint64_t, std::string>> acked_by_path_;
  // EC pools: pool -> object -> last acked payload.
  std::map<std::string, std::map<std::string, std::string>> ec_acked_;
  std::map<std::string, uint64_t> max_epoch_;      // observer -> max epoch seen
  std::map<uint64_t, uint32_t> ballot_leader_;     // ballot -> monitor id
  std::map<std::string, uint64_t> seq_floor_;      // path -> max tail seen
  std::vector<std::string> watched_paths_;
  uint64_t samples_ = 0;
  bool armed_ = false;
};

}  // namespace mal::chaos

#endif  // MALACOLOGY_CHAOS_CHAOS_H_
