#include "src/mantle/mantle.h"

#include <utility>

#include "src/common/log.h"

namespace mal::mantle {

using script::Table;
using script::TableKey;
using script::Value;

MantleBalancer::MantleBalancer(std::string version, std::shared_ptr<script::Block> chunk)
    : version_(std::move(version)), chunk_(std::move(chunk)) {
  interp_.set_instruction_budget(1'000'000);
  interp_.SetGlobal("state", Value(Table::Make()));
}

mal::Result<std::shared_ptr<MantleBalancer>> MantleBalancer::Load(
    const std::string& version, const std::string& source) {
  auto chunk = script::Compile(source);
  if (!chunk.ok()) {
    return chunk.status();
  }
  return std::shared_ptr<MantleBalancer>(
      new MantleBalancer(version, std::move(chunk).value()));
}

std::vector<std::string> MantleBalancer::DrainPolicyOutput() {
  std::vector<std::string> out = std::move(interp_.print_output());
  interp_.print_output().clear();
  return out;
}

mds::PolicyScriptStats MantleBalancer::ConsumeScriptStats() {
  const script::EngineStats& st = interp_.stats();
  mds::PolicyScriptStats out;
  out.instructions = st.instructions - exported_.instructions;
  out.vm_runs = st.vm_runs - exported_.vm_runs;
  out.oracle_runs = st.oracle_runs - exported_.oracle_runs;
  out.ic_hits = st.ic_hits - exported_.ic_hits;
  out.ic_misses = st.ic_misses - exported_.ic_misses;
  out.print_dropped = st.print_dropped - exported_.print_dropped;
  exported_ = st;
  return out;
}

mal::Result<mds::MigrationTargets> MantleBalancer::Decide(const mds::BalancerContext& ctx) {
  // Publish the load table as the `mds` global.
  auto mds_table = Table::Make();
  for (const auto& [rank, metrics] : ctx.mds) {
    auto row = Table::Make();
    row->Set(TableKey("load"), Value(metrics.load));
    row->Set(TableKey("cpu"), Value(metrics.cpu));
    row->Set(TableKey("req_rate"), Value(metrics.req_rate));
    auto subtrees = Table::Make();
    for (const auto& [path, rate] : metrics.subtree_rate) {
      subtrees->Set(TableKey(path), Value(rate));
    }
    row->Set(TableKey("subtrees"), Value(subtrees));
    // Per-inode sequencer load (sharded sequencers): mds[i]["seq"][path] is
    // the grant rate of each hosted log, so a hot-log policy can pick the
    // heaviest log instead of guessing from subtree names; "num_seqs" is
    // the owned-log count. Empty/0 when ownership sharding is off.
    auto seqs = Table::Make();
    for (const std::string& path : metrics.seq_paths) {
      auto rate_it = metrics.subtree_rate.find(path);
      seqs->Set(TableKey(path),
                Value(rate_it == metrics.subtree_rate.end() ? 0.0 : rate_it->second));
    }
    row->Set(TableKey("seq"), Value(seqs));
    row->Set(TableKey("num_seqs"), Value(static_cast<double>(metrics.seq_paths.size())));
    mds_table->Set(TableKey(static_cast<double>(rank)), Value(row));
  }
  interp_.SetGlobal("mds", Value(mds_table));
  interp_.SetGlobal("whoami", Value(static_cast<double>(ctx.whoami)));
  interp_.SetGlobal("time", Value(static_cast<double>(ctx.now_ns) / 1e9));
  auto targets = Table::Make();
  interp_.SetGlobal("targets", Value(targets));

  // Run the chunk: statement-style policies fill `targets` right here;
  // callback-style policies (re)define when()/where().
  mal::Status run = interp_.Run(*chunk_);
  if (!run.ok()) {
    return run;
  }
  Value when = interp_.GetGlobal("when");
  if (when.is_callable()) {
    auto should = interp_.Call(when, {});
    if (!should.ok()) {
      return should.status();
    }
    if (!should.value().Truthy()) {
      return mds::MigrationTargets{};  // policy chose not to migrate
    }
    Value where = interp_.GetGlobal("where");
    if (where.is_callable()) {
      auto filled = interp_.Call(where, {});
      if (!filled.ok()) {
        return filled.status();
      }
    }
  }
  mds::MigrationTargets out;
  for (const auto& [key, value] : targets->entries()) {
    if (!std::holds_alternative<double>(key.k) || !value.is_number()) {
      continue;
    }
    double rank = std::get<double>(key.k);
    double amount = value.as_number();
    if (rank >= 0 && amount > 0) {
      out[static_cast<uint32_t>(rank)] = amount;
    }
  }
  return out;
}

// -- MantleManager -----------------------------------------------------------------

MantleManager::MantleManager(mds::MdsDaemon* daemon) : daemon_(daemon) {}

void MantleManager::Start(sim::Time check_interval) {
  daemon_->StartPeriodic(check_interval, [this] { CheckVersion(); });
}

void MantleManager::CheckVersion() {
  const auto& metadata = daemon_->mds_map().service_metadata;
  auto it = metadata.find(kBalancerVersionKey);
  if (it == metadata.end() || it->second == loaded_version_ || fetch_in_flight_) {
    return;
  }
  FetchAndLoad(it->second);
}

void MantleManager::FetchAndLoad(const std::string& version) {
  fetch_in_flight_ = true;
  // "The balancer pulls the code from RADOS synchronously; we achieve this
  // with a timeout: half the balancing tick interval" (§5.1.2).
  sim::Time timeout = daemon_->config().balance_interval / 2;
  auto done = std::make_shared<bool>(false);
  // Guarded: the fetch-timeout timer must not mutate a restarted daemon.
  daemon_->ScheduleGuarded(timeout, [this, done, version] {
    if (!*done) {
      *done = true;
      fetch_in_flight_ = false;
      daemon_->mon_client().Log(
          "ERROR", "mantle: Connection Timeout fetching balancer '" + version + "'");
    }
  });
  daemon_->rados_client().Read(
      version, [this, done, version](mal::Status status, const mal::Buffer& body) {
        if (*done) {
          return;  // timed out already; drop the late answer
        }
        *done = true;
        fetch_in_flight_ = false;
        if (!status.ok()) {
          daemon_->mon_client().Log("ERROR", "mantle: failed to read balancer '" + version +
                                                 "': " + status.ToString());
          return;
        }
        auto balancer = MantleBalancer::Load(version, body.ToString());
        if (!balancer.ok()) {
          daemon_->mon_client().Log("ERROR", "mantle: balancer '" + version +
                                                 "' rejected: " +
                                                 balancer.status().ToString());
          return;
        }
        loaded_version_ = version;
        daemon_->SetBalancerPolicy(balancer.value());
        daemon_->mon_client().Log("INFO",
                                  "mantle: loaded balancer version '" + version + "'");
      });
}

void MantleManager::InstallPolicy(rados::RadosClient* rados, const std::string& version,
                                  const std::string& source,
                                  std::function<void(mal::Status)> on_done) {
  // Validate before publishing: a broken policy must never reach the map.
  auto compiled = MantleBalancer::Load(version, source);
  if (!compiled.ok()) {
    on_done(compiled.status());
    return;
  }
  rados->WriteFull(version, mal::Buffer::FromString(source),
                   [rados, version, on_done = std::move(on_done)](mal::Status status) {
                     if (!status.ok()) {
                       on_done(status);
                       return;
                     }
                     rados->mon_client().SetServiceMetadata(
                         mon::MapKind::kMdsMap, kBalancerVersionKey, version, on_done);
                   });
}

}  // namespace mal::mantle
