// Mantle: the programmable metadata load balancer (paper §5.1),
// re-implemented on Malacology interfaces.
//
// Policies are MalScript sources evaluated against the cluster load table.
// Globals available to a policy:
//   whoami   — this MDS's rank (number)
//   mds      — table: mds[rank] = {load, cpu, req_rate, subtrees}
//              where subtrees maps path -> requests/sec
//   targets  — table the policy fills: targets[rank] = load to export
//   time     — current virtual time in seconds
//   state    — table persisted across balancing ticks (for backoff
//              counters etc.; §6.2.3)
//
// A policy may be written in two styles:
//   1. callback style: define `when()` (should I migrate?) and `where()`
//      (fill `targets`); or
//   2. statement style: top-level statements that fill `targets` directly,
//      e.g. the paper's  targets[whoami+1] = mds[whoami]["load"]/2.
//
// MantleManager composes the Malacology interfaces exactly as §5.1
// describes: the policy body is durable as a RADOS object whose name is
// the version (Durability interface), the current version is published in
// the MDSMap service metadata (Service Metadata interface), version
// changes and errors go to the monitor's centralized cluster log, and the
// policy object is fetched with a timeout of half the balancing tick so a
// slow OSD cannot wedge the MDS (§5.1.2).
#ifndef MALACOLOGY_MANTLE_MANTLE_H_
#define MALACOLOGY_MANTLE_MANTLE_H_

#include <memory>
#include <string>

#include "src/mds/balancer.h"
#include "src/mds/mds.h"
#include "src/script/interpreter.h"

namespace mal::mantle {

class MantleBalancer : public mds::BalancerPolicy {
 public:
  // Compiles `source`; fails fast on syntax errors (nothing is installed).
  static mal::Result<std::shared_ptr<MantleBalancer>> Load(const std::string& version,
                                                           const std::string& source);

  std::string name() const override { return "mantle:" + version_; }
  const std::string& version() const { return version_; }

  mal::Result<mds::MigrationTargets> Decide(const mds::BalancerContext& ctx) override;

  // Print output produced by the policy (drained per tick); the manager
  // relays it to the centralized cluster log.
  std::vector<std::string> DrainPolicyOutput();

  // Engine-counter deltas since the previous call (the interpreter is
  // persistent, so we diff against the last exported snapshot).
  mds::PolicyScriptStats ConsumeScriptStats() override;

 private:
  MantleBalancer(std::string version, std::shared_ptr<script::Block> chunk);

  std::string version_;
  std::shared_ptr<script::Block> chunk_;
  script::Interpreter interp_;  // persistent: `state` survives across ticks
  script::EngineStats exported_;  // stats() snapshot at last ConsumeScriptStats
};

// Per-MDS manager wiring Mantle into the daemon.
class MantleManager {
 public:
  MantleManager(mds::MdsDaemon* daemon);

  // Starts watching the MDSMap for balancer version changes.
  void Start(sim::Time check_interval = 1 * sim::kSecond);

  const std::string& loaded_version() const { return loaded_version_; }

  // Admin path (any client can use these helpers too): store the policy as
  // a RADOS object named `version`, then publish the version in the MDSMap.
  static void InstallPolicy(rados::RadosClient* rados, const std::string& version,
                            const std::string& source,
                            std::function<void(mal::Status)> on_done);

 private:
  void CheckVersion();
  void FetchAndLoad(const std::string& version);

  mds::MdsDaemon* daemon_;
  std::string loaded_version_;
  bool fetch_in_flight_ = false;
};

// The balancer version key in the MDSMap service metadata.
inline constexpr char kBalancerVersionKey[] = "mantle.balancer_version";

}  // namespace mal::mantle

#endif  // MALACOLOGY_MANTLE_MANTLE_H_
