#include "src/osd/osd.h"

#include <algorithm>
#include <memory>

#include "src/common/log.h"
#include "src/common/trace.h"

namespace mal::osd {
namespace {

// Integrity gate on shard adoption: a pulled/recovered EC shard whose
// ec.cksum xattr no longer matches its bytes is bit-rot, and adopting it
// would re-home the corruption onto a healthy OSD. Refuse; the scrub agent
// re-encodes a clean shard instead. The hash must match ec::Checksum
// (FNV-1a over the bytestream).
bool AdoptableObject(const std::string& oid, const Object& object) {
  if (!ParseEcShardOid(oid).has_value()) {
    return true;
  }
  auto it = object.xattrs.find("ec.cksum");
  if (it == object.xattrs.end()) {
    return true;
  }
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : object.data.View()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return std::to_string(h) == it->second;
}

const char* OpTypeName(Op::Type type) {
  switch (type) {
    case Op::Type::kCreate:
      return "create";
    case Op::Type::kRemove:
      return "remove";
    case Op::Type::kRead:
      return "read";
    case Op::Type::kWrite:
      return "write";
    case Op::Type::kWriteFull:
      return "write_full";
    case Op::Type::kAppend:
      return "append";
    case Op::Type::kTruncate:
      return "truncate";
    case Op::Type::kStat:
      return "stat";
    case Op::Type::kOmapGet:
      return "omap_get";
    case Op::Type::kOmapSet:
      return "omap_set";
    case Op::Type::kOmapDel:
      return "omap_del";
    case Op::Type::kOmapList:
      return "omap_list";
    case Op::Type::kXattrGet:
      return "xattr_get";
    case Op::Type::kXattrSet:
      return "xattr_set";
    case Op::Type::kCmpXattr:
      return "cmp_xattr";
    case Op::Type::kExec:
      return "exec";
    case Op::Type::kSnapCreate:
      return "snap_create";
    case Op::Type::kSnapRead:
      return "snap_read";
    case Op::Type::kSnapRemove:
      return "snap_remove";
  }
  return "unknown";
}

}  // namespace

Osd::Osd(sim::Simulator* simulator, sim::Network* network, uint32_t id,
         std::vector<uint32_t> mons, OsdConfig config)
    : Actor(simulator, network, sim::EntityName::Osd(id)),
      config_(config),
      mon_client_(this, std::move(mons)),
      rng_(config.seed * 0x9e3779b97f4a7c15ULL + id) {
  cls::RegisterBuiltinClasses(&registry_);
  RegisterHandlers();
  SetInboxLimit(config_.inbox_depth);
  SetServicePerf(&perf_);
  if (config_.mon_request_timeout > 0) {
    mon_client_.set_request_timeout(config_.mon_request_timeout);
  }
}

void Osd::RegisterHandlers() {
  dispatcher_.OnTyped<OsdOpRequest>(
      kMsgOsdOp, [this](const sim::Envelope& env, OsdOpRequest req) {
        HandleOsdOp(env, std::move(req));
      });
  dispatcher_.OnTyped<OsdOpRequest>(
      kMsgRepOp, [this](const sim::Envelope& env, OsdOpRequest req) {
        HandleRepOp(env, std::move(req));
      });
  dispatcher_.OnTyped<PullObjectRequest>(
      kMsgPullObject, [this](const sim::Envelope& env, PullObjectRequest req) {
        HandlePull(env, std::move(req));
      });
  dispatcher_.OnTyped<ScrubRequest>(
      kMsgScrub, [this](const sim::Envelope& env, ScrubRequest req) {
        HandleScrub(env, std::move(req));
      });
  dispatcher_.OnTyped<WatchRequest>(
      kMsgWatch, [this](const sim::Envelope& env, WatchRequest req) {
        HandleWatch(env, std::move(req));
      });
  // Raw handlers: gossip uses a Result-returning map decoder, push and map
  // updates carry nested payloads with their own freshness checks.
  dispatcher_.On(kMsgGossipMap, [this](const sim::Envelope& env) { HandleGossip(env); });
  dispatcher_.On(kMsgPushObject, [this](const sim::Envelope& env) { HandlePush(env); });
  dispatcher_.On(mon::kMsgMapUpdate,
                 [this](const sim::Envelope& env) { HandleMapUpdate(env); });
}

void Osd::Boot() {
  mon::Transaction boot;
  boot.op = mon::Transaction::Op::kOsdBoot;
  boot.daemon_id = name().id;
  mon_client_.SubmitTransaction(boot, [this](mal::Status s) {
    if (!s.ok()) {
      MAL_WARN(name().ToString()) << "boot registration failed: " << s;
    }
  });
  if (config_.subscribe_to_mon) {
    mon_client_.Subscribe(mon::MapKind::kOsdMap, osd_map_.epoch);
  } else {
    mon_client_.GetMap(mon::MapKind::kOsdMap,
                       [this](mal::Status s, const mon::MapUpdate& update) {
                         if (!s.ok()) {
                           return;
                         }
                         mal::Decoder dec(update.map_payload);
                         auto map = mon::OsdMap::Decode(&dec);
                         if (map.ok()) {
                           AdoptMap(map.value(), /*gossip=*/false);
                         }
                       });
  }
  if (config_.scrub_interval > 0) {
    StartPeriodic(config_.scrub_interval, [this] { ScrubTick(); });
  }
  if (config_.perf_report_interval > 0) {
    StartPeriodic(config_.perf_report_interval, [this] {
      if (!perf_.empty()) {
        mon_client_.ReportPerf(perf_.Snapshot(name().ToString(), Now()));
      }
    });
  }
  StartPeriodic(config_.gossip_interval, [this] {
    // Anti-entropy: push our map to one random up peer.
    std::vector<uint32_t> peers;
    for (const auto& [id, info] : osd_map_.osds) {
      if (info.up && id != name().id) {
        peers.push_back(id);
      }
    }
    if (!peers.empty()) {
      GossipTo(peers[rng_.NextBelow(peers.size())]);
    }
  });
}

void Osd::Crash() { Actor::Crash(); }

void Osd::Recover() {
  Actor::Recover();
  // ObjectStore contents survive (disk); map may be stale — resubscribe,
  // and gate client ops until we have caught up with the monitor's current
  // map so a stale primary view never serves (or fences) fresh data.
  rejoining_ = true;
  Boot();
  CatchUpMap();
}

void Osd::CatchUpMap() {
  mon_client_.GetMap(
      mon::MapKind::kOsdMap, [this](mal::Status s, const mon::MapUpdate& update) {
        if (!s.ok()) {
          // Monitor unreachable (maybe itself recovering); keep trying — the
          // guard drops the chain if we crash again meanwhile.
          ScheduleGuarded(500 * sim::kMillisecond, [this] { CatchUpMap(); });
          return;
        }
        mal::Decoder dec(update.map_payload);
        auto map = mon::OsdMap::Decode(&dec);
        if (map.ok()) {
          AdoptMap(map.value(), /*gossip=*/false);
        }
        if (rejoining_) {
          rejoining_ = false;
          perf_.Inc("osd.rejoins");
          MAL_DEBUG(name().ToString())
              << "rejoined at epoch " << osd_map_.epoch << "; serving client ops";
        }
      });
}

void Osd::HandleRequest(const sim::Envelope& request) {
  dispatcher_.Dispatch(request);
}

void Osd::HandlePush(const sim::Envelope& request) {
  // Scrub repair: install the primary's authoritative copy.
  mal::Decoder dec(request.payload);
  std::string oid = dec.GetString();
  Object object = Object::Decode(&dec);
  if (dec.ok()) {
    store_.Put(oid, std::move(object));
    Reply(request, mal::Buffer());
  } else {
    ReplyError(request, mal::Status::Corruption("bad push payload"));
  }
}

void Osd::HandleMapUpdate(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  mon::MapUpdate update = mon::MapUpdate::Decode(&dec);
  if (update.kind != mon::MapKind::kOsdMap) {
    return;
  }
  mal::Decoder map_dec(update.map_payload);
  auto map = mon::OsdMap::Decode(&map_dec);
  if (map.ok()) {
    AdoptMap(map.value(), /*gossip=*/true);
  }
}

sim::Time Osd::OpCost(const OsdOpRequest& req) const {
  sim::Time cost = config_.op_cpu_cost;
  for (const Op& op : req.ops) {
    cost += static_cast<sim::Time>(config_.per_byte_cpu_ns *
                                   static_cast<double>(op.data.size()));
    if (op.type == Op::Type::kExec && registry_.ScriptVersion(op.cls_name) != "") {
      cost += config_.script_exec_cost;
    }
  }
  return cost;
}

mal::Status Osd::ExpandTransaction(const OsdOpRequest& req, std::vector<OpResult>* results,
                                   std::vector<Op>* expanded) {
  results->clear();
  results->resize(req.ops.size());
  expanded->clear();

  // Delta view over the committed object: expanding a transaction (class
  // method execution included) never clones the object, only overlays the
  // bytes it touches.
  const Object* base = nullptr;
  if (auto existing = store_.Get(req.oid); existing.ok()) {
    base = existing.value();
  }
  TxnObject staged(base);
  bool removed = false;

  for (size_t i = 0; i < req.ops.size(); ++i) {
    const Op& op = req.ops[i];
    OpResult& result = (*results)[i];
    if (op.type == Op::Type::kExec) {
      std::vector<Op> effects;
      cls::ClsContext ctx(req.oid, &staged, &effects);
      script::EngineStats sstats;
      auto out = registry_.Execute(op.cls_name, op.method, ctx, op.data, 1'000'000, &sstats);
      // Script-method engine counters, lazily created (absent for native
      // methods and zero deltas, so script-free workloads keep identical
      // perf dumps).
      const std::pair<const char*, uint64_t> kScriptCounters[] = {
          {"osd.script.instructions", sstats.instructions},
          {"osd.script.vm_runs", sstats.vm_runs},
          {"osd.script.oracle_runs", sstats.oracle_runs},
          {"osd.script.ic_hits", sstats.ic_hits},
          {"osd.script.ic_misses", sstats.ic_misses},
          {"osd.script.print_dropped", sstats.print_dropped},
      };
      for (const auto& [name, delta] : kScriptCounters) {
        if (delta != 0) {
          perf_.Inc(name, delta);
        }
      }
      perf_.Inc("osd.cls." + op.cls_name + "." + op.method + ".count");
      // Charged execution cost of this method call (the CPU-model share
      // attributable to it: per-byte decode plus script surcharge).
      perf_.Observe("osd.cls." + op.cls_name + "." + op.method + ".exec_us",
                    (config_.per_byte_cpu_ns * static_cast<double>(op.data.size()) +
                     (registry_.ScriptVersion(op.cls_name) != ""
                          ? static_cast<double>(config_.script_exec_cost)
                          : 0.0)) /
                        1e3);
      if (!out.ok()) {
        result.status = out.status();
        return result.status;
      }
      result.status = mal::Status::Ok();
      result.out = std::move(out).value();
      expanded->insert(expanded->end(), effects.begin(), effects.end());
      continue;
    }
    if (op.type == Op::Type::kRemove) {
      if (!staged.exists()) {
        result.status = mal::Status::NotFound("object " + req.oid);
        return result.status;
      }
      staged.Remove();
      removed = true;
      result.status = mal::Status::Ok();
      expanded->push_back(op);
      continue;
    }
    result.status = ObjectStore::ApplyOp(op, &staged, &result);
    if (!result.status.ok()) {
      return result.status;
    }
    expanded->push_back(op);
  }
  (void)removed;
  return mal::Status::Ok();
}

namespace {

bool IsMutating(const Op& op) {
  switch (op.type) {
    case Op::Type::kCreate:
    case Op::Type::kRemove:
    case Op::Type::kWrite:
    case Op::Type::kWriteFull:
    case Op::Type::kAppend:
    case Op::Type::kTruncate:
    case Op::Type::kOmapSet:
    case Op::Type::kOmapDel:
    case Op::Type::kXattrSet:
    case Op::Type::kSnapCreate:
    case Op::Type::kSnapRemove:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Osd::HandleOsdOp(const sim::Envelope& request, OsdOpRequest req) {
  if (rejoining_) {
    // Freshly restarted: our map view is not yet validated against the
    // monitor. kUnavailable is retryable at the client, and by the retry
    // the catch-up has usually finished.
    ReplyError(request, mal::Status::Unavailable("osd rejoining (map catch-up)"));
    return;
  }
  // Primary check against our map view.
  std::vector<uint32_t> acting = ActingSetForOid(req.oid, osd_map_, config_.replicas);
  if (acting.empty() || acting[0] != name().id) {
    ReplyError(request, mal::Status::Unavailable("not primary for " + req.oid));
    return;
  }
  // Re-peering: a newly-promoted primary may not hold the object yet. For
  // single-copy EC shards the same situation arises when membership change
  // shifts the shard's canonical home: the data still exists on the old
  // home, so sweep for it — but only for read-only transactions (a write
  // simply lays down the new generation here; stale copies elsewhere lose
  // the stamp plurality and scrub garbage-collects the inconsistency).
  bool mutating = false;
  for (const Op& op : req.ops) {
    mutating = mutating || IsMutating(op);
  }
  bool sweep_eligible =
      acting.size() > 1 || (!mutating && ParseEcShardOid(req.oid).has_value());
  if (config_.pull_on_miss && !store_.Exists(req.oid) && sweep_eligible) {
    bool reads_existing = false;
    for (const Op& op : req.ops) {
      switch (op.type) {
        case Op::Type::kRead:
        case Op::Type::kStat:
        case Op::Type::kOmapGet:
        case Op::Type::kOmapList:
        case Op::Type::kXattrGet:
        case Op::Type::kCmpXattr:
        case Op::Type::kSnapRead:
        case Op::Type::kExec:  // class methods may read prior state
          reads_existing = true;
          break;
        default:
          break;
      }
    }
    if (reads_existing) {
      // Candidate holders: the rest of the acting set first, then every
      // other up OSD (after a placement-group split the old acting set can
      // be disjoint from the new one; Ceph consults map history, we sweep).
      std::vector<uint32_t> candidates(acting.begin() + 1, acting.end());
      for (const auto& [id, info] : osd_map_.osds) {
        if (info.up && id != name().id &&
            std::find(candidates.begin(), candidates.end(), id) == candidates.end()) {
          candidates.push_back(id);
        }
      }
      PullThenExecute(request, req, candidates, 0);
      return;
    }
  }
  ExecuteOsdOp(request, req, acting);
}

void Osd::PullThenExecute(const sim::Envelope& request, const OsdOpRequest& req,
                          const std::vector<uint32_t>& candidates, size_t index) {
  std::vector<uint32_t> acting = ActingSetForOid(req.oid, osd_map_, config_.replicas);
  if (index >= candidates.size()) {
    ExecuteOsdOp(request, req, acting);  // nobody has it; proceed (NotFound)
    return;
  }
  PullObjectRequest pull{req.oid};
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  pull.Encode(&enc);
  SendRequest(sim::EntityName::Osd(candidates[index]), kMsgPullObject, std::move(payload),
              [this, request, req, candidates, index, acting](
                  mal::Status status, const sim::Envelope& reply) {
                if (status.ok()) {
                  mal::Decoder dec(reply.payload);
                  Object pulled = Object::Decode(&dec);
                  if (AdoptableObject(req.oid, pulled)) {
                    store_.Put(req.oid, std::move(pulled));
                    ExecuteOsdOp(request, req, acting);
                    return;
                  }
                  // Corrupt shard offered: keep sweeping for a clean copy.
                }
                PullThenExecute(request, req, candidates, index + 1);
              },
              config_.pull_timeout);
}

void Osd::ExecuteOsdOp(const sim::Envelope& request, const OsdOpRequest& req_in,
                       const std::vector<uint32_t>& acting) {
  sim::Envelope req_envelope = request;
  sim::Time arrival = Now();
  AfterCpu(OpCost(req_in), [this, req = req_in, req_envelope, acting, arrival] {
    ++ops_served_;
    // Count the transaction under its first op's type (how Ceph labels a
    // multi-op MOSDOp), and every constituent op individually.
    std::string op_type = req.ops.empty() ? "empty" : OpTypeName(req.ops[0].type);
    for (const Op& op : req.ops) {
      perf_.Inc(std::string("osd.op.") + OpTypeName(op.type) + ".count");
    }
    auto results = std::make_shared<std::vector<OpResult>>();
    std::vector<Op> expanded;
    mal::Status status = ExpandTransaction(req, results.get(), &expanded);
    if (!status.ok()) {
      perf_.Inc(status.code() == mal::Code::kAborted ? "osd.txn_aborts"
                                                     : "osd.txn_failures");
    }

    auto send_reply = [this, req_envelope, results, arrival, op_type] {
      perf_.Observe("osd.op." + op_type + ".latency_us",
                    static_cast<double>(Now() - arrival) / 1e3);
      OsdOpReply reply;
      reply.map_epoch = osd_map_.epoch;
      reply.results = *results;
      mal::Buffer payload;
      mal::Encoder enc(&payload);
      reply.Encode(&enc);
      Reply(req_envelope, std::move(payload));
    };

    bool mutating = false;
    for (const Op& op : expanded) {
      mutating = mutating || IsMutating(op);
    }
    if (!status.ok() || !mutating) {
      send_reply();  // read-only or failed: no replication round
      return;
    }

    // Commit locally.
    std::vector<OpResult> local_results;
    mal::Status commit = store_.ApplyTransaction(req.oid, expanded, &local_results);
    if (commit.ok()) {
      NotifyWatchers(req.oid);
    }
    if (!commit.ok()) {
      // Should not happen: expansion validated the transaction.
      MAL_ERROR(name().ToString()) << "commit failed after validation: " << commit;
      (*results)[0].status = commit;
      send_reply();
      return;
    }

    // Replicate the expanded transaction.
    std::vector<uint32_t> replicas(acting.begin() + 1, acting.end());
    if (replicas.empty()) {
      send_reply();
      return;
    }
    // Encode the replicated transaction once; each SendRequest below takes
    // a COW alias of the same bytes, so fan-out is O(replicas), not
    // O(replicas * payload).
    OsdOpRequest rep;
    rep.oid = req.oid;
    rep.ops = expanded;
    mal::Buffer rep_payload;
    mal::Encoder rep_enc(&rep_payload);
    rep.Encode(&rep_enc);

    auto pending = std::make_shared<size_t>(replicas.size());
    auto replied = std::make_shared<bool>(false);
    for (uint32_t replica : replicas) {
      SendRequest(sim::EntityName::Osd(replica), kMsgRepOp, rep_payload,
                  [pending, replied, send_reply](mal::Status, const sim::Envelope&) {
                    // Timeouts still decrement: a down replica must not
                    // wedge the write (recovery heals it later).
                    if (--*pending == 0 && !*replied) {
                      *replied = true;
                      send_reply();
                    }
                  },
                  config_.replication_timeout);
    }
  });
}

void Osd::HandleRepOp(const sim::Envelope& request, OsdOpRequest req) {
  sim::Envelope req_envelope = request;
  AfterCpu(OpCost(req), [this, req = std::move(req), req_envelope] {
    perf_.Inc("osd.repop.count");
    std::vector<OpResult> results;
    mal::Status s = store_.ApplyTransaction(req.oid, req.ops, &results);
    if (!s.ok()) {
      ReplyError(req_envelope, s);
      return;
    }
    Reply(req_envelope, mal::Buffer());
  });
}

void Osd::AdoptMap(const mon::OsdMap& map, bool gossip) {
  if (map.epoch <= osd_map_.epoch) {
    return;
  }
  if (config_.map_apply_cost > 0) {
    // Charge the decode/install work, then re-check freshness: a newer map
    // may have arrived while this one was being processed.
    AfterCpu(config_.map_apply_cost, [this, map, gossip] {
      if (map.epoch > osd_map_.epoch) {
        AdoptMapNow(map, gossip);
      }
    });
    return;
  }
  AdoptMapNow(map, gossip);
}

void Osd::AdoptMapNow(const mon::OsdMap& map, bool gossip) {
  osd_map_ = map;
  InstallScriptInterfaces();
  if (on_map_applied) {
    on_map_applied(osd_map_.epoch);
  }
  if (gossip && config_.gossip_fanout > 0) {
    std::vector<uint32_t> peers;
    for (const auto& [id, info] : osd_map_.osds) {
      if (info.up && id != name().id) {
        peers.push_back(id);
      }
    }
    // Encode the map once; every fanout target shares the same bytes.
    mal::Buffer encoded_map;
    if (!peers.empty() && config_.gossip_fanout > 0) {
      mal::Encoder enc(&encoded_map);
      osd_map_.Encode(&enc);
    }
    for (uint32_t i = 0; i < config_.gossip_fanout && !peers.empty(); ++i) {
      size_t pick = rng_.NextBelow(peers.size());
      GossipTo(peers[pick], encoded_map);
      peers.erase(peers.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
}

void Osd::InstallScriptInterfaces() {
  constexpr char kSrcPrefix[] = "cls.src.";
  constexpr char kVerPrefix[] = "cls.ver.";
  for (const auto& [key, source] : osd_map_.service_metadata) {
    if (key.rfind(kSrcPrefix, 0) != 0) {
      continue;
    }
    std::string cls_name = key.substr(sizeof(kSrcPrefix) - 1);
    std::string version;
    auto ver_it = osd_map_.service_metadata.find(kVerPrefix + cls_name);
    if (ver_it != osd_map_.service_metadata.end()) {
      version = ver_it->second;
    }
    if (registry_.ScriptVersion(cls_name) == version) {
      continue;  // already current
    }
    mal::Status s = registry_.InstallScript(cls_name, version, source);
    if (!s.ok()) {
      MAL_WARN(name().ToString()) << "script class " << cls_name << " install failed: " << s;
      mon_client_.Log("ERROR", "cls " + cls_name + "@" + version + " install: " + s.ToString());
      continue;
    }
    if (on_interface_installed) {
      on_interface_installed(cls_name, version);
    }
  }
}

void Osd::GossipTo(uint32_t peer) {
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  osd_map_.Encode(&enc);
  GossipTo(peer, payload);
}

void Osd::GossipTo(uint32_t peer, const mal::Buffer& encoded_map) {
  SendOneWay(sim::EntityName::Osd(peer), kMsgGossipMap, encoded_map);
}

void Osd::HandleGossip(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  auto map = mon::OsdMap::Decode(&dec);
  if (!map.ok()) {
    return;
  }
  if (map.value().epoch > osd_map_.epoch) {
    AdoptMap(map.value(), /*gossip=*/true);
  } else if (map.value().epoch < osd_map_.epoch) {
    GossipTo(request.from.id);  // peer is behind: push ours back
  }
}

void Osd::HandlePull(const sim::Envelope& request, PullObjectRequest req) {
  auto object = store_.Get(req.oid);
  if (!object.ok()) {
    ReplyError(request, object.status());
    return;
  }
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  object.value()->Encode(&enc);
  Reply(request, std::move(payload));
}

void Osd::RecoverObject(uint32_t from_osd, const std::string& oid,
                        std::function<void(mal::Status)> on_done) {
  PullObjectRequest req{oid};
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  req.Encode(&enc);
  SendRequest(sim::EntityName::Osd(from_osd), kMsgPullObject, std::move(payload),
              [this, oid, on_done = std::move(on_done)](mal::Status status,
                                                        const sim::Envelope& reply) {
                if (!status.ok()) {
                  on_done(status);
                  return;
                }
                mal::Decoder dec(reply.payload);
                Object pulled = Object::Decode(&dec);
                if (!AdoptableObject(oid, pulled)) {
                  on_done(mal::Status::Unavailable("pulled shard failed checksum"));
                  return;
                }
                store_.Put(oid, std::move(pulled));
                on_done(mal::Status::Ok());
              });
}

void Osd::HandleWatch(const sim::Envelope& request, WatchRequest req) {
  if (req.unwatch) {
    auto it = watchers_.find(req.oid);
    if (it != watchers_.end()) {
      it->second.erase(request.from);
      if (it->second.empty()) {
        watchers_.erase(it);
      }
    }
  } else {
    watchers_[req.oid].insert(request.from);
  }
  Reply(request, mal::Buffer());
}

void Osd::NotifyWatchers(const std::string& oid) {
  auto it = watchers_.find(oid);
  if (it == watchers_.end()) {
    return;
  }
  NotifyEvent event;
  event.oid = oid;
  if (auto object = store_.Get(oid); object.ok()) {
    event.version = object.value()->version;
  }
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  event.Encode(&enc);
  for (const sim::EntityName& watcher : it->second) {
    SendOneWay(watcher, kMsgNotify, payload);
  }
}

void Osd::PushObjectTo(uint32_t peer, const std::string& oid) {
  auto object = store_.Get(oid);
  if (!object.ok()) {
    return;
  }
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutString(oid);
  object.value()->Encode(&enc);
  SendRequest(sim::EntityName::Osd(peer), kMsgPushObject, std::move(payload),
              [this, oid](mal::Status status, const sim::Envelope&) {
                if (status.ok()) {
                  ++scrub_repairs_;
                  mon_client_.Log("WARN", "scrub repaired " + oid);
                }
              });
}

void Osd::ScrubTick() {
  // Pick one random local object we are primary for and compare with every
  // replica; on divergence, push our copy (primary is authoritative).
  std::vector<std::string> locals = store_.List();
  if (locals.empty()) {
    return;
  }
  const std::string& oid = locals[rng_.NextBelow(locals.size())];
  std::vector<uint32_t> acting = ActingSetForOid(oid, osd_map_, config_.replicas);
  if (acting.empty() || acting[0] != name().id) {
    return;
  }
  for (size_t i = 1; i < acting.size(); ++i) {
    uint32_t peer = acting[i];
    ScrubObject(peer, oid, [this, peer, oid](mal::Status status) {
      if (status.code() == mal::Code::kCorruption) {
        PushObjectTo(peer, oid);
      }
    });
  }
}

void Osd::HandleScrub(const sim::Envelope& request, ScrubRequest req) {
  uint64_t version = 0;
  if (auto object = store_.Get(req.oid); object.ok()) {
    version = object.value()->version;
  }
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutU64(version);
  Reply(request, std::move(payload));
}

void Osd::ScrubObject(uint32_t peer_osd, const std::string& oid,
                      std::function<void(mal::Status)> on_done) {
  ScrubRequest req;
  req.oid = oid;
  if (auto object = store_.Get(oid); object.ok()) {
    req.version = object.value()->version;
  }
  uint64_t my_version = req.version;
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  req.Encode(&enc);
  SendRequest(sim::EntityName::Osd(peer_osd), kMsgScrub, std::move(payload),
              [my_version, oid, on_done = std::move(on_done)](mal::Status status,
                                                              const sim::Envelope& reply) {
                if (!status.ok()) {
                  on_done(status);
                  return;
                }
                mal::Decoder dec(reply.payload);
                uint64_t peer_version = dec.GetU64();
                if (peer_version != my_version) {
                  on_done(mal::Status::Corruption(
                      "scrub mismatch on " + oid + ": local v" +
                      std::to_string(my_version) + " vs peer v" +
                      std::to_string(peer_version)));
                  return;
                }
                on_done(mal::Status::Ok());
              });
}

}  // namespace mal::osd
