#include "src/osd/placement.h"

#include <algorithm>
#include <cmath>

namespace mal::osd {

uint64_t StableHash(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t StableHash64(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint32_t PgForObject(const std::string& oid, uint32_t pg_count) {
  if (pg_count == 0) {
    return 0;
  }
  return static_cast<uint32_t>(StableHash(oid) % pg_count);
}

std::vector<uint32_t> PgToOsds(uint32_t pg, const mon::OsdMap& map, uint32_t replicas) {
  // Rendezvous hashing: score every up OSD against the PG, take the top R.
  std::vector<std::pair<double, uint32_t>> scored;
  for (const auto& [id, info] : map.osds) {
    if (!info.up || info.weight <= 0) {
      continue;
    }
    uint64_t h = StableHash64(pg, id);
    // Weighted rendezvous: -w / ln(u) ordering, u in (0,1].
    double u = (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;
    double score = -info.weight / std::log(u);
    scored.emplace_back(score, id);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  std::vector<uint32_t> acting;
  for (size_t i = 0; i < scored.size() && i < replicas; ++i) {
    acting.push_back(scored[i].second);
  }
  return acting;
}

std::vector<uint32_t> OsdsForObject(const std::string& oid, const mon::OsdMap& map,
                                    uint32_t replicas) {
  return PgToOsds(PgForObject(oid, map.pg_count), map, replicas);
}

}  // namespace mal::osd
