#include "src/osd/placement.h"

#include <algorithm>
#include <cmath>

namespace mal::osd {

uint64_t StableHash(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t StableHash64(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint32_t PgForObject(const std::string& oid, uint32_t pg_count) {
  if (pg_count == 0) {
    return 0;
  }
  return static_cast<uint32_t>(StableHash(oid) % pg_count);
}

std::vector<uint32_t> PgToOsds(uint32_t pg, const mon::OsdMap& map, uint32_t replicas) {
  // Rendezvous hashing: score every up OSD against the PG, take the top R.
  std::vector<std::pair<double, uint32_t>> scored;
  for (const auto& [id, info] : map.osds) {
    if (!info.up || info.weight <= 0) {
      continue;
    }
    uint64_t h = StableHash64(pg, id);
    // Weighted rendezvous: -w / ln(u) ordering, u in (0,1].
    double u = (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;
    double score = -info.weight / std::log(u);
    scored.emplace_back(score, id);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) {
      return a.first > b.first;
    }
    return a.second < b.second;
  });
  std::vector<uint32_t> acting;
  for (size_t i = 0; i < scored.size() && i < replicas; ++i) {
    acting.push_back(scored[i].second);
  }
  return acting;
}

std::vector<uint32_t> OsdsForObject(const std::string& oid, const mon::OsdMap& map,
                                    uint32_t replicas) {
  return PgToOsds(PgForObject(oid, map.pg_count), map, replicas);
}

std::string EcShardOid(const std::string& pool_oid, uint32_t index) {
  return pool_oid + ".shard" + std::to_string(index);
}

std::optional<EcShardRef> ParseEcShardOid(const std::string& oid) {
  constexpr char kMarker[] = ".shard";
  constexpr size_t kMarkerLen = sizeof(kMarker) - 1;
  size_t marker = oid.rfind(kMarker);
  if (marker == std::string::npos || marker + kMarkerLen >= oid.size()) {
    return std::nullopt;
  }
  uint32_t index = 0;
  for (size_t i = marker + kMarkerLen; i < oid.size(); ++i) {
    if (oid[i] < '0' || oid[i] > '9') {
      return std::nullopt;
    }
    index = index * 10 + static_cast<uint32_t>(oid[i] - '0');
  }
  return EcShardRef{oid.substr(0, marker), index};
}

std::vector<uint32_t> ActingSetForOid(const std::string& oid, const mon::OsdMap& map,
                                      uint32_t default_replicas) {
  size_t slash = oid.find('/');
  if (slash != std::string::npos && slash > 0) {
    auto layout = mon::PoolLayoutOf(map, oid.substr(0, slash));
    if (layout.has_value()) {
      if (layout->kind == mon::PoolLayout::Kind::kErasure) {
        auto ref = ParseEcShardOid(oid);
        if (ref.has_value() && ref->index < layout->num_shards()) {
          // Shard i lives (unreplicated) at member i of the logical object's
          // full-width set. When fewer OSDs are up than shards, wrap so the
          // pool stays writable; the scrub agent re-separates shards once
          // membership recovers.
          auto set = OsdsForObject(ref->logical_oid, map, layout->num_shards());
          if (set.empty()) {
            return {};
          }
          return {set[ref->index % set.size()]};
        }
        // Non-shard metadata in an EC pool (the object index): replicate it.
        return OsdsForObject(oid, map, 3);
      }
      return OsdsForObject(oid, map, layout->width);
    }
  }
  return OsdsForObject(oid, map, default_replicas);
}

}  // namespace mal::osd
