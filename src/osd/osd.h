// Object storage daemon.
//
// Serves object transactions with primary-copy replication, executes
// object-class methods (native and dynamically installed scripts), gossips
// cluster maps peer-to-peer (paper §4.4: "the object storage daemons use a
// gossip protocol to efficiently propagate changes to cluster maps"), and
// installs script interfaces referenced from the OSDMap's service metadata
// without restarting (§4.2, §6.1.2).
//
// Script interfaces ride in the map under two keys per class:
//   cls.src.<name> = MalScript source
//   cls.ver.<name> = version string
// When an OSD applies a map whose cls.ver differs from what it has loaded,
// it (re)installs the class and fires `on_interface_installed` — the hook
// the Figure 8 bench uses to timestamp cluster-wide propagation.
#ifndef MALACOLOGY_OSD_OSD_H_
#define MALACOLOGY_OSD_OSD_H_

#include <functional>
#include <set>
#include <memory>
#include <string>
#include <vector>

#include "src/cls/builtin.h"
#include "src/cls/registry.h"
#include "src/common/perf.h"
#include "src/common/rng.h"
#include "src/mon/mon_client.h"
#include "src/osd/messages.h"
#include "src/osd/object_store.h"
#include "src/osd/placement.h"
#include "src/sim/actor.h"
#include "src/svc/dispatch.h"

namespace mal::osd {

struct OsdConfig {
  uint32_t replicas = 3;
  // CPU model: fixed per-op cost plus per-byte cost.
  sim::Time op_cpu_cost = 20 * sim::kMicrosecond;
  double per_byte_cpu_ns = 0.5;
  // Script-class execution surcharge relative to native.
  sim::Time script_exec_cost = 30 * sim::kMicrosecond;
  // Gossip: on map change, forward to `gossip_fanout` random up peers;
  // additionally anti-entropy with 1 random peer every `gossip_interval`.
  uint32_t gossip_fanout = 3;
  sim::Time gossip_interval = 2 * sim::kSecond;
  // Cost of decoding a cluster map and (re)installing the interfaces it
  // references (script compilation is the dominant term). Drives the shape
  // of the Fig 8 propagation CDF.
  sim::Time map_apply_cost = 0;
  // Subscribe to monitor pushes; when false the OSD fetches the map once at
  // boot and afterwards relies purely on peer-to-peer gossip (Fig 8).
  bool subscribe_to_mon = true;
  sim::Time replication_timeout = 2 * sim::kSecond;
  // When a primary receives an op for an object it does not hold (e.g. the
  // acting set changed after a failure or a placement-group split), it
  // first tries to pull the object from the other acting-set members.
  bool pull_on_miss = true;
  sim::Time pull_timeout = 1 * sim::kSecond;
  // Background scrub: every interval, the primary of one random local
  // object compares versions with its replicas and repairs divergence by
  // pushing its authoritative copy (0 = disabled).
  sim::Time scrub_interval = 0;
  // How often the OSD pushes its perf-counter snapshot to the monitor
  // (0 = disabled).
  sim::Time perf_report_interval = 1 * sim::kSecond;
  // Bounded inbox depth for admission control; 0 disables (see svc/).
  size_t inbox_depth = 0;
  // Per-attempt timeout for this OSD's monitor RPCs (boot registration,
  // map catch-up after a restart). 0 keeps the transport default (5s);
  // recovery-sensitive clusters set ~1s so a dead monitor costs one short
  // stall instead of pinning the OSD in its rejoining state.
  sim::Time mon_request_timeout = 0;
  uint64_t seed = 1;
};

class Osd : public sim::Actor {
 public:
  Osd(sim::Simulator* simulator, sim::Network* network, uint32_t id,
      std::vector<uint32_t> mons, OsdConfig config = {});

  // Registers with the monitor (OsdBoot transaction) and subscribes to maps.
  void Boot();

  const mon::OsdMap& osd_map() const { return osd_map_; }
  ObjectStore& store() { return store_; }
  cls::ClassRegistry& registry() { return registry_; }
  const OsdConfig& config() const { return config_; }

  // Fired when a map with a strictly newer epoch is adopted.
  std::function<void(mon::Epoch)> on_map_applied;
  // Fired when a script interface (re)install completes: (class, version).
  std::function<void(const std::string&, const std::string&)> on_interface_installed;

  // Recovery: pull one object from a peer OSD and install it locally.
  void RecoverObject(uint32_t from_osd, const std::string& oid,
                     std::function<void(mal::Status)> on_done);
  // Anti-entropy scrub of one object against a peer; reports kCorruption on
  // version mismatch (the caller decides how to repair).
  void ScrubObject(uint32_t peer_osd, const std::string& oid,
                   std::function<void(mal::Status)> on_done);

  void Crash() override;
  void Recover() override;

  // True between Recover() and the map catch-up completing: the OSD answers
  // client ops with kUnavailable (retryable) until it has confirmed the
  // monitor's current OSDMap, so a restarted primary never serves from a
  // stale view of the acting sets. Replication, pulls, scrubs, and gossip
  // keep flowing so the store stays repairable meanwhile.
  bool rejoining() const { return rejoining_; }

  uint64_t ops_served() const { return ops_served_; }
  uint64_t scrub_repairs() const { return scrub_repairs_; }
  mal::PerfRegistry& perf() { return perf_; }

 protected:
  void HandleRequest(const sim::Envelope& request) override;

 private:
  void RegisterHandlers();

  void HandleOsdOp(const sim::Envelope& request, OsdOpRequest req);
  void ExecuteOsdOp(const sim::Envelope& request, const OsdOpRequest& req,
                    const std::vector<uint32_t>& acting);
  // Tries peers[index..] for a copy of req.oid, then executes the op.
  void PullThenExecute(const sim::Envelope& request, const OsdOpRequest& req,
                       const std::vector<uint32_t>& acting, size_t index);
  void HandleRepOp(const sim::Envelope& request, OsdOpRequest req);
  void HandleGossip(const sim::Envelope& request);
  void HandleWatch(const sim::Envelope& request, WatchRequest req);
  void NotifyWatchers(const std::string& oid);
  void ScrubTick();
  void PushObjectTo(uint32_t peer, const std::string& oid);
  void HandlePull(const sim::Envelope& request, PullObjectRequest req);
  void HandleScrub(const sim::Envelope& request, ScrubRequest req);
  void HandlePush(const sim::Envelope& request);
  void HandleMapUpdate(const sim::Envelope& request);
  // Post-restart map catch-up: fetch the monitor's current OSDMap (retrying
  // until a monitor answers) and only then clear `rejoining_`.
  void CatchUpMap();

  void AdoptMap(const mon::OsdMap& map, bool gossip);
  void AdoptMapNow(const mon::OsdMap& map, bool gossip);
  void InstallScriptInterfaces();
  void GossipTo(uint32_t peer);
  // Fanout variant: the map is encoded once by the caller and shared
  // (COW, O(1) per peer) across every gossip target.
  void GossipTo(uint32_t peer, const mal::Buffer& encoded_map);
  sim::Time OpCost(const OsdOpRequest& req) const;

  // Expands kExec ops and validates the whole transaction against a staged
  // copy. On success, `expanded` holds only primitive ops.
  mal::Status ExpandTransaction(const OsdOpRequest& req, std::vector<OpResult>* results,
                                std::vector<Op>* expanded);

  OsdConfig config_;
  svc::ServiceDispatcher dispatcher_{this};
  mon::MonClient mon_client_;
  mon::OsdMap osd_map_;
  ObjectStore store_;
  cls::ClassRegistry registry_;
  mal::Rng rng_;
  mal::PerfRegistry perf_;
  uint64_t ops_served_ = 0;
  uint64_t scrub_repairs_ = 0;
  bool rejoining_ = false;
  // Watchers per object (client entity names); notified on every commit.
  std::map<std::string, std::set<sim::EntityName>> watchers_;
};

}  // namespace mal::osd

#endif  // MALACOLOGY_OSD_OSD_H_
