// Local object store: the storage engine inside each OSD.
//
// An object is a bytestream plus a sorted key-value map ("omap") plus
// extended attributes — exactly the native interfaces Ceph exposes to
// object classes (paper §4.2: "reading and writing to a byte stream,
// controlling object snapshots and clones, and accessing a sorted
// key-value database"). Operations are grouped into transactions that
// apply atomically: either every op succeeds or the object set is
// untouched. This transactional composition is what lets object classes
// build semantically rich interfaces (e.g. "atomically update a matrix in
// the bytestream and its index in the key-value database").
#ifndef MALACOLOGY_OSD_OBJECT_STORE_H_
#define MALACOLOGY_OSD_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace mal::osd {

struct Object {
  mal::Buffer data;
  std::map<std::string, std::string> omap;
  std::map<std::string, std::string> xattrs;
  // Named point-in-time copies of the bytestream ("controlling object
  // snapshots and clones" is one of the native interfaces of §4.2).
  std::map<std::string, mal::Buffer> snapshots;
  uint64_t version = 0;  // bumped on every mutating transaction

  void Encode(mal::Encoder* enc) const;
  static Object Decode(mal::Decoder* dec);
};

// One primitive operation on an object.
struct Op {
  enum class Type : uint8_t {
    kCreate = 0,      // flags: excl -> kAlreadyExists if present
    kRemove = 1,
    kRead = 2,        // offset, length -> out
    kWrite = 3,       // offset, data
    kWriteFull = 4,   // data (replaces bytestream)
    kAppend = 5,      // data
    kTruncate = 6,    // offset = new size
    kStat = 7,        // -> out: u64 size, u64 version
    kOmapGet = 8,     // key -> out (kNotFound if absent)
    kOmapSet = 9,     // key, value
    kOmapDel = 10,    // key
    kOmapList = 11,   // key = prefix -> out: encoded map
    kXattrGet = 12,   // key -> out
    kXattrSet = 13,   // key, value
    kCmpXattr = 14,   // key, value -> kAborted unless equal (guard op)
    kExec = 15,       // cls_name, method, data = input -> out (handled by OSD)
    kSnapCreate = 16, // key = snapshot name (kAlreadyExists if taken)
    kSnapRead = 17,   // key = snapshot name -> out: snapshot bytes
    kSnapRemove = 18, // key = snapshot name
  };

  Type type = Type::kRead;
  bool excl = false;       // kCreate: fail if object exists
  uint64_t offset = 0;
  uint64_t length = 0;
  mal::Buffer data;
  std::string key;
  std::string value;
  std::string cls_name;    // kExec
  std::string method;      // kExec

  void Encode(mal::Encoder* enc) const;
  static Op Decode(mal::Decoder* dec);
};

struct OpResult {
  mal::Status status;
  mal::Buffer out;
};

// The whole-store interface. Thread-free: the simulated OSD serializes all
// access through its CPU model.
class ObjectStore {
 public:
  // Executes all ops on `oid` atomically. If any op fails (other than
  // per-op reads reporting kNotFound data — those fail the transaction
  // too), no mutation is applied and the failing status is returned.
  // Per-op results land in `results` (sized to ops) for the caller to
  // forward. kExec ops must be resolved by the caller into primitive ops
  // via the class runtime; the store rejects them here.
  mal::Status ApplyTransaction(const std::string& oid, const std::vector<Op>& ops,
                               std::vector<OpResult>* results);

  bool Exists(const std::string& oid) const { return objects_.count(oid) != 0; }
  mal::Result<const Object*> Get(const std::string& oid) const;

  // Direct object install (recovery path: replica push).
  void Put(const std::string& oid, Object object) { objects_[oid] = std::move(object); }
  void Remove(const std::string& oid) { objects_.erase(oid); }

  std::vector<std::string> List() const;
  size_t size() const { return objects_.size(); }

  uint64_t bytes_used() const;

  // Applies one op against a staged object (nullopt = does not exist yet).
  // Public and static so the OSD's class runtime can expand kExec ops
  // against a staged copy before committing.
  static mal::Status ApplyOp(const Op& op, std::optional<Object>* object, OpResult* result);

 private:
  std::map<std::string, Object> objects_;
};

}  // namespace mal::osd

#endif  // MALACOLOGY_OSD_OBJECT_STORE_H_
