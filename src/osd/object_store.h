// Local object store: the storage engine inside each OSD.
//
// An object is a bytestream plus a sorted key-value map ("omap") plus
// extended attributes — exactly the native interfaces Ceph exposes to
// object classes (paper §4.2: "reading and writing to a byte stream,
// controlling object snapshots and clones, and accessing a sorted
// key-value database"). Operations are grouped into transactions that
// apply atomically: either every op succeeds or the object set is
// untouched. This transactional composition is what lets object classes
// build semantically rich interfaces (e.g. "atomically update a matrix in
// the bytestream and its index in the key-value database").
//
// Transactions stage per-field deltas (TxnObject) instead of cloning the
// whole object: the bytestream is a COW Buffer alias, the omap / xattr /
// snapshot maps are sparse overlays over the committed object, and commit
// replays just the deltas. A transaction therefore costs O(bytes it
// touches), not O(object size) — the difference between O(1) and O(n)
// per append on a CORFU-style stripe object that only grows.
#ifndef MALACOLOGY_OSD_OBJECT_STORE_H_
#define MALACOLOGY_OSD_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace mal::osd {

struct Object {
  mal::Buffer data;
  std::map<std::string, std::string> omap;
  std::map<std::string, std::string> xattrs;
  // Named point-in-time copies of the bytestream ("controlling object
  // snapshots and clones" is one of the native interfaces of §4.2).
  // A snapshot is a COW alias of the bytestream at creation time: O(1) to
  // take, and later appends to `data` never disturb it.
  std::map<std::string, mal::Buffer> snapshots;
  uint64_t version = 0;  // bumped on every mutating transaction

  void Encode(mal::Encoder* enc) const;
  static Object Decode(mal::Decoder* dec);
};

// One primitive operation on an object.
struct Op {
  enum class Type : uint8_t {
    kCreate = 0,      // flags: excl -> kAlreadyExists if present
    kRemove = 1,
    kRead = 2,        // offset, length -> out
    kWrite = 3,       // offset, data
    kWriteFull = 4,   // data (replaces bytestream)
    kAppend = 5,      // data
    kTruncate = 6,    // offset = new size
    kStat = 7,        // -> out: u64 size, u64 version
    kOmapGet = 8,     // key -> out (kNotFound if absent)
    kOmapSet = 9,     // key, value
    kOmapDel = 10,    // key
    kOmapList = 11,   // key = prefix -> out: encoded map
    kXattrGet = 12,   // key -> out
    kXattrSet = 13,   // key, value
    kCmpXattr = 14,   // key, value -> kAborted unless equal (guard op)
    kExec = 15,       // cls_name, method, data = input -> out (handled by OSD)
    kSnapCreate = 16, // key = snapshot name (kAlreadyExists if taken)
    kSnapRead = 17,   // key = snapshot name -> out: snapshot bytes
    kSnapRemove = 18, // key = snapshot name
  };

  Type type = Type::kRead;
  bool excl = false;       // kCreate: fail if object exists
  uint64_t offset = 0;
  uint64_t length = 0;
  mal::Buffer data;
  std::string key;
  std::string value;
  std::string cls_name;    // kExec
  std::string method;      // kExec

  void Encode(mal::Encoder* enc) const;
  static Op Decode(mal::Decoder* dec);
};

struct OpResult {
  mal::Status status;
  mal::Buffer out;
};

// A transaction's staged view of one object: a COW alias of the bytestream
// plus sparse overlays (key -> value, or key -> tombstone) over the
// committed object's maps. Reads merge overlay-over-base; writes touch only
// the overlay, so the committed object is untouched until commit and an
// abort simply drops the TxnObject. `base` must outlive the TxnObject and
// is never mutated through it; pass nullptr for a not-yet-existing object.
class TxnObject {
 public:
  explicit TxnObject(const Object* base);

  bool exists() const { return exists_; }
  uint64_t version() const { return version_; }

  // Materializes an empty object if absent (no-op when it exists).
  void Create();
  // Deletes the object: overlays are cleared and the base stops being
  // visible, so a subsequent Create() starts from scratch.
  void Remove();

  const mal::Buffer& data() const { return data_; }
  mal::Buffer* MutableData() { return &data_; }

  // Merged overlay-over-base lookups. Pointers are valid until the next
  // mutation of this TxnObject.
  const std::string* OmapFind(const std::string& key) const;
  const std::string* XattrFind(const std::string& key) const;
  const mal::Buffer* SnapFind(const std::string& name) const;
  std::map<std::string, std::string> OmapList(const std::string& prefix) const;

  void OmapSet(const std::string& key, std::string value);
  void OmapDel(const std::string& key);
  void XattrSet(const std::string& key, std::string value);
  void SnapSet(const std::string& name, mal::Buffer snap);
  // Returns false if the snapshot does not exist (merged view).
  bool SnapRemove(const std::string& name);

  // Full object with overlays folded in (nullopt if the object does not
  // exist). O(base size); used by commit-on-recreate, the cls scratch
  // harness, and tests — the hot commit path applies deltas in place.
  std::optional<Object> Materialize() const;

  // True while reads still see the committed base object underneath the
  // overlays (i.e. the object was not removed during the transaction).
  bool base_visible() const { return base_visible_ && base_ != nullptr; }

  // Commit support: the sparse overlays (value = staged, nullopt = deleted).
  using StringOverlay = std::map<std::string, std::optional<std::string>>;
  using BufferOverlay = std::map<std::string, std::optional<mal::Buffer>>;
  const StringOverlay& omap_overlay() const { return omap_; }
  const StringOverlay& xattr_overlay() const { return xattrs_; }
  const BufferOverlay& snap_overlay() const { return snaps_; }

 private:
  const Object* base_ = nullptr;
  bool base_visible_ = true;
  bool exists_ = false;
  mal::Buffer data_;       // COW alias of base->data until first mutation
  uint64_t version_ = 0;
  StringOverlay omap_;
  StringOverlay xattrs_;
  BufferOverlay snaps_;
};

// The whole-store interface. Thread-free: the simulated OSD serializes all
// access through its CPU model.
class ObjectStore {
 public:
  // Executes all ops on `oid` atomically. If any op fails (other than
  // per-op reads reporting kNotFound data — those fail the transaction
  // too), no mutation is applied and the failing status is returned.
  // Per-op results land in `results` (sized to ops) for the caller to
  // forward. kExec ops must be resolved by the caller into primitive ops
  // via the class runtime; the store rejects them here.
  mal::Status ApplyTransaction(const std::string& oid, const std::vector<Op>& ops,
                               std::vector<OpResult>* results);

  bool Exists(const std::string& oid) const { return objects_.count(oid) != 0; }
  mal::Result<const Object*> Get(const std::string& oid) const;

  // Direct object install (recovery path: replica push).
  void Put(const std::string& oid, Object object);
  void Remove(const std::string& oid);

  // Fault injection (chaos bit-rot): XORs one bit of the object's
  // bytestream in place without bumping the version — silent corruption,
  // exactly the failure mode checksum scrubbing exists to catch. Returns
  // false when the object is absent or `byte` is past the end.
  bool FlipBit(const std::string& oid, uint64_t byte, uint32_t bit);

  // Drops every object (chaos permanent loss: the disk is gone).
  void Clear();

  std::vector<std::string> List() const;
  size_t size() const { return objects_.size(); }

  // Maintained incrementally on commit/Put/Remove (it is cheap enough to
  // sample from a perf loop); RecomputeBytesUsed is the O(store) recount
  // that tests assert agreement against.
  uint64_t bytes_used() const { return bytes_used_; }
  uint64_t RecomputeBytesUsed() const;

  // Applies one op against a transaction's staged object view. Public and
  // static so the OSD's class runtime can expand kExec ops against the
  // staged state before committing. kRemove and kExec are handled by the
  // caller (their error messages name the oid, which TxnObject lacks).
  static mal::Status ApplyOp(const Op& op, TxnObject* object, OpResult* result);

 private:
  // Folds the transaction's deltas into the committed object and bumps its
  // version, keeping bytes_used_ in sync.
  void CommitInPlace(Object* object, const TxnObject& staged);
  // data + omap footprint, the definition bytes_used() has always used.
  static uint64_t Footprint(const Object& object);

  std::map<std::string, Object> objects_;
  uint64_t bytes_used_ = 0;
};

}  // namespace mal::osd

#endif  // MALACOLOGY_OSD_OBJECT_STORE_H_
