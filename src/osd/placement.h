// Data placement: object -> placement group -> ordered OSD set.
//
// Ceph uses CRUSH; we substitute rendezvous (highest-random-weight)
// hashing, which shares the relevant properties: placement is computed
// from the map alone (no central directory), is stable under membership
// change (only affected PGs move), and weights can bias selection.
#ifndef MALACOLOGY_OSD_PLACEMENT_H_
#define MALACOLOGY_OSD_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mon/maps.h"

namespace mal::osd {

// Stable 64-bit hash (FNV-1a) used for all placement decisions.
uint64_t StableHash(const std::string& s);
uint64_t StableHash64(uint64_t a, uint64_t b);

// Object id -> placement group.
uint32_t PgForObject(const std::string& oid, uint32_t pg_count);

// Placement group -> ordered list of up-OSDs (primary first), at most
// `replicas` entries. Empty if no OSD is up.
std::vector<uint32_t> PgToOsds(uint32_t pg, const mon::OsdMap& map, uint32_t replicas);

// Convenience: the acting set for an object (primary first).
std::vector<uint32_t> OsdsForObject(const std::string& oid, const mon::OsdMap& map,
                                    uint32_t replicas);

}  // namespace mal::osd

#endif  // MALACOLOGY_OSD_PLACEMENT_H_
