// Data placement: object -> placement group -> ordered OSD set.
//
// Ceph uses CRUSH; we substitute rendezvous (highest-random-weight)
// hashing, which shares the relevant properties: placement is computed
// from the map alone (no central directory), is stable under membership
// change (only affected PGs move), and weights can bias selection.
#ifndef MALACOLOGY_OSD_PLACEMENT_H_
#define MALACOLOGY_OSD_PLACEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/mon/maps.h"

namespace mal::osd {

// Stable 64-bit hash (FNV-1a) used for all placement decisions.
uint64_t StableHash(const std::string& s);
uint64_t StableHash64(uint64_t a, uint64_t b);

// Object id -> placement group.
uint32_t PgForObject(const std::string& oid, uint32_t pg_count);

// Placement group -> ordered list of up-OSDs (primary first), at most
// `replicas` entries. Empty if no OSD is up.
std::vector<uint32_t> PgToOsds(uint32_t pg, const mon::OsdMap& map, uint32_t replicas);

// Convenience: the acting set for an object (primary first).
std::vector<uint32_t> OsdsForObject(const std::string& oid, const mon::OsdMap& map,
                                    uint32_t replicas);

// -- pool-aware placement --------------------------------------------------------
// Objects in a registered pool are named "<pool>/<object>"; EC pools stripe
// each logical object across shard objects "<pool>/<object>.shard<i>".

inline std::string PoolOid(const std::string& pool, const std::string& object) {
  return pool + "/" + object;
}
std::string EcShardOid(const std::string& pool_oid, uint32_t index);

struct EcShardRef {
  std::string logical_oid;  // "<pool>/<object>"
  uint32_t index = 0;
};
// Parses "<pool>/<object>.shard<i>"; nullopt when `oid` is not a shard name.
std::optional<EcShardRef> ParseEcShardOid(const std::string& oid);

// The acting set for an oid, consulting the map's pool table. Replicated
// pools use the pool's width. EC shard objects store exactly one copy at
// member `index` of the *logical* object's (k+1)-wide rendezvous set, which
// guarantees the shards of one object land on distinct OSDs (while enough
// are up). Non-shard objects in an EC pool (e.g. the pool's object index)
// are replicated 3-wide. Oids outside any registered pool — everything that
// existed before pools — keep the legacy `default_replicas` placement, so
// pool-free clusters place byte-identically.
std::vector<uint32_t> ActingSetForOid(const std::string& oid, const mon::OsdMap& map,
                                      uint32_t default_replicas);

}  // namespace mal::osd

#endif  // MALACOLOGY_OSD_PLACEMENT_H_
