// Wire messages for the OSD subsystem (envelope types 200-299).
#ifndef MALACOLOGY_OSD_MESSAGES_H_
#define MALACOLOGY_OSD_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/osd/object_store.h"

namespace mal::osd {

enum MsgType : uint32_t {
  kMsgOsdOp = 200,      // client -> primary: transaction on one object
  kMsgRepOp = 201,      // primary -> replica: expanded primitive transaction
  kMsgGossipMap = 202,  // osd -> osd one-way: current OSDMap (epidemic)
  kMsgPullObject = 203, // recovery: fetch a full object from a peer
  kMsgScrub = 204,      // anti-entropy: compare object version/digest
  kMsgWatch = 205,      // client -> primary: (un)register a watch
  kMsgNotify = 206,     // primary -> watcher (one-way): object changed
  kMsgPushObject = 207, // scrub repair: primary -> replica full object
};

struct WatchRequest {
  std::string oid;
  bool unwatch = false;
  void Encode(mal::Encoder* enc) const {
    enc->PutString(oid);
    enc->PutBool(unwatch);
  }
  static WatchRequest Decode(mal::Decoder* dec) {
    WatchRequest req;
    req.oid = dec->GetString();
    req.unwatch = dec->GetBool();
    return req;
  }
};

// Pushed to watchers after a mutating transaction commits.
struct NotifyEvent {
  std::string oid;
  uint64_t version = 0;
  void Encode(mal::Encoder* enc) const {
    enc->PutString(oid);
    enc->PutU64(version);
  }
  static NotifyEvent Decode(mal::Decoder* dec) {
    NotifyEvent event;
    event.oid = dec->GetString();
    event.version = dec->GetU64();
    return event;
  }
};

struct OsdOpRequest {
  std::string oid;
  std::vector<Op> ops;

  void Encode(mal::Encoder* enc) const {
    enc->PutString(oid);
    enc->PutVarU64(ops.size());
    for (const Op& op : ops) {
      op.Encode(enc);
    }
  }
  static OsdOpRequest Decode(mal::Decoder* dec) {
    OsdOpRequest req;
    req.oid = dec->GetString();
    uint64_t n = dec->GetVarU64();
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      req.ops.push_back(Op::Decode(dec));
    }
    return req;
  }
};

// Reply: per-op status codes and outputs, plus the serving OSD's map epoch
// so clients learn about newer maps (Ceph piggybacks epochs the same way).
struct OsdOpReply {
  uint64_t map_epoch = 0;
  std::vector<OpResult> results;

  void Encode(mal::Encoder* enc) const {
    enc->PutU64(map_epoch);
    enc->PutVarU64(results.size());
    for (const OpResult& r : results) {
      enc->PutU32(static_cast<uint32_t>(r.status.code()));
      enc->PutString(r.status.message());
      enc->PutBuffer(r.out);
    }
  }
  static OsdOpReply Decode(mal::Decoder* dec) {
    OsdOpReply reply;
    reply.map_epoch = dec->GetU64();
    uint64_t n = dec->GetVarU64();
    for (uint64_t i = 0; i < n && dec->ok(); ++i) {
      OpResult r;
      auto code = static_cast<mal::Code>(dec->GetU32());
      std::string message = dec->GetString();
      r.status = code == mal::Code::kOk ? mal::Status::Ok() : mal::Status(code, message);
      r.out = dec->GetBuffer();
      reply.results.push_back(std::move(r));
    }
    return reply;
  }
};

struct PullObjectRequest {
  std::string oid;
  void Encode(mal::Encoder* enc) const { enc->PutString(oid); }
  static PullObjectRequest Decode(mal::Decoder* dec) { return {dec->GetString()}; }
};

struct ScrubRequest {
  std::string oid;
  uint64_t version = 0;  // sender's version (0 = absent)
  void Encode(mal::Encoder* enc) const {
    enc->PutString(oid);
    enc->PutU64(version);
  }
  static ScrubRequest Decode(mal::Decoder* dec) {
    ScrubRequest req;
    req.oid = dec->GetString();
    req.version = dec->GetU64();
    return req;
  }
};

}  // namespace mal::osd

#endif  // MALACOLOGY_OSD_MESSAGES_H_
