#include "src/osd/object_store.h"

namespace mal::osd {

void Object::Encode(mal::Encoder* enc) const {
  enc->PutBuffer(data);
  EncodeStringMap(enc, omap);
  EncodeStringMap(enc, xattrs);
  enc->PutVarU64(snapshots.size());
  for (const auto& [name, snap] : snapshots) {
    enc->PutString(name);
    enc->PutBuffer(snap);
  }
  enc->PutU64(version);
}

Object Object::Decode(mal::Decoder* dec) {
  Object object;
  object.data = dec->GetBuffer();
  object.omap = DecodeStringMap(dec);
  object.xattrs = DecodeStringMap(dec);
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    std::string name = dec->GetString();
    object.snapshots[name] = dec->GetBuffer();
  }
  object.version = dec->GetU64();
  return object;
}

void Op::Encode(mal::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutBool(excl);
  enc->PutU64(offset);
  enc->PutU64(length);
  enc->PutBuffer(data);
  enc->PutString(key);
  enc->PutString(value);
  enc->PutString(cls_name);
  enc->PutString(method);
}

Op Op::Decode(mal::Decoder* dec) {
  Op op;
  op.type = static_cast<Type>(dec->GetU8());
  op.excl = dec->GetBool();
  op.offset = dec->GetU64();
  op.length = dec->GetU64();
  op.data = dec->GetBuffer();
  op.key = dec->GetString();
  op.value = dec->GetString();
  op.cls_name = dec->GetString();
  op.method = dec->GetString();
  return op;
}

mal::Result<const Object*> ObjectStore::Get(const std::string& oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return mal::Status::NotFound("object " + oid);
  }
  return &it->second;
}

std::vector<std::string> ObjectStore::List() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [oid, object] : objects_) {
    names.push_back(oid);
  }
  return names;
}

uint64_t ObjectStore::bytes_used() const {
  uint64_t total = 0;
  for (const auto& [oid, object] : objects_) {
    total += object.data.size();
    for (const auto& [k, v] : object.omap) {
      total += k.size() + v.size();
    }
  }
  return total;
}

mal::Status ObjectStore::ApplyTransaction(const std::string& oid, const std::vector<Op>& ops,
                                          std::vector<OpResult>* results) {
  results->clear();
  results->resize(ops.size());

  // Stage: copy-on-write of the single target object. All ops execute
  // against the staged copy; commit swaps it in only if every op succeeded.
  std::optional<Object> staged;
  bool existed = false;
  if (auto it = objects_.find(oid); it != objects_.end()) {
    staged = it->second;
    existed = true;
  }
  bool removed = false;

  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (op.type == Op::Type::kExec) {
      (*results)[i].status =
          mal::Status::Internal("kExec must be expanded by the class runtime");
      return (*results)[i].status;
    }
    if (op.type == Op::Type::kRemove) {
      if (!staged.has_value()) {
        (*results)[i].status = mal::Status::NotFound("object " + oid);
        return (*results)[i].status;
      }
      staged.reset();
      removed = true;
      (*results)[i].status = mal::Status::Ok();
      continue;
    }
    mal::Status s = ApplyOp(op, &staged, &(*results)[i]);
    (*results)[i].status = s;
    if (!s.ok()) {
      return s;  // abort: nothing applied
    }
  }

  // Commit.
  if (removed && !staged.has_value()) {
    objects_.erase(oid);
    return mal::Status::Ok();
  }
  if (staged.has_value()) {
    bool mutated = !existed;
    for (const Op& op : ops) {
      switch (op.type) {
        case Op::Type::kCreate:
        case Op::Type::kWrite:
        case Op::Type::kWriteFull:
        case Op::Type::kAppend:
        case Op::Type::kTruncate:
        case Op::Type::kOmapSet:
        case Op::Type::kOmapDel:
        case Op::Type::kXattrSet:
        case Op::Type::kSnapCreate:
        case Op::Type::kSnapRemove:
          mutated = true;
          break;
        default:
          break;
      }
    }
    if (mutated) {
      ++staged->version;
      objects_[oid] = std::move(*staged);
    }
  }
  return mal::Status::Ok();
}

mal::Status ObjectStore::ApplyOp(const Op& op, std::optional<Object>* object,
                                 OpResult* result) {
  auto require = [&]() -> mal::Status {
    if (!object->has_value()) {
      return mal::Status::NotFound("object does not exist");
    }
    return mal::Status::Ok();
  };
  auto materialize = [&]() {
    if (!object->has_value()) {
      object->emplace();
    }
  };

  switch (op.type) {
    case Op::Type::kCreate:
      if (object->has_value()) {
        return op.excl ? mal::Status::AlreadyExists() : mal::Status::Ok();
      }
      materialize();
      return mal::Status::Ok();

    case Op::Type::kRead: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      uint64_t len = op.length == 0 ? (*object)->data.size() : op.length;
      result->out = (*object)->data.Read(op.offset, len);
      return mal::Status::Ok();
    }

    case Op::Type::kWrite:
      materialize();
      (*object)->data.Write(op.offset, op.data.data(), op.data.size());
      return mal::Status::Ok();

    case Op::Type::kWriteFull:
      materialize();
      (*object)->data = op.data;
      return mal::Status::Ok();

    case Op::Type::kAppend:
      materialize();
      (*object)->data.Append(op.data);
      return mal::Status::Ok();

    case Op::Type::kTruncate: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      (*object)->data.Resize(op.offset);
      return mal::Status::Ok();
    }

    case Op::Type::kStat: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      mal::Encoder enc(&result->out);
      enc.PutU64((*object)->data.size());
      enc.PutU64((*object)->version);
      return mal::Status::Ok();
    }

    case Op::Type::kOmapGet: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      auto it = (*object)->omap.find(op.key);
      if (it == (*object)->omap.end()) {
        return mal::Status::NotFound("omap key " + op.key);
      }
      result->out = mal::Buffer::FromString(it->second);
      return mal::Status::Ok();
    }

    case Op::Type::kOmapSet:
      materialize();
      (*object)->omap[op.key] = op.value;
      return mal::Status::Ok();

    case Op::Type::kOmapDel: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      (*object)->omap.erase(op.key);
      return mal::Status::Ok();
    }

    case Op::Type::kOmapList: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      std::map<std::string, std::string> matched;
      for (const auto& [k, v] : (*object)->omap) {
        if (k.rfind(op.key, 0) == 0) {  // prefix match
          matched[k] = v;
        }
      }
      mal::Encoder enc(&result->out);
      EncodeStringMap(&enc, matched);
      return mal::Status::Ok();
    }

    case Op::Type::kXattrGet: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      auto it = (*object)->xattrs.find(op.key);
      if (it == (*object)->xattrs.end()) {
        return mal::Status::NotFound("xattr " + op.key);
      }
      result->out = mal::Buffer::FromString(it->second);
      return mal::Status::Ok();
    }

    case Op::Type::kXattrSet:
      materialize();
      (*object)->xattrs[op.key] = op.value;
      return mal::Status::Ok();

    case Op::Type::kCmpXattr: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      auto it = (*object)->xattrs.find(op.key);
      if (it == (*object)->xattrs.end() || it->second != op.value) {
        return mal::Status::Aborted("cmpxattr mismatch on " + op.key);
      }
      return mal::Status::Ok();
    }

    case Op::Type::kSnapCreate: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      if ((*object)->snapshots.count(op.key) != 0) {
        return mal::Status::AlreadyExists("snapshot " + op.key);
      }
      (*object)->snapshots[op.key] = (*object)->data;
      return mal::Status::Ok();
    }

    case Op::Type::kSnapRead: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      auto it = (*object)->snapshots.find(op.key);
      if (it == (*object)->snapshots.end()) {
        return mal::Status::NotFound("snapshot " + op.key);
      }
      result->out = it->second;
      return mal::Status::Ok();
    }

    case Op::Type::kSnapRemove: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      if ((*object)->snapshots.erase(op.key) == 0) {
        return mal::Status::NotFound("snapshot " + op.key);
      }
      return mal::Status::Ok();
    }

    case Op::Type::kRemove:
    case Op::Type::kExec:
      return mal::Status::Internal("handled by caller");
  }
  return mal::Status::Internal("unknown op");
}

}  // namespace mal::osd
