#include "src/osd/object_store.h"

namespace mal::osd {

void Object::Encode(mal::Encoder* enc) const {
  enc->PutBuffer(data);
  EncodeStringMap(enc, omap);
  EncodeStringMap(enc, xattrs);
  enc->PutVarU64(snapshots.size());
  for (const auto& [name, snap] : snapshots) {
    enc->PutString(name);
    enc->PutBuffer(snap);
  }
  enc->PutU64(version);
}

Object Object::Decode(mal::Decoder* dec) {
  Object object;
  object.data = dec->GetBuffer();
  object.omap = DecodeStringMap(dec);
  object.xattrs = DecodeStringMap(dec);
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    std::string name = dec->GetString();
    object.snapshots[name] = dec->GetBuffer();
  }
  object.version = dec->GetU64();
  return object;
}

void Op::Encode(mal::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutBool(excl);
  enc->PutU64(offset);
  enc->PutU64(length);
  enc->PutBuffer(data);
  enc->PutString(key);
  enc->PutString(value);
  enc->PutString(cls_name);
  enc->PutString(method);
}

Op Op::Decode(mal::Decoder* dec) {
  Op op;
  op.type = static_cast<Type>(dec->GetU8());
  op.excl = dec->GetBool();
  op.offset = dec->GetU64();
  op.length = dec->GetU64();
  op.data = dec->GetBuffer();
  op.key = dec->GetString();
  op.value = dec->GetString();
  op.cls_name = dec->GetString();
  op.method = dec->GetString();
  return op;
}

TxnObject::TxnObject(const Object* base) : base_(base) {
  if (base_ != nullptr) {
    exists_ = true;
    data_ = base_->data;  // O(1) COW alias; writes detach privately
    version_ = base_->version;
  }
}

void TxnObject::Create() {
  if (!exists_) {
    exists_ = true;
  }
}

void TxnObject::Remove() {
  exists_ = false;
  base_visible_ = false;
  data_.clear();
  version_ = 0;
  omap_.clear();
  xattrs_.clear();
  snaps_.clear();
}

const std::string* TxnObject::OmapFind(const std::string& key) const {
  if (auto it = omap_.find(key); it != omap_.end()) {
    return it->second ? &*it->second : nullptr;
  }
  if (base_visible()) {
    if (auto it = base_->omap.find(key); it != base_->omap.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const std::string* TxnObject::XattrFind(const std::string& key) const {
  if (auto it = xattrs_.find(key); it != xattrs_.end()) {
    return it->second ? &*it->second : nullptr;
  }
  if (base_visible()) {
    if (auto it = base_->xattrs.find(key); it != base_->xattrs.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

const mal::Buffer* TxnObject::SnapFind(const std::string& name) const {
  if (auto it = snaps_.find(name); it != snaps_.end()) {
    return it->second ? &*it->second : nullptr;
  }
  if (base_visible()) {
    if (auto it = base_->snapshots.find(name); it != base_->snapshots.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

std::map<std::string, std::string> TxnObject::OmapList(const std::string& prefix) const {
  std::map<std::string, std::string> matched;
  if (base_visible()) {
    // Keys sharing a prefix are contiguous in a sorted map.
    for (auto it = base_->omap.lower_bound(prefix); it != base_->omap.end(); ++it) {
      if (it->first.rfind(prefix, 0) != 0) {
        break;
      }
      matched[it->first] = it->second;
    }
  }
  for (auto it = omap_.lower_bound(prefix); it != omap_.end(); ++it) {
    if (it->first.rfind(prefix, 0) != 0) {
      break;
    }
    if (it->second) {
      matched[it->first] = *it->second;
    } else {
      matched.erase(it->first);
    }
  }
  return matched;
}

void TxnObject::OmapSet(const std::string& key, std::string value) {
  omap_[key] = std::move(value);
}

void TxnObject::OmapDel(const std::string& key) { omap_[key] = std::nullopt; }

void TxnObject::XattrSet(const std::string& key, std::string value) {
  xattrs_[key] = std::move(value);
}

void TxnObject::SnapSet(const std::string& name, mal::Buffer snap) {
  snaps_[name] = std::move(snap);
}

bool TxnObject::SnapRemove(const std::string& name) {
  if (SnapFind(name) == nullptr) {
    return false;
  }
  snaps_[name] = std::nullopt;
  return true;
}

std::optional<Object> TxnObject::Materialize() const {
  if (!exists_) {
    return std::nullopt;
  }
  Object out;
  out.data = data_;
  out.version = version_;
  if (base_visible()) {
    out.omap = base_->omap;
    out.xattrs = base_->xattrs;
    out.snapshots = base_->snapshots;
  }
  for (const auto& [k, v] : omap_) {
    if (v) {
      out.omap[k] = *v;
    } else {
      out.omap.erase(k);
    }
  }
  for (const auto& [k, v] : xattrs_) {
    if (v) {
      out.xattrs[k] = *v;
    } else {
      out.xattrs.erase(k);
    }
  }
  for (const auto& [k, v] : snaps_) {
    if (v) {
      out.snapshots[k] = *v;
    } else {
      out.snapshots.erase(k);
    }
  }
  return out;
}

mal::Result<const Object*> ObjectStore::Get(const std::string& oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return mal::Status::NotFound("object " + oid);
  }
  return &it->second;
}

void ObjectStore::Put(const std::string& oid, Object object) {
  auto it = objects_.find(oid);
  if (it != objects_.end()) {
    bytes_used_ -= Footprint(it->second);
  }
  bytes_used_ += Footprint(object);
  objects_[oid] = std::move(object);
}

void ObjectStore::Remove(const std::string& oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return;
  }
  bytes_used_ -= Footprint(it->second);
  objects_.erase(it);
}

bool ObjectStore::FlipBit(const std::string& oid, uint64_t byte, uint32_t bit) {
  auto it = objects_.find(oid);
  if (it == objects_.end() || byte >= it->second.data.size()) {
    return false;
  }
  char c = it->second.data.data()[byte];
  c = static_cast<char>(c ^ (1u << (bit % 8)));
  it->second.data.Write(byte, &c, 1);
  return true;
}

void ObjectStore::Clear() {
  objects_.clear();
  bytes_used_ = 0;
}

std::vector<std::string> ObjectStore::List() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [oid, object] : objects_) {
    names.push_back(oid);
  }
  return names;
}

uint64_t ObjectStore::Footprint(const Object& object) {
  uint64_t total = object.data.size();
  for (const auto& [k, v] : object.omap) {
    total += k.size() + v.size();
  }
  return total;
}

uint64_t ObjectStore::RecomputeBytesUsed() const {
  uint64_t total = 0;
  for (const auto& [oid, object] : objects_) {
    total += Footprint(object);
  }
  return total;
}

void ObjectStore::CommitInPlace(Object* object, const TxnObject& staged) {
  bytes_used_ += staged.data().size();
  bytes_used_ -= object->data.size();
  object->data = staged.data();  // O(1): COW assignment
  for (const auto& [k, v] : staged.omap_overlay()) {
    auto it = object->omap.find(k);
    if (it != object->omap.end()) {
      bytes_used_ -= k.size() + it->second.size();
      if (v) {
        bytes_used_ += k.size() + v->size();
        it->second = *v;
      } else {
        object->omap.erase(it);
      }
    } else if (v) {
      bytes_used_ += k.size() + v->size();
      object->omap.emplace(k, *v);
    }
  }
  for (const auto& [k, v] : staged.xattr_overlay()) {
    if (v) {
      object->xattrs[k] = *v;
    } else {
      object->xattrs.erase(k);
    }
  }
  for (const auto& [k, v] : staged.snap_overlay()) {
    if (v) {
      object->snapshots[k] = *v;
    } else {
      object->snapshots.erase(k);
    }
  }
  ++object->version;
}

mal::Status ObjectStore::ApplyTransaction(const std::string& oid, const std::vector<Op>& ops,
                                          std::vector<OpResult>* results) {
  results->clear();
  results->resize(ops.size());

  // Stage: a delta view over the single target object. All ops execute
  // against the staged deltas; commit folds them in only if every op
  // succeeded. The committed object is never touched before commit, so an
  // abort is simply "return" — all-or-nothing without a full-object clone.
  auto target = objects_.find(oid);
  const bool existed = target != objects_.end();
  TxnObject staged(existed ? &target->second : nullptr);
  bool removed = false;

  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (op.type == Op::Type::kExec) {
      (*results)[i].status =
          mal::Status::Internal("kExec must be expanded by the class runtime");
      return (*results)[i].status;
    }
    if (op.type == Op::Type::kRemove) {
      if (!staged.exists()) {
        (*results)[i].status = mal::Status::NotFound("object " + oid);
        return (*results)[i].status;
      }
      staged.Remove();
      removed = true;
      (*results)[i].status = mal::Status::Ok();
      continue;
    }
    mal::Status s = ApplyOp(op, &staged, &(*results)[i]);
    (*results)[i].status = s;
    if (!s.ok()) {
      return s;  // abort: nothing applied
    }
  }

  // Commit.
  if (removed && !staged.exists()) {
    if (existed) {
      bytes_used_ -= Footprint(target->second);
      objects_.erase(target);
    }
    return mal::Status::Ok();
  }
  if (staged.exists()) {
    bool mutated = !existed;
    for (const Op& op : ops) {
      switch (op.type) {
        case Op::Type::kCreate:
        case Op::Type::kWrite:
        case Op::Type::kWriteFull:
        case Op::Type::kAppend:
        case Op::Type::kTruncate:
        case Op::Type::kOmapSet:
        case Op::Type::kOmapDel:
        case Op::Type::kXattrSet:
        case Op::Type::kSnapCreate:
        case Op::Type::kSnapRemove:
          mutated = true;
          break;
        default:
          break;
      }
    }
    if (mutated) {
      if (existed && staged.base_visible()) {
        CommitInPlace(&target->second, staged);
      } else {
        // New object, or removed-and-recreated within the transaction:
        // the overlays hold the entire state.
        std::optional<Object> built = staged.Materialize();
        ++built->version;
        if (existed) {
          bytes_used_ -= Footprint(target->second);
        }
        bytes_used_ += Footprint(*built);
        objects_[oid] = std::move(*built);
      }
    }
  }
  return mal::Status::Ok();
}

mal::Status ObjectStore::ApplyOp(const Op& op, TxnObject* object, OpResult* result) {
  auto require = [&]() -> mal::Status {
    if (!object->exists()) {
      return mal::Status::NotFound("object does not exist");
    }
    return mal::Status::Ok();
  };

  switch (op.type) {
    case Op::Type::kCreate:
      if (object->exists()) {
        return op.excl ? mal::Status::AlreadyExists() : mal::Status::Ok();
      }
      object->Create();
      return mal::Status::Ok();

    case Op::Type::kRead: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      uint64_t len = op.length == 0 ? object->data().size() : op.length;
      result->out = object->data().Read(op.offset, len);
      return mal::Status::Ok();
    }

    case Op::Type::kWrite:
      object->Create();
      object->MutableData()->Write(op.offset, op.data.data(), op.data.size());
      return mal::Status::Ok();

    case Op::Type::kWriteFull:
      object->Create();
      *object->MutableData() = op.data;
      return mal::Status::Ok();

    case Op::Type::kAppend:
      object->Create();
      object->MutableData()->Append(op.data);
      return mal::Status::Ok();

    case Op::Type::kTruncate: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      object->MutableData()->Resize(op.offset);
      return mal::Status::Ok();
    }

    case Op::Type::kStat: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      mal::Encoder enc(&result->out);
      enc.PutU64(object->data().size());
      enc.PutU64(object->version());
      return mal::Status::Ok();
    }

    case Op::Type::kOmapGet: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      const std::string* value = object->OmapFind(op.key);
      if (value == nullptr) {
        return mal::Status::NotFound("omap key " + op.key);
      }
      result->out = mal::Buffer::FromString(*value);
      return mal::Status::Ok();
    }

    case Op::Type::kOmapSet:
      object->Create();
      object->OmapSet(op.key, op.value);
      return mal::Status::Ok();

    case Op::Type::kOmapDel: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      object->OmapDel(op.key);
      return mal::Status::Ok();
    }

    case Op::Type::kOmapList: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      std::map<std::string, std::string> matched = object->OmapList(op.key);
      mal::Encoder enc(&result->out);
      EncodeStringMap(&enc, matched);
      return mal::Status::Ok();
    }

    case Op::Type::kXattrGet: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      const std::string* value = object->XattrFind(op.key);
      if (value == nullptr) {
        return mal::Status::NotFound("xattr " + op.key);
      }
      result->out = mal::Buffer::FromString(*value);
      return mal::Status::Ok();
    }

    case Op::Type::kXattrSet:
      object->Create();
      object->XattrSet(op.key, op.value);
      return mal::Status::Ok();

    case Op::Type::kCmpXattr: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      const std::string* value = object->XattrFind(op.key);
      if (value == nullptr || *value != op.value) {
        return mal::Status::Aborted("cmpxattr mismatch on " + op.key);
      }
      return mal::Status::Ok();
    }

    case Op::Type::kSnapCreate: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      if (object->SnapFind(op.key) != nullptr) {
        return mal::Status::AlreadyExists("snapshot " + op.key);
      }
      object->SnapSet(op.key, object->data());  // O(1) COW alias
      return mal::Status::Ok();
    }

    case Op::Type::kSnapRead: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      const mal::Buffer* snap = object->SnapFind(op.key);
      if (snap == nullptr) {
        return mal::Status::NotFound("snapshot " + op.key);
      }
      result->out = *snap;
      return mal::Status::Ok();
    }

    case Op::Type::kSnapRemove: {
      mal::Status s = require();
      if (!s.ok()) {
        return s;
      }
      if (!object->SnapRemove(op.key)) {
        return mal::Status::NotFound("snapshot " + op.key);
      }
      return mal::Status::Ok();
    }

    case Op::Type::kRemove:
    case Op::Type::kExec:
      return mal::Status::Internal("handled by caller");
  }
  return mal::Status::Internal("unknown op");
}

}  // namespace mal::osd
