// Built-in (native C++) object classes shipped with the system, mirroring
// the co-designed interfaces surveyed in the paper's Table 1:
//
//   zlog      — the CORFU storage-device interface (write-once entries,
//               epoch sealing); the critical piece of the ZLog service.
//   lock      — cooperative object lock via xattrs ("Grants clients
//               exclusive access").
//   log       — append-only records in the omap ("Logging").
//   refcount  — reference counting with delete-on-zero ("Other").
//   checksum  — compute + cache a checksum of an extent (the paper's §2
//               example of a co-designed interface, "Management").
//   kvindex   — atomically update a record in the bytestream and its index
//               in the key-value database (the paper's §4.2 example,
//               "Metadata").
//
// Wire formats of inputs/outputs are documented per method below.
#ifndef MALACOLOGY_CLS_BUILTIN_H_
#define MALACOLOGY_CLS_BUILTIN_H_

#include <cstdint>
#include <string>

#include "src/cls/registry.h"

namespace mal::cls {

// Registers all built-in classes into `registry`.
void RegisterBuiltinClasses(ClassRegistry* registry);

// ---- cls zlog: CORFU storage interface helpers ------------------------------
// Entry states stored per log position.
enum class ZlogEntryState : uint8_t { kWritten = 1, kFilled = 2, kTrimmed = 3 };

// Input encodings (all little-endian via mal::Encoder):
//   seal:    u64 epoch                 -> out: u64 max_pos (log tail)
//   write:   u64 epoch, u64 pos, buf   -> out: empty
//   read:    u64 epoch, u64 pos        -> out: u8 state, buf data
//   fill:    u64 epoch, u64 pos        -> out: empty
//   trim:    u64 epoch, u64 pos        -> out: empty
//   max_pos: u64 epoch                 -> out: u64 max_pos
// Any request with epoch < stored epoch fails with kStaleEpoch.
struct ZlogOps {
  static mal::Buffer MakeSeal(uint64_t epoch);
  static mal::Buffer MakeWrite(uint64_t epoch, uint64_t pos, const mal::Buffer& data);
  static mal::Buffer MakeRead(uint64_t epoch, uint64_t pos);
  static mal::Buffer MakeFill(uint64_t epoch, uint64_t pos);
  static mal::Buffer MakeTrim(uint64_t epoch, uint64_t pos);
  static mal::Buffer MakeMaxPos(uint64_t epoch);

  // Key layout inside the log object's omap (zero-padded for ordering).
  static std::string EntryKey(uint64_t pos);
};

}  // namespace mal::cls

#endif  // MALACOLOGY_CLS_BUILTIN_H_
