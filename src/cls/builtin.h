// Built-in (native C++) object classes shipped with the system, mirroring
// the co-designed interfaces surveyed in the paper's Table 1:
//
//   zlog      — the CORFU storage-device interface (write-once entries,
//               epoch sealing); the critical piece of the ZLog service.
//   lock      — cooperative object lock via xattrs ("Grants clients
//               exclusive access").
//   log       — append-only records in the omap ("Logging").
//   refcount  — reference counting with delete-on-zero ("Other").
//   checksum  — compute + cache a checksum of an extent (the paper's §2
//               example of a co-designed interface, "Management").
//   kvindex   — atomically update a record in the bytestream and its index
//               in the key-value database (the paper's §4.2 example,
//               "Metadata").
//
// Wire formats of inputs/outputs are documented per method below.
#ifndef MALACOLOGY_CLS_BUILTIN_H_
#define MALACOLOGY_CLS_BUILTIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cls/registry.h"

namespace mal::cls {

// Registers all built-in classes into `registry`.
void RegisterBuiltinClasses(ClassRegistry* registry);

// ---- cls zlog: CORFU storage interface helpers ------------------------------
// Entry states stored per log position.
enum class ZlogEntryState : uint8_t { kWritten = 1, kFilled = 2, kTrimmed = 3 };

// Input encodings (all little-endian via mal::Encoder):
//   seal:        u64 epoch                 -> out: u64 max_pos (log tail)
//   write:       u64 epoch, u64 pos, buf   -> out: empty
//   write_batch: u64 epoch, varuint n,
//                n x (u64 pos, buf)        -> out: varuint n, n x u32 code
//   read:        u64 epoch, u64 pos        -> out: u8 state, buf data
//   fill:        u64 epoch, u64 pos        -> out: empty
//   trim:        u64 epoch, u64 pos        -> out: empty
//   max_pos:     u64 epoch                 -> out: u64 max_pos
// Any request with epoch < stored epoch fails with kStaleEpoch.
//
// write_batch applies every entry of a batched append in ONE transaction
// on this object. Write-once is preserved per entry: positions already
// occupied report kReadOnly in their result slot while the rest commit, so
// one collision never invalidates the whole stripe transaction (no
// head-of-line blocking for the batched append pipeline). A stale epoch
// still rejects the entire op — sealing must fence every entry at once.
struct ZlogOps {
  // One entry of a batched write: a reserved position and its payload.
  struct BatchEntry {
    uint64_t pos = 0;
    mal::Buffer data;
  };

  static mal::Buffer MakeSeal(uint64_t epoch);
  static mal::Buffer MakeWrite(uint64_t epoch, uint64_t pos, const mal::Buffer& data);
  static mal::Buffer MakeWriteBatch(uint64_t epoch, const std::vector<BatchEntry>& entries);
  static mal::Buffer MakeRead(uint64_t epoch, uint64_t pos);
  static mal::Buffer MakeFill(uint64_t epoch, uint64_t pos);
  static mal::Buffer MakeTrim(uint64_t epoch, uint64_t pos);
  static mal::Buffer MakeMaxPos(uint64_t epoch);

  // Decodes a write_batch output into per-entry codes (entry order).
  static mal::Result<std::vector<mal::Code>> ParseWriteBatchResult(const mal::Buffer& out);

  // Key layout inside the log object's omap (zero-padded for ordering).
  static std::string EntryKey(uint64_t pos);
};

}  // namespace mal::cls

#endif  // MALACOLOGY_CLS_BUILTIN_H_
