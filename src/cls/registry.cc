#include "src/cls/registry.h"

#include <algorithm>
#include <set>
#include <utility>

namespace mal::cls {

const char* CategoryName(Category c) {
  switch (c) {
    case Category::kLogging:
      return "Logging";
    case Category::kMetadata:
      return "Metadata";
    case Category::kManagement:
      return "Management";
    case Category::kLocking:
      return "Locking";
    case Category::kOther:
      return "Other";
  }
  return "?";
}

namespace {

using script::Interpreter;
using script::Value;

mal::Status ArgError(const char* fn, const char* want) {
  return mal::Status::InvalidArgument(std::string(fn) + ": expected " + want);
}

// Parses symbolic error names scripts use with cls_error().
mal::Code CodeFromName(const std::string& name) {
  static const std::map<std::string, mal::Code> kCodes = {
      {"NOT_FOUND", mal::Code::kNotFound},
      {"ALREADY_EXISTS", mal::Code::kAlreadyExists},
      {"INVALID_ARGUMENT", mal::Code::kInvalidArgument},
      {"PERMISSION_DENIED", mal::Code::kPermissionDenied},
      {"STALE_EPOCH", mal::Code::kStaleEpoch},
      {"READ_ONLY", mal::Code::kReadOnly},
      {"NOT_WRITTEN", mal::Code::kNotWritten},
      {"ABORTED", mal::Code::kAborted},
      {"OUT_OF_RANGE", mal::Code::kOutOfRange},
  };
  auto it = kCodes.find(name);
  return it == kCodes.end() ? mal::Code::kInternal : it->second;
}

}  // namespace

void BindContext(Interpreter* interp, ClsContext* ctx) {
  interp->RegisterHostFunction(
      "cls_exists", [ctx](Interpreter&, const std::vector<Value>&) -> mal::Result<Value> {
        return Value(ctx->Exists());
      });
  interp->RegisterHostFunction(
      "cls_read", [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        uint64_t ofs = 0;
        uint64_t len = 0;
        if (args.size() > 0 && args[0].is_number()) {
          ofs = static_cast<uint64_t>(args[0].as_number());
        }
        if (args.size() > 1 && args[1].is_number()) {
          len = static_cast<uint64_t>(args[1].as_number());
        }
        auto data = ctx->Read(ofs, len);
        if (!data.ok()) {
          return data.status();
        }
        return Value(data.value().ToString());
      });
  interp->RegisterHostFunction(
      "cls_size", [ctx](Interpreter&, const std::vector<Value>&) -> mal::Result<Value> {
        auto size = ctx->Size();
        if (!size.ok()) {
          return size.status();
        }
        return Value(static_cast<double>(size.value()));
      });
  interp->RegisterHostFunction(
      "cls_create", [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        bool excl = !args.empty() && args[0].Truthy();
        mal::Status s = ctx->Create(excl);
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "cls_write", [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.size() < 2 || !args[0].is_number() || !args[1].is_string()) {
          return ArgError("cls_write", "(offset, data)");
        }
        mal::Status s = ctx->Write(static_cast<uint64_t>(args[0].as_number()),
                                   mal::Buffer::FromString(args[1].as_string()));
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "cls_write_full",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.empty() || !args[0].is_string()) {
          return ArgError("cls_write_full", "(data)");
        }
        mal::Status s = ctx->WriteFull(mal::Buffer::FromString(args[0].as_string()));
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "cls_append", [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.empty() || !args[0].is_string()) {
          return ArgError("cls_append", "(data)");
        }
        mal::Status s = ctx->Append(mal::Buffer::FromString(args[0].as_string()));
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "cls_omap_get",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.empty() || !args[0].is_string()) {
          return ArgError("cls_omap_get", "(key)");
        }
        auto v = ctx->OmapGet(args[0].as_string());
        if (!v.ok()) {
          if (v.status().code() == mal::Code::kNotFound) {
            return Value::Nil();  // scripts test for nil, like Lua conventions
          }
          return v.status();
        }
        return Value(v.value());
      });
  interp->RegisterHostFunction(
      "cls_omap_set",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.size() < 2 || !args[0].is_string() || !args[1].is_string()) {
          return ArgError("cls_omap_set", "(key, value)");
        }
        mal::Status s = ctx->OmapSet(args[0].as_string(), args[1].as_string());
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "cls_omap_del",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.empty() || !args[0].is_string()) {
          return ArgError("cls_omap_del", "(key)");
        }
        mal::Status s = ctx->OmapDel(args[0].as_string());
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  interp->RegisterHostFunction(
      "cls_omap_list",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        std::string prefix;
        if (!args.empty() && args[0].is_string()) {
          prefix = args[0].as_string();
        }
        auto entries = ctx->OmapList(prefix);
        if (!entries.ok()) {
          return entries.status();
        }
        auto table = script::Table::Make();
        for (const auto& [k, v] : entries.value()) {
          table->Set(script::TableKey(k), Value(v));
        }
        return Value(table);
      });
  interp->RegisterHostFunction(
      "cls_xattr_get",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.empty() || !args[0].is_string()) {
          return ArgError("cls_xattr_get", "(key)");
        }
        auto v = ctx->XattrGet(args[0].as_string());
        if (!v.ok()) {
          if (v.status().code() == mal::Code::kNotFound) {
            return Value::Nil();
          }
          return v.status();
        }
        return Value(v.value());
      });
  interp->RegisterHostFunction(
      "cls_xattr_set",
      [ctx](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        if (args.size() < 2 || !args[0].is_string() || !args[1].is_string()) {
          return ArgError("cls_xattr_set", "(key, value)");
        }
        mal::Status s = ctx->XattrSet(args[0].as_string(), args[1].as_string());
        if (!s.ok()) {
          return s;
        }
        return Value::Nil();
      });
  // Typed error escape hatch: cls_error("STALE_EPOCH", "msg") aborts the
  // method with that status, which propagates to the client unchanged.
  interp->RegisterHostFunction(
      "cls_error", [](Interpreter&, const std::vector<Value>& args) -> mal::Result<Value> {
        std::string code = args.size() > 0 && args[0].is_string() ? args[0].as_string() : "";
        std::string msg = args.size() > 1 ? args[1].ToString() : "class error";
        return mal::Status(CodeFromName(code), msg);
      });
}

void ClassRegistry::RegisterNative(const std::string& cls, const std::string& method,
                                   Category category, NativeMethod fn) {
  native_[{cls, method}] = {category, std::move(fn)};
}

mal::Status ClassRegistry::InstallScript(const std::string& cls, const std::string& version,
                                         const std::string& source, Category category) {
  auto chunk = script::Compile(source);
  if (!chunk.ok()) {
    return chunk.status();
  }
  // Discover methods: run the chunk in a scratch interpreter with a dummy
  // context and record which globals became callable.
  osd::TxnObject staged(nullptr);
  std::vector<osd::Op> effects;
  ClsContext scratch_ctx("scratch", &staged, &effects);
  Interpreter scratch;
  BindContext(&scratch, &scratch_ctx);
  std::vector<std::string> before = scratch.globals()->LocalNames();
  mal::Status s = scratch.Run(*chunk.value());
  if (!s.ok()) {
    return s;
  }
  ScriptClass sc;
  sc.version = version;
  sc.source = source;
  sc.category = category;
  sc.chunk = chunk.value();
  for (const auto& [name, value] : scratch.globals()->local_vars()) {
    if (value.is_closure() &&
        std::find(before.begin(), before.end(), name) == before.end()) {
      sc.methods.push_back(name);
    }
  }
  scripts_[cls] = std::move(sc);
  return mal::Status::Ok();
}

void ClassRegistry::RemoveScript(const std::string& cls) { scripts_.erase(cls); }

std::string ClassRegistry::ScriptVersion(const std::string& cls) const {
  auto it = scripts_.find(cls);
  return it == scripts_.end() ? "" : it->second.version;
}

bool ClassRegistry::HasMethod(const std::string& cls, const std::string& method) const {
  if (native_.count({cls, method}) != 0) {
    return true;
  }
  auto it = scripts_.find(cls);
  if (it == scripts_.end()) {
    return false;
  }
  const auto& methods = it->second.methods;
  return std::find(methods.begin(), methods.end(), method) != methods.end();
}

mal::Result<mal::Buffer> ClassRegistry::Execute(const std::string& cls,
                                                const std::string& method, ClsContext& ctx,
                                                const mal::Buffer& input, uint64_t budget,
                                                script::EngineStats* script_stats) const {
  if (auto it = native_.find({cls, method}); it != native_.end()) {
    return it->second.second(ctx, input);
  }
  auto it = scripts_.find(cls);
  if (it == scripts_.end()) {
    return mal::Status::NotFound("no object class '" + cls + "'");
  }
  Interpreter interp;
  interp.set_instruction_budget(budget);
  BindContext(&interp, &ctx);
  auto out = [&]() -> mal::Result<mal::Buffer> {
    mal::Status s = interp.Run(*it->second.chunk);
    if (!s.ok()) {
      return s;
    }
    auto result = interp.CallGlobal(method, {Value(input.ToString())});
    if (!result.ok()) {
      if (result.status().code() == mal::Code::kNotFound) {
        return mal::Status::NotFound("no method '" + method + "' in class '" + cls + "'");
      }
      return result.status();
    }
    const Value& value = result.value();
    if (value.is_nil()) {
      return mal::Buffer();
    }
    return mal::Buffer::FromString(value.ToString());
  }();
  if (script_stats != nullptr) {
    // Accumulated even on error: aborted scripts still consumed budget.
    const script::EngineStats& st = interp.stats();
    script_stats->instructions += st.instructions;
    script_stats->vm_runs += st.vm_runs;
    script_stats->oracle_runs += st.oracle_runs;
    script_stats->ic_hits += st.ic_hits;
    script_stats->ic_misses += st.ic_misses;
    script_stats->print_dropped += st.print_dropped;
  }
  return out;
}

std::vector<MethodInfo> ClassRegistry::ListMethods() const {
  std::vector<MethodInfo> methods;
  for (const auto& [key, entry] : native_) {
    methods.push_back({key.first, key.second, entry.first, false});
  }
  for (const auto& [cls, sc] : scripts_) {
    for (const std::string& method : sc.methods) {
      methods.push_back({cls, method, sc.category, true});
    }
  }
  return methods;
}

size_t ClassRegistry::NumClasses() const {
  std::set<std::string> names;
  for (const auto& [key, entry] : native_) {
    names.insert(key.first);
  }
  for (const auto& [cls, sc] : scripts_) {
    names.insert(cls);
  }
  return names.size();
}

std::map<Category, size_t> ClassRegistry::MethodCountByCategory() const {
  std::map<Category, size_t> counts;
  for (const MethodInfo& info : ListMethods()) {
    ++counts[info.category];
  }
  return counts;
}

}  // namespace mal::cls
