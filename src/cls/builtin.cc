#include "src/cls/builtin.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mal::cls {
namespace {

constexpr char kZlogEpochXattr[] = "zlog.epoch";
constexpr char kZlogMaxPosXattr[] = "zlog.max_pos";
constexpr char kLockOwnerXattr[] = "lock.owner";
constexpr char kRefcountXattr[] = "refcount";

// -- small helpers -------------------------------------------------------------

uint64_t ParseU64(const std::string& s, uint64_t fallback = 0) {
  if (s.empty()) {
    return fallback;
  }
  return std::strtoull(s.c_str(), nullptr, 10);
}

std::string U64ToString(uint64_t v) { return std::to_string(v); }

// Reads the stored epoch (0 if never sealed) and rejects stale requests.
mal::Result<uint64_t> CheckEpoch(ClsContext& ctx, uint64_t request_epoch) {
  uint64_t stored = 0;
  if (ctx.Exists()) {
    auto e = ctx.XattrGet(kZlogEpochXattr);
    if (e.ok()) {
      stored = ParseU64(e.value());
    }
  }
  if (request_epoch < stored) {
    return mal::Status::StaleEpoch("request epoch " + U64ToString(request_epoch) +
                                   " < sealed epoch " + U64ToString(stored));
  }
  return stored;
}

uint64_t MaxPos(ClsContext& ctx) {
  if (!ctx.Exists()) {
    return 0;
  }
  auto v = ctx.XattrGet(kZlogMaxPosXattr);
  return v.ok() ? ParseU64(v.value()) : 0;
}

// -- cls zlog ------------------------------------------------------------------

mal::Result<mal::Buffer> ZlogSeal(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad seal input");
  }
  uint64_t stored = 0;
  if (ctx.Exists()) {
    auto e = ctx.XattrGet(kZlogEpochXattr);
    if (e.ok()) {
      stored = ParseU64(e.value());
    }
  }
  if (epoch <= stored) {
    return mal::Status::StaleEpoch("seal epoch " + U64ToString(epoch) +
                                   " <= sealed epoch " + U64ToString(stored));
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  s = ctx.XattrSet(kZlogEpochXattr, U64ToString(epoch));
  if (!s.ok()) {
    return s;
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(MaxPos(ctx));
  return out;
}

mal::Result<mal::Buffer> ZlogWrite(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  uint64_t pos = dec.GetU64();
  mal::Buffer data = dec.GetBuffer();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad write input");
  }
  auto stored = CheckEpoch(ctx, epoch);
  if (!stored.ok()) {
    return stored.status();
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  std::string key = ZlogOps::EntryKey(pos);
  if (ctx.OmapGet(key).ok()) {
    return mal::Status::ReadOnly("position " + U64ToString(pos) + " already written");
  }
  std::string record;
  record.push_back(static_cast<char>(ZlogEntryState::kWritten));
  record.append(data.data(), data.size());
  s = ctx.OmapSet(key, record);
  if (!s.ok()) {
    return s;
  }
  if (pos + 1 > MaxPos(ctx)) {
    s = ctx.XattrSet(kZlogMaxPosXattr, U64ToString(pos + 1));
    if (!s.ok()) {
      return s;
    }
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> ZlogWriteBatch(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  uint64_t count = dec.GetVarU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad write_batch input");
  }
  auto stored = CheckEpoch(ctx, epoch);
  if (!stored.ok()) {
    return stored.status();
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutVarU64(count);
  uint64_t max_pos = MaxPos(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t pos = dec.GetU64();
    mal::Buffer data = dec.GetBuffer();
    if (!dec.ok()) {
      return mal::Status::InvalidArgument("truncated write_batch entry");
    }
    std::string key = ZlogOps::EntryKey(pos);
    if (ctx.OmapGet(key).ok()) {
      // Write-once collision invalidates only this slot; the rest of the
      // batch commits (per-entry retry happens client-side).
      enc.PutU32(static_cast<uint32_t>(mal::Code::kReadOnly));
      continue;
    }
    std::string record;
    record.reserve(1 + data.size());
    record.push_back(static_cast<char>(ZlogEntryState::kWritten));
    record.append(data.data(), data.size());
    s = ctx.OmapSet(key, record);
    if (!s.ok()) {
      return s;
    }
    max_pos = std::max(max_pos, pos + 1);
    enc.PutU32(static_cast<uint32_t>(mal::Code::kOk));
  }
  if (max_pos > MaxPos(ctx)) {
    s = ctx.XattrSet(kZlogMaxPosXattr, U64ToString(max_pos));
    if (!s.ok()) {
      return s;
    }
  }
  return out;
}

mal::Result<mal::Buffer> ZlogRead(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  uint64_t pos = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad read input");
  }
  auto stored = CheckEpoch(ctx, epoch);
  if (!stored.ok()) {
    return stored.status();
  }
  auto record = ctx.OmapGet(ZlogOps::EntryKey(pos));
  if (!record.ok()) {
    return mal::Status::NotWritten("position " + U64ToString(pos));
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU8(static_cast<uint8_t>(record.value()[0]));
  enc.PutString(record.value().substr(1));
  return out;
}

mal::Result<mal::Buffer> ZlogFill(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  uint64_t pos = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad fill input");
  }
  auto stored = CheckEpoch(ctx, epoch);
  if (!stored.ok()) {
    return stored.status();
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  std::string key = ZlogOps::EntryKey(pos);
  auto existing = ctx.OmapGet(key);
  if (existing.ok()) {
    auto state = static_cast<ZlogEntryState>(existing.value()[0]);
    if (state == ZlogEntryState::kWritten) {
      return mal::Status::ReadOnly("cannot fill written position " + U64ToString(pos));
    }
    return mal::Buffer();  // idempotent
  }
  std::string record(1, static_cast<char>(ZlogEntryState::kFilled));
  s = ctx.OmapSet(key, record);
  if (!s.ok()) {
    return s;
  }
  if (pos + 1 > MaxPos(ctx)) {
    s = ctx.XattrSet(kZlogMaxPosXattr, U64ToString(pos + 1));
    if (!s.ok()) {
      return s;
    }
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> ZlogTrim(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  uint64_t pos = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad trim input");
  }
  auto stored = CheckEpoch(ctx, epoch);
  if (!stored.ok()) {
    return stored.status();
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  // Trim is allowed on any position, written or not.
  std::string record(1, static_cast<char>(ZlogEntryState::kTrimmed));
  s = ctx.OmapSet(ZlogOps::EntryKey(pos), record);
  if (!s.ok()) {
    return s;
  }
  if (pos + 1 > MaxPos(ctx)) {
    s = ctx.XattrSet(kZlogMaxPosXattr, U64ToString(pos + 1));
    if (!s.ok()) {
      return s;
    }
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> ZlogMaxPos(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad max_pos input");
  }
  auto stored = CheckEpoch(ctx, epoch);
  if (!stored.ok()) {
    return stored.status();
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(MaxPos(ctx));
  return out;
}

// -- cls lock ------------------------------------------------------------------

mal::Result<mal::Buffer> LockAcquire(ClsContext& ctx, const mal::Buffer& input) {
  std::string owner = input.ToString();
  if (owner.empty()) {
    return mal::Status::InvalidArgument("lock owner required");
  }
  auto current = ctx.Exists() ? ctx.XattrGet(kLockOwnerXattr)
                              : mal::Result<std::string>(mal::Status::NotFound());
  if (current.ok() && !current.value().empty() && current.value() != owner) {
    return mal::Status::PermissionDenied("locked by " + current.value());
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  s = ctx.XattrSet(kLockOwnerXattr, owner);
  if (!s.ok()) {
    return s;
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> LockRelease(ClsContext& ctx, const mal::Buffer& input) {
  std::string owner = input.ToString();
  auto current = ctx.XattrGet(kLockOwnerXattr);
  if (!current.ok() || current.value().empty()) {
    return mal::Status::NotFound("not locked");
  }
  if (current.value() != owner) {
    return mal::Status::PermissionDenied("locked by " + current.value());
  }
  mal::Status s = ctx.XattrSet(kLockOwnerXattr, "");
  if (!s.ok()) {
    return s;
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> LockInfo(ClsContext& ctx, const mal::Buffer&) {
  auto current = ctx.Exists() ? ctx.XattrGet(kLockOwnerXattr)
                              : mal::Result<std::string>(mal::Status::NotFound());
  return mal::Buffer::FromString(current.ok() ? current.value() : "");
}

// -- cls log (append-only records) ----------------------------------------------

mal::Result<mal::Buffer> LogAdd(ClsContext& ctx, const mal::Buffer& input) {
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  uint64_t seq = 0;
  auto head = ctx.XattrGet("log.seq");
  if (head.ok()) {
    seq = ParseU64(head.value());
  }
  char key[32];
  std::snprintf(key, sizeof(key), "rec.%020" PRIu64, seq);
  s = ctx.OmapSet(key, input.ToString());
  if (!s.ok()) {
    return s;
  }
  s = ctx.XattrSet("log.seq", U64ToString(seq + 1));
  if (!s.ok()) {
    return s;
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(seq);
  return out;
}

mal::Result<mal::Buffer> LogList(ClsContext& ctx, const mal::Buffer&) {
  auto entries = ctx.OmapList("rec.");
  if (!entries.ok()) {
    return entries.status();
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  EncodeStringMap(&enc, entries.value());
  return out;
}

// -- cls refcount -----------------------------------------------------------------

mal::Result<mal::Buffer> RefcountInc(ClsContext& ctx, const mal::Buffer&) {
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  uint64_t count = 0;
  auto v = ctx.XattrGet(kRefcountXattr);
  if (v.ok()) {
    count = ParseU64(v.value());
  }
  s = ctx.XattrSet(kRefcountXattr, U64ToString(count + 1));
  if (!s.ok()) {
    return s;
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(count + 1);
  return out;
}

mal::Result<mal::Buffer> RefcountDec(ClsContext& ctx, const mal::Buffer&) {
  auto v = ctx.XattrGet(kRefcountXattr);
  if (!v.ok()) {
    return mal::Status::NotFound("no refcount");
  }
  uint64_t count = ParseU64(v.value());
  if (count == 0) {
    return mal::Status::OutOfRange("refcount already zero");
  }
  mal::Status s = ctx.XattrSet(kRefcountXattr, U64ToString(count - 1));
  if (!s.ok()) {
    return s;
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(count - 1);
  return out;
}

mal::Result<mal::Buffer> RefcountGet(ClsContext& ctx, const mal::Buffer&) {
  uint64_t count = 0;
  if (ctx.Exists()) {
    auto v = ctx.XattrGet(kRefcountXattr);
    if (v.ok()) {
      count = ParseU64(v.value());
    }
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(count);
  return out;
}

// -- cls checksum -------------------------------------------------------------------
// The §2 example: "remotely computing and caching the checksum of an object
// extent". Input: u64 offset, u64 length. Output: u64 checksum. The result
// is cached in an xattr keyed by extent and version.

mal::Result<mal::Buffer> ChecksumCompute(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t offset = dec.GetU64();
  uint64_t length = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad checksum input");
  }
  auto data = ctx.Read(offset, length);
  if (!data.ok()) {
    return data.status();
  }
  char cache_key[64];
  std::snprintf(cache_key, sizeof(cache_key), "cksum.%" PRIu64 ".%" PRIu64, offset, length);
  // FNV-1a over the extent.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.value().size(); ++i) {
    h ^= static_cast<unsigned char>(data.value().data()[i]);
    h *= 0x100000001b3ULL;
  }
  mal::Status s = ctx.XattrSet(cache_key, U64ToString(h));
  if (!s.ok()) {
    return s;
  }
  mal::Buffer out;
  mal::Encoder enc(&out);
  enc.PutU64(h);
  return out;
}

// -- cls kvindex --------------------------------------------------------------------
// The §4.2 example: "an interface that atomically updates a matrix stored
// in the bytestream and an index of the matrix stored in the key-value
// database". put appends the record to the bytestream and indexes
// (key -> offset:length) in the omap; get resolves through the index.

mal::Result<mal::Buffer> KvIndexPut(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  std::string key = dec.GetString();
  std::string value = dec.GetString();
  if (!dec.ok() || key.empty()) {
    return mal::Status::InvalidArgument("bad kvindex.put input");
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  auto size = ctx.Size();
  if (!size.ok()) {
    return size.status();
  }
  uint64_t offset = size.value();
  s = ctx.Append(mal::Buffer::FromString(value));
  if (!s.ok()) {
    return s;
  }
  s = ctx.OmapSet("idx." + key, U64ToString(offset) + ":" + U64ToString(value.size()));
  if (!s.ok()) {
    return s;
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> KvIndexGet(ClsContext& ctx, const mal::Buffer& input) {
  std::string key = input.ToString();
  auto entry = ctx.OmapGet("idx." + key);
  if (!entry.ok()) {
    return entry.status();
  }
  size_t colon = entry.value().find(':');
  if (colon == std::string::npos) {
    return mal::Status::Corruption("bad index entry");
  }
  uint64_t offset = ParseU64(entry.value().substr(0, colon));
  uint64_t length = ParseU64(entry.value().substr(colon + 1));
  auto data = ctx.Read(offset, length);
  if (!data.ok()) {
    return data.status();
  }
  return data.value();
}

// -- cls ec -------------------------------------------------------------------
// Epoch guard for erasure-coded shard objects: the same seal protocol zlog
// stripe objects use, applied per shard so a client holding a stale pool
// epoch cannot write a shard generation that scrub would then have to
// arbitrate. check_epoch rides as a guard op inside each shard write
// transaction; seal bumps the stored epoch (and creates the shard if it
// does not exist yet, so sealing an unwritten shard still fences it).

constexpr char kEcEpochXattr[] = "ec.epoch";

mal::Result<mal::Buffer> EcCheckEpoch(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad ec.check_epoch input");
  }
  uint64_t stored = 0;
  if (ctx.Exists()) {
    auto e = ctx.XattrGet(kEcEpochXattr);
    if (e.ok()) {
      stored = ParseU64(e.value());
    }
  }
  if (epoch < stored) {
    return mal::Status::StaleEpoch("shard epoch " + U64ToString(epoch) +
                                   " < sealed epoch " + U64ToString(stored));
  }
  return mal::Buffer();
}

mal::Result<mal::Buffer> EcSeal(ClsContext& ctx, const mal::Buffer& input) {
  mal::Decoder dec(input);
  uint64_t epoch = dec.GetU64();
  if (!dec.ok()) {
    return mal::Status::InvalidArgument("bad ec.seal input");
  }
  uint64_t stored = 0;
  if (ctx.Exists()) {
    auto e = ctx.XattrGet(kEcEpochXattr);
    if (e.ok()) {
      stored = ParseU64(e.value());
    }
  }
  if (epoch <= stored) {
    return mal::Status::StaleEpoch("seal epoch " + U64ToString(epoch) +
                                   " <= sealed epoch " + U64ToString(stored));
  }
  mal::Status s = ctx.Create(false);
  if (!s.ok()) {
    return s;
  }
  s = ctx.XattrSet(kEcEpochXattr, U64ToString(epoch));
  if (!s.ok()) {
    return s;
  }
  return mal::Buffer();
}

}  // namespace

// -- ZlogOps input builders -----------------------------------------------------

mal::Buffer ZlogOps::MakeSeal(uint64_t epoch) {
  mal::Buffer b;
  mal::Encoder enc(&b);
  enc.PutU64(epoch);
  return b;
}

mal::Buffer ZlogOps::MakeWrite(uint64_t epoch, uint64_t pos, const mal::Buffer& data) {
  mal::Buffer b;
  mal::Encoder enc(&b);
  enc.PutU64(epoch);
  enc.PutU64(pos);
  enc.PutBuffer(data);
  return b;
}

mal::Buffer ZlogOps::MakeWriteBatch(uint64_t epoch, const std::vector<BatchEntry>& entries) {
  mal::Buffer b;
  // One reservation up front: batched payloads would otherwise reallocate
  // repeatedly while appending entry after entry.
  size_t total = 8 + mal::Encoder::kMaxVarU64Bytes;
  for (const BatchEntry& entry : entries) {
    total += 8 + mal::Encoder::kMaxVarU64Bytes + entry.data.size();
  }
  b.Reserve(total);
  mal::Encoder enc(&b);
  enc.PutU64(epoch);
  enc.PutVarU64(entries.size());
  for (const BatchEntry& entry : entries) {
    enc.PutU64(entry.pos);
    enc.PutBuffer(entry.data);
  }
  return b;
}

mal::Result<std::vector<mal::Code>> ZlogOps::ParseWriteBatchResult(const mal::Buffer& out) {
  mal::Decoder dec(out);
  uint64_t count = dec.GetVarU64();
  std::vector<mal::Code> codes;
  codes.reserve(count);
  for (uint64_t i = 0; i < count && dec.ok(); ++i) {
    codes.push_back(static_cast<mal::Code>(dec.GetU32()));
  }
  if (!dec.ok()) {
    return mal::Status::Corruption("bad write_batch result");
  }
  return codes;
}

mal::Buffer ZlogOps::MakeRead(uint64_t epoch, uint64_t pos) {
  mal::Buffer b;
  mal::Encoder enc(&b);
  enc.PutU64(epoch);
  enc.PutU64(pos);
  return b;
}

mal::Buffer ZlogOps::MakeFill(uint64_t epoch, uint64_t pos) { return MakeRead(epoch, pos); }
mal::Buffer ZlogOps::MakeTrim(uint64_t epoch, uint64_t pos) { return MakeRead(epoch, pos); }
mal::Buffer ZlogOps::MakeMaxPos(uint64_t epoch) { return MakeSeal(epoch); }

std::string ZlogOps::EntryKey(uint64_t pos) {
  char key[32];
  std::snprintf(key, sizeof(key), "entry.%020" PRIu64, pos);
  return key;
}

void RegisterBuiltinClasses(ClassRegistry* registry) {
  registry->RegisterNative("zlog", "seal", Category::kLogging, ZlogSeal);
  registry->RegisterNative("zlog", "write", Category::kLogging, ZlogWrite);
  registry->RegisterNative("zlog", "write_batch", Category::kLogging, ZlogWriteBatch);
  registry->RegisterNative("zlog", "read", Category::kLogging, ZlogRead);
  registry->RegisterNative("zlog", "fill", Category::kLogging, ZlogFill);
  registry->RegisterNative("zlog", "trim", Category::kLogging, ZlogTrim);
  registry->RegisterNative("zlog", "max_pos", Category::kLogging, ZlogMaxPos);

  registry->RegisterNative("lock", "acquire", Category::kLocking, LockAcquire);
  registry->RegisterNative("lock", "release", Category::kLocking, LockRelease);
  registry->RegisterNative("lock", "info", Category::kLocking, LockInfo);

  registry->RegisterNative("log", "add", Category::kLogging, LogAdd);
  registry->RegisterNative("log", "list", Category::kLogging, LogList);

  registry->RegisterNative("refcount", "inc", Category::kOther, RefcountInc);
  registry->RegisterNative("refcount", "dec", Category::kOther, RefcountDec);
  registry->RegisterNative("refcount", "get", Category::kOther, RefcountGet);

  registry->RegisterNative("checksum", "compute", Category::kManagement, ChecksumCompute);

  registry->RegisterNative("kvindex", "put", Category::kMetadata, KvIndexPut);
  registry->RegisterNative("kvindex", "get", Category::kMetadata, KvIndexGet);

  registry->RegisterNative("ec", "check_epoch", Category::kManagement, EcCheckEpoch);
  registry->RegisterNative("ec", "seal", Category::kManagement, EcSeal);
}

}  // namespace mal::cls
