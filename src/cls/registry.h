// Object-class registry: the Data I/O interface (paper §4.2).
//
// Two kinds of classes coexist, exactly as in the paper:
//  - native classes: C++ methods compiled into the system (Ceph's original
//    facility — "written in C++ and statically loaded into the system");
//  - script classes: MalScript sources installed at runtime and versioned
//    through the Service Metadata interface, so they can be evolved
//    "without having to restart the storage system".
//
// The registry also powers the Figure 2 / Table 1 census: every method
// carries a category so benches can reproduce the co-design survey.
#ifndef MALACOLOGY_CLS_REGISTRY_H_
#define MALACOLOGY_CLS_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cls/context.h"
#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/script/interpreter.h"

namespace mal::cls {

// Table 1 categories.
enum class Category { kLogging, kMetadata, kManagement, kLocking, kOther };
const char* CategoryName(Category c);

using NativeMethod = std::function<mal::Result<mal::Buffer>(ClsContext&, const mal::Buffer&)>;

struct MethodInfo {
  std::string cls;
  std::string method;
  Category category = Category::kOther;
  bool is_script = false;
};

class ClassRegistry {
 public:
  // -- native classes ---------------------------------------------------------
  void RegisterNative(const std::string& cls, const std::string& method, Category category,
                      NativeMethod fn);

  // -- script classes ---------------------------------------------------------
  // Installs (or replaces) a script class. The source must compile; its
  // global functions become the class methods. Returns the compile error
  // on failure, leaving any previous version active.
  mal::Status InstallScript(const std::string& cls, const std::string& version,
                            const std::string& source, Category category = Category::kOther);
  void RemoveScript(const std::string& cls);
  // Installed version of a script class ("" if absent).
  std::string ScriptVersion(const std::string& cls) const;

  // -- execution ---------------------------------------------------------------
  // Runs `cls.method` with the given context and input. Script methods are
  // sandboxed by `budget` interpreter instructions. When `script_stats` is
  // non-null and the method is a script, the per-call engine counters are
  // accumulated into it (native methods never touch it).
  mal::Result<mal::Buffer> Execute(const std::string& cls, const std::string& method,
                                   ClsContext& ctx, const mal::Buffer& input,
                                   uint64_t budget = 1'000'000,
                                   script::EngineStats* script_stats = nullptr) const;

  bool HasMethod(const std::string& cls, const std::string& method) const;

  // -- census (Fig 2 / Table 1) -------------------------------------------------
  std::vector<MethodInfo> ListMethods() const;
  size_t NumClasses() const;
  std::map<Category, size_t> MethodCountByCategory() const;

 private:
  struct ScriptClass {
    std::string version;
    std::string source;
    Category category = Category::kOther;
    std::shared_ptr<script::Block> chunk;
    std::vector<std::string> methods;  // global function names in the chunk
  };

  std::map<std::pair<std::string, std::string>, std::pair<Category, NativeMethod>> native_;
  std::map<std::string, ScriptClass> scripts_;
};

// Binds ClsContext operations into a script interpreter as cls_* host
// functions (cls_read, cls_write, cls_omap_get, ...). Exposed for tests.
void BindContext(script::Interpreter* interp, ClsContext* ctx);

}  // namespace mal::cls

#endif  // MALACOLOGY_CLS_REGISTRY_H_
