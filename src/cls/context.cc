#include "src/cls/context.h"

namespace mal::cls {

mal::Result<mal::Buffer> ClsContext::Read(uint64_t offset, uint64_t length) const {
  if (!staged_->has_value()) {
    return mal::Status::NotFound("object " + oid_);
  }
  uint64_t len = length == 0 ? (*staged_)->data.size() : length;
  return (*staged_)->data.Read(offset, len);
}

mal::Result<uint64_t> ClsContext::Size() const {
  if (!staged_->has_value()) {
    return mal::Status::NotFound("object " + oid_);
  }
  return static_cast<uint64_t>((*staged_)->data.size());
}

mal::Result<std::string> ClsContext::OmapGet(const std::string& key) const {
  if (!staged_->has_value()) {
    return mal::Status::NotFound("object " + oid_);
  }
  auto it = (*staged_)->omap.find(key);
  if (it == (*staged_)->omap.end()) {
    return mal::Status::NotFound("omap key " + key);
  }
  return it->second;
}

mal::Result<std::map<std::string, std::string>> ClsContext::OmapList(
    const std::string& prefix) const {
  if (!staged_->has_value()) {
    return mal::Status::NotFound("object " + oid_);
  }
  std::map<std::string, std::string> matched;
  for (const auto& [k, v] : (*staged_)->omap) {
    if (k.rfind(prefix, 0) == 0) {
      matched[k] = v;
    }
  }
  return matched;
}

mal::Result<std::string> ClsContext::XattrGet(const std::string& key) const {
  if (!staged_->has_value()) {
    return mal::Status::NotFound("object " + oid_);
  }
  auto it = (*staged_)->xattrs.find(key);
  if (it == (*staged_)->xattrs.end()) {
    return mal::Status::NotFound("xattr " + key);
  }
  return it->second;
}

void ClsContext::Materialize() {
  if (!staged_->has_value()) {
    staged_->emplace();
  }
}

void ClsContext::RecordAndApply(osd::Op op) { effects_->push_back(std::move(op)); }

mal::Status ClsContext::Create(bool excl) {
  if (staged_->has_value()) {
    if (excl) {
      return mal::Status::AlreadyExists("object " + oid_);
    }
    return mal::Status::Ok();
  }
  Materialize();
  osd::Op op;
  op.type = osd::Op::Type::kCreate;
  op.excl = false;  // staged check already enforced exclusivity
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::Write(uint64_t offset, const mal::Buffer& data) {
  Materialize();
  (*staged_)->data.Write(offset, data.data(), data.size());
  osd::Op op;
  op.type = osd::Op::Type::kWrite;
  op.offset = offset;
  op.data = data;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::WriteFull(const mal::Buffer& data) {
  Materialize();
  (*staged_)->data = data;
  osd::Op op;
  op.type = osd::Op::Type::kWriteFull;
  op.data = data;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::Append(const mal::Buffer& data) {
  Materialize();
  (*staged_)->data.Append(data);
  osd::Op op;
  op.type = osd::Op::Type::kAppend;
  op.data = data;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::OmapSet(const std::string& key, const std::string& value) {
  Materialize();
  (*staged_)->omap[key] = value;
  osd::Op op;
  op.type = osd::Op::Type::kOmapSet;
  op.key = key;
  op.value = value;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::OmapDel(const std::string& key) {
  if (!staged_->has_value()) {
    return mal::Status::NotFound("object " + oid_);
  }
  (*staged_)->omap.erase(key);
  osd::Op op;
  op.type = osd::Op::Type::kOmapDel;
  op.key = key;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::XattrSet(const std::string& key, const std::string& value) {
  Materialize();
  (*staged_)->xattrs[key] = value;
  osd::Op op;
  op.type = osd::Op::Type::kXattrSet;
  op.key = key;
  op.value = value;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

}  // namespace mal::cls
