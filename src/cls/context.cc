#include "src/cls/context.h"

namespace mal::cls {

mal::Result<mal::Buffer> ClsContext::Read(uint64_t offset, uint64_t length) const {
  if (!staged_->exists()) {
    return mal::Status::NotFound("object " + oid_);
  }
  uint64_t len = length == 0 ? staged_->data().size() : length;
  return staged_->data().Read(offset, len);  // O(1) aliased slice
}

mal::Result<uint64_t> ClsContext::Size() const {
  if (!staged_->exists()) {
    return mal::Status::NotFound("object " + oid_);
  }
  return static_cast<uint64_t>(staged_->data().size());
}

mal::Result<std::string> ClsContext::OmapGet(const std::string& key) const {
  if (!staged_->exists()) {
    return mal::Status::NotFound("object " + oid_);
  }
  const std::string* value = staged_->OmapFind(key);
  if (value == nullptr) {
    return mal::Status::NotFound("omap key " + key);
  }
  return *value;
}

mal::Result<std::map<std::string, std::string>> ClsContext::OmapList(
    const std::string& prefix) const {
  if (!staged_->exists()) {
    return mal::Status::NotFound("object " + oid_);
  }
  return staged_->OmapList(prefix);
}

mal::Result<std::string> ClsContext::XattrGet(const std::string& key) const {
  if (!staged_->exists()) {
    return mal::Status::NotFound("object " + oid_);
  }
  const std::string* value = staged_->XattrFind(key);
  if (value == nullptr) {
    return mal::Status::NotFound("xattr " + key);
  }
  return *value;
}

void ClsContext::RecordAndApply(osd::Op op) { effects_->push_back(std::move(op)); }

mal::Status ClsContext::Create(bool excl) {
  if (staged_->exists()) {
    if (excl) {
      return mal::Status::AlreadyExists("object " + oid_);
    }
    return mal::Status::Ok();
  }
  staged_->Create();
  osd::Op op;
  op.type = osd::Op::Type::kCreate;
  op.excl = false;  // staged check already enforced exclusivity
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::Write(uint64_t offset, const mal::Buffer& data) {
  staged_->Create();
  staged_->MutableData()->Write(offset, data.data(), data.size());
  osd::Op op;
  op.type = osd::Op::Type::kWrite;
  op.offset = offset;
  op.data = data;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::WriteFull(const mal::Buffer& data) {
  staged_->Create();
  *staged_->MutableData() = data;
  osd::Op op;
  op.type = osd::Op::Type::kWriteFull;
  op.data = data;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::Append(const mal::Buffer& data) {
  staged_->Create();
  staged_->MutableData()->Append(data);
  osd::Op op;
  op.type = osd::Op::Type::kAppend;
  op.data = data;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::OmapSet(const std::string& key, const std::string& value) {
  staged_->Create();
  staged_->OmapSet(key, value);
  osd::Op op;
  op.type = osd::Op::Type::kOmapSet;
  op.key = key;
  op.value = value;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::OmapDel(const std::string& key) {
  if (!staged_->exists()) {
    return mal::Status::NotFound("object " + oid_);
  }
  staged_->OmapDel(key);
  osd::Op op;
  op.type = osd::Op::Type::kOmapDel;
  op.key = key;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

mal::Status ClsContext::XattrSet(const std::string& key, const std::string& value) {
  staged_->Create();
  staged_->XattrSet(key, value);
  osd::Op op;
  op.type = osd::Op::Type::kXattrSet;
  op.key = key;
  op.value = value;
  RecordAndApply(std::move(op));
  return mal::Status::Ok();
}

}  // namespace mal::cls
