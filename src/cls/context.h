// Execution context handed to object-class methods (paper §4.2).
//
// A method runs "within the context of an object": reads observe the
// staged transaction state, and every mutation is both applied to the
// staged object and recorded as a primitive Op. The recorded ops replace
// the kExec op in the transaction that the primary OSD ships to replicas,
// so replicas never run class code — they apply its effects
// deterministically (like Ceph replicating the resulting transaction).
#ifndef MALACOLOGY_CLS_CONTEXT_H_
#define MALACOLOGY_CLS_CONTEXT_H_

#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/osd/object_store.h"

namespace mal::cls {

class ClsContext {
 public:
  // `staged` is the transaction's delta view of the object (see
  // osd::TxnObject — the committed object is never touched until commit);
  // `effects` accumulates replicated primitive ops.
  ClsContext(std::string oid, osd::TxnObject* staged, std::vector<osd::Op>* effects)
      : oid_(std::move(oid)), staged_(staged), effects_(effects) {}

  const std::string& oid() const { return oid_; }
  bool Exists() const { return staged_->exists(); }

  // -- reads (staged view) ---------------------------------------------------
  mal::Result<mal::Buffer> Read(uint64_t offset, uint64_t length) const;
  mal::Result<uint64_t> Size() const;
  mal::Result<std::string> OmapGet(const std::string& key) const;
  mal::Result<std::map<std::string, std::string>> OmapList(const std::string& prefix) const;
  mal::Result<std::string> XattrGet(const std::string& key) const;

  // -- writes (staged + recorded) ---------------------------------------------
  mal::Status Create(bool excl);
  mal::Status Write(uint64_t offset, const mal::Buffer& data);
  mal::Status WriteFull(const mal::Buffer& data);
  mal::Status Append(const mal::Buffer& data);
  mal::Status OmapSet(const std::string& key, const std::string& value);
  mal::Status OmapDel(const std::string& key);
  mal::Status XattrSet(const std::string& key, const std::string& value);

 private:
  void RecordAndApply(osd::Op op);

  std::string oid_;
  osd::TxnObject* staged_;
  std::vector<osd::Op>* effects_;
};

}  // namespace mal::cls

#endif  // MALACOLOGY_CLS_CONTEXT_H_
