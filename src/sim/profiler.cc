#include "src/sim/profiler.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace mal::sim {

namespace {
Profiler* g_profiler = nullptr;
}  // namespace

Profiler* Profiler::Current() { return g_profiler; }
void Profiler::Set(Profiler* profiler) { g_profiler = profiler; }

void Profiler::OnMessage(const std::string& entity, const std::string& label) {
  table_[entity][label].count += 1;
}

void Profiler::RecordCpu(const std::string& entity, uint64_t cost_ns) {
  table_[entity][current_label_].cpu_ns += cost_ns;
}

void Profiler::RecordDispatch(const std::string& entity, uint64_t cost_ns) {
  table_[entity][current_label_].dispatch_ns += cost_ns;
}

Profiler::Row Profiler::Totals(const std::string& entity) const {
  Row total;
  auto it = table_.find(entity);
  if (it == table_.end()) {
    return total;
  }
  for (const auto& [label, row] : it->second) {
    total.count += row.count;
    total.cpu_ns += row.cpu_ns;
    total.dispatch_ns += row.dispatch_ns;
  }
  return total;
}

void Profiler::Clear() { table_.clear(); }

std::string Profiler::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first_entity = true;
  for (const auto& [entity, rows] : table_) {
    out << (first_entity ? "" : ",") << "\n    \"" << entity << "\": {";
    first_entity = false;
    bool first_row = true;
    for (const auto& [label, row] : rows) {
      out << (first_row ? "" : ",") << "\n      \"" << label
          << "\": {\"count\": " << row.count << ", \"cpu_us\": " << row.cpu_ns / 1000
          << ", \"dispatch_us\": " << row.dispatch_ns / 1000 << "}";
      first_row = false;
    }
    out << "\n    }";
  }
  out << "\n  }";
  return out.str();
}

std::string Profiler::RenderTable() const {
  // Order entities by total busy time so the hot spot leads.
  std::vector<std::pair<std::string, Row>> entities;
  for (const auto& [entity, rows] : table_) {
    entities.emplace_back(entity, Totals(entity));
  }
  std::sort(entities.begin(), entities.end(), [](const auto& a, const auto& b) {
    uint64_t ba = a.second.cpu_ns + a.second.dispatch_ns;
    uint64_t bb = b.second.cpu_ns + b.second.dispatch_ns;
    if (ba != bb) {
      return ba > bb;
    }
    return a.first < b.first;
  });
  std::ostringstream out;
  out << std::left << std::setw(12) << "entity" << std::setw(28) << "message"
      << std::right << std::setw(10) << "count" << std::setw(12) << "cpu_ms"
      << std::setw(12) << "disp_ms" << "\n";
  for (const auto& [entity, total] : entities) {
    for (const auto& [label, row] : table_.at(entity)) {
      out << std::left << std::setw(12) << entity << std::setw(28) << label
          << std::right << std::setw(10) << row.count << std::setw(12)
          << std::fixed << std::setprecision(2)
          << static_cast<double>(row.cpu_ns) / 1e6 << std::setw(12)
          << static_cast<double>(row.dispatch_ns) / 1e6 << "\n";
    }
    out << std::left << std::setw(12) << entity << std::setw(28) << "TOTAL"
        << std::right << std::setw(10) << total.count << std::setw(12) << std::fixed
        << std::setprecision(2) << static_cast<double>(total.cpu_ns) / 1e6
        << std::setw(12) << static_cast<double>(total.dispatch_ns) / 1e6 << "\n";
  }
  return out.str();
}

}  // namespace mal::sim
