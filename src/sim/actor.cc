#include "src/sim/actor.h"

#include <algorithm>

#include "src/common/deadline.h"
#include "src/common/log.h"
#include "src/common/perf.h"
#include "src/common/trace.h"
#include "src/sim/profiler.h"

namespace mal::sim {
namespace {

// Packs an EntityName into the DedupWindow's integer key space.
uint64_t NameKey(EntityName name) {
  return (static_cast<uint64_t>(name.type) << 32) | name.id;
}

}  // namespace

void DedupWindow::Reset() {
  table_.assign(kTableSize, Entry{0, 0, kEmpty});
  ring_.assign(kWindow, {0, 0});
  ring_pos_ = 0;
  count_ = 0;
  tombstones_ = 0;
}

bool DedupWindow::Insert(uint64_t a, uint64_t b) {
  size_t i = Hash(a, b);
  size_t insert_at = kTableSize;  // first tombstone seen, if any
  while (true) {
    Entry& e = table_[i];
    if (e.state == kEmpty) {
      break;
    }
    if (e.state == kUsed && e.a == a && e.b == b) {
      return false;  // replay
    }
    if (e.state == kTombstone && insert_at == kTableSize) {
      insert_at = i;
    }
    i = (i + 1) & kTableMask;
  }
  if (count_ == kWindow) {
    // Window full: evict the oldest key before recording the new one.
    auto [old_a, old_b] = ring_[ring_pos_];
    Erase(old_a, old_b);
  }
  if (insert_at == kTableSize) {
    insert_at = i;
  } else {
    --tombstones_;
  }
  table_[insert_at] = Entry{a, b, kUsed};
  ++count_;
  ring_[ring_pos_] = {a, b};
  ring_pos_ = (ring_pos_ + 1) % kWindow;
  if (tombstones_ > kTableSize / 4) {
    Rebuild();
  }
  return true;
}

void DedupWindow::Erase(uint64_t a, uint64_t b) {
  size_t i = Hash(a, b);
  while (true) {
    Entry& e = table_[i];
    if (e.state == kEmpty) {
      return;  // not present (cannot happen for ring-tracked keys)
    }
    if (e.state == kUsed && e.a == a && e.b == b) {
      e.state = kTombstone;
      --count_;
      ++tombstones_;
      return;
    }
    i = (i + 1) & kTableMask;
  }
}

void DedupWindow::Rebuild() {
  std::vector<Entry> old = std::move(table_);
  table_.assign(kTableSize, Entry{0, 0, kEmpty});
  tombstones_ = 0;
  for (const Entry& e : old) {
    if (e.state != kUsed) {
      continue;
    }
    size_t i = Hash(e.a, e.b);
    while (table_[i].state != kEmpty) {
      i = (i + 1) & kTableMask;
    }
    table_[i] = Entry{e.a, e.b, kUsed};
  }
}

Actor::Actor(Simulator* simulator, Network* network, EntityName name)
    : simulator_(simulator), network_(network), name_(name),
      name_str_(name.ToString()) {
  network_->Attach(name_, this);
}

Actor::~Actor() { network_->Detach(name_); }

void Actor::SendRequest(EntityName to, uint32_t type, mal::Buffer payload,
                        ReplyHandler on_reply, Time timeout) {
  const uint64_t deadline = mal::CurrentDeadline();
  if (deadline != 0 && Now() >= deadline) {
    // Budget already exhausted: fail locally without a network send. Deferred
    // one event so `on_reply` never runs re-entrantly inside the caller.
    uint64_t incarnation = incarnation_;
    simulator_->Schedule(0, [this, incarnation, on_reply = std::move(on_reply)]() {
      if (incarnation_ != incarnation) {
        return;
      }
      mal::ScopedLogContextRef log_scope(Now(), &name_str_);
      on_reply(mal::Status::DeadlineExceeded("budget exhausted before send"), Envelope{});
    });
    return;
  }
  // Per-hop timeout derives from the remaining end-to-end budget: a hop that
  // would outlive the deadline is clamped, and its expiry reports
  // kDeadlineExceeded (the budget ran out) rather than kTimedOut (the peer
  // did not answer within its allotted slice).
  bool clamped = false;
  if (deadline != 0 && deadline - Now() < timeout) {
    timeout = deadline - Now();
    clamped = true;
  }
  uint64_t rpc_id = next_rpc_id_++;
  EventId timeout_event = simulator_->Schedule(timeout, [this, rpc_id, clamped]() {
    auto it = pending_rpcs_.find(rpc_id);
    if (it == pending_rpcs_.end()) {
      return;
    }
    PendingRpc rpc = std::move(it->second);
    pending_rpcs_.erase(it);
    FinishRpc(std::move(rpc),
              clamped ? mal::Status::DeadlineExceeded() : mal::Status::TimedOut(),
              Envelope{});
  });

  PendingRpc rpc{std::move(on_reply), timeout_event, {}, trace::Current(), deadline};
  if (trace::Collector() != nullptr && rpc.caller.valid()) {
    rpc.span = trace::Collector()->StartSpan(
        "rpc:" + to.ToString() + ":" + trace::MessageTypeName(type),
        name_.ToString(), Now(), rpc.caller);
  }

  Envelope envelope;
  envelope.from = name_;
  envelope.to = to;
  envelope.type = type;
  envelope.rpc_id = rpc_id;
  envelope.payload = std::move(payload);
  envelope.trace = rpc.span.valid() ? rpc.span : rpc.caller;
  envelope.deadline_ns = deadline;
  pending_rpcs_[rpc_id] = std::move(rpc);
  network_->Send(std::move(envelope));
}

void Actor::FinishRpc(PendingRpc rpc, const mal::Status& status, const Envelope& reply) {
  if (rpc.span.valid() && trace::Collector() != nullptr) {
    trace::Collector()->EndSpan(rpc.span, Now(),
                                status.ok() ? "ok" : status.message().empty()
                                                         ? "error"
                                                         : status.message());
  }
  trace::ScopedContext scope(rpc.caller);
  mal::ScopedDeadline budget(rpc.caller_deadline);
  rpc.handler(status, reply);
}

void Actor::SendOneWay(EntityName to, uint32_t type, mal::Buffer payload) {
  Envelope envelope;
  envelope.from = name_;
  envelope.to = to;
  envelope.type = type;
  envelope.payload = std::move(payload);
  envelope.trace = trace::Current();
  envelope.deadline_ns = mal::CurrentDeadline();
  network_->Send(std::move(envelope));
}

void Actor::ReleaseAdmission(const Envelope& request) {
  if (admitted_.erase({request.from, request.rpc_id}) != 0 && svc_perf_ != nullptr) {
    svc_perf_->Set("svc.queue_depth", static_cast<double>(admitted_.size()));
  }
}

void Actor::Reply(const Envelope& request, mal::Buffer payload) {
  ReleaseAdmission(request);
  auto span_it = server_spans_.find({request.from, request.rpc_id});
  if (span_it != server_spans_.end()) {
    if (trace::Collector() != nullptr) {
      trace::Collector()->EndSpan(span_it->second, Now());
    }
    server_spans_.erase(span_it);
  }
  Envelope envelope;
  envelope.from = name_;
  envelope.to = request.from;
  envelope.type = request.type;
  envelope.rpc_id = request.rpc_id;
  envelope.is_reply = true;
  envelope.payload = std::move(payload);
  network_->Send(std::move(envelope));
}

void Actor::ReplyError(const Envelope& request, const mal::Status& status) {
  ReleaseAdmission(request);
  auto span_it = server_spans_.find({request.from, request.rpc_id});
  if (span_it != server_spans_.end()) {
    if (trace::Collector() != nullptr) {
      trace::Collector()->EndSpan(span_it->second, Now(), status.message());
    }
    server_spans_.erase(span_it);
  }
  Envelope envelope;
  envelope.from = name_;
  envelope.to = request.from;
  envelope.type = request.type;
  envelope.rpc_id = request.rpc_id;
  envelope.is_reply = true;
  envelope.error_code = static_cast<uint32_t>(status.code());
  envelope.payload = mal::Buffer::FromString(status.message());
  network_->Send(std::move(envelope));
}

Time Actor::ReserveCpu(Time cost) {
  if (Profiler* profiler = Profiler::Current()) {
    profiler->RecordCpu(name_str_, cost);
  }
  Time start = std::max(Now(), cpu_busy_until_);
  cpu_busy_until_ = start + cost;
  // Appends are keyed by interval end, which never decreases; a zero-cost
  // reservation lands on the same end as its predecessor and replaces it
  // (matching the map-overwrite semantics this deque replaced).
  if (!busy_log_.empty() && busy_log_.back().first == cpu_busy_until_) {
    busy_log_.back().second = cost;
  } else {
    busy_log_.emplace_back(cpu_busy_until_, cost);
  }
  // Trim old intervals to bound memory (keep last ~120 virtual seconds).
  while (!busy_log_.empty() && busy_log_.front().first + 120 * kSecond < Now()) {
    busy_log_.pop_front();
  }
  return cpu_busy_until_ - Now();
}

void Actor::AfterCpu(Time cost, std::function<void()> fn) {
  Time delay = ReserveCpu(cost);
  uint64_t incarnation = incarnation_;
  simulator_->Schedule(delay, [this, incarnation, fn = std::move(fn)]() {
    if (alive_ && incarnation_ == incarnation) {
      mal::ScopedLogContextRef log_scope(Now(), &name_str_);
      fn();
    }
  });
}

Time Actor::ReserveDispatch(Time cost) {
  if (Profiler* profiler = Profiler::Current()) {
    profiler->RecordDispatch(name_str_, cost);
  }
  Time start = std::max(Now(), dispatch_busy_until_);
  dispatch_busy_until_ = start + cost;
  return dispatch_busy_until_ - Now();
}

void Actor::AfterDispatch(Time cost, std::function<void()> fn) {
  Time delay = ReserveDispatch(cost);
  uint64_t incarnation = incarnation_;
  simulator_->Schedule(delay, [this, incarnation, fn = std::move(fn)]() {
    if (alive_ && incarnation_ == incarnation) {
      mal::ScopedLogContextRef log_scope(Now(), &name_str_);
      fn();
    }
  });
}

double Actor::CpuUtilization(Time window) const {
  if (window == 0) {
    return 0;
  }
  Time from = Now() > window ? Now() - window : 0;
  Time busy = 0;
  for (const auto& [end, cost] : busy_log_) {
    Time start = end - cost;
    Time lo = std::max(start, from);
    Time hi = std::min(end, Now());
    if (hi > lo) {
      busy += hi - lo;
    }
  }
  return std::min(1.0, static_cast<double>(busy) / static_cast<double>(Now() - from));
}

void Actor::StartPeriodic(Time period, std::function<void()> fn) {
  uint64_t incarnation = incarnation_;
  // Periodic maintenance is not causally part of whatever request happens to
  // be executing when the timer is armed; schedule it untraced and with no
  // inherited deadline.
  trace::ScopedContext untraced(trace::TraceContext{});
  mal::ScopedDeadline no_budget(0);
  simulator_->Schedule(period, [this, period, incarnation, fn = std::move(fn)]() {
    if (!alive_ || incarnation_ != incarnation) {
      return;
    }
    mal::ScopedLogContextRef log_scope(Now(), &name_str_);
    fn();
    StartPeriodic(period, fn);
  });
}

EventId Actor::ScheduleGuarded(Time delay, std::function<void()> fn) {
  uint64_t incarnation = incarnation_;
  return simulator_->Schedule(delay, [this, incarnation, fn = std::move(fn)]() {
    if (!alive_ || incarnation_ != incarnation) {
      return;
    }
    mal::ScopedLogContextRef log_scope(Now(), &name_str_);
    fn();
  });
}

void Actor::Crash() {
  alive_ = false;
  ++incarnation_;
  network_->SetCrashed(name_, true);
  // Fail local in-flight RPCs: their replies will never arrive.
  auto pending = std::move(pending_rpcs_);
  pending_rpcs_.clear();
  for (auto& [id, rpc] : pending) {
    simulator_->Cancel(rpc.timeout_event);
    FinishRpc(std::move(rpc), mal::Status::Unavailable("local daemon crashed"), Envelope{});
  }
  server_spans_.clear();
  admitted_.clear();
  cpu_busy_until_ = 0;
  dispatch_busy_until_ = 0;
  busy_log_.clear();
}

void Actor::Recover() {
  alive_ = true;
  ++incarnation_;
  network_->SetCrashed(name_, false);
}

void Actor::Deliver(Envelope envelope) {
  if (!alive_) {
    return;
  }
  mal::ScopedLogContextRef log_scope(Now(), &name_str_);
  // Profiler attribution: every CPU/dispatch reservation made while this
  // delivery executes lands in the delivered message's row (replies get
  // their own ".reply" row — a client's completion work is not the server's
  // handling work).
  Profiler* profiler = Profiler::Current();
  ScopedProfileLabel profile_label(
      profiler, name_str_,
      profiler == nullptr ? std::string()
                          : trace::MessageTypeName(envelope.type) +
                                (envelope.is_reply ? ".reply" : ""));
  if (envelope.is_reply) {
    auto it = pending_rpcs_.find(envelope.rpc_id);
    if (it == pending_rpcs_.end()) {
      return;  // reply raced with its timeout; drop
    }
    PendingRpc rpc = std::move(it->second);
    simulator_->Cancel(rpc.timeout_event);
    pending_rpcs_.erase(it);
    mal::Status status = envelope.error_code == 0
                             ? mal::Status::Ok()
                             : mal::Status(static_cast<mal::Code>(envelope.error_code),
                                           envelope.payload.ToString());
    FinishRpc(std::move(rpc), status, envelope);
    return;
  }
  // Duplicate suppression: rpc_ids are never reused by a sender, so a
  // repeat (requester, rpc_id) is a network-level replay. Re-executing it
  // would double-apply non-idempotent handlers — and for write-once storage
  // the replay's kReadOnly error reply could overtake the original's ok
  // reply, tricking the caller into a spurious fresh-position retry (a
  // double commit). The window is bounded FIFO; in a duplicate-free run
  // every insert succeeds and behavior is byte-identical.
  if (envelope.rpc_id != 0 &&
      !seen_requests_.Insert(NameKey(envelope.from), envelope.rpc_id)) {
    ++duplicates_dropped_;
    MAL_DEBUG(name_str_)
        << "dropping replayed " << trace::MessageTypeName(envelope.type) << " from "
        << envelope.from.ToString() << " rpc_id " << envelope.rpc_id;
    return;
  }
  // Service-layer gates run before any CPU is reserved or span opened.
  //
  // (1) Expired work is dropped: executing it would waste server CPU on a
  // result the caller has already given up on.
  if (envelope.deadline_ns != 0 && Now() >= envelope.deadline_ns) {
    ++deadline_drops_;
    if (svc_perf_ != nullptr) {
      svc_perf_->Inc("svc.deadline_drops");
    }
    MAL_DEBUG(name_.ToString())
        << "dropping expired " << trace::MessageTypeName(envelope.type) << " from "
        << envelope.from.ToString() << " (deadline " << envelope.deadline_ns << " <= now "
        << Now() << ")";
    if (envelope.rpc_id != 0) {
      ReplyError(envelope, mal::Status::DeadlineExceeded("expired before service"));
    }
    return;
  }
  // (2) Admission control: a full bounded inbox sheds the request with kBusy
  // instead of queueing it behind work it cannot overtake.
  if (envelope.rpc_id != 0 && inbox_limit_ > 0) {
    if (admitted_.size() >= inbox_limit_) {
      ++shed_total_;
      if (svc_perf_ != nullptr) {
        svc_perf_->Inc("svc.shed_total");
      }
      MAL_DEBUG(name_.ToString())
          << "shedding " << trace::MessageTypeName(envelope.type) << " from "
          << envelope.from.ToString() << " (inbox " << admitted_.size() << "/"
          << inbox_limit_ << ")";
      ReplyError(envelope, mal::Status::Busy());
      return;
    }
    admitted_.insert({envelope.from, envelope.rpc_id});
    if (svc_perf_ != nullptr) {
      svc_perf_->Set("svc.queue_depth", static_cast<double>(admitted_.size()));
    }
  }
  // Server side: open a handling span parented on the carried context. For
  // rpc requests it closes when the matching Reply/ReplyError goes out; for
  // one-way messages it covers the synchronous part of the handler.
  trace::TraceContext server_ctx = envelope.trace;
  if (trace::Collector() != nullptr && envelope.trace.valid()) {
    server_ctx = trace::Collector()->StartSpan(
        "handle:" + trace::MessageTypeName(envelope.type),
        name_.ToString(), Now(), envelope.trace);
    if (envelope.rpc_id != 0) {
      server_spans_[{envelope.from, envelope.rpc_id}] = server_ctx;
    }
  }
  if (server_ctx.valid() || envelope.deadline_ns != 0 || trace::Current().valid() ||
      mal::CurrentDeadline() != 0) {
    trace::ScopedContext scope(server_ctx);
    // The carried deadline becomes ambient for the handler, so downstream
    // hops (replication fan-out, proxy forwards) inherit the shrinking budget.
    mal::ScopedDeadline budget(envelope.deadline_ns);
    HandleRequest(envelope);
  } else {
    // Untraced, unbudgeted request arriving in an untraced, unbudgeted
    // context: the scopes above would save and restore two ambient slots
    // that are all empty. Skipping them is observationally identical and
    // saves four TLS-style swaps on the hot delivery path.
    HandleRequest(envelope);
  }
  if (envelope.rpc_id == 0 && server_ctx.valid() &&
      server_ctx.span_id != envelope.trace.span_id && trace::Collector() != nullptr) {
    trace::Collector()->EndSpan(server_ctx, Now());
  }
}

}  // namespace mal::sim
