// Entity naming, message envelopes, and the latency-modeled network.
//
// Every daemon and client is addressed by an EntityName (type + id), like
// Ceph's entity_name_t. Messages are serialized payloads in an Envelope;
// the network charges base latency + per-byte cost + log-normal jitter and
// supports crash and partition injection for failure testing.
#ifndef MALACOLOGY_SIM_NETWORK_H_
#define MALACOLOGY_SIM_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/rng.h"
#include "src/common/trace.h"
#include "src/sim/simulator.h"

namespace mal::sim {

enum class EntityType : uint8_t { kMon = 0, kOsd = 1, kMds = 2, kClient = 3, kScrub = 4 };

struct EntityName {
  EntityType type = EntityType::kClient;
  uint32_t id = 0;

  static EntityName Mon(uint32_t id) { return {EntityType::kMon, id}; }
  static EntityName Osd(uint32_t id) { return {EntityType::kOsd, id}; }
  static EntityName Mds(uint32_t id) { return {EntityType::kMds, id}; }
  static EntityName Client(uint32_t id) { return {EntityType::kClient, id}; }
  static EntityName Scrub(uint32_t id) { return {EntityType::kScrub, id}; }

  bool operator<(const EntityName& o) const {
    return std::tie(type, id) < std::tie(o.type, o.id);
  }
  bool operator==(const EntityName& o) const { return type == o.type && id == o.id; }
  bool operator!=(const EntityName& o) const { return !(*this == o); }

  std::string ToString() const;
  void Encode(mal::Encoder* enc) const;
  static EntityName Decode(mal::Decoder* dec);
};

// A message on the wire. `type` is module-defined (see src/*/messages.h);
// rpc_id/is_reply implement request-response on top of one-way delivery.
struct Envelope {
  EntityName from;
  EntityName to;
  uint32_t type = 0;
  uint64_t rpc_id = 0;
  bool is_reply = false;
  uint32_t error_code = 0;  // mal::Code for replies
  mal::Buffer payload;
  // Trace context propagated with the message (Dapper's in-band baggage).
  // Deliberately excluded from WireSize: tracing must not perturb the
  // latency model or the jitter RNG stream of an untraced run.
  trace::TraceContext trace;
  // Absolute sim-ns deadline for the request (0 = none). Like `trace`,
  // excluded from WireSize so deadline propagation is latency- and
  // RNG-neutral for runs that never set a deadline.
  uint64_t deadline_ns = 0;

  size_t WireSize() const { return payload.size() + 32; }  // 32-byte header
};

// Receives envelopes from the network. Implemented by Actor.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void Deliver(Envelope envelope) = 0;
};

struct NetworkConfig {
  Time base_latency = 100 * kMicrosecond;  // LAN round-trip/2 w/ kernel stack
  double per_byte_ns = 1.0;                // ~1 GB/s
  double jitter_sigma = 0.1;               // log-normal sigma on base latency
  Time local_latency = 5 * kMicrosecond;   // loopback (same node id & type)
  uint64_t seed = 0x6d616c61;              // "mala"
  // Seed for the fault-injection RNG. Deliberately a SEPARATE stream from
  // the latency jitter RNG: with all fault probabilities at zero no fault
  // draws happen at all, so a chaos-free run is byte-identical whether or
  // not the knobs exist; and enabling faults never perturbs the latency
  // stream of messages that pass through unharmed.
  uint64_t fault_seed = 0x63686173;  // "chas"
};

// Probabilistic per-link fault knobs (all default off). Applied to
// non-loopback sends only; each injected fault is counted per reason
// (net.chaos_* rows) and logged at debug level.
struct FaultSpec {
  double loss_prob = 0.0;     // silently drop the message
  double dup_prob = 0.0;      // deliver an extra copy (independent latency)
  double reorder_prob = 0.0;  // add extra delay so later sends overtake it
  // Extra-delay ceiling for a reordered message (uniform in (0, ceiling]).
  Time reorder_delay = 2 * kMillisecond;

  bool enabled() const {
    return loss_prob > 0.0 || dup_prob > 0.0 || reorder_prob > 0.0;
  }
};

class Network {
 public:
  Network(Simulator* simulator, NetworkConfig config = {});

  // Registration: an entity must be attached before it can receive.
  void Attach(EntityName name, MessageSink* sink);
  void Detach(EntityName name);

  // Sends an envelope; delivery is scheduled on the simulator. Messages to
  // crashed/partitioned/unattached entities are dropped (like UDP; RPC
  // timeouts provide the failure signal, as in a real cluster) — each drop
  // is counted per reason and logged at debug level so partitions are
  // debuggable.
  void Send(Envelope envelope);

  // Failure injection.
  void SetCrashed(EntityName name, bool crashed);
  bool IsCrashed(EntityName name) const { return crashed_.count(name) != 0; }
  void SetPartitioned(EntityName a, EntityName b, bool partitioned);

  // Chaos knobs: probabilistic loss/duplication/reordering, drawn from the
  // dedicated fault RNG (NetworkConfig::fault_seed). The default spec
  // applies to every non-loopback link; a per-link spec (unordered pair)
  // overrides it. ClearFaults() heals everything.
  void SetDefaultFaults(FaultSpec spec) { default_faults_ = spec; }
  void SetLinkFaults(EntityName a, EntityName b, FaultSpec spec);
  void ClearLinkFaults(EntityName a, EntityName b);
  void ClearFaults();
  const FaultSpec& default_faults() const { return default_faults_; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

  // Drop counters by reason ("net.dropped_*" in dumps): endpoint crashed at
  // send time, link partitioned, destination crashed while the message was
  // in flight, destination never attached / already detached.
  uint64_t dropped_crashed() const { return dropped_crashed_; }
  uint64_t dropped_partitioned() const { return dropped_partitioned_; }
  uint64_t dropped_crashed_inflight() const { return dropped_crashed_inflight_; }
  uint64_t dropped_unattached() const { return dropped_unattached_; }
  // Chaos counters ("net.chaos_*" in dumps): injected losses, extra copies
  // delivered, messages delayed past their natural delivery time.
  uint64_t chaos_lost() const { return chaos_lost_; }
  uint64_t chaos_duplicated() const { return chaos_duplicated_; }
  uint64_t chaos_reordered() const { return chaos_reordered_; }
  uint64_t dropped_total() const {
    return dropped_crashed_ + dropped_partitioned_ + dropped_crashed_inflight_ +
           dropped_unattached_ + chaos_lost_;
  }

  Simulator* simulator() { return simulator_; }

 private:
  Time ComputeLatency(const Envelope& envelope);
  // The fault spec governing from->to, or nullptr when no fault applies
  // (loopback, or all knobs off). Returning nullptr on the default path
  // guarantees zero fault-RNG draws when chaos is disabled.
  const FaultSpec* FaultsFor(const Envelope& envelope) const;
  // Parks the envelope in the in-flight pool and schedules a delivery event
  // whose capture is just (this, slot) — small enough for the simulator's
  // inline callback storage, so a message send allocates nothing.
  void ScheduleDelivery(Envelope envelope, Time latency);
  void DeliverPooled(uint32_t slot);

  Simulator* simulator_;
  NetworkConfig config_;
  mal::Rng rng_;
  mal::Rng fault_rng_;
  std::map<EntityName, MessageSink*> sinks_;
  std::set<EntityName> crashed_;
  std::set<std::pair<EntityName, EntityName>> partitions_;
  FaultSpec default_faults_;
  std::map<std::pair<EntityName, EntityName>, FaultSpec> link_faults_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t dropped_crashed_ = 0;
  uint64_t dropped_partitioned_ = 0;
  uint64_t dropped_crashed_inflight_ = 0;
  uint64_t dropped_unattached_ = 0;
  uint64_t chaos_lost_ = 0;
  uint64_t chaos_duplicated_ = 0;
  uint64_t chaos_reordered_ = 0;
  // In-flight envelope pool: slots recycle through a free list, so steady-
  // state traffic reuses the same headers instead of allocating per message.
  std::deque<Envelope> inflight_;
  std::vector<uint32_t> inflight_free_;
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_NETWORK_H_
