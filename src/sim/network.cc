#include "src/sim/network.h"

#include <algorithm>

#include "src/common/log.h"

namespace mal::sim {
namespace {

void LogDrop(const Envelope& envelope, const char* reason) {
  MAL_DEBUG("net") << "drop [" << reason << "] " << envelope.from.ToString() << " -> "
                   << envelope.to.ToString() << " "
                   << trace::MessageTypeName(envelope.type)
                   << (envelope.is_reply ? " (reply)" : "") << " " << envelope.WireSize()
                   << "B";
}

}  // namespace

std::string EntityName::ToString() const {
  const char* prefix = "?";
  switch (type) {
    case EntityType::kMon:
      prefix = "mon";
      break;
    case EntityType::kOsd:
      prefix = "osd";
      break;
    case EntityType::kMds:
      prefix = "mds";
      break;
    case EntityType::kClient:
      prefix = "client";
      break;
    case EntityType::kScrub:
      prefix = "scrub";
      break;
  }
  return std::string(prefix) + "." + std::to_string(id);
}

void EntityName::Encode(mal::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type));
  enc->PutU32(id);
}

EntityName EntityName::Decode(mal::Decoder* dec) {
  EntityName name;
  name.type = static_cast<EntityType>(dec->GetU8());
  name.id = dec->GetU32();
  return name;
}

Network::Network(Simulator* simulator, NetworkConfig config)
    : simulator_(simulator),
      config_(config),
      rng_(config.seed),
      fault_rng_(config.fault_seed) {}

void Network::Attach(EntityName name, MessageSink* sink) { sinks_[name] = sink; }

void Network::Detach(EntityName name) { sinks_.erase(name); }

Time Network::ComputeLatency(const Envelope& envelope) {
  Time base =
      envelope.from == envelope.to ? config_.local_latency : config_.base_latency;
  double jittered = rng_.LogNormal(static_cast<double>(base), config_.jitter_sigma);
  double bytes_cost = config_.per_byte_ns * static_cast<double>(envelope.WireSize());
  return static_cast<Time>(std::max(1.0, jittered + bytes_cost));
}

void Network::Send(Envelope envelope) {
  ++messages_sent_;
  bytes_sent_ += envelope.WireSize();
  if (crashed_.count(envelope.from) != 0 || crashed_.count(envelope.to) != 0) {
    ++dropped_crashed_;
    LogDrop(envelope, "crashed");
    return;
  }
  auto key = std::minmax(envelope.from, envelope.to);
  if (partitions_.count({key.first, key.second}) != 0) {
    ++dropped_partitioned_;
    LogDrop(envelope, "partitioned");
    return;
  }
  Time latency = ComputeLatency(envelope);

  // Chaos knobs. Every draw here comes from fault_rng_ (never rng_), so the
  // latency-jitter stream of surviving messages is untouched and a run with
  // all knobs off performs no draws at all.
  if (const FaultSpec* faults = FaultsFor(envelope)) {
    if (faults->loss_prob > 0.0 && fault_rng_.Bernoulli(faults->loss_prob)) {
      ++chaos_lost_;
      LogDrop(envelope, "chaos_loss");
      return;
    }
    if (faults->reorder_prob > 0.0 && fault_rng_.Bernoulli(faults->reorder_prob)) {
      // Extra delay lets messages sent after this one overtake it.
      Time extra = 1 + fault_rng_.NextBelow(
                           std::max<Time>(1, faults->reorder_delay));
      latency += extra;
      ++chaos_reordered_;
      MAL_DEBUG("net") << "chaos reorder +" << extra << "ns "
                       << envelope.from.ToString() << " -> "
                       << envelope.to.ToString() << " "
                       << trace::MessageTypeName(envelope.type);
    }
    if (faults->dup_prob > 0.0 && fault_rng_.Bernoulli(faults->dup_prob)) {
      // The duplicate gets its own latency (same model, fault stream) so it
      // may arrive before or after the original.
      double jittered = fault_rng_.LogNormal(
          static_cast<double>(config_.base_latency), config_.jitter_sigma);
      double bytes_cost =
          config_.per_byte_ns * static_cast<double>(envelope.WireSize());
      Time dup_latency = static_cast<Time>(std::max(1.0, jittered + bytes_cost));
      ++chaos_duplicated_;
      MAL_DEBUG("net") << "chaos dup " << envelope.from.ToString() << " -> "
                       << envelope.to.ToString() << " "
                       << trace::MessageTypeName(envelope.type);
      ScheduleDelivery(envelope, dup_latency);
    }
  }

  ScheduleDelivery(std::move(envelope), latency);
}

const FaultSpec* Network::FaultsFor(const Envelope& envelope) const {
  if (envelope.from == envelope.to) return nullptr;  // loopback is reliable
  if (!link_faults_.empty()) {
    auto key = std::minmax(envelope.from, envelope.to);
    auto it = link_faults_.find({key.first, key.second});
    if (it != link_faults_.end()) return it->second.enabled() ? &it->second : nullptr;
  }
  return default_faults_.enabled() ? &default_faults_ : nullptr;
}

void Network::ScheduleDelivery(Envelope envelope, Time latency) {
  uint32_t slot;
  if (!inflight_free_.empty()) {
    slot = inflight_free_.back();
    inflight_free_.pop_back();
    inflight_[slot] = std::move(envelope);
  } else {
    slot = static_cast<uint32_t>(inflight_.size());
    inflight_.push_back(std::move(envelope));
  }
  simulator_->Schedule(latency, [this, slot] { DeliverPooled(slot); });
}

void Network::DeliverPooled(uint32_t slot) {
  Envelope envelope = std::move(inflight_[slot]);
  inflight_free_.push_back(slot);
  // Re-check failure state at delivery time: a crash that happened while
  // the message was in flight still loses it.
  if (crashed_.count(envelope.to) != 0) {
    ++dropped_crashed_inflight_;
    LogDrop(envelope, "crashed_inflight");
    return;
  }
  auto it = sinks_.find(envelope.to);
  if (it == sinks_.end()) {
    ++dropped_unattached_;
    LogDrop(envelope, "unattached");
    return;
  }
  ++messages_delivered_;
  it->second->Deliver(std::move(envelope));
}

void Network::SetCrashed(EntityName name, bool crashed) {
  if (crashed) {
    crashed_.insert(name);
  } else {
    crashed_.erase(name);
  }
}

void Network::SetPartitioned(EntityName a, EntityName b, bool partitioned) {
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
}

void Network::SetLinkFaults(EntityName a, EntityName b, FaultSpec spec) {
  auto key = std::minmax(a, b);
  link_faults_[{key.first, key.second}] = spec;
}

void Network::ClearLinkFaults(EntityName a, EntityName b) {
  auto key = std::minmax(a, b);
  link_faults_.erase({key.first, key.second});
}

void Network::ClearFaults() {
  default_faults_ = FaultSpec{};
  link_faults_.clear();
}

}  // namespace mal::sim
