#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

#include "src/common/trace.h"

namespace mal::sim {

EventId Simulator::Schedule(Time delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  // Dapper-style propagation through the event loop: work scheduled while a
  // trace context is ambient runs under that context, so causality follows
  // continuations (CPU completions, message deliveries, retries) without
  // per-call-site plumbing.
  if (trace::Current().valid()) {
    fn = [ctx = trace::Current(), inner = std::move(fn)]() {
      trace::ScopedContext scope(ctx);
      inner();
    };
  }
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id < next_id_) {
    cancelled_[id] = true;
  }
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++events_processed_;
    // Events not scheduled under a trace run untraced; the wrapper installed
    // by ScheduleAt restores the captured context for those that were.
    trace::SetCurrent(trace::TraceContext{});
    ev.fn();
    trace::SetCurrent(trace::TraceContext{});
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace mal::sim
