#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

namespace mal::sim {

EventId Simulator::Schedule(Time delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id < next_id_) {
    cancelled_[id] = true;
  }
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace mal::sim
