#include "src/sim/simulator.h"

#include <bit>

namespace mal::sim {

Simulator::Simulator() {
  for (uint32_t i = 0; i < kLevels * kSlotsPerLevel; ++i) {
    wheel_heads_[i] = kNil;
  }
  std::memset(occupancy_, 0, sizeof(occupancy_));
}

Simulator::~Simulator() {
  // Destroy callbacks still owned by live slots (pending or cancelled-lazy);
  // the EventCallback destructor handles each slot's own storage.
}

uint32_t Simulator::AllocSlot() {
  if (free_head_ != kNil) {
    uint32_t idx = free_head_;
    free_head_ = SlotRef(idx).next;
    return idx;
  }
  if ((allocated_ & kChunkMask) == 0) {
    chunks_.push_back(std::make_unique<EventSlot[]>(kChunkSize));
  }
  return allocated_++;
}

void Simulator::FreeSlot(uint32_t idx) {
  EventSlot& slot = SlotRef(idx);
  slot.state = State::kFree;
  slot.home = kHomeNone;
  ++slot.generation;
  slot.next = free_head_;
  free_head_ = idx;
}

uint32_t& Simulator::HeadRef(uint32_t home) {
  if (home == kHomeOverflow) {
    return overflow_head_;
  }
  return wheel_heads_[home];
}

void Simulator::ListPush(uint32_t home, uint32_t idx) {
  uint32_t& head = HeadRef(home);
  EventSlot& slot = SlotRef(idx);
  slot.home = home;
  slot.prev = kNil;
  slot.next = head;
  if (head != kNil) {
    SlotRef(head).prev = idx;
  }
  head = idx;
  if (home != kHomeOverflow) {
    uint32_t wheel_slot = home & kSlotMask;
    occupancy_[home >> kSlotBits][wheel_slot >> 6] |= 1ull << (wheel_slot & 63);
  }
}

void Simulator::Unlink(uint32_t idx) {
  EventSlot& slot = SlotRef(idx);
  if (slot.prev != kNil) {
    SlotRef(slot.prev).next = slot.next;
  } else {
    HeadRef(slot.home) = slot.next;
  }
  if (slot.next != kNil) {
    SlotRef(slot.next).prev = slot.prev;
  }
  if (slot.home != kHomeOverflow && HeadRef(slot.home) == kNil) {
    uint32_t wheel_slot = slot.home & kSlotMask;
    occupancy_[slot.home >> kSlotBits][wheel_slot >> 6] &= ~(1ull << (wheel_slot & 63));
  }
  slot.home = kHomeNone;
}

void Simulator::NearPush(Time when, uint64_t seq, uint32_t idx) {
  near_.push_back(NearEntry{when, seq, idx});
  size_t child = near_.size() - 1;
  while (child > 0) {
    size_t parent = (child - 1) / 2;
    NearEntry& p = near_[parent];
    NearEntry& c = near_[child];
    if (p.when < c.when || (p.when == c.when && p.seq < c.seq)) {
      break;
    }
    std::swap(p, c);
    child = parent;
  }
}

void Simulator::NearPop() {
  near_.front() = near_.back();
  near_.pop_back();
  size_t parent = 0;
  size_t size = near_.size();
  for (;;) {
    size_t left = 2 * parent + 1;
    if (left >= size) {
      break;
    }
    size_t min_child = left;
    size_t right = left + 1;
    if (right < size && (near_[right].when < near_[left].when ||
                         (near_[right].when == near_[left].when &&
                          near_[right].seq < near_[left].seq))) {
      min_child = right;
    }
    if (near_[parent].when < near_[min_child].when ||
        (near_[parent].when == near_[min_child].when &&
         near_[parent].seq < near_[min_child].seq)) {
      break;
    }
    std::swap(near_[parent], near_[min_child]);
    parent = min_child;
  }
}

void Simulator::InsertScheduled(uint32_t idx) {
  EventSlot& slot = SlotRef(idx);
  uint64_t tick = slot.when >> kTickBits;
  if (tick <= drained_tick_) {
    slot.home = kHomeNear;
    NearPush(slot.when, slot.seq, idx);
    return;
  }
  uint64_t diff = tick ^ drained_tick_;
  uint32_t level = (63u - static_cast<uint32_t>(std::countl_zero(diff))) / kSlotBits;
  if (level >= kLevels) {
    ListPush(kHomeOverflow, idx);
    return;
  }
  uint32_t wheel_slot =
      static_cast<uint32_t>(tick >> (level * kSlotBits)) & kSlotMask;
  ListPush(level * kSlotsPerLevel + wheel_slot, idx);
}

bool Simulator::RefillNear() {
  while (near_.empty()) {
    // Lowest non-empty level is the next source of events.
    uint32_t level = kLevels;
    for (uint32_t l = 0; l < kLevels; ++l) {
      if ((occupancy_[l][0] | occupancy_[l][1] | occupancy_[l][2] |
           occupancy_[l][3]) != 0) {
        level = l;
        break;
      }
    }
    if (level == kLevels) {
      // Wheels empty: every remaining event (if any) is in the calendar
      // overflow, and — invariant — strictly later than anything the wheels
      // ever held. Jump the cursor to the earliest overflow tick and pull
      // everything within the wheels' new range back in.
      if (overflow_head_ == kNil) {
        return false;
      }
      uint64_t min_tick = UINT64_MAX;
      for (uint32_t i = overflow_head_; i != kNil; i = SlotRef(i).next) {
        uint64_t tick = SlotRef(i).when >> kTickBits;
        if (tick < min_tick) {
          min_tick = tick;
        }
      }
      drained_tick_ = min_tick;
      uint32_t i = overflow_head_;
      while (i != kNil) {
        uint32_t next = SlotRef(i).next;
        uint64_t tick = SlotRef(i).when >> kTickBits;
        if ((tick ^ drained_tick_) >> (kLevels * kSlotBits) == 0) {
          Unlink(i);
          InsertScheduled(i);
        }
        i = next;
      }
      continue;
    }

    // Find the lowest occupied wheel slot at this level. All occupied slots
    // are in the current window (strictly after the cursor), so the lowest
    // index is the earliest.
    uint32_t wheel_slot = 0;
    for (uint32_t w = 0; w < kSlotsPerLevel / 64; ++w) {
      if (occupancy_[level][w] != 0) {
        wheel_slot =
            w * 64 + static_cast<uint32_t>(std::countr_zero(occupancy_[level][w]));
        break;
      }
    }
    uint32_t home = level * kSlotsPerLevel + wheel_slot;

    if (level == 0) {
      // A level-0 slot holds exactly one tick: drain it into the near heap.
      drained_tick_ = (drained_tick_ >> kSlotBits << kSlotBits) | wheel_slot;
      uint32_t i = wheel_heads_[home];
      wheel_heads_[home] = kNil;
      occupancy_[0][wheel_slot >> 6] &= ~(1ull << (wheel_slot & 63));
      while (i != kNil) {
        EventSlot& slot = SlotRef(i);
        uint32_t next = slot.next;
        slot.home = kHomeNear;
        NearPush(slot.when, slot.seq, i);
        i = next;
      }
      return true;
    }

    // Cascade: advance the cursor to this slot's start tick and re-file its
    // events one level (or more) down; events at exactly the start tick go
    // straight to the near heap.
    uint32_t shift = level * kSlotBits;
    drained_tick_ =
        ((drained_tick_ >> (shift + kSlotBits) << kSlotBits) | wheel_slot) << shift;
    uint32_t i = wheel_heads_[home];
    wheel_heads_[home] = kNil;
    occupancy_[level][wheel_slot >> 6] &= ~(1ull << (wheel_slot & 63));
    while (i != kNil) {
      uint32_t next = SlotRef(i).next;
      InsertScheduled(i);
      i = next;
    }
  }
  return true;
}

bool Simulator::EnsureLiveTop() {
  for (;;) {
    if (near_.empty() && !RefillNear()) {
      return false;
    }
    uint32_t idx = near_.front().idx;
    if (SlotRef(idx).state == State::kCancelledNear) {
      NearPop();
      FreeSlot(idx);
      continue;
    }
    return true;
  }
}

void Simulator::Cancel(EventId id) {
  if (id == 0) {
    return;
  }
  uint32_t idx = static_cast<uint32_t>(id >> 32) - 1;
  if (idx >= allocated_) {
    return;
  }
  EventSlot& slot = SlotRef(idx);
  if (slot.generation != static_cast<uint32_t>(id) ||
      slot.state != State::kScheduled) {
    return;  // already ran, already cancelled, or slot since recycled
  }
  --live_;
  slot.cb.Destroy();
  if (slot.home == kHomeNear) {
    // The near heap still references the slot; reclaim lazily when the
    // entry surfaces.
    slot.state = State::kCancelledNear;
    return;
  }
  Unlink(idx);
  FreeSlot(idx);
}

bool Simulator::Step() {
  if (!EnsureLiveTop()) {
    return false;
  }
  uint32_t idx = near_.front().idx;
  NearPop();
  EventSlot& slot = SlotRef(idx);
  now_ = slot.when;
  ++events_processed_;
  --live_;
  slot.state = State::kRunning;
  slot.home = kHomeNone;
  // Restore the trace context / deadline that were ambient when the event
  // was scheduled; context-free events (the common case) skip the swap
  // entirely — the ambient state between events is already clean.
  bool scoped = slot.ctx.valid() || slot.deadline != 0;
  if (scoped) {
    trace::SetCurrent(slot.ctx);
    mal::SetCurrentDeadline(slot.deadline);
  }
  slot.cb.Invoke();
  if (scoped || trace::Current().valid() || mal::CurrentDeadline() != 0) {
    trace::SetCurrent(trace::TraceContext{});
    mal::SetCurrentDeadline(0);
  }
  slot.cb.Destroy();
  FreeSlot(idx);
  return true;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time until) {
  while (EnsureLiveTop() && near_.front().when <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace mal::sim
