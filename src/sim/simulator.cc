#include "src/sim/simulator.h"

#include <cassert>
#include <utility>

#include "src/common/deadline.h"
#include "src/common/trace.h"

namespace mal::sim {

EventId Simulator::Schedule(Time delay, std::function<void()> fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  EventId id = next_id_++;
  // Dapper-style propagation through the event loop: work scheduled while a
  // trace context or a deadline is ambient runs under it, so causality and
  // time budgets follow continuations (CPU completions, message deliveries,
  // retries) without per-call-site plumbing.
  if (trace::Current().valid() || mal::CurrentDeadline() != 0) {
    fn = [ctx = trace::Current(), deadline = mal::CurrentDeadline(),
          inner = std::move(fn)]() {
      trace::ScopedContext scope(ctx);
      mal::ScopedDeadline budget(deadline);
      inner();
    };
  }
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id < next_id_) {
    cancelled_[id] = true;
  }
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++events_processed_;
    // Events not scheduled under a trace or deadline run bare; the wrapper
    // installed by ScheduleAt restores the captured state for those that were.
    trace::SetCurrent(trace::TraceContext{});
    mal::SetCurrentDeadline(0);
    ev.fn();
    trace::SetCurrent(trace::TraceContext{});
    mal::SetCurrentDeadline(0);
    return true;
  }
  return false;
}

void Simulator::Run() {
  while (Step()) {
  }
}

void Simulator::RunUntil(Time until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    Step();
  }
  if (now_ < until) {
    now_ = until;
  }
}

}  // namespace mal::sim
