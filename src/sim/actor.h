// Actor: base class for every daemon and client in the simulation.
//
// Provides request/response RPC with timeouts on top of the one-way
// network, periodic timers, and a single-core CPU service-time model:
// work "reserved" on an actor's CPU serializes, which is what makes an
// overloaded metadata server an actual bottleneck in the balancer
// experiments (paper §6.2).
#ifndef MALACOLOGY_SIM_ACTOR_H_
#define MALACOLOGY_SIM_ACTOR_H_

#include <functional>
#include <map>
#include <string>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace mal::sim {

class Actor : public MessageSink {
 public:
  Actor(Simulator* simulator, Network* network, EntityName name);
  ~Actor() override;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const EntityName& name() const { return name_; }
  Simulator* simulator() { return simulator_; }
  Network* network() { return network_; }
  Time Now() const { return simulator_->Now(); }

  // -- Messaging ------------------------------------------------------------

  using ReplyHandler = std::function<void(mal::Status, const Envelope&)>;

  // Sends a request; `on_reply` fires exactly once: with the reply, or with
  // kTimedOut after `timeout`, or kUnavailable if this actor crashed.
  void SendRequest(EntityName to, uint32_t type, mal::Buffer payload, ReplyHandler on_reply,
                   Time timeout = 5 * kSecond);

  // Fire-and-forget message.
  void SendOneWay(EntityName to, uint32_t type, mal::Buffer payload);

  // Replies to a request envelope.
  void Reply(const Envelope& request, mal::Buffer payload);
  void ReplyError(const Envelope& request, const mal::Status& status);

  // -- CPU model ------------------------------------------------------------

  // Reserves `cost` of serialized CPU time on this actor; returns the delay
  // from now until that work completes (queueing + service).
  Time ReserveCpu(Time cost);

  // Runs `fn` after the reserved CPU work completes.
  void AfterCpu(Time cost, std::function<void()> fn);

  // Second service lane modeling a dispatch/messenger thread separate from
  // the lock-bound work queue (as in Ceph's MDS). Forwarded requests ride
  // this lane so they do not queue behind expensive local operations.
  Time ReserveDispatch(Time cost);
  void AfterDispatch(Time cost, std::function<void()> fn);

  // Fraction of the last `window` that this actor's CPU was busy — the load
  // metric exported to the balancer.
  double CpuUtilization(Time window) const;

  // -- Timers ---------------------------------------------------------------

  // Calls `fn` every `period`, starting one period from now, while alive.
  void StartPeriodic(Time period, std::function<void()> fn);

  // -- Lifecycle ------------------------------------------------------------

  bool alive() const { return alive_; }
  // Crash: stop receiving, fail in-flight RPCs locally, clear CPU queue.
  virtual void Crash();
  // Restart after a crash; subclasses reset their volatile state.
  virtual void Recover();

  // MessageSink:
  void Deliver(Envelope envelope) final;

 protected:
  // Subclasses implement request handling; replies are routed internally.
  virtual void HandleRequest(const Envelope& request) = 0;

 private:
  struct PendingRpc {
    ReplyHandler handler;
    EventId timeout_event;
    trace::TraceContext span;    // client rpc span (invalid when untraced)
    trace::TraceContext caller;  // ambient context at SendRequest time
  };

  // Ends the rpc span (if any) and runs the handler under the caller's
  // trace context, so continuation work stays attributed to the request.
  void FinishRpc(PendingRpc rpc, const mal::Status& status, const Envelope& reply);

  Simulator* simulator_;
  Network* network_;
  EntityName name_;
  bool alive_ = true;
  uint64_t next_rpc_id_ = 1;
  uint64_t incarnation_ = 0;  // bumped on crash; stale timers check it
  std::map<uint64_t, PendingRpc> pending_rpcs_;
  // Open server-side handling spans, keyed by (requester, rpc_id); closed
  // when the matching Reply/ReplyError is sent.
  std::map<std::pair<EntityName, uint64_t>, trace::TraceContext> server_spans_;
  Time cpu_busy_until_ = 0;
  Time dispatch_busy_until_ = 0;
  // Busy-time accounting for utilization: (interval_end, busy_in_interval).
  std::map<Time, Time> busy_log_;
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_ACTOR_H_
