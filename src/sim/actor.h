// Actor: base class for every daemon and client in the simulation.
//
// Provides request/response RPC with timeouts on top of the one-way
// network, periodic timers, and a single-core CPU service-time model:
// work "reserved" on an actor's CPU serializes, which is what makes an
// overloaded metadata server an actual bottleneck in the balancer
// experiments (paper §6.2).
#ifndef MALACOLOGY_SIM_ACTOR_H_
#define MALACOLOGY_SIM_ACTOR_H_

#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace mal {
class PerfRegistry;
}  // namespace mal

namespace mal::sim {

// Bounded FIFO membership window over (sender, rpc_id) pairs, used for
// replay suppression on the delivery hot path. Semantically identical to a
// std::set plus an eviction deque holding the last `kWindow` unique keys,
// but backed by a flat open-addressing table and a ring buffer so the
// per-request cost is a couple of probes instead of two node allocations.
class DedupWindow {
 public:
  static constexpr size_t kWindow = 4096;

  DedupWindow() { Reset(); }

  // Returns true if (a, b) was newly recorded; false if it was already in
  // the window (a replay). Inserting a fresh key evicts the oldest one once
  // the window is full.
  bool Insert(uint64_t a, uint64_t b);

 private:
  // 4x the window keeps probe chains short; tombstones from evictions are
  // collected by rebuilding the table when they pile up.
  static constexpr size_t kTableSize = kWindow * 4;
  static constexpr size_t kTableMask = kTableSize - 1;

  enum : uint8_t { kEmpty = 0, kUsed = 1, kTombstone = 2 };

  struct Entry {
    uint64_t a;
    uint64_t b;
    uint8_t state;
  };

  static size_t Hash(uint64_t a, uint64_t b) {
    uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x) & kTableMask;
  }

  void Reset();
  void Erase(uint64_t a, uint64_t b);
  void Rebuild();

  std::vector<Entry> table_;
  std::vector<std::pair<uint64_t, uint64_t>> ring_;
  size_t ring_pos_ = 0;   // next eviction / insertion point
  size_t count_ = 0;      // live keys (<= kWindow)
  size_t tombstones_ = 0;
};

class Actor : public MessageSink {
 public:
  Actor(Simulator* simulator, Network* network, EntityName name);
  ~Actor() override;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const EntityName& name() const { return name_; }
  Simulator* simulator() { return simulator_; }
  Network* network() { return network_; }
  const Network* network() const { return network_; }
  Time Now() const { return simulator_->Now(); }

  // -- Messaging ------------------------------------------------------------

  using ReplyHandler = std::function<void(mal::Status, const Envelope&)>;

  // Sends a request; `on_reply` fires exactly once: with the reply, or with
  // kTimedOut after `timeout`, or kUnavailable if this actor crashed.
  //
  // Deadline propagation: when an ambient deadline is set (mal::CurrentDeadline,
  // usually via svc::ScopedOpDeadline at the operation edge), the per-hop
  // timeout is clamped to the remaining budget — a clamped hop that expires
  // fails with kDeadlineExceeded rather than kTimedOut — the deadline is
  // stamped into the envelope so the server can drop expired work, and an
  // already-exhausted budget fails the call locally without a network send.
  void SendRequest(EntityName to, uint32_t type, mal::Buffer payload, ReplyHandler on_reply,
                   Time timeout = 5 * kSecond);

  // Fire-and-forget message.
  void SendOneWay(EntityName to, uint32_t type, mal::Buffer payload);

  // Replies to a request envelope.
  void Reply(const Envelope& request, mal::Buffer payload);
  void ReplyError(const Envelope& request, const mal::Status& status);

  // -- CPU model ------------------------------------------------------------

  // Reserves `cost` of serialized CPU time on this actor; returns the delay
  // from now until that work completes (queueing + service).
  Time ReserveCpu(Time cost);

  // Runs `fn` after the reserved CPU work completes.
  void AfterCpu(Time cost, std::function<void()> fn);

  // Second service lane modeling a dispatch/messenger thread separate from
  // the lock-bound work queue (as in Ceph's MDS). Forwarded requests ride
  // this lane so they do not queue behind expensive local operations.
  Time ReserveDispatch(Time cost);
  void AfterDispatch(Time cost, std::function<void()> fn);

  // Fraction of the last `window` that this actor's CPU was busy — the load
  // metric exported to the balancer.
  double CpuUtilization(Time window) const;

  // -- Service layer (admission control; see src/svc/ and docs/service_layer.md)

  // Bounded inbox: when `limit` > 0, at most `limit` rpc requests may be in
  // service on this actor at once (admitted at Deliver, released by the
  // matching Reply/ReplyError). Excess requests are shed at admission with a
  // kBusy reply, before any CPU is reserved. 0 (the default) disables
  // admission control entirely.
  void SetInboxLimit(size_t limit) { inbox_limit_ = limit; }
  size_t inbox_limit() const { return inbox_limit_; }
  size_t queue_depth() const { return admitted_.size(); }
  uint64_t shed_total() const { return shed_total_; }
  uint64_t deadline_drops() const { return deadline_drops_; }
  // Replayed rpc requests suppressed by duplicate detection (see Deliver).
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }

  // Registry that receives svc.queue_depth / svc.shed_total / svc.deadline_drops.
  // May be null (metrics still available via the accessors above). Metrics are
  // only touched when the corresponding knob fires, so a defaults-off run's
  // perf snapshots are byte-identical.
  void SetServicePerf(mal::PerfRegistry* perf) { svc_perf_ = perf; }

  // -- Timers ---------------------------------------------------------------

  // Calls `fn` every `period`, starting one period from now, while alive.
  void StartPeriodic(Time period, std::function<void()> fn);

  // One-shot timer guarded against restarts: `fn` runs only if this actor is
  // still alive AND in the same incarnation as when the timer was armed. Any
  // daemon timer whose callback touches daemon state must use this (or the
  // equally-guarded AfterCpu/AfterDispatch/StartPeriodic) instead of raw
  // Simulator::Schedule — a timer armed before a crash must never fire into
  // the recovered instance. Returns the event id (cancelable like any timer).
  EventId ScheduleGuarded(Time delay, std::function<void()> fn);

  // -- Lifecycle ------------------------------------------------------------

  bool alive() const { return alive_; }
  // Crash: stop receiving, fail in-flight RPCs locally, clear CPU queue.
  virtual void Crash();
  // Restart after a crash; subclasses reset their volatile state.
  virtual void Recover();

  // MessageSink:
  void Deliver(Envelope envelope) final;

 protected:
  // Subclasses implement request handling; replies are routed internally.
  virtual void HandleRequest(const Envelope& request) = 0;

 private:
  struct PendingRpc {
    ReplyHandler handler;
    EventId timeout_event;
    trace::TraceContext span;     // client rpc span (invalid when untraced)
    trace::TraceContext caller;   // ambient context at SendRequest time
    uint64_t caller_deadline = 0;  // ambient deadline at SendRequest time
  };

  // Ends the rpc span (if any) and runs the handler under the caller's
  // trace context and deadline, so continuation work stays attributed to the
  // request and keeps its time budget.
  void FinishRpc(PendingRpc rpc, const mal::Status& status, const Envelope& reply);

  // Frees the admission slot held by `request` (no-op when none is held).
  void ReleaseAdmission(const Envelope& request);

  Simulator* simulator_;
  Network* network_;
  EntityName name_;
  bool alive_ = true;
  uint64_t next_rpc_id_ = 1;
  uint64_t incarnation_ = 0;  // bumped on crash; stale timers check it
  std::map<uint64_t, PendingRpc> pending_rpcs_;
  // Open server-side handling spans, keyed by (requester, rpc_id); closed
  // when the matching Reply/ReplyError is sent.
  std::map<std::pair<EntityName, uint64_t>, trace::TraceContext> server_spans_;
  // Admission control (active when inbox_limit_ > 0): rpc requests currently
  // in service, admitted at Deliver and released by Reply/ReplyError.
  size_t inbox_limit_ = 0;
  std::set<std::pair<EntityName, uint64_t>> admitted_;
  uint64_t shed_total_ = 0;
  uint64_t deadline_drops_ = 0;
  // Replay suppression: recently-seen (requester, rpc_id) pairs, bounded
  // FIFO. SendRequest never reuses an rpc_id, so a second arrival of the
  // same pair can only be a network-level duplicate — executing it twice
  // would double-apply non-idempotent handlers (and its error reply could
  // overtake the original's success reply at the caller). Like Ceph's dup
  // op detection via osd_reqid, the duplicate is dropped; the execution of
  // the first copy already replied (or will).
  DedupWindow seen_requests_;
  uint64_t duplicates_dropped_ = 0;
  mal::PerfRegistry* svc_perf_ = nullptr;
  Time cpu_busy_until_ = 0;
  Time dispatch_busy_until_ = 0;
  // Busy-time accounting for utilization: (interval_end, busy_in_interval),
  // appended in nondecreasing interval_end order and trimmed at the front.
  std::deque<std::pair<Time, Time>> busy_log_;
  // Cached name().ToString(); referenced by the zero-copy log context.
  std::string name_str_;
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_ACTOR_H_
