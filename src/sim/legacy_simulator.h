// The original binary-heap event scheduler, retained as a
// differential-testing oracle and bench baseline for the timer-wheel core in
// simulator.h. tests/sim_test.cc runs randomized schedule/cancel/RunUntil
// programs against both and asserts identical event orderings and Now()
// trajectories; bench/cluster_scale.cc reports its events/sec next to the
// wheel's. Verbatim except one corrected bug: RunUntil no longer overruns
// `until` when the queue top is a cancelled tombstone (see RunUntil).
// Not for production use: Cancel still leaks a tombstone per already-run id
// and every Schedule pays a std::function heap allocation.
#ifndef MALACOLOGY_SIM_LEGACY_SIMULATOR_H_
#define MALACOLOGY_SIM_LEGACY_SIMULATOR_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/trace.h"
#include "src/sim/simulator.h"

namespace mal::sim {

class LegacySimulator {
 public:
  Time Now() const { return now_; }

  EventId Schedule(Time delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  EventId ScheduleAt(Time when, std::function<void()> fn) {
    assert(when >= now_ && "cannot schedule in the past");
    EventId id = next_id_++;
    if (trace::Current().valid() || mal::CurrentDeadline() != 0) {
      fn = [ctx = trace::Current(), deadline = mal::CurrentDeadline(),
            inner = std::move(fn)]() {
        trace::ScopedContext scope(ctx);
        mal::ScopedDeadline budget(deadline);
        inner();
      };
    }
    queue_.push(Event{when, next_seq_++, id, std::move(fn)});
    return id;
  }

  void Cancel(EventId id) {
    if (id < next_id_) {
      cancelled_[id] = true;
    }
  }

  bool Step() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      auto it = cancelled_.find(ev.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      now_ = ev.when;
      ++events_processed_;
      trace::SetCurrent(trace::TraceContext{});
      mal::SetCurrentDeadline(0);
      ev.fn();
      trace::SetCurrent(trace::TraceContext{});
      mal::SetCurrentDeadline(0);
      return true;
    }
    return false;
  }

  void Run() {
    while (Step()) {
    }
  }

  void RunUntil(Time until) {
    while (!queue_.empty()) {
      // Drop tombstoned entries before the boundary check: it must see the
      // next *live* event. The original guard read queue_.top().when
      // directly, so a cancelled entry at the top let Step() run an event
      // past `until` (the cancelled-top overrun; the wheel's
      // generation-checked Cancel leaves no tombstones to trip on).
      auto it = cancelled_.find(queue_.top().id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
      if (queue_.top().when > until) {
        break;
      }
      Step();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  size_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::map<EventId, bool> cancelled_;
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_LEGACY_SIMULATOR_H_
