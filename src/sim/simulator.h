// Deterministic discrete-event simulator.
//
// This is the substrate substitution for the paper's physical cluster (see
// DESIGN.md §2): daemons are actors, wall-clock time is virtual, and the
// network delivers serialized messages with a configurable latency model.
// Determinism matters: every experiment in bench/ is reproducible
// bit-for-bit from its seed, and property tests can explore thousands of
// schedules.
//
// The scheduler is built for throughput (docs/sim_core.md): a hierarchical
// timer wheel (calendar-queue overflow for far-future events) replaces the
// binary heap, event records live in a slab pool with an inline small-buffer
// callback (no std::function heap allocation for the common capture sizes),
// and Cancel is O(1) via generation-checked slots. The ordering contract is
// unchanged: events run in strict (when, seq) order, where seq is the
// schedule order — byte-identical trajectories to the original
// priority-queue implementation (tests/sim_test.cc checks this against the
// retained oracle in legacy_simulator.h).
#ifndef MALACOLOGY_SIM_SIMULATOR_H_
#define MALACOLOGY_SIM_SIMULATOR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/trace.h"

namespace mal::sim {

// Virtual time in nanoseconds.
using Time = uint64_t;

constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

using EventId = uint64_t;

namespace internal {

// Type-erased callback with small-buffer optimization. The common event
// closures (Actor::AfterCpu continuations, pooled network deliveries, RPC
// timeouts, workload arrivals) fit the inline buffer, so scheduling them
// costs zero heap allocations; larger captures fall back to one.
class EventCallback {
 public:
  static constexpr size_t kInlineBytes = 64;

  EventCallback() = default;
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { Destroy(); }

  template <typename F>
  void Emplace(F&& fn) {
    assert(ops_ == nullptr && "emplacing over a live callback");
    using T = std::decay_t<F>;
    if constexpr (sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(fn));
      static constexpr Ops kOps = {
          [](void* p) { (*std::launder(reinterpret_cast<T*>(p)))(); },
          [](void* p) { std::launder(reinterpret_cast<T*>(p))->~T(); },
      };
      ops_ = &kOps;
    } else {
      T* obj = new T(std::forward<F>(fn));
      std::memcpy(buf_, &obj, sizeof(obj));
      static constexpr Ops kOps = {
          [](void* p) {
            T* o;
            std::memcpy(&o, p, sizeof(o));
            (*o)();
          },
          [](void* p) {
            T* o;
            std::memcpy(&o, p, sizeof(o));
            delete o;
          },
      };
      ops_ = &kOps;
    }
  }

  void Invoke() { ops_->invoke(buf_); }

  void Destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
  };
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace internal

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  Time Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Events at the same time run in
  // schedule order (stable), which keeps runs deterministic. Accepts any
  // void() callable; capture states up to EventCallback::kInlineBytes are
  // stored inline in the event slot (no heap allocation).
  //
  // Dapper-style propagation through the event loop: work scheduled while a
  // trace context or a deadline is ambient runs under it, so causality and
  // time budgets follow continuations (CPU completions, message deliveries,
  // retries) without per-call-site plumbing.
  template <typename F>
  EventId Schedule(Time delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  EventId ScheduleAt(Time when, F&& fn) {
    assert(when >= now_ && "cannot schedule in the past");
    uint32_t idx = AllocSlot();
    EventSlot& slot = SlotRef(idx);
    slot.when = when;
    slot.seq = next_seq_++;
    slot.ctx = trace::Current();
    slot.deadline = mal::CurrentDeadline();
    slot.cb.Emplace(std::forward<F>(fn));
    slot.state = State::kScheduled;
    ++live_;
    InsertScheduled(idx);
    return MakeId(idx, slot.generation);
  }

  // Cancels a pending event in O(1): the id carries (slot, generation), so a
  // stale id — already run, already cancelled, or slot since reused — is a
  // no-op and leaves no tombstone behind.
  void Cancel(EventId id);

  // Runs until the event queue is empty.
  void Run();

  // Runs all events with time <= until, then sets Now() == until.
  void RunUntil(Time until);

  // Runs at most one event; returns false if the queue was empty.
  bool Step();

  size_t events_processed() const { return events_processed_; }
  // Exact count of live (scheduled, not cancelled, not yet run) events.
  size_t pending_events() const { return live_; }

 private:
  // Timer-wheel geometry: level-0 ticks are 2^kTickBits ns (4.096 us) and
  // each of the kLevels levels has 2^kSlotBits slots, so level 0 spans
  // ~1 ms (message latencies, CPU costs — the bulk of events insert here
  // cascade-free), level 1 ~268 ms (retry backoff, periodic timers),
  // level 2 ~69 s (RPC timeouts), level 3 ~4.9 h. Anything farther sits in
  // the calendar overflow list until the wheel advances into its range.
  // The tick is deliberately coarser than the finest event spacing: events
  // inside one tick are ordered exactly by the near heap, and a coarser
  // tick amortizes slot-drain overhead over more events per refill.
  static constexpr uint32_t kTickBits = 12;
  static constexpr uint32_t kSlotBits = 8;
  static constexpr uint32_t kLevels = 4;
  static constexpr uint32_t kSlotsPerLevel = 1u << kSlotBits;
  static constexpr uint32_t kSlotMask = kSlotsPerLevel - 1;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  // `home` encodings beyond wheel positions (level * kSlotsPerLevel + slot).
  static constexpr uint32_t kHomeNear = 0xFFFFFFF0u;
  static constexpr uint32_t kHomeOverflow = 0xFFFFFFF1u;
  static constexpr uint32_t kHomeNone = 0xFFFFFFF2u;

  static constexpr uint32_t kChunkBits = 9;  // 512 slots per pool chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkBits;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  enum class State : uint8_t {
    kFree = 0,
    kScheduled = 1,
    kRunning = 2,
    // Cancelled while referenced by the near heap; the slot is reclaimed
    // lazily when its heap entry surfaces (the callback is destroyed
    // eagerly at Cancel time).
    kCancelledNear = 3,
  };

  // One pooled event record. Slots live in fixed chunks (stable addresses),
  // are linked intrusively into wheel/overflow lists, and recycle through a
  // free list; `generation` makes recycled ids unambiguous.
  struct EventSlot {
    Time when = 0;
    uint64_t seq = 0;
    trace::TraceContext ctx;
    uint64_t deadline = 0;
    uint32_t next = kNil;
    uint32_t prev = kNil;
    uint32_t home = kHomeNone;
    uint32_t generation = 0;
    State state = State::kFree;
    internal::EventCallback cb;
  };

  struct NearEntry {
    Time when;
    uint64_t seq;
    uint32_t idx;
  };

  static EventId MakeId(uint32_t idx, uint32_t generation) {
    return (static_cast<EventId>(idx) + 1) << 32 | generation;
  }

  EventSlot& SlotRef(uint32_t idx) {
    return chunks_[idx >> kChunkBits][idx & kChunkMask];
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t idx);

  // Files a scheduled slot into the near heap, a wheel slot, or overflow.
  void InsertScheduled(uint32_t idx);
  // Removes a slot from its wheel/overflow list (O(1), not for near).
  void Unlink(uint32_t idx);

  uint32_t& HeadRef(uint32_t home);
  void ListPush(uint32_t home, uint32_t idx);

  // Near-heap primitives: a tiny binary min-heap ordered by (when, seq)
  // holding only events at or before the drained wheel cursor.
  void NearPush(Time when, uint64_t seq, uint32_t idx);
  void NearPop();

  // Moves events into the near heap until it is non-empty (advancing the
  // wheel cursor / cascading levels / pulling from overflow as needed);
  // false when the whole simulator is empty.
  bool RefillNear();
  // Drops cancelled entries off the top of the near heap; returns whether a
  // live top remains after refilling as needed.
  bool EnsureLiveTop();

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  size_t events_processed_ = 0;
  size_t live_ = 0;

  // Event pool.
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  uint32_t free_head_ = kNil;
  uint32_t allocated_ = 0;

  // Scheduler structures.
  std::vector<NearEntry> near_;
  uint64_t drained_tick_ = 0;  // all ticks <= this live in the near heap
  uint32_t wheel_heads_[kLevels * kSlotsPerLevel];
  uint64_t occupancy_[kLevels][kSlotsPerLevel / 64];
  uint32_t overflow_head_ = kNil;
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_SIMULATOR_H_
