// Deterministic discrete-event simulator.
//
// This is the substrate substitution for the paper's physical cluster (see
// DESIGN.md §2): daemons are actors, wall-clock time is virtual, and the
// network delivers serialized messages with a configurable latency model.
// Determinism matters: every experiment in bench/ is reproducible
// bit-for-bit from its seed, and property tests can explore thousands of
// schedules.
#ifndef MALACOLOGY_SIM_SIMULATOR_H_
#define MALACOLOGY_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

namespace mal::sim {

// Virtual time in nanoseconds.
using Time = uint64_t;

constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

using EventId = uint64_t;

class Simulator {
 public:
  Time Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Events at the same time run in
  // schedule order (stable), which keeps runs deterministic.
  EventId Schedule(Time delay, std::function<void()> fn);
  EventId ScheduleAt(Time when, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-run event is a no-op.
  void Cancel(EventId id);

  // Runs until the event queue is empty.
  void Run();

  // Runs all events with time <= until, then sets Now() == until.
  void RunUntil(Time until);

  // Runs at most one event; returns false if the queue was empty.
  bool Step();

  size_t events_processed() const { return events_processed_; }
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    Time when;
    uint64_t seq;  // tiebreaker for stable ordering
    EventId id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::map<EventId, bool> cancelled_;  // tombstones for pending cancels
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_SIMULATOR_H_
