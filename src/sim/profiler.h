// Per-actor profiler: "where does the cluster spend its simulated time".
//
// The simulator's CPU model already serializes work through
// Actor::ReserveCpu / ReserveDispatch; the profiler taps those reservations
// and attributes them to (actor, message-type) cells. The message label is
// ambient: Actor::Deliver sets it to the delivered message's name (with a
// ".reply" suffix for replies) for the synchronous extent of the handler, so
// every CPU reservation a handler makes lands in that message's row. Work
// reserved outside any delivery — periodic timers, scheduled continuations —
// is attributed to "background".
//
// Like trace::TraceCollector, the profiler is a process-global installed via
// ScopedProfiler; when none is installed (the default) the hot-path cost is
// one null check, and nothing about the simulation changes either way (the
// profiler only observes reservations, it never schedules or draws RNG).
// Tables are deterministic: same seed, same profile, byte for byte.
#ifndef MALACOLOGY_SIM_PROFILER_H_
#define MALACOLOGY_SIM_PROFILER_H_

#include <cstdint>
#include <map>
#include <string>

namespace mal::sim {

class Profiler {
 public:
  struct Row {
    uint64_t count = 0;        // messages delivered under this label
    uint64_t cpu_ns = 0;       // CPU-lane time reserved
    uint64_t dispatch_ns = 0;  // dispatch-lane time reserved
  };

  // entity -> message label -> row. Ordered maps for deterministic output.
  using Table = std::map<std::string, std::map<std::string, Row>>;

  // One message delivery observed under `label` (bumps count).
  void OnMessage(const std::string& entity, const std::string& label);
  // CPU/dispatch reservations attributed to the ambient label.
  void RecordCpu(const std::string& entity, uint64_t cost_ns);
  void RecordDispatch(const std::string& entity, uint64_t cost_ns);

  const Table& table() const { return table_; }
  Row Totals(const std::string& entity) const;
  void Clear();

  // {"<entity>": {"<label>": {count, cpu_us, dispatch_us}, ...}, ...}
  std::string ToJson() const;
  // Aligned text table, busiest entity first (for bench stdout).
  std::string RenderTable() const;

  // Process-global instance; null (the default) disables profiling.
  static Profiler* Current();
  static void Set(Profiler* profiler);

 private:
  friend class ScopedProfileLabel;

  Table table_;
  std::string current_label_ = "background";
};

class ScopedProfiler {
 public:
  explicit ScopedProfiler(Profiler* profiler) : prev_(Profiler::Current()) {
    Profiler::Set(profiler);
  }
  ~ScopedProfiler() { Profiler::Set(prev_); }

  ScopedProfiler(const ScopedProfiler&) = delete;
  ScopedProfiler& operator=(const ScopedProfiler&) = delete;

 private:
  Profiler* prev_;
};

// Sets the ambient message label for the extent of one delivery (and counts
// the message). Constructed with a null profiler it does nothing.
class ScopedProfileLabel {
 public:
  ScopedProfileLabel(Profiler* profiler, const std::string& entity,
                     std::string label)
      : profiler_(profiler) {
    if (profiler_ != nullptr) {
      profiler_->OnMessage(entity, label);
      prev_ = std::move(profiler_->current_label_);
      profiler_->current_label_ = std::move(label);
    }
  }
  ~ScopedProfileLabel() {
    if (profiler_ != nullptr) {
      profiler_->current_label_ = std::move(prev_);
    }
  }

  ScopedProfileLabel(const ScopedProfileLabel&) = delete;
  ScopedProfileLabel& operator=(const ScopedProfileLabel&) = delete;

 private:
  Profiler* profiler_;
  std::string prev_;
};

}  // namespace mal::sim

#endif  // MALACOLOGY_SIM_PROFILER_H_
