// MonClient: helper every daemon and client embeds to talk to the monitor
// quorum — submit transactions, fetch/subscribe to maps, and write to the
// centralized cluster log. Retries against other quorum members on timeout.
#ifndef MALACOLOGY_MON_MON_CLIENT_H_
#define MALACOLOGY_MON_MON_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/perf.h"
#include "src/common/rng.h"
#include "src/mon/messages.h"
#include "src/sim/actor.h"
#include "src/svc/retry.h"
#include "src/telemetry/series.h"

namespace mal::mon {

class MonClient {
 public:
  MonClient(sim::Actor* owner, std::vector<uint32_t> mons)
      : owner_(owner),
        mons_(std::move(mons)),
        retry_rng_(0x6d6f6eULL * 0x9e3779b97f4a7c15ULL +
                   (static_cast<uint64_t>(owner->name().type) << 32) + owner->name().id) {}

  // Backoff base/cap for quorum retries. The attempt budget is fixed at
  // twice the quorum size (two full rotations); the default zero base
  // delay reproduces the legacy retry-next-mon-immediately loop.
  void set_retry_policy(const svc::RetryPolicy& policy) { retry_ = policy; }

  // Per-attempt RPC timeout against a single monitor. The default matches
  // the transport default (5s), but that makes quorum rotation nearly
  // useless under failures: a request whose first pick is a dead monitor
  // stalls the full 5s before trying the next member, which turns every
  // map fetch or transaction submitted during a monitor outage into a
  // multi-second stall. Recovery-sensitive deployments (chaos tests, the
  // scrub/repair path) set this to ~1s so rotation finds a live member
  // quickly.
  void set_request_timeout(sim::Time timeout) { request_timeout_ = timeout; }
  sim::Time request_timeout() const { return request_timeout_; }

  using AckHandler = std::function<void(mal::Status)>;
  using MapHandler = std::function<void(mal::Status, const MapUpdate&)>;

  // Submits a transaction; `on_done` fires after the transaction commits
  // through Paxos (or fails after exhausting retries).
  void SubmitTransaction(const Transaction& txn, AckHandler on_done) {
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    txn.Encode(&enc);
    SendWithRetry(kMsgMonCommand, std::move(payload), MakeBackoff(),
                  [on_done = std::move(on_done)](mal::Status status, const sim::Envelope&) {
                    on_done(status);
                  });
  }

  // Convenience: set a service-metadata key on a cluster map (the paper's
  // Service Metadata interface).
  void SetServiceMetadata(MapKind kind, const std::string& key, const std::string& value,
                          AckHandler on_done) {
    Transaction txn;
    txn.op = Transaction::Op::kSetServiceMetadata;
    txn.map_kind = kind;
    txn.key = key;
    txn.value = value;
    SubmitTransaction(txn, std::move(on_done));
  }

  void GetMap(MapKind kind, MapHandler on_map) {
    GetMapRequest req{kind};
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    req.Encode(&enc);
    SendWithRetry(kMsgGetMap, std::move(payload), MakeBackoff(),
                  [on_map = std::move(on_map)](mal::Status status,
                                               const sim::Envelope& reply) {
                    if (!status.ok()) {
                      on_map(status, MapUpdate{});
                      return;
                    }
                    mal::Decoder dec(reply.payload);
                    on_map(mal::Status::Ok(), MapUpdate::Decode(&dec));
                  });
  }

  // Like GetMap, but treats a reply whose map is not strictly newer than
  // `have_epoch` as a miss: a stale follower (e.g. a monitor that just
  // crash-recovered with old state) causes rotation to the next quorum
  // member instead of satisfying the fetch. Only when the whole retry
  // budget finds nothing newer is the freshest reply seen delivered with
  // Ok — the caller keeps its map and its own backoff paces the next
  // attempt. Without this, a client whose push subscription died with a
  // crashed leader can re-read the same stale map forever while it
  // retries an OSD the rest of the cluster already failed.
  // `epoch_of` extracts the epoch from a reply (the payload encoding is
  // map-kind specific, so the caller supplies the decode).
  void GetMapAbove(MapKind kind, Epoch have_epoch,
                   std::function<Epoch(const MapUpdate&)> epoch_of, MapHandler on_map) {
    GetMapRequest req{kind};
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    req.Encode(&enc);
    GetMapAboveAttempt(std::move(payload), have_epoch, std::move(epoch_of), MakeBackoff(),
                       std::make_shared<BestMap>(), std::move(on_map));
  }

  // Registers for push updates (delivered to the owner as kMsgMapUpdate).
  void Subscribe(MapKind kind, Epoch have_epoch) {
    SubscribeRequest req;
    req.kind = kind;
    req.have_epoch = have_epoch;
    req.subscriber = owner_->name();
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    req.Encode(&enc);
    SendWithRetry(kMsgSubscribe, std::move(payload), MakeBackoff(),
                  [](mal::Status, const sim::Envelope&) {});
  }

  // Centralized cluster log (fire-and-forget).
  void Log(const std::string& severity, const std::string& message) {
    ClusterLogEntry entry;
    entry.time_ns = owner_->Now();
    entry.seq = ++log_seq_;
    entry.source = owner_->name().ToString();
    entry.severity = severity;
    entry.message = message;
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    entry.Encode(&enc);
    owner_->SendOneWay(sim::EntityName::Mon(mons_[pick_ % mons_.size()]), kMsgLogEntry,
                       std::move(payload));
  }

  // Pushes a perf-counter snapshot to one monitor (fire-and-forget; the next
  // periodic report supersedes a lost one).
  void ReportPerf(const mal::PerfSnapshot& snapshot) {
    mal::Buffer payload;
    snapshot.Encode(&payload);
    owner_->SendOneWay(sim::EntityName::Mon(mons_[pick_ % mons_.size()]), kMsgPerfReport,
                       std::move(payload));
  }

  // Fetches the cluster-wide perf dump (JSON) from the monitor.
  void GetPerfDump(std::function<void(mal::Status, std::string)> on_dump) {
    SendWithRetry(kMsgGetPerfDump, mal::Buffer(), MakeBackoff(),
                  [on_dump = std::move(on_dump)](mal::Status status,
                                                 const sim::Envelope& reply) {
                    on_dump(status, reply.payload.ToString());
                  });
  }

  // Queries the monitor's telemetry series store (kMsgQuerySeries); the
  // reply decodes into rollup windows (or single-point windows for raw).
  void QuerySeries(const QuerySeriesRequest& req,
                   std::function<void(mal::Status, std::vector<telemetry::Window>)>
                       on_windows) {
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    req.Encode(&enc);
    SendWithRetry(kMsgQuerySeries, std::move(payload), MakeBackoff(),
                  [on_windows = std::move(on_windows)](mal::Status status,
                                                       const sim::Envelope& reply) {
                    std::vector<telemetry::Window> windows;
                    if (status.ok()) {
                      mal::Decoder dec(reply.payload);
                      uint64_t n = dec.GetVarU64();
                      for (uint64_t i = 0; i < n && dec.ok(); ++i) {
                        windows.push_back(telemetry::Window::Decode(&dec));
                      }
                    }
                    on_windows(status, std::move(windows));
                  });
  }

  // Fetches the ClusterHealth JSON (kMsgGetHealth).
  void GetHealth(std::function<void(mal::Status, std::string)> on_health) {
    SendWithRetry(kMsgGetHealth, mal::Buffer(), MakeBackoff(),
                  [on_health = std::move(on_health)](mal::Status status,
                                                     const sim::Envelope& reply) {
                    on_health(status, reply.payload.ToString());
                  });
  }

  const std::vector<uint32_t>& mons() const { return mons_; }

 private:
  // Attempt budget: two full rotations through the quorum, so a single
  // down monitor never exhausts the retry allowance.
  svc::Backoff MakeBackoff() const {
    svc::RetryPolicy policy = retry_;
    policy.max_attempts = static_cast<int>(mons_.size() * 2);
    return svc::Backoff(policy);
  }

  // Freshest not-newer-than-have_epoch reply seen during a GetMapAbove
  // rotation; delivered only if the whole budget finds nothing newer.
  struct BestMap {
    bool seen = false;
    Epoch epoch = 0;
    MapUpdate update;
  };

  void GetMapAboveAttempt(mal::Buffer payload, Epoch have_epoch,
                          std::function<Epoch(const MapUpdate&)> epoch_of,
                          svc::Backoff backoff, std::shared_ptr<BestMap> best,
                          MapHandler on_map) {
    if (backoff.Exhausted()) {
      if (best->seen) {
        on_map(mal::Status::Ok(), best->update);  // quorum-wide, nothing newer exists
      } else {
        on_map(mal::Status::Unavailable("monitor quorum unreachable"), MapUpdate{});
      }
      return;
    }
    uint32_t mon = mons_[(pick_ + static_cast<size_t>(backoff.attempt())) % mons_.size()];
    owner_->SendRequest(
        sim::EntityName::Mon(mon), kMsgGetMap, payload,
        [this, payload, have_epoch, epoch_of, backoff, best,
         on_map = std::move(on_map)](mal::Status status, const sim::Envelope& reply) mutable {
          auto retry = [this, &payload, have_epoch, &epoch_of, &backoff, &best,
                        &on_map]() mutable {
            sim::Time delay = backoff.NextDelay(&retry_rng_);
            svc::RunAfter(owner_->simulator(), delay,
                          [this, payload, have_epoch, epoch_of, backoff, best,
                           on_map = std::move(on_map)] {
                            GetMapAboveAttempt(payload, have_epoch, epoch_of, backoff,
                                               best, on_map);
                          });
          };
          if (status.code() == mal::Code::kTimedOut ||
              status.code() == mal::Code::kUnavailable ||
              status.code() == mal::Code::kBusy) {
            retry();
            return;
          }
          if (!status.ok()) {
            on_map(status, MapUpdate{});
            return;
          }
          mal::Decoder dec(reply.payload);
          MapUpdate update = MapUpdate::Decode(&dec);
          Epoch epoch = epoch_of(update);
          if (epoch > have_epoch) {
            on_map(mal::Status::Ok(), update);
            return;
          }
          // Stale (or merely not newer): remember the freshest such reply
          // in case the whole quorum agrees, and try the next member.
          if (!best->seen || epoch > best->epoch) {
            *best = {true, epoch, std::move(update)};
          }
          retry();
        },
        request_timeout_);
  }

  void SendWithRetry(uint32_t type, mal::Buffer payload, svc::Backoff backoff,
                     sim::Actor::ReplyHandler handler) {
    if (backoff.Exhausted()) {
      handler(mal::Status::Unavailable("monitor quorum unreachable"), sim::Envelope{});
      return;
    }
    // Rotate through the quorum: attempt N lands on the Nth mon after the
    // preferred one, so a retry never re-asks the peer that just failed us.
    uint32_t mon = mons_[(pick_ + static_cast<size_t>(backoff.attempt())) % mons_.size()];
    owner_->SendRequest(
        sim::EntityName::Mon(mon), type, payload,
        [this, type, payload, backoff, handler = std::move(handler)](
            mal::Status status, const sim::Envelope& reply) mutable {
          if (status.code() == mal::Code::kTimedOut ||
              status.code() == mal::Code::kUnavailable ||
              status.code() == mal::Code::kBusy) {
            // Consume the attempt before building the continuation so the
            // lambda captures the advanced backoff.
            sim::Time delay = backoff.NextDelay(&retry_rng_);
            svc::RunAfter(owner_->simulator(), delay,
                          [this, type, payload, backoff, handler = std::move(handler)] {
                            SendWithRetry(type, payload, backoff, handler);
                          });
            return;
          }
          handler(status, reply);
        },
        request_timeout_);
  }

  sim::Actor* owner_;
  std::vector<uint32_t> mons_;
  svc::RetryPolicy retry_{};
  sim::Time request_timeout_ = 5 * sim::kSecond;
  mal::Rng retry_rng_;
  size_t pick_ = 0;
  uint64_t log_seq_ = 0;
};

}  // namespace mal::mon

#endif  // MALACOLOGY_MON_MON_CLIENT_H_
