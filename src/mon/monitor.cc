#include "src/mon/monitor.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/common/trace.h"
#include "src/sim/profiler.h"

namespace mal::mon {

void Transaction::Encode(mal::Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(op));
  enc->PutU8(static_cast<uint8_t>(map_kind));
  enc->PutU32(daemon_id);
  enc->PutString(key);
  enc->PutString(value);
}

Transaction Transaction::DecodeOne(mal::Decoder* dec) {
  Transaction txn;
  txn.op = static_cast<Op>(dec->GetU8());
  txn.map_kind = static_cast<MapKind>(dec->GetU8());
  txn.daemon_id = dec->GetU32();
  txn.key = dec->GetString();
  txn.value = dec->GetString();
  return txn;
}

void Transaction::EncodeBatch(mal::Encoder* enc, const std::vector<Transaction>& batch) {
  enc->PutVarU64(batch.size());
  for (const Transaction& txn : batch) {
    txn.Encode(enc);
  }
}

std::vector<Transaction> Transaction::DecodeBatch(mal::Decoder* dec) {
  std::vector<Transaction> batch;
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    batch.push_back(DecodeOne(dec));
  }
  return batch;
}

Monitor::Monitor(sim::Simulator* simulator, sim::Network* network, uint32_t id,
                 std::vector<uint32_t> quorum, MonitorConfig config)
    : Actor(simulator, network, sim::EntityName::Mon(id)),
      config_(config),
      quorum_(std::move(quorum)) {
  paxos_ = std::make_unique<consensus::PaxosNode>(
      id, quorum_,
      [this](uint32_t peer, const consensus::PaxosMessage& msg) {
        mal::Buffer payload;
        mal::Encoder enc(&payload);
        msg.Encode(&enc);
        SendOneWay(sim::EntityName::Mon(peer), kMsgPaxos, std::move(payload));
      },
      [this](uint64_t, const mal::Buffer& value) { ApplyCommitted(value); });
  RegisterHandlers();
  SetInboxLimit(config_.inbox_depth);
  SetServicePerf(&perf_);
  if (telemetry_enabled() && config_.builtin_health_rules) {
    health_.InstallBuiltinRules();
  }
}

void Monitor::RegisterHandlers() {
  // Raw handlers keep their bespoke decode conventions: paxos uses a
  // Result-returning decoder, commands are forwarded undecoded by
  // non-leaders, and the last three carry no / non-standard payloads.
  dispatcher_.On(kMsgPaxos, [this](const sim::Envelope& env) { HandlePaxos(env); });
  dispatcher_.On(kMsgMonCommand, [this](const sim::Envelope& env) { HandleCommand(env); });
  dispatcher_.OnTyped<GetMapRequest>(
      kMsgGetMap, [this](const sim::Envelope& env, GetMapRequest req) {
        HandleGetMap(env, std::move(req));
      });
  dispatcher_.OnTyped<SubscribeRequest>(
      kMsgSubscribe, [this](const sim::Envelope& env, SubscribeRequest req) {
        HandleSubscribe(env, std::move(req));
      });
  dispatcher_.OnTyped<ClusterLogEntry>(
      kMsgLogEntry, [this](const sim::Envelope& env, ClusterLogEntry entry) {
        HandleLogEntry(env, std::move(entry));
      });
  dispatcher_.On(kMsgGetClusterLog,
                 [this](const sim::Envelope& env) { HandleGetClusterLog(env); });
  dispatcher_.On(kMsgPerfReport,
                 [this](const sim::Envelope& env) { HandlePerfReport(env); });
  dispatcher_.On(kMsgGetPerfDump,
                 [this](const sim::Envelope& env) { HandleGetPerfDump(env); });
  dispatcher_.OnTyped<QuerySeriesRequest>(
      kMsgQuerySeries, [this](const sim::Envelope& env, QuerySeriesRequest req) {
        HandleQuerySeries(env, std::move(req));
      });
  dispatcher_.On(kMsgGetHealth,
                 [this](const sim::Envelope& env) { HandleGetHealth(env); });
}

void Monitor::Boot() {
  last_leader_contact_ = Now();
  if (name().id == *std::min_element(quorum_.begin(), quorum_.end())) {
    paxos_->StartElection();
  }
  StartPeriodic(config_.proposal_interval, [this] { ProposeBatch(); });
  StartPeriodic(config_.retransmit_interval, [this] {
    paxos_->Retransmit();
    paxos_->Heartbeat();
  });
  StartPeriodic(config_.election_timeout, [this] {
    if (!paxos_->IsLeader() && Now() - last_leader_contact_ > config_.election_timeout) {
      MAL_INFO(name().ToString()) << "leader timeout, starting election";
      paxos_->StartElection();
    }
  });
  if (telemetry_enabled()) {
    StartPeriodic(config_.telemetry_interval, [this] { TelemetryTick(); });
  }
}

void Monitor::Crash() {
  Actor::Crash();
  paxos_->StepDown();
  pending_batch_.clear();
  waiting_acks_.clear();
}

void Monitor::Recover() {
  Actor::Recover();
  // NB: paxos acceptor state (promises/accepts) survives: the monitor store
  // is durable in Ceph, and we model that by keeping PaxosNode state.
  Boot();
}

void Monitor::HandleRequest(const sim::Envelope& request) {
  dispatcher_.Dispatch(request);
}

void Monitor::HandlePaxos(const sim::Envelope& request) {
  mal::Decoder dec(request.payload);
  auto msg = consensus::PaxosMessage::Decode(&dec);
  if (!msg.ok()) {
    MAL_WARN(name().ToString()) << "bad paxos message: " << msg.status();
    return;
  }
  // Only leader-originated traffic counts as evidence the leader is alive;
  // follower-to-follower chatter (promises, catchup requests) must not
  // suppress failure detection.
  switch (msg.value().type) {
    case consensus::PaxosMsgType::kPrepare:
    case consensus::PaxosMsgType::kAccept:
    case consensus::PaxosMsgType::kCommit:
      last_leader_contact_ = Now();
      break;
    default:
      break;
  }
  if (config_.store_commit_latency > 0 &&
      msg.value().type == consensus::PaxosMsgType::kAccept) {
    // Model the fsync an acceptor performs before acknowledging.
    auto accept = std::move(msg).value();
    AfterCpu(config_.store_commit_latency,
             [this, accept = std::move(accept)] { paxos_->HandleMessage(accept); });
    return;
  }
  paxos_->HandleMessage(msg.value());
}

uint32_t Monitor::LeaderHint() const {
  // The low 16 ballot bits carry the node id of the ballot owner.
  uint64_t ballot = paxos_->promised_ballot();
  return static_cast<uint32_t>(ballot & 0xffff);
}

void Monitor::HandleCommand(const sim::Envelope& request) {
  if (!paxos_->IsLeader()) {
    // Forward to the believed leader and relay the reply back.
    uint32_t leader = LeaderHint();
    if (leader == name().id || std::find(quorum_.begin(), quorum_.end(), leader) ==
                                   quorum_.end()) {
      ReplyError(request, mal::Status::Unavailable("no monitor leader known"));
      return;
    }
    sim::Envelope original = request;
    SendRequest(sim::EntityName::Mon(leader), kMsgMonCommand, request.payload,
                [this, original](mal::Status status, const sim::Envelope& reply) {
                  if (status.ok()) {
                    Reply(original, reply.payload);
                  } else {
                    ReplyError(original, status);
                  }
                });
    return;
  }
  mal::Decoder dec(request.payload);
  Transaction txn = Transaction::DecodeOne(&dec);
  if (!dec.ok()) {
    ReplyError(request, mal::Status::Corruption("bad transaction"));
    return;
  }
  pending_batch_.push_back(std::move(txn));
  waiting_acks_.emplace_back(next_batch_id_, request);
}

void Monitor::ProposeBatch() {
  if (!paxos_->IsLeader() || pending_batch_.empty()) {
    return;
  }
  mal::Buffer value;
  mal::Encoder enc(&value);
  enc.PutU64(next_batch_id_);
  enc.PutU32(name().id);
  Transaction::EncodeBatch(&enc, pending_batch_);
  perf_.Inc("mon.paxos.proposals");
  perf_.Inc("mon.paxos.proposed_txns", pending_batch_.size());
  pending_batch_.clear();
  ++next_batch_id_;

  if (config_.store_commit_latency > 0) {
    AfterCpu(config_.store_commit_latency,
             [this, value = std::move(value)] { paxos_->Propose(value); });
  } else {
    paxos_->Propose(std::move(value));
  }
}

void Monitor::ApplyCommitted(const mal::Buffer& value) {
  mal::Decoder dec(value);
  uint64_t batch_id = dec.GetU64();
  uint32_t proposer = dec.GetU32();
  std::vector<Transaction> batch = Transaction::DecodeBatch(&dec);
  ++applied_batches_;
  perf_.Inc("mon.paxos.commits");

  bool osd_dirty = false;
  bool mds_dirty = false;
  for (const Transaction& txn : batch) {
    ApplyTransaction(txn, &osd_dirty, &mds_dirty);
  }
  if (osd_dirty) {
    ++osd_map_.epoch;
    PushMap(MapKind::kOsdMap);
  }
  if (mds_dirty) {
    ++mds_map_.epoch;
    PushMap(MapKind::kMdsMap);
  }
  perf_.Set("mon.osdmap_epoch", static_cast<double>(osd_map_.epoch));
  perf_.Set("mon.mdsmap_epoch", static_cast<double>(mds_map_.epoch));
  if (on_apply) {
    on_apply(batch);
  }
  // Ack the requests that were folded into this batch (proposer only).
  if (proposer == name().id) {
    auto it = waiting_acks_.begin();
    while (it != waiting_acks_.end()) {
      if (it->first == batch_id) {
        mal::Buffer ack;
        mal::Encoder enc(&ack);
        enc.PutU64(osd_map_.epoch);
        enc.PutU64(mds_map_.epoch);
        Reply(it->second, std::move(ack));
        it = waiting_acks_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Monitor::ApplyTransaction(const Transaction& txn, bool* osd_dirty, bool* mds_dirty) {
  switch (txn.op) {
    case Transaction::Op::kSetServiceMetadata:
      if (txn.map_kind == MapKind::kOsdMap) {
        osd_map_.service_metadata[txn.key] = txn.value;
        *osd_dirty = true;
      } else {
        mds_map_.service_metadata[txn.key] = txn.value;
        *mds_dirty = true;
      }
      break;
    case Transaction::Op::kOsdBoot:
      osd_map_.osds[txn.daemon_id].up = true;
      *osd_dirty = true;
      break;
    case Transaction::Op::kOsdFail:
      osd_map_.osds[txn.daemon_id].up = false;
      *osd_dirty = true;
      break;
    case Transaction::Op::kMdsBoot: {
      MdsInfo& info = mds_map_.mds[txn.daemon_id];
      info.state = MdsState::kActive;
      if (info.rank < 0) {
        int32_t max_rank = -1;
        for (const auto& [id, other] : mds_map_.mds) {
          max_rank = std::max(max_rank, other.rank);
        }
        info.rank = max_rank + 1;
      }
      *mds_dirty = true;
      break;
    }
    case Transaction::Op::kMdsFail:
      mds_map_.mds[txn.daemon_id].state = MdsState::kFailed;
      *mds_dirty = true;
      break;
    case Transaction::Op::kSetPgCount:
      osd_map_.pg_count = static_cast<uint32_t>(std::stoul(txn.value));
      *osd_dirty = true;
      break;
  }
}

mal::Buffer Monitor::EncodeMap(MapKind kind) const {
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  MapUpdate update;
  update.kind = kind;
  mal::Encoder map_enc(&update.map_payload);
  if (kind == MapKind::kOsdMap) {
    osd_map_.Encode(&map_enc);
  } else {
    mds_map_.Encode(&map_enc);
  }
  update.Encode(&enc);
  return payload;
}

void Monitor::PushMap(MapKind kind) {
  const auto& subscribers =
      kind == MapKind::kOsdMap ? osd_subscribers_ : mds_subscribers_;
  for (const sim::EntityName& sub : subscribers) {
    SendOneWay(sub, kMsgMapUpdate, EncodeMap(kind));
  }
}

void Monitor::HandleGetMap(const sim::Envelope& request, GetMapRequest req) {
  Reply(request, EncodeMap(req.kind));
}

void Monitor::HandleSubscribe(const sim::Envelope& request, SubscribeRequest req) {
  if (req.kind == MapKind::kOsdMap) {
    osd_subscribers_.insert(req.subscriber);
  } else {
    mds_subscribers_.insert(req.subscriber);
  }
  Epoch current = req.kind == MapKind::kOsdMap ? osd_map_.epoch : mds_map_.epoch;
  if (current > req.have_epoch) {
    SendOneWay(req.subscriber, kMsgMapUpdate, EncodeMap(req.kind));
  }
  Reply(request, mal::Buffer());
}

void Monitor::AppendClusterLog(ClusterLogEntry entry) {
  // Entries can arrive out of order (one-way sends race); keep the log
  // ordered by the source timestamp so operators see causal order.
  auto pos = std::upper_bound(cluster_log_.begin(), cluster_log_.end(), entry,
                              [](const ClusterLogEntry& a, const ClusterLogEntry& b) {
                                return std::tie(a.time_ns, a.source, a.seq) <
                                       std::tie(b.time_ns, b.source, b.seq);
                              });
  cluster_log_.insert(pos, std::move(entry));
  perf_.Inc("mon.cluster_log_entries");
}

void Monitor::HandleLogEntry(const sim::Envelope& request, ClusterLogEntry entry) {
  AppendClusterLog(std::move(entry));
  // Fan out so every monitor holds the log (centralized view, replicated).
  for (uint32_t peer : quorum_) {
    if (peer != name().id && request.from.type != sim::EntityType::kMon) {
      SendOneWay(sim::EntityName::Mon(peer), kMsgLogEntry, request.payload);
    }
  }
  if (request.rpc_id != 0 && request.from.type != sim::EntityType::kMon) {
    Reply(request, mal::Buffer());
  }
}

void Monitor::HandleGetClusterLog(const sim::Envelope& request) {
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutVarU64(cluster_log_.size());
  for (const ClusterLogEntry& entry : cluster_log_) {
    entry.Encode(&enc);
  }
  Reply(request, std::move(payload));
}

void Monitor::HandlePerfReport(const sim::Envelope& request) {
  mal::PerfSnapshot snap;
  if (!mal::PerfSnapshot::Decode(request.payload, &snap).ok()) {
    MAL_WARN(name().ToString()) << "bad perf report from " << request.from.ToString();
    return;
  }
  perf_.Inc("mon.perf_reports");
  if (telemetry_enabled()) {
    series_.Ingest(snap);
  }
  // Keep only the latest snapshot per entity: reports carry cumulative
  // counters, so the newest one supersedes everything before it.
  perf_reports_[snap.entity] = std::move(snap);
}

void Monitor::TelemetryTick() {
  // Fold our own registry in so mon.* metrics are watchable like any
  // daemon's (the monitor never sends itself a kMsgPerfReport).
  series_.Ingest(perf_.Snapshot(name().ToString(), Now()));
  std::vector<telemetry::HealthEngine::Transition> transitions =
      health_.Evaluate(Now());
  for (const auto& t : transitions) {
    perf_.Inc(t.raised ? "mon.health.raised" : "mon.health.cleared");
    ClusterLogEntry entry;
    entry.time_ns = Now();
    entry.seq = ++health_log_seq_;
    entry.source = name().ToString();
    entry.severity = !t.raised                                        ? "INFO"
                     : t.severity == telemetry::HealthSeverity::kErr ? "ERROR"
                                                                     : "WARN";
    entry.message = t.text;
    mal::Buffer payload;
    mal::Encoder enc(&payload);
    entry.Encode(&enc);
    AppendClusterLog(std::move(entry));
    // Replicate the health edge to peer monitors like any log entry.
    for (uint32_t peer : quorum_) {
      if (peer != name().id) {
        SendOneWay(sim::EntityName::Mon(peer), kMsgLogEntry, payload);
      }
    }
  }
  perf_.Set("mon.health.status", static_cast<double>(health_.Overall()));
  perf_.Set("mon.telemetry.series", static_cast<double>(series_.series_count()));
  // Health-rule script-engine counters and the process-wide compile cache,
  // lazily created so rule-free clusters keep identical perf dumps.
  const script::EngineStats sstats = health_.ConsumeScriptStats();
  const std::pair<const char*, uint64_t> kScriptCounters[] = {
      {"mon.script.instructions", sstats.instructions},
      {"mon.script.vm_runs", sstats.vm_runs},
      {"mon.script.oracle_runs", sstats.oracle_runs},
      {"mon.script.ic_hits", sstats.ic_hits},
      {"mon.script.ic_misses", sstats.ic_misses},
      {"mon.script.print_dropped", sstats.print_dropped},
  };
  for (const auto& [cname, delta] : kScriptCounters) {
    if (delta != 0) {
      perf_.Inc(cname, delta);
    }
  }
}

mal::Status Monitor::InstallHealthRule(const std::string& rule_name,
                                       const std::string& source,
                                       std::map<std::string, double> params) {
  return health_.InstallRule(rule_name, source, std::move(params));
}

std::string Monitor::HealthJson() const { return health_.ToJson(Now()); }

void Monitor::HandleQuerySeries(const sim::Envelope& request, QuerySeriesRequest req) {
  std::vector<telemetry::Window> windows =
      series_.Query(req.entity, req.metric,
                    static_cast<telemetry::Resolution>(req.resolution), req.since_ns);
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  enc.PutVarU64(windows.size());
  for (const telemetry::Window& w : windows) {
    w.Encode(&enc);
  }
  Reply(request, std::move(payload));
}

void Monitor::HandleGetHealth(const sim::Envelope& request) {
  Reply(request, mal::Buffer::FromString(HealthJson()));
}

std::string Monitor::PerfDumpJson() const {
  std::vector<mal::PerfSnapshot> snapshots;
  snapshots.reserve(perf_reports_.size() + 1);
  snapshots.push_back(perf_.Snapshot(name().ToString(), Now()));
  // Network-wide delivery/drop/chaos counters ride on the monitor's own
  // snapshot copy (net.* rows; see docs/observability.md). Injected at dump
  // time rather than stored in the registry so the periodic perf-report
  // message stream is byte-identical whether or not anyone ever dumps.
  const sim::Network* net = network();
  auto& rows = snapshots.front().counters;
  rows["net.messages_sent"] = net->messages_sent();
  rows["net.messages_delivered"] = net->messages_delivered();
  rows["net.bytes_sent"] = net->bytes_sent();
  rows["net.dropped_crashed"] = net->dropped_crashed();
  rows["net.dropped_partitioned"] = net->dropped_partitioned();
  rows["net.dropped_crashed_inflight"] = net->dropped_crashed_inflight();
  rows["net.dropped_unattached"] = net->dropped_unattached();
  rows["net.dropped_total"] = net->dropped_total();
  rows["net.chaos_lost"] = net->chaos_lost();
  rows["net.chaos_duplicated"] = net->chaos_duplicated();
  rows["net.chaos_reordered"] = net->chaos_reordered();
  // The MalScript compile cache is process-wide (shared across clusters in
  // one process), so its counters are injected at dump time like net.*:
  // stored in the registry they would leak cache warmth from a previous
  // same-process run into the telemetry series and break same-seed
  // byte-identity.
  const script::CompileCacheStats cache = script::GetCompileCacheStats();
  if (cache.hits + cache.misses != 0) {
    rows["mon.script.compile_cache.hits"] = cache.hits;
    rows["mon.script.compile_cache.misses"] = cache.misses;
  }
  for (const auto& [entity, snap] : perf_reports_) {
    if (entity != name().ToString()) {
      snapshots.push_back(snap);
    }
  }
  mal::PerfDumpOptions options;
  options.stale_after_ns = config_.stale_report_age;
  if (telemetry_enabled()) {
    options.sections.emplace_back("telemetry", series_.ToJson(Now()));
    options.sections.emplace_back("health", health_.ToJson(Now()));
  }
  // The per-actor profiler is a process-global collector like the trace
  // collector; when a harness installed one, its table rides the dump.
  if (const sim::Profiler* profiler = sim::Profiler::Current()) {
    options.sections.emplace_back("profile", profiler->ToJson());
  }
  return mal::PerfDumpToJson(snapshots, Now(), options);
}

void Monitor::HandleGetPerfDump(const sim::Envelope& request) {
  Reply(request, mal::Buffer::FromString(PerfDumpJson()));
}

}  // namespace mal::mon
