// Wire messages for the monitor subsystem (envelope types 100-199).
#ifndef MALACOLOGY_MON_MESSAGES_H_
#define MALACOLOGY_MON_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/mon/maps.h"
#include "src/sim/network.h"

namespace mal::mon {

enum MsgType : uint32_t {
  kMsgPaxos = 100,        // monitor <-> monitor consensus traffic
  kMsgMonCommand = 101,   // client/daemon -> monitor transaction
  kMsgGetMap = 102,       // fetch current map of a kind
  kMsgSubscribe = 103,    // register for push updates of a map
  kMsgMapUpdate = 104,    // monitor -> subscriber push (one-way)
  kMsgLogEntry = 105,     // daemon -> monitor centralized cluster log
  kMsgGetClusterLog = 106,
  kMsgPerfReport = 107,   // daemon -> monitor perf-counter snapshot (one-way)
  kMsgGetPerfDump = 108,  // fetch the cluster-wide perf dump (JSON)
  kMsgQuerySeries = 109,  // query the monitor's telemetry time-series store
  kMsgGetHealth = 110,    // fetch the ClusterHealth JSON
};

// A transaction applied to monitor state through Paxos. One MonCommand
// request carries one transaction; the leader batches all transactions
// accumulated during a proposal interval into a single Paxos value.
struct Transaction {
  enum class Op : uint8_t {
    kSetServiceMetadata = 0,  // map_kind, key, value
    kOsdBoot = 1,             // daemon_id
    kOsdFail = 2,             // daemon_id
    kMdsBoot = 3,             // daemon_id
    kMdsFail = 4,             // daemon_id
    kSetPgCount = 5,          // number in `value`
  };

  Op op = Op::kSetServiceMetadata;
  MapKind map_kind = MapKind::kOsdMap;
  uint32_t daemon_id = 0;
  std::string key;
  std::string value;

  void Encode(mal::Encoder* enc) const;
  static Transaction DecodeOne(mal::Decoder* dec);

  static void EncodeBatch(mal::Encoder* enc, const std::vector<Transaction>& batch);
  static std::vector<Transaction> DecodeBatch(mal::Decoder* dec);
};

struct GetMapRequest {
  MapKind kind = MapKind::kOsdMap;
  void Encode(mal::Encoder* enc) const { enc->PutU8(static_cast<uint8_t>(kind)); }
  static GetMapRequest Decode(mal::Decoder* dec) {
    return {static_cast<MapKind>(dec->GetU8())};
  }
};

struct SubscribeRequest {
  MapKind kind = MapKind::kOsdMap;
  Epoch have_epoch = 0;  // monitor replies immediately if it has newer
  sim::EntityName subscriber;

  void Encode(mal::Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(kind));
    enc->PutU64(have_epoch);
    subscriber.Encode(enc);
  }
  static SubscribeRequest Decode(mal::Decoder* dec) {
    SubscribeRequest req;
    req.kind = static_cast<MapKind>(dec->GetU8());
    req.have_epoch = dec->GetU64();
    req.subscriber = sim::EntityName::Decode(dec);
    return req;
  }
};

// Map push: kind tag + encoded map.
struct MapUpdate {
  MapKind kind = MapKind::kOsdMap;
  mal::Buffer map_payload;

  void Encode(mal::Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(kind));
    enc->PutBuffer(map_payload);
  }
  static MapUpdate Decode(mal::Decoder* dec) {
    MapUpdate update;
    update.kind = static_cast<MapKind>(dec->GetU8());
    update.map_payload = dec->GetBuffer();
    return update;
  }
};

// Query against the monitor's telemetry series store (kMsgQuerySeries).
// `resolution` matches telemetry::Resolution: 0 = raw, 1 = 10s, 2 = 60s.
// The reply is a count-prefixed list of telemetry::Window records.
struct QuerySeriesRequest {
  std::string entity;
  std::string metric;
  uint8_t resolution = 0;
  uint64_t since_ns = 0;

  void Encode(mal::Encoder* enc) const {
    enc->PutString(entity);
    enc->PutString(metric);
    enc->PutU8(resolution);
    enc->PutU64(since_ns);
  }
  static QuerySeriesRequest Decode(mal::Decoder* dec) {
    QuerySeriesRequest req;
    req.entity = dec->GetString();
    req.metric = dec->GetString();
    req.resolution = dec->GetU8();
    req.since_ns = dec->GetU64();
    return req;
  }
};

// Centralized cluster log entry (paper §5.1.3: "Mantle re-uses the
// centralized logging features of the monitoring service").
struct ClusterLogEntry {
  uint64_t time_ns = 0;
  uint64_t seq = 0;      // per-source sequence, breaks same-timestamp ties
  std::string source;    // e.g. "mds.2"
  std::string severity;  // "INFO" | "WARN" | "ERROR"
  std::string message;

  void Encode(mal::Encoder* enc) const {
    enc->PutU64(time_ns);
    enc->PutU64(seq);
    enc->PutString(source);
    enc->PutString(severity);
    enc->PutString(message);
  }
  static ClusterLogEntry Decode(mal::Decoder* dec) {
    ClusterLogEntry e;
    e.time_ns = dec->GetU64();
    e.seq = dec->GetU64();
    e.source = dec->GetString();
    e.severity = dec->GetString();
    e.message = dec->GetString();
    return e;
  }
};

}  // namespace mal::mon

#endif  // MALACOLOGY_MON_MESSAGES_H_
