// Monitor daemon: the consensus heart of the cluster.
//
// Each Monitor actor embeds a Paxos node. Client/daemon transactions are
// forwarded to the current leader, batched for one proposal interval
// (paper §6.1.2: "By default Paxos proposals occur periodically with a
// 1 second interval in order to accumulate updates ... we were able to
// decrease this interval to an average of 222 ms"), committed through
// Paxos, applied to the cluster maps, and pushed to subscribers.
//
// The monitor also hosts the centralized cluster log that Mantle uses for
// warnings/errors (paper §5.1.3).
#ifndef MALACOLOGY_MON_MONITOR_H_
#define MALACOLOGY_MON_MONITOR_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/perf.h"
#include "src/consensus/paxos.h"
#include "src/mon/maps.h"
#include "src/mon/messages.h"
#include "src/sim/actor.h"
#include "src/svc/dispatch.h"
#include "src/telemetry/health.h"
#include "src/telemetry/series.h"

namespace mal::mon {

struct MonitorConfig {
  // Time the leader accumulates transactions before proposing.
  sim::Time proposal_interval = 1 * sim::kSecond;
  // Added to each proposal to model the commit fsync on the monitor store
  // (the paper contrasts RAM-backed vs HDD-backed monitors in Fig 8).
  sim::Time store_commit_latency = 0;
  sim::Time retransmit_interval = 500 * sim::kMillisecond;
  sim::Time election_timeout = 2 * sim::kSecond;
  // Bounded inbox depth for admission control; 0 disables (see svc/).
  size_t inbox_depth = 0;
  // Telemetry rollup/health-evaluation tick. 0 disables the whole telemetry
  // layer (no series ingestion, no rules, no extra simulator events), which
  // keeps defaults-off runs byte-identical to pre-telemetry builds.
  sim::Time telemetry_interval = 0;
  // Entities whose last perf report is older than this are flagged stale in
  // PerfDumpJson (and by the stale_daemon health rule, which warns at half).
  sim::Time stale_report_age = 10 * sim::kSecond;
  // Install the shipped MalScript health rules when telemetry is on.
  bool builtin_health_rules = true;
};

class Monitor : public sim::Actor {
 public:
  Monitor(sim::Simulator* simulator, sim::Network* network, uint32_t id,
          std::vector<uint32_t> quorum, MonitorConfig config = {});

  // Starts timers; the lowest-id monitor campaigns for leadership.
  void Boot();

  bool IsLeader() const { return paxos_->IsLeader(); }
  // Paxos introspection for the chaos invariant checkers.
  uint64_t paxos_ballot() const { return paxos_->current_ballot(); }
  uint64_t paxos_promised() const { return paxos_->promised_ballot(); }
  uint64_t paxos_committed_through() const { return paxos_->committed_through(); }
  const OsdMap& osd_map() const { return osd_map_; }
  const MdsMap& mds_map() const { return mds_map_; }
  const std::vector<ClusterLogEntry>& cluster_log() const { return cluster_log_; }

  // Cluster-wide perf view: this monitor's own registry plus the latest
  // snapshot pushed by each daemon/client (kMsgPerfReport). Also served over
  // the wire via kMsgGetPerfDump.
  std::string PerfDumpJson() const;
  mal::PerfRegistry& perf() { return perf_; }
  const std::map<std::string, mal::PerfSnapshot>& perf_reports() const {
    return perf_reports_;
  }

  // Telemetry layer (active when config.telemetry_interval > 0): every perf
  // report is folded into the series store, and each tick evaluates the
  // MalScript health rules against it (see src/telemetry/ and
  // docs/telemetry.md).
  bool telemetry_enabled() const { return config_.telemetry_interval > 0; }
  const telemetry::SeriesStore& series() const { return series_; }
  telemetry::HealthEngine& health() { return health_; }
  const telemetry::HealthEngine& health() const { return health_; }
  // Installs/overrides an operator health rule (tests and benches inject
  // custom ones the same way the builtins are installed).
  mal::Status InstallHealthRule(const std::string& name, const std::string& source,
                                std::map<std::string, double> params = {});
  std::string HealthJson() const;

  // Observer hook for experiments: fired when a committed transaction batch
  // has been applied (after map epochs bump).
  std::function<void(const std::vector<Transaction>&)> on_apply;

  void Crash() override;
  void Recover() override;

 protected:
  void HandleRequest(const sim::Envelope& request) override;

 private:
  void RegisterHandlers();

  void HandlePaxos(const sim::Envelope& request);
  void HandleCommand(const sim::Envelope& request);
  void HandleGetMap(const sim::Envelope& request, GetMapRequest req);
  void HandleSubscribe(const sim::Envelope& request, SubscribeRequest req);
  void HandleLogEntry(const sim::Envelope& request, ClusterLogEntry entry);
  void HandleGetClusterLog(const sim::Envelope& request);
  void HandlePerfReport(const sim::Envelope& request);
  void HandleGetPerfDump(const sim::Envelope& request);
  void HandleQuerySeries(const sim::Envelope& request, QuerySeriesRequest req);
  void HandleGetHealth(const sim::Envelope& request);

  void TelemetryTick();
  void AppendClusterLog(ClusterLogEntry entry);

  void ProposeBatch();
  void ApplyCommitted(const mal::Buffer& value);
  void ApplyTransaction(const Transaction& txn, bool* osd_dirty, bool* mds_dirty);
  void PushMap(MapKind kind);
  mal::Buffer EncodeMap(MapKind kind) const;
  uint32_t LeaderHint() const;

  MonitorConfig config_;
  std::vector<uint32_t> quorum_;
  svc::ServiceDispatcher dispatcher_{this};
  std::unique_ptr<consensus::PaxosNode> paxos_;

  OsdMap osd_map_;
  MdsMap mds_map_;
  std::vector<ClusterLogEntry> cluster_log_;
  mal::PerfRegistry perf_;
  std::map<std::string, mal::PerfSnapshot> perf_reports_;  // entity -> latest
  telemetry::SeriesStore series_;
  telemetry::HealthEngine health_{&series_};
  uint64_t health_log_seq_ = 0;

  std::vector<Transaction> pending_batch_;
  // Requests waiting for their transaction to commit: batch sequence ->
  // envelopes to ack. Keyed by the batch id we assign when proposing.
  std::vector<std::pair<uint64_t, sim::Envelope>> waiting_acks_;
  uint64_t next_batch_id_ = 1;
  uint64_t applied_batches_ = 0;

  std::set<sim::EntityName> osd_subscribers_;
  std::set<sim::EntityName> mds_subscribers_;
  sim::Time last_leader_contact_ = 0;
};

}  // namespace mal::mon

#endif  // MALACOLOGY_MON_MONITOR_H_
