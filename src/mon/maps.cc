#include "src/mon/maps.h"

namespace mal::mon {

uint32_t OsdMap::NumUp() const {
  uint32_t n = 0;
  for (const auto& [id, info] : osds) {
    if (info.up) {
      ++n;
    }
  }
  return n;
}

void OsdMap::Encode(mal::Encoder* enc) const {
  enc->PutU64(epoch);
  enc->PutU32(pg_count);
  enc->PutVarU64(osds.size());
  for (const auto& [id, info] : osds) {
    enc->PutU32(id);
    enc->PutBool(info.up);
    enc->PutF64(info.weight);
  }
  EncodeStringMap(enc, service_metadata);
}

mal::Result<OsdMap> OsdMap::Decode(mal::Decoder* dec) {
  OsdMap map;
  map.epoch = dec->GetU64();
  map.pg_count = dec->GetU32();
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    uint32_t id = dec->GetU32();
    OsdInfo info;
    info.up = dec->GetBool();
    info.weight = dec->GetF64();
    map.osds[id] = info;
  }
  map.service_metadata = DecodeStringMap(dec);
  mal::Status s = dec->Finish();
  if (!s.ok()) {
    return s;
  }
  return map;
}

uint32_t MdsMap::NumActive() const {
  uint32_t n = 0;
  for (const auto& [id, info] : mds) {
    if (info.state == MdsState::kActive) {
      ++n;
    }
  }
  return n;
}

void MdsMap::Encode(mal::Encoder* enc) const {
  enc->PutU64(epoch);
  enc->PutVarU64(mds.size());
  for (const auto& [id, info] : mds) {
    enc->PutU32(id);
    enc->PutU8(static_cast<uint8_t>(info.state));
    enc->PutI64(info.rank);
  }
  EncodeStringMap(enc, service_metadata);
}

mal::Result<MdsMap> MdsMap::Decode(mal::Decoder* dec) {
  MdsMap map;
  map.epoch = dec->GetU64();
  uint64_t n = dec->GetVarU64();
  for (uint64_t i = 0; i < n && dec->ok(); ++i) {
    uint32_t id = dec->GetU32();
    MdsInfo info;
    info.state = static_cast<MdsState>(dec->GetU8());
    info.rank = static_cast<int32_t>(dec->GetI64());
    map.mds[id] = info;
  }
  map.service_metadata = DecodeStringMap(dec);
  mal::Status s = dec->Finish();
  if (!s.ok()) {
    return s;
  }
  return map;
}

std::string PoolLayout::Format() const {
  return (kind == Kind::kErasure ? "ec:" : "replicated:") + std::to_string(width);
}

std::optional<PoolLayout> PoolLayout::Parse(const std::string& s) {
  size_t colon = s.find(':');
  if (colon == std::string::npos || colon + 1 >= s.size()) {
    return std::nullopt;
  }
  PoolLayout layout;
  std::string kind = s.substr(0, colon);
  if (kind == "replicated") {
    layout.kind = Kind::kReplicated;
  } else if (kind == "ec") {
    layout.kind = Kind::kErasure;
  } else {
    return std::nullopt;
  }
  uint32_t width = 0;
  for (size_t i = colon + 1; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return std::nullopt;
    }
    width = width * 10 + static_cast<uint32_t>(s[i] - '0');
  }
  if (width == 0) {
    return std::nullopt;
  }
  layout.width = width;
  return layout;
}

std::optional<PoolLayout> PoolLayoutOf(const OsdMap& map, const std::string& pool) {
  auto it = map.service_metadata.find(PoolKey(pool));
  if (it == map.service_metadata.end()) {
    return std::nullopt;
  }
  return PoolLayout::Parse(it->second);
}

std::optional<uint32_t> SeqOwnerOf(const MdsMap& map, const std::string& path) {
  auto it = map.service_metadata.find(SeqOwnerKey(path));
  if (it == map.service_metadata.end() || it->second.empty()) {
    return std::nullopt;
  }
  uint32_t rank = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    rank = rank * 10 + static_cast<uint32_t>(c - '0');
  }
  return rank;
}

}  // namespace mal::mon
