// Cluster maps: epoch-versioned membership and service metadata, mirroring
// Ceph's OSDMap and MDSMap. The Service Metadata interface (paper §4.1) is
// the `service_metadata` key-value section carried by each map: Malacology
// "provides a generic API for adding arbitrary values to existing subsystem
// cluster maps", which is how object-interface versions and balancer-policy
// versions propagate consistently.
#ifndef MALACOLOGY_MON_MAPS_H_
#define MALACOLOGY_MON_MAPS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace mal::mon {

using Epoch = uint64_t;

// Well-known service-metadata keys.
inline constexpr char kClsInterfaceKeyPrefix[] = "cls.";      // cls.<class>: version
inline constexpr char kMantleBalancerVersionKey[] = "mantle.balancer_version";
// Sequencer-ownership map entries (one per sharded kSequencer inode):
// seq.owner.<path> -> decimal MDS rank. The MdsMap epoch doubles as the
// ownership-map epoch carried in kWrongRank redirects.
inline constexpr char kSeqOwnerKeyPrefix[] = "seq.owner.";
// Pool-table entries: pool.<name> -> layout ("replicated:<n>" | "ec:<k>").
// The pool table rides the OsdMap's Service Metadata section, so creating a
// pool is one kSetServiceMetadata transaction and propagation reuses the
// Paxos + push + gossip machinery; clusters with no pools carry no entries
// and encode byte-identically to the pre-pool wire format.
inline constexpr char kPoolKeyPrefix[] = "pool.";

inline std::string SeqOwnerKey(const std::string& path) {
  return std::string(kSeqOwnerKeyPrefix) + path;
}

inline std::string PoolKey(const std::string& pool) {
  return std::string(kPoolKeyPrefix) + pool;
}

// Data-protection layout of one pool. `width` is the replica count for
// replicated pools and the data-shard count k for erasure pools (objects
// stripe across k+1 shard objects, the +1 being XOR parity).
struct PoolLayout {
  enum class Kind : uint8_t { kReplicated = 0, kErasure = 1 };
  Kind kind = Kind::kReplicated;
  uint32_t width = 3;

  uint32_t num_shards() const { return kind == Kind::kErasure ? width + 1 : width; }
  std::string Format() const;
  static std::optional<PoolLayout> Parse(const std::string& s);
  static PoolLayout Replicated(uint32_t n) { return {Kind::kReplicated, n}; }
  static PoolLayout Erasure(uint32_t k) { return {Kind::kErasure, k}; }
};

struct OsdInfo {
  bool up = false;
  double weight = 1.0;
};

// Map of object storage daemons plus placement-group count.
struct OsdMap {
  Epoch epoch = 0;
  uint32_t pg_count = 128;
  std::map<uint32_t, OsdInfo> osds;
  std::map<std::string, std::string> service_metadata;

  uint32_t NumUp() const;
  void Encode(mal::Encoder* enc) const;
  static mal::Result<OsdMap> Decode(mal::Decoder* dec);
};

enum class MdsState : uint8_t { kStandby = 0, kActive = 1, kStopping = 2, kFailed = 3 };

struct MdsInfo {
  MdsState state = MdsState::kStandby;
  // Rank within the active metadata cluster (which subtrees it owns is the
  // MDS's own business; the map only tracks membership).
  int32_t rank = -1;
};

struct MdsMap {
  Epoch epoch = 0;
  std::map<uint32_t, MdsInfo> mds;
  std::map<std::string, std::string> service_metadata;

  uint32_t NumActive() const;
  void Encode(mal::Encoder* enc) const;
  static mal::Result<MdsMap> Decode(mal::Decoder* dec);
};

// Published owner rank for a sequencer path, or nullopt when the path has
// no ownership entry (legacy single-sequencer placement).
std::optional<uint32_t> SeqOwnerOf(const MdsMap& map, const std::string& path);

// Layout of a registered pool, or nullopt when `pool` has no table entry
// (oids outside any pool keep the legacy default placement).
std::optional<PoolLayout> PoolLayoutOf(const OsdMap& map, const std::string& pool);

// Which map a transaction or subscription targets.
enum class MapKind : uint8_t { kOsdMap = 0, kMdsMap = 1 };

}  // namespace mal::mon

#endif  // MALACOLOGY_MON_MAPS_H_
