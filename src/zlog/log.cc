#include "src/zlog/log.h"

#include <algorithm>
#include <map>

#include "src/mon/maps.h"

namespace mal::zlog {

using cls::ZlogOps;

namespace {

uint64_t ParseU64(const std::string& s) {
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

Log::Log(sim::Actor* owner, rados::RadosClient* rados, mds::MdsClient* mds,
         LogOptions options)
    : owner_(owner),
      rados_(rados),
      mds_(mds),
      options_(std::move(options)),
      retry_policy_(options_.retry),
      retry_rng_(0x7a6c6f67ULL * 0x9e3779b97f4a7c15ULL +
                 (static_cast<uint64_t>(owner->name().type) << 32) + owner->name().id),
      sequencer_path_("/zlog/" + options_.name) {
  // max_append_retries predates RetryPolicy and stays authoritative for the
  // attempt budget (several tests and benches tune it directly).
  retry_policy_.max_attempts = options_.max_append_retries;
  views_.push_back(View{0, options_.stripe_width, 0});
}

std::string Log::EncodeViews(const std::vector<View>& views) {
  std::string out;
  for (const View& view : views) {
    if (!out.empty()) {
      out += ";";
    }
    out += std::to_string(view.epoch) + ":" + std::to_string(view.width) + ":" +
           std::to_string(view.base_pos);
  }
  return out;
}

std::vector<View> Log::DecodeViews(const std::string& encoded, uint32_t default_width) {
  std::vector<View> views;
  size_t start = 0;
  while (start < encoded.size()) {
    size_t end = encoded.find(';', start);
    if (end == std::string::npos) {
      end = encoded.size();
    }
    std::string entry = encoded.substr(start, end - start);
    size_t c1 = entry.find(':');
    size_t c2 = entry.find(':', c1 + 1);
    if (c1 != std::string::npos && c2 != std::string::npos) {
      View view;
      view.epoch = std::strtoull(entry.substr(0, c1).c_str(), nullptr, 10);
      view.width = static_cast<uint32_t>(
          std::strtoul(entry.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10));
      view.base_pos = std::strtoull(entry.substr(c2 + 1).c_str(), nullptr, 10);
      if (view.width > 0) {
        views.push_back(view);
      }
    }
    start = end + 1;
  }
  if (views.empty() || views.front().base_pos != 0) {
    views.insert(views.begin(), View{0, default_width, 0});
  }
  return views;
}

std::string Log::ObjectFor(uint64_t position) const {
  // Latest view whose base covers the position (views_ sorted by base_pos).
  const View* view = &views_.front();
  for (const View& candidate : views_) {
    if (candidate.base_pos <= position) {
      view = &candidate;
    }
  }
  uint64_t index = (position - view->base_pos) % view->width;
  if (view->epoch == 0) {
    return options_.name + "." + std::to_string(index);
  }
  return options_.name + ".v" + std::to_string(view->epoch) + "." + std::to_string(index);
}

std::vector<std::string> Log::AllObjects() const {
  std::vector<std::string> objects;
  for (const View& view : views_) {
    for (uint32_t i = 0; i < view.width; ++i) {
      if (view.epoch == 0) {
        objects.push_back(options_.name + "." + std::to_string(i));
      } else {
        objects.push_back(options_.name + ".v" + std::to_string(view.epoch) + "." +
                          std::to_string(i));
      }
    }
  }
  return objects;
}

void Log::Open(DoneHandler on_done) {
  mds::LeasePolicy policy = options_.lease;
  if (options_.sequencer_mode == SequencerMode::kRoundTrip) {
    policy.mode = mds::LeaseMode::kRoundTrip;
  }
  mds_->Create(sequencer_path_, mds::InodeType::kSequencer, policy,
               [this, on_done = std::move(on_done)](mal::Status status) {
                 if (!status.ok() && status.code() != mal::Code::kAlreadyExists) {
                   on_done(status);
                   return;
                 }
                 RefreshEpoch(on_done);
               });
}

void Log::RefreshEpoch(DoneHandler on_done) {
  if (perf_ != nullptr) {
    perf_->Inc("zlog.epoch_refreshes");
  }
  mds_->Lookup(sequencer_path_,
               [this, on_done = std::move(on_done)](mal::Status status,
                                                    const mds::MdsReply& reply) {
                 if (!status.ok()) {
                   on_done(status);
                   return;
                 }
                 auto it = reply.inode.params.find("epoch");
                 epoch_ = it == reply.inode.params.end() ? 0 : ParseU64(it->second);
                 auto views_it = reply.inode.params.find("views");
                 if (views_it != reply.inode.params.end()) {
                   views_ = DecodeViews(views_it->second, options_.stripe_width);
                 }
                 on_done(mal::Status::Ok());
               });
}

void Log::GetPosition(PositionHandler on_position) {
  if (options_.sequencer_mode == SequencerMode::kRoundTrip) {
    mds_->SeqNext(sequencer_path_, std::move(on_position));
    return;
  }
  // Cached mode: increment locally under the exclusive cap.
  if (mds_->HasCap(sequencer_path_)) {
    auto pos = mds_->LocalNext(sequencer_path_);
    if (pos.ok()) {
      on_position(mal::Status::Ok(), pos.value());
      return;
    }
    // Cap slipped away between the check and the increment; fall through.
  }
  mds_->AcquireCap(sequencer_path_,
                   [this, on_position = std::move(on_position)](mal::Status status) {
                     if (!status.ok()) {
                       on_position(status, 0);
                       return;
                     }
                     auto pos = mds_->LocalNext(sequencer_path_);
                     if (!pos.ok()) {
                       on_position(pos.status(), 0);
                       return;
                     }
                     on_position(mal::Status::Ok(), pos.value());
                   });
}

void Log::GetPositionBatch(uint64_t count, PositionHandler on_first) {
  if (options_.sequencer_mode == SequencerMode::kRoundTrip) {
    mds_->SeqNextBatch(sequencer_path_, count, std::move(on_first));
    return;
  }
  if (mds_->HasCap(sequencer_path_)) {
    auto first = mds_->LocalNextBatch(sequencer_path_, count);
    if (first.ok()) {
      on_first(mal::Status::Ok(), first.value());
      return;
    }
    // Cap slipped away between the check and the increment; fall through.
  }
  mds_->AcquireCap(sequencer_path_,
                   [this, count, on_first = std::move(on_first)](mal::Status status) {
                     if (!status.ok()) {
                       on_first(status, 0);
                       return;
                     }
                     auto first = mds_->LocalNextBatch(sequencer_path_, count);
                     if (!first.ok()) {
                       on_first(first.status(), 0);
                       return;
                     }
                     on_first(mal::Status::Ok(), first.value());
                   });
}

void Log::Append(mal::Buffer data, PositionHandler on_done) {
  if (perf_ != nullptr) {
    perf_->Inc("zlog.appends");
  }
  // Root span for the whole append: the sequencer round-trip and the OSD
  // write become children via the ambient-context propagation in the
  // actor/RPC layer.
  trace::TraceContext span;
  if (trace::Collector() != nullptr) {
    span = trace::Collector()->StartSpan("zlog.Append", owner_->name().ToString(),
                                         owner_->Now(), trace::Current());
  }
  auto wrapped = [this, span, on_done = std::move(on_done)](mal::Status status,
                                                            uint64_t position) {
    if (span.valid() && trace::Collector() != nullptr) {
      trace::Collector()->EndSpan(span, owner_->Now(),
                                  status.ok() ? "ok" : status.message());
    }
    on_done(status, position);
  };
  trace::ScopedContext scope(span.valid() ? span : trace::Current());
  AppendAttempt(std::make_shared<mal::Buffer>(std::move(data)), std::move(wrapped),
                svc::Backoff(retry_policy_));
}

// -- batched, pipelined append ---------------------------------------------------

struct Log::Batch {
  std::vector<mal::Buffer> entries;
  std::vector<uint64_t> positions;  // parallel to entries; valid on success
  BatchHandler on_done;
  trace::TraceContext span;  // root span covering queue + seq + OSD writes
  sim::Time start_ns = 0;
};

void Log::AppendBatch(std::vector<mal::Buffer> entries, BatchHandler on_done) {
  if (entries.empty()) {
    on_done(mal::Status::Ok(), {});
    return;
  }
  if (perf_ != nullptr) {
    perf_->Inc("zlog.batches");
    perf_->Inc("zlog.entries", entries.size());
  }
  auto batch = std::make_shared<Batch>();
  batch->entries = std::move(entries);
  batch->positions.resize(batch->entries.size(), 0);
  batch->on_done = std::move(on_done);
  batch->start_ns = owner_->Now();
  if (trace::Collector() != nullptr) {
    batch->span = trace::Collector()->StartSpan(
        "zlog.AppendBatch", owner_->name().ToString(), owner_->Now(), trace::Current());
  }
  batch_queue_.push_back(std::move(batch));
  PumpBatchQueue();
}

void Log::PumpBatchQueue() {
  while (inflight_ < std::max<uint32_t>(options_.max_inflight, 1) &&
         !batch_queue_.empty()) {
    std::shared_ptr<Batch> batch = batch_queue_.front();
    batch_queue_.pop_front();
    ++inflight_;
    if (perf_ != nullptr) {
      perf_->Set("zlog.inflight", inflight_);
    }
    std::vector<size_t> indices(batch->entries.size());
    for (size_t i = 0; i < indices.size(); ++i) {
      indices[i] = i;
    }
    BatchAttempt(std::move(batch), std::move(indices), svc::Backoff(retry_policy_));
  }
}

void Log::FinishBatch(std::shared_ptr<Batch> batch, mal::Status status) {
  --inflight_;
  if (perf_ != nullptr) {
    perf_->Set("zlog.inflight", inflight_);
    perf_->Observe("zlog.batch_us",
                   static_cast<double>(owner_->Now() - batch->start_ns) / 1e3);
  }
  if (batch->span.valid() && trace::Collector() != nullptr) {
    trace::Collector()->EndSpan(batch->span, owner_->Now(),
                                status.ok() ? "ok" : status.message());
  }
  batch->on_done(status, batch->positions);
  PumpBatchQueue();
}

void Log::BatchAttempt(std::shared_ptr<Batch> batch, std::vector<size_t> indices,
                       svc::Backoff backoff) {
  // Every hop of this batch — sequencer grant, per-object OSD transactions,
  // recovery — attributes to the batch's root span. PumpBatchQueue may call
  // us from another batch's completion context, so pin (or clear) the
  // ambient context explicitly.
  trace::ScopedContext scope(batch->span);
  if (backoff.attempt() > 0 && perf_ != nullptr) {
    perf_->Inc("zlog.batch_retries");
  }
  if (backoff.Exhausted()) {
    FinishBatch(std::move(batch), mal::Status::Unavailable("append retries exhausted"));
    return;
  }
  // Retry continuation: consumes one attempt from the backoff schedule,
  // waits out its (zero, at the default policy) delay, and re-enters with
  // fresh positions for the named entries.
  auto reattempt = [this, batch, backoff](std::vector<size_t> which) mutable {
    // Consume the attempt before building the continuation so the lambda
    // captures the advanced backoff.
    sim::Time delay = backoff.NextDelay(&retry_rng_);
    svc::RunAfter(owner_->simulator(), delay,
                  [this, batch, backoff, which = std::move(which)] {
                    BatchAttempt(batch, which, backoff);
                  });
  };
  // Take the count before the lambda capture moves `indices` (argument
  // evaluation order is unspecified).
  const uint64_t count = indices.size();
  GetPositionBatch(
      count,
      [this, batch, indices = std::move(indices), reattempt](mal::Status status,
                                                             uint64_t first) {
        if (status.code() == mal::Code::kAborted) {
          // Sequencer lost its state: run CORFU recovery, then retry these
          // entries under the new epoch (fresh positions).
          Recover([this, batch, indices, reattempt](mal::Status recover_status,
                                                    uint64_t) mutable {
            if (!recover_status.ok()) {
              if (ShouldTakeover(recover_status)) {
                MaybeTakeover([this, batch, indices, reattempt,
                               recover_status](mal::Status t) mutable {
                  if (t.ok()) {
                    reattempt(indices);
                  } else {
                    FinishBatch(batch, recover_status);
                  }
                });
                return;
              }
              FinishBatch(batch, recover_status);
              return;
            }
            reattempt(indices);
          });
          return;
        }
        if (!status.ok()) {
          if (ShouldTakeover(status)) {
            // The owning rank is gone (or lost the inode): attempt the
            // sharded-sequencer takeover, then retry with fresh positions
            // from the new owner.
            MaybeTakeover([this, batch, indices, reattempt, status](mal::Status t) mutable {
              if (t.ok()) {
                reattempt(indices);
              } else {
                FinishBatch(batch, status);
              }
            });
            return;
          }
          FinishBatch(batch, status);
          return;
        }
        // Assign the grant [first, first+n) and group entries by stripe
        // object: each OSD receives ONE transaction carrying all of its
        // entries for this batch.
        std::map<std::string, std::vector<cls::ZlogOps::BatchEntry>> per_object;
        std::map<std::string, std::vector<size_t>> object_indices;
        for (size_t i = 0; i < indices.size(); ++i) {
          uint64_t pos = first + i;
          batch->positions[indices[i]] = pos;
          std::string oid = ObjectFor(pos);
          per_object[oid].push_back({pos, batch->entries[indices[i]]});
          object_indices[oid].push_back(indices[i]);
        }
        std::vector<rados::RadosClient::TargetedOp> ops;
        std::vector<std::vector<size_t>> op_entries;  // parallel to ops
        ops.reserve(per_object.size());
        for (auto& [oid, batch_entries] : per_object) {
          ops.push_back({oid, rados::RadosClient::MakeExecOp(
                                  "zlog", "write_batch",
                                  cls::ZlogOps::MakeWriteBatch(epoch_, batch_entries))});
          op_entries.push_back(object_indices[oid]);
        }
        rados_->ExecuteTargeted(
            std::move(ops),
            [this, batch, reattempt, op_entries = std::move(op_entries)](
                std::vector<osd::OpResult> results) mutable {
              // Collect entries that failed and must retry with fresh
              // positions: whole targets that were fenced (stale epoch) or
              // unreachable, and individual write-once collisions.
              std::vector<size_t> retry;
              bool fenced = false;
              for (size_t j = 0; j < results.size(); ++j) {
                const osd::OpResult& r = results[j];
                if (!r.status.ok()) {
                  // Whole-target failure: fenced by a newer epoch, or the
                  // target was unreachable/aborted. Every entry retries.
                  fenced = fenced || r.status.code() == mal::Code::kStaleEpoch;
                  retry.insert(retry.end(), op_entries[j].begin(), op_entries[j].end());
                  continue;
                }
                auto codes = cls::ZlogOps::ParseWriteBatchResult(r.out);
                if (!codes.ok() || codes.value().size() != op_entries[j].size()) {
                  retry.insert(retry.end(), op_entries[j].begin(), op_entries[j].end());
                  continue;
                }
                for (size_t k = 0; k < codes.value().size(); ++k) {
                  // Per-entry invalidation: a collision (position consumed
                  // by recovery) retries alone; committed siblings stand.
                  if (codes.value()[k] != mal::Code::kOk) {
                    retry.push_back(op_entries[j][k]);
                  }
                }
              }
              if (retry.empty()) {
                FinishBatch(batch, mal::Status::Ok());
                return;
              }
              std::sort(retry.begin(), retry.end());
              if (fenced) {
                // We were sealed mid-batch: learn the new epoch, then retry
                // the invalidated entries with fresh positions.
                RefreshEpoch([this, batch, retry = std::move(retry),
                              reattempt](mal::Status refresh_status) mutable {
                  if (!refresh_status.ok()) {
                    FinishBatch(batch, refresh_status);
                    return;
                  }
                  reattempt(retry);
                });
                return;
              }
              reattempt(std::move(retry));
            });
      });
}

void Log::AppendAttempt(std::shared_ptr<mal::Buffer> data, PositionHandler on_done,
                        svc::Backoff backoff) {
  if (backoff.Exhausted()) {
    on_done(mal::Status::Unavailable("append retries exhausted"), 0);
    return;
  }
  // Retry continuation: consumes one attempt from the backoff schedule and
  // re-enters after its (zero, at the default policy) delay.
  auto reattempt = [this, data, on_done, backoff]() mutable {
    // Consume the attempt before building the continuation so the lambda
    // captures the advanced backoff.
    sim::Time delay = backoff.NextDelay(&retry_rng_);
    svc::RunAfter(owner_->simulator(), delay, [this, data, on_done, backoff] {
      AppendAttempt(data, on_done, backoff);
    });
  };
  GetPosition([this, data, on_done, reattempt](mal::Status status,
                                               uint64_t position) mutable {
    if (status.code() == mal::Code::kAborted) {
      // The sequencer lost its state (holder died): run CORFU recovery,
      // then retry the append under the new epoch.
      Recover([this, on_done, reattempt](mal::Status recover_status, uint64_t) mutable {
        if (!recover_status.ok()) {
          if (ShouldTakeover(recover_status)) {
            MaybeTakeover([on_done, reattempt, recover_status](mal::Status t) mutable {
              if (t.ok()) {
                reattempt();
              } else {
                on_done(recover_status, 0);
              }
            });
            return;
          }
          on_done(recover_status, 0);
          return;
        }
        reattempt();
      });
      return;
    }
    if (!status.ok()) {
      if (ShouldTakeover(status)) {
        // Owner change or owner crash: run the sharded-sequencer takeover
        // (epoch bump + seal, like any CORFU failover), then retry.
        MaybeTakeover([on_done, reattempt, status](mal::Status t) mutable {
          if (t.ok()) {
            reattempt();
          } else {
            on_done(status, 0);
          }
        });
        return;
      }
      on_done(status, 0);
      return;
    }
    rados_->Exec(
        ObjectFor(position), "zlog", "write", ZlogOps::MakeWrite(epoch_, position, *data),
        [this, on_done, reattempt, position](mal::Status write_status,
                                             const mal::Buffer&) mutable {
          if (write_status.code() == mal::Code::kStaleEpoch) {
            // We were fenced: learn the new epoch and retry with a fresh
            // position (ours may have been consumed by recovery).
            RefreshEpoch([on_done, reattempt](mal::Status refresh_status) mutable {
              if (!refresh_status.ok()) {
                on_done(refresh_status, 0);
                return;
              }
              reattempt();
            });
            return;
          }
          if (write_status.code() == mal::Code::kReadOnly) {
            // Position collision (post-recovery sequencer reset): retry.
            reattempt();
            return;
          }
          on_done(write_status, position);
        });
  });
}

void Log::Read(uint64_t position, ReadHandler on_data) {
  rados_->Exec(ObjectFor(position), "zlog", "read", ZlogOps::MakeRead(epoch_, position),
               [on_data = std::move(on_data)](mal::Status status, const mal::Buffer& out) {
                 if (!status.ok()) {
                   on_data(status, EntryState::kData, mal::Buffer());
                   return;
                 }
                 mal::Decoder dec(out);
                 auto state = static_cast<EntryState>(dec.GetU8());
                 mal::Buffer data = dec.GetBuffer();  // aliases the reply payload
                 on_data(mal::Status::Ok(), state, data);
               });
}

void Log::Fill(uint64_t position, DoneHandler on_done) {
  rados_->Exec(ObjectFor(position), "zlog", "fill", ZlogOps::MakeFill(epoch_, position),
               [on_done = std::move(on_done)](mal::Status status, const mal::Buffer&) {
                 on_done(status);
               });
}

void Log::Trim(uint64_t position, DoneHandler on_done) {
  rados_->Exec(ObjectFor(position), "zlog", "trim", ZlogOps::MakeTrim(epoch_, position),
               [on_done = std::move(on_done)](mal::Status status, const mal::Buffer&) {
                 on_done(status);
               });
}

void Log::CheckTail(PositionHandler on_tail) {
  if (options_.sequencer_mode == SequencerMode::kCached &&
      mds_->HasCap(sequencer_path_)) {
    // We are the sequencer: answer locally (peek without allocating by
    // reading the cached next value).
    mds_->SeqRead(sequencer_path_, std::move(on_tail));  // falls back to MDS
    return;
  }
  mds_->SeqRead(sequencer_path_, std::move(on_tail));
}

void Log::SealAndInstall(uint64_t new_epoch, std::optional<uint32_t> new_width,
                         PositionHandler on_done, bool takeover) {
  std::vector<std::string> objects = AllObjects();
  auto max_tail = std::make_shared<uint64_t>(0);
  auto pending = std::make_shared<size_t>(objects.size());
  auto failed = std::make_shared<mal::Status>();
  for (const std::string& oid : objects) {
    rados_->Exec(
        oid, "zlog", "seal", ZlogOps::MakeSeal(new_epoch),
        [this, max_tail, pending, failed, new_epoch, new_width, on_done, takeover](
            mal::Status seal_status, const mal::Buffer& out) {
          if (!seal_status.ok()) {
            if (failed->ok()) {
              *failed = seal_status;
            }
          } else {
            mal::Decoder dec(out);
            *max_tail = std::max(*max_tail, dec.GetU64());
          }
          if (--*pending != 0) {
            return;
          }
          if (!failed->ok()) {
            // Lost a seal race or a device refused: report; the caller can
            // retry (a competing recovery/reconfiguration may have won).
            on_done(*failed, 0);
            return;
          }
          // Install tail + epoch (+ the new view) into the sequencer inode
          // and clear the recovery flag.
          std::vector<View> new_views = views_;
          if (new_width.has_value()) {
            new_views.push_back(View{new_epoch, *new_width, *max_tail});
          }
          mds::ClientRequest install;
          install.op = mds::MdsOp::kSetSeqState;
          install.path = sequencer_path_;
          install.seq_value = *max_tail;
          install.params["epoch"] = std::to_string(new_epoch);
          install.params["views"] = EncodeViews(new_views);
          install.params["needs_recovery"] = "";  // erase
          if (takeover) {
            // Failover install: the target rank creates the inode if it does
            // not host it yet, with the same lease policy Open() would use.
            install.params["takeover"] = "1";
            install.inode_type = mds::InodeType::kSequencer;
            install.policy = options_.lease;
            if (options_.sequencer_mode == SequencerMode::kRoundTrip) {
              install.policy.mode = mds::LeaseMode::kRoundTrip;
            }
          }
          mds_->Request(install, [this, new_epoch, new_views, max_tail, on_done](
                                     mal::Status install_status, const mds::MdsReply&) {
            if (!install_status.ok()) {
              on_done(install_status, 0);
              return;
            }
            epoch_ = new_epoch;
            views_ = new_views;
            on_done(mal::Status::Ok(), *max_tail);
          });
        });
  }
}

bool Log::ShouldTakeover(const mal::Status& status) {
  // kUnavailable/kTimedOut: the owning rank is down or unreachable.
  // kNotFound: the ownership map named a rank that lost (or never got) the
  // inode — an aborted demotion; installing recovered state there heals it.
  return status.code() == mal::Code::kUnavailable ||
         status.code() == mal::Code::kTimedOut ||
         status.code() == mal::Code::kNotFound;
}

void Log::MaybeTakeover(DoneHandler on_done) {
  // Owner change is CORFU failover (paper §5.2.2): consult the published
  // ownership map; if this log's sequencer is sharded and the cluster has a
  // survivor, seal at a bumped epoch — fencing every grant the dead rank
  // ever issued — and install the recovered tail on the survivor. Without
  // an ownership entry (legacy single-sequencer placement) the failure is
  // surfaced unchanged.
  rados_->mon_client().GetMap(
      mon::MapKind::kMdsMap,
      [this, on_done = std::move(on_done)](mal::Status status,
                                           const mon::MapUpdate& update) {
        if (!status.ok()) {
          on_done(status);
          return;
        }
        mal::Decoder dec(update.map_payload);
        auto map = mon::MdsMap::Decode(&dec);
        if (!map.ok()) {
          on_done(map.status());
          return;
        }
        std::optional<uint32_t> owner = mon::SeqOwnerOf(map.value(), sequencer_path_);
        if (!owner.has_value()) {
          on_done(mal::Status::Unavailable("sequencer is not sharded"));
          return;
        }
        std::vector<uint32_t> active;
        for (const auto& [id, info] : map.value().mds) {
          if (info.state == mon::MdsState::kActive) {
            active.push_back(id);
          }
        }
        if (active.empty()) {
          on_done(mal::Status::Unavailable("no active mds"));
          return;
        }
        // Prefer a rank other than the (presumed dead) published owner;
        // rotate across attempts so concurrent takeovers spread out.
        uint32_t pick = active[takeover_round_++ % active.size()];
        if (pick == *owner && active.size() > 1) {
          pick = active[takeover_round_++ % active.size()];
        }
        if (perf_ != nullptr) {
          perf_->Inc("zlog.takeovers");
        }
        TakeoverInstall(pick, /*tries_left=*/4, std::move(on_done));
      });
}

void Log::TakeoverInstall(uint32_t rank, int tries_left, DoneHandler on_done) {
  // Aim the install at the chosen survivor before any MDS can redirect us
  // there; the server-side takeover directive bypasses the (stale)
  // ownership check.
  mds_->SetAuthorityHint(sequencer_path_, rank);
  SealAndInstall(
      epoch_ + 1, std::nullopt,
      [this, rank, tries_left, on_done = std::move(on_done)](mal::Status status,
                                                             uint64_t) {
        if (status.code() == mal::Code::kStaleEpoch && tries_left > 0) {
          // A competing recovery sealed higher; outbid it.
          ++epoch_;
          TakeoverInstall(rank, tries_left - 1, on_done);
          return;
        }
        on_done(status);
      },
      /*takeover=*/true);
}

void Log::Recover(PositionHandler on_recovered) {
  // Learn the latest epoch first so our seal outbids everyone sealed-so-far.
  RefreshEpoch([this, on_recovered = std::move(on_recovered)](mal::Status status) {
    if (!status.ok()) {
      on_recovered(status, 0);
      return;
    }
    SealAndInstall(epoch_ + 1, std::nullopt, std::move(on_recovered));
  });
}

void Log::Reconfigure(uint32_t new_width, PositionHandler on_done) {
  if (new_width == 0) {
    on_done(mal::Status::InvalidArgument("stripe width must be positive"), 0);
    return;
  }
  RefreshEpoch([this, new_width, on_done = std::move(on_done)](mal::Status status) {
    if (!status.ok()) {
      on_done(status, 0);
      return;
    }
    SealAndInstall(epoch_ + 1, new_width, std::move(on_done));
  });
}

}  // namespace mal::zlog
