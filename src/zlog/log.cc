#include "src/zlog/log.h"

namespace mal::zlog {

using cls::ZlogOps;

namespace {

uint64_t ParseU64(const std::string& s) {
  return s.empty() ? 0 : std::strtoull(s.c_str(), nullptr, 10);
}

}  // namespace

Log::Log(sim::Actor* owner, rados::RadosClient* rados, mds::MdsClient* mds,
         LogOptions options)
    : owner_(owner),
      rados_(rados),
      mds_(mds),
      options_(std::move(options)),
      sequencer_path_("/zlog/" + options_.name) {
  views_.push_back(View{0, options_.stripe_width, 0});
}

std::string Log::EncodeViews(const std::vector<View>& views) {
  std::string out;
  for (const View& view : views) {
    if (!out.empty()) {
      out += ";";
    }
    out += std::to_string(view.epoch) + ":" + std::to_string(view.width) + ":" +
           std::to_string(view.base_pos);
  }
  return out;
}

std::vector<View> Log::DecodeViews(const std::string& encoded, uint32_t default_width) {
  std::vector<View> views;
  size_t start = 0;
  while (start < encoded.size()) {
    size_t end = encoded.find(';', start);
    if (end == std::string::npos) {
      end = encoded.size();
    }
    std::string entry = encoded.substr(start, end - start);
    size_t c1 = entry.find(':');
    size_t c2 = entry.find(':', c1 + 1);
    if (c1 != std::string::npos && c2 != std::string::npos) {
      View view;
      view.epoch = std::strtoull(entry.substr(0, c1).c_str(), nullptr, 10);
      view.width = static_cast<uint32_t>(
          std::strtoul(entry.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10));
      view.base_pos = std::strtoull(entry.substr(c2 + 1).c_str(), nullptr, 10);
      if (view.width > 0) {
        views.push_back(view);
      }
    }
    start = end + 1;
  }
  if (views.empty() || views.front().base_pos != 0) {
    views.insert(views.begin(), View{0, default_width, 0});
  }
  return views;
}

std::string Log::ObjectFor(uint64_t position) const {
  // Latest view whose base covers the position (views_ sorted by base_pos).
  const View* view = &views_.front();
  for (const View& candidate : views_) {
    if (candidate.base_pos <= position) {
      view = &candidate;
    }
  }
  uint64_t index = (position - view->base_pos) % view->width;
  if (view->epoch == 0) {
    return options_.name + "." + std::to_string(index);
  }
  return options_.name + ".v" + std::to_string(view->epoch) + "." + std::to_string(index);
}

std::vector<std::string> Log::AllObjects() const {
  std::vector<std::string> objects;
  for (const View& view : views_) {
    for (uint32_t i = 0; i < view.width; ++i) {
      if (view.epoch == 0) {
        objects.push_back(options_.name + "." + std::to_string(i));
      } else {
        objects.push_back(options_.name + ".v" + std::to_string(view.epoch) + "." +
                          std::to_string(i));
      }
    }
  }
  return objects;
}

void Log::Open(DoneHandler on_done) {
  mds::LeasePolicy policy = options_.lease;
  if (options_.sequencer_mode == SequencerMode::kRoundTrip) {
    policy.mode = mds::LeaseMode::kRoundTrip;
  }
  mds_->Create(sequencer_path_, mds::InodeType::kSequencer, policy,
               [this, on_done = std::move(on_done)](mal::Status status) {
                 if (!status.ok() && status.code() != mal::Code::kAlreadyExists) {
                   on_done(status);
                   return;
                 }
                 RefreshEpoch(on_done);
               });
}

void Log::RefreshEpoch(DoneHandler on_done) {
  mds_->Lookup(sequencer_path_,
               [this, on_done = std::move(on_done)](mal::Status status,
                                                    const mds::MdsReply& reply) {
                 if (!status.ok()) {
                   on_done(status);
                   return;
                 }
                 auto it = reply.inode.params.find("epoch");
                 epoch_ = it == reply.inode.params.end() ? 0 : ParseU64(it->second);
                 auto views_it = reply.inode.params.find("views");
                 if (views_it != reply.inode.params.end()) {
                   views_ = DecodeViews(views_it->second, options_.stripe_width);
                 }
                 on_done(mal::Status::Ok());
               });
}

void Log::GetPosition(PositionHandler on_position) {
  if (options_.sequencer_mode == SequencerMode::kRoundTrip) {
    mds_->SeqNext(sequencer_path_, std::move(on_position));
    return;
  }
  // Cached mode: increment locally under the exclusive cap.
  if (mds_->HasCap(sequencer_path_)) {
    auto pos = mds_->LocalNext(sequencer_path_);
    if (pos.ok()) {
      on_position(mal::Status::Ok(), pos.value());
      return;
    }
    // Cap slipped away between the check and the increment; fall through.
  }
  mds_->AcquireCap(sequencer_path_,
                   [this, on_position = std::move(on_position)](mal::Status status) {
                     if (!status.ok()) {
                       on_position(status, 0);
                       return;
                     }
                     auto pos = mds_->LocalNext(sequencer_path_);
                     if (!pos.ok()) {
                       on_position(pos.status(), 0);
                       return;
                     }
                     on_position(mal::Status::Ok(), pos.value());
                   });
}

void Log::Append(mal::Buffer data, PositionHandler on_done) {
  AppendAttempt(std::make_shared<mal::Buffer>(std::move(data)), std::move(on_done), 0);
}

void Log::AppendAttempt(std::shared_ptr<mal::Buffer> data, PositionHandler on_done,
                        int attempt) {
  if (attempt >= options_.max_append_retries) {
    on_done(mal::Status::Unavailable("append retries exhausted"), 0);
    return;
  }
  GetPosition([this, data, on_done, attempt](mal::Status status, uint64_t position) {
    if (status.code() == mal::Code::kAborted) {
      // The sequencer lost its state (holder died): run CORFU recovery,
      // then retry the append under the new epoch.
      Recover([this, data, on_done, attempt](mal::Status recover_status, uint64_t) {
        if (!recover_status.ok()) {
          on_done(recover_status, 0);
          return;
        }
        AppendAttempt(data, on_done, attempt + 1);
      });
      return;
    }
    if (!status.ok()) {
      on_done(status, 0);
      return;
    }
    rados_->Exec(
        ObjectFor(position), "zlog", "write", ZlogOps::MakeWrite(epoch_, position, *data),
        [this, data, on_done, attempt, position](mal::Status write_status,
                                                 const mal::Buffer&) {
          if (write_status.code() == mal::Code::kStaleEpoch) {
            // We were fenced: learn the new epoch and retry with a fresh
            // position (ours may have been consumed by recovery).
            RefreshEpoch([this, data, on_done, attempt](mal::Status refresh_status) {
              if (!refresh_status.ok()) {
                on_done(refresh_status, 0);
                return;
              }
              AppendAttempt(data, on_done, attempt + 1);
            });
            return;
          }
          if (write_status.code() == mal::Code::kReadOnly) {
            // Position collision (post-recovery sequencer reset): retry.
            AppendAttempt(data, on_done, attempt + 1);
            return;
          }
          on_done(write_status, position);
        });
  });
}

void Log::Read(uint64_t position, ReadHandler on_data) {
  rados_->Exec(ObjectFor(position), "zlog", "read", ZlogOps::MakeRead(epoch_, position),
               [on_data = std::move(on_data)](mal::Status status, const mal::Buffer& out) {
                 if (!status.ok()) {
                   on_data(status, EntryState::kData, mal::Buffer());
                   return;
                 }
                 mal::Decoder dec(out);
                 auto state = static_cast<EntryState>(dec.GetU8());
                 mal::Buffer data = mal::Buffer::FromString(dec.GetString());
                 on_data(mal::Status::Ok(), state, data);
               });
}

void Log::Fill(uint64_t position, DoneHandler on_done) {
  rados_->Exec(ObjectFor(position), "zlog", "fill", ZlogOps::MakeFill(epoch_, position),
               [on_done = std::move(on_done)](mal::Status status, const mal::Buffer&) {
                 on_done(status);
               });
}

void Log::Trim(uint64_t position, DoneHandler on_done) {
  rados_->Exec(ObjectFor(position), "zlog", "trim", ZlogOps::MakeTrim(epoch_, position),
               [on_done = std::move(on_done)](mal::Status status, const mal::Buffer&) {
                 on_done(status);
               });
}

void Log::CheckTail(PositionHandler on_tail) {
  if (options_.sequencer_mode == SequencerMode::kCached &&
      mds_->HasCap(sequencer_path_)) {
    // We are the sequencer: answer locally (peek without allocating by
    // reading the cached next value).
    mds_->SeqRead(sequencer_path_, std::move(on_tail));  // falls back to MDS
    return;
  }
  mds_->SeqRead(sequencer_path_, std::move(on_tail));
}

void Log::SealAndInstall(uint64_t new_epoch, std::optional<uint32_t> new_width,
                         PositionHandler on_done) {
  std::vector<std::string> objects = AllObjects();
  auto max_tail = std::make_shared<uint64_t>(0);
  auto pending = std::make_shared<size_t>(objects.size());
  auto failed = std::make_shared<mal::Status>();
  for (const std::string& oid : objects) {
    rados_->Exec(
        oid, "zlog", "seal", ZlogOps::MakeSeal(new_epoch),
        [this, max_tail, pending, failed, new_epoch, new_width, on_done](
            mal::Status seal_status, const mal::Buffer& out) {
          if (!seal_status.ok()) {
            if (failed->ok()) {
              *failed = seal_status;
            }
          } else {
            mal::Decoder dec(out);
            *max_tail = std::max(*max_tail, dec.GetU64());
          }
          if (--*pending != 0) {
            return;
          }
          if (!failed->ok()) {
            // Lost a seal race or a device refused: report; the caller can
            // retry (a competing recovery/reconfiguration may have won).
            on_done(*failed, 0);
            return;
          }
          // Install tail + epoch (+ the new view) into the sequencer inode
          // and clear the recovery flag.
          std::vector<View> new_views = views_;
          if (new_width.has_value()) {
            new_views.push_back(View{new_epoch, *new_width, *max_tail});
          }
          mds::ClientRequest install;
          install.op = mds::MdsOp::kSetSeqState;
          install.path = sequencer_path_;
          install.seq_value = *max_tail;
          install.params["epoch"] = std::to_string(new_epoch);
          install.params["views"] = EncodeViews(new_views);
          install.params["needs_recovery"] = "";  // erase
          mds_->Request(install, [this, new_epoch, new_views, max_tail, on_done](
                                     mal::Status install_status, const mds::MdsReply&) {
            if (!install_status.ok()) {
              on_done(install_status, 0);
              return;
            }
            epoch_ = new_epoch;
            views_ = new_views;
            on_done(mal::Status::Ok(), *max_tail);
          });
        });
  }
}

void Log::Recover(PositionHandler on_recovered) {
  // Learn the latest epoch first so our seal outbids everyone sealed-so-far.
  RefreshEpoch([this, on_recovered = std::move(on_recovered)](mal::Status status) {
    if (!status.ok()) {
      on_recovered(status, 0);
      return;
    }
    SealAndInstall(epoch_ + 1, std::nullopt, std::move(on_recovered));
  });
}

void Log::Reconfigure(uint32_t new_width, PositionHandler on_done) {
  if (new_width == 0) {
    on_done(mal::Status::InvalidArgument("stripe width must be positive"), 0);
    return;
  }
  RefreshEpoch([this, new_width, on_done = std::move(on_done)](mal::Status status) {
    if (!status.ok()) {
      on_done(status, 0);
      return;
    }
    SealAndInstall(epoch_ + 1, new_width, std::move(on_done));
  });
}

}  // namespace mal::zlog
