// ZLog: a high-performance distributed shared log (paper §5.2), an
// implementation of the CORFU protocol mapped onto Malacology interfaces:
//
//  - the sequencer is a kSequencer inode in the metadata service (File
//    Type interface) — either round-trip (every position is an MDS RPC) or
//    cached (the client holds the exclusive capability and increments the
//    tail locally under programmable lease terms);
//  - log entries live in a stripe of RADOS objects driven through the
//    `zlog` object class (Data I/O interface), whose write-once +
//    epoch-seal semantics provide CORFU's correctness;
//  - sequencer recovery follows CORFU: bump the epoch, seal every stripe
//    object (invalidating stale clients), take the max tail, and install
//    the recovered state back into the inode.
#ifndef MALACOLOGY_ZLOG_LOG_H_
#define MALACOLOGY_ZLOG_LOG_H_

#include <deque>
#include <functional>
#include <optional>
#include <vector>
#include <memory>
#include <string>

#include "src/cls/builtin.h"
#include "src/common/perf.h"
#include "src/common/rng.h"
#include "src/common/trace.h"
#include "src/mds/mds_client.h"
#include "src/rados/client.h"
#include "src/svc/retry.h"

namespace mal::zlog {

// A CORFU view (projection): from `base_pos` onward, positions stripe
// across `width` objects. Views are installed by Reconfigure()/Recover()
// under a new epoch; the full view history lives in the sequencer inode's
// params, so every client maps any historical position identically.
struct View {
  uint64_t epoch = 0;
  uint32_t width = 1;
  uint64_t base_pos = 0;
};

enum class SequencerMode : uint8_t {
  kRoundTrip = 0,  // every position is an MDS round-trip (§6.2 experiments)
  kCached = 1,     // exclusive capability + local increments (§6.1)
};

struct LogOptions {
  std::string name = "log";
  uint32_t stripe_width = 4;  // log positions stripe across this many objects
  SequencerMode sequencer_mode = SequencerMode::kRoundTrip;
  // Lease terms for kCached mode (the Fig 5/6/7 knobs).
  mds::LeasePolicy lease;
  int max_append_retries = 4;
  // Backoff base/cap between append retries (epoch fences, position
  // collisions, sequencer recovery). The attempt budget stays
  // max_append_retries; the default zero base delay keeps the legacy
  // retry-immediately behavior.
  svc::RetryPolicy retry{};
  // Windowed pipeline: how many AppendBatch() calls may be on the wire at
  // once. Batches beyond the window queue; independent batches overlap so
  // the append path is bandwidth-bound instead of per-RPC-latency-bound.
  uint32_t max_inflight = 4;
};

// Read results distinguish real data from junk (filled) and trimmed holes.
enum class EntryState : uint8_t { kData = 1, kFilled = 2, kTrimmed = 3 };

class Log {
 public:
  Log(sim::Actor* owner, rados::RadosClient* rados, mds::MdsClient* mds,
      LogOptions options = {});

  using PositionHandler = std::function<void(mal::Status, uint64_t)>;
  using ReadHandler = std::function<void(mal::Status, EntryState, const mal::Buffer&)>;
  using DoneHandler = std::function<void(mal::Status)>;
  using BatchHandler = std::function<void(mal::Status, const std::vector<uint64_t>&)>;

  // Creates the sequencer inode (idempotent) and learns the current epoch.
  void Open(DoneHandler on_done);

  // Appends an entry: obtains the next position from the sequencer, then
  // writes it through the zlog object class. Retries through epoch
  // refreshes and (after sequencer recovery) position conflicts.
  void Append(mal::Buffer data, PositionHandler on_done);

  // Batched, pipelined append: reserves entries.size() contiguous positions
  // in ONE sequencer round-trip, groups the entries by stripe object, and
  // ships each object a single write_batch transaction carrying all of its
  // entries. Up to LogOptions::max_inflight batches ride the wire
  // concurrently; excess batches queue. Per-entry failures (epoch fencing,
  // write-once collisions after recovery) are retried with fresh positions
  // without stalling the other entries or the rest of the window. On
  // success, positions[i] is where entries[i] landed.
  void AppendBatch(std::vector<mal::Buffer> entries, BatchHandler on_done);

  // Batches currently on the wire (diagnostics/bench).
  uint32_t inflight_batches() const { return inflight_; }

  // Optional counter sink owned by the embedding client. When set, the log
  // records zlog.appends / zlog.batches / zlog.entries /
  // zlog.epoch_refreshes / zlog.batch_retries plus the zlog.inflight gauge
  // and a zlog.batch_us latency histogram.
  void set_perf(mal::PerfRegistry* perf) { perf_ = perf; }

  // Random read of a position; never blocks on the sequencer.
  void Read(uint64_t position, ReadHandler on_data);

  // CORFU hole handling and GC.
  void Fill(uint64_t position, DoneHandler on_done);
  void Trim(uint64_t position, DoneHandler on_done);

  // Current tail without allocating (round-trip to the sequencer inode).
  void CheckTail(PositionHandler on_tail);

  // CORFU sequencer recovery: seal all stripe objects at a higher epoch,
  // compute the tail, install it into the inode, clear the recovery flag.
  void Recover(PositionHandler on_recovered);

  // CORFU view change: seals the log at a new epoch and installs a view
  // with a different stripe width starting at the sealed tail. Appends
  // before the tail stay mapped by the old views; new appends stripe over
  // `new_width` objects. Concurrent reconfigurations race on the seal and
  // the loser observes kStaleEpoch.
  void Reconfigure(uint32_t new_width, PositionHandler on_done);

  const std::vector<View>& views() const { return views_; }

  uint64_t epoch() const { return epoch_; }
  const std::string& sequencer_path() const { return sequencer_path_; }
  // The stripe object holding `position`.
  std::string ObjectFor(uint64_t position) const;

 private:
  struct Batch;  // in-flight AppendBatch state (defined in log.cc)

  void GetPosition(PositionHandler on_position);
  // Reserves `count` contiguous positions (one round-trip or one local
  // increment) and yields the first.
  void GetPositionBatch(uint64_t count, PositionHandler on_first);
  void AppendAttempt(std::shared_ptr<mal::Buffer> data, PositionHandler on_done,
                     svc::Backoff backoff);
  // Launches queued batches while the in-flight window has room.
  void PumpBatchQueue();
  // Writes the batch entries named by `indices` (fresh positions each
  // attempt), retrying per-entry failures until the retry budget runs out.
  void BatchAttempt(std::shared_ptr<Batch> batch, std::vector<size_t> indices,
                    svc::Backoff backoff);
  void FinishBatch(std::shared_ptr<Batch> batch, mal::Status status);
  void RefreshEpoch(DoneHandler on_done);
  // Every object of every view (the set recovery must seal).
  std::vector<std::string> AllObjects() const;
  // Seals every object at `new_epoch`, returns max tail; then installs
  // tail + epoch (+ optional view entry) into the sequencer inode. With
  // `takeover` the install carries the takeover directive: the receiving
  // rank creates the inode if it does not host it and claims ownership
  // (sharded-sequencer failover).
  void SealAndInstall(uint64_t new_epoch, std::optional<uint32_t> new_width,
                      PositionHandler on_done, bool takeover = false);
  // True for failures that mean "the owning rank is gone" rather than "the
  // request was bad": worth attempting a takeover.
  static bool ShouldTakeover(const mal::Status& status);
  // Sharded-sequencer failover (treated like CORFU sequencer failure): if
  // the published ownership map has an entry for this log and the cluster
  // has survivors, seal at a bumped epoch and install the recovered tail on
  // a surviving rank. Calls on_done(ok) when a new owner is serving.
  void MaybeTakeover(DoneHandler on_done);
  void TakeoverInstall(uint32_t rank, int tries_left, DoneHandler on_done);
  static std::string EncodeViews(const std::vector<View>& views);
  static std::vector<View> DecodeViews(const std::string& encoded, uint32_t default_width);

  sim::Actor* owner_;
  rados::RadosClient* rados_;
  mds::MdsClient* mds_;
  mal::PerfRegistry* perf_ = nullptr;
  LogOptions options_;
  svc::RetryPolicy retry_policy_;  // options_.retry with max_append_retries applied
  mal::Rng retry_rng_;
  std::string sequencer_path_;
  uint64_t epoch_ = 0;
  std::vector<View> views_;  // sorted by base_pos; views_[0].base_pos == 0
  // Windowed pipeline state.
  std::deque<std::shared_ptr<Batch>> batch_queue_;
  uint32_t inflight_ = 0;
  // Rotates the surviving-rank pick across repeated takeover attempts.
  uint64_t takeover_round_ = 0;
};

}  // namespace mal::zlog

#endif  // MALACOLOGY_ZLOG_LOG_H_
