// RadosClient: librados-style client library.
//
// Owned by a client/daemon actor. Computes placement from its own OSDMap
// view, routes transactions to the primary OSD, retries through map
// refreshes when placement changed under it, and exposes the Durability +
// Service Metadata composition used to install dynamic object interfaces
// cluster-wide (paper §4.4: "we use this service to automatically install
// interfaces in object storage daemons ... without restarting").
//
// The owning actor must forward kMsgMapUpdate envelopes for the OSDMap to
// OnMapUpdate() so the client tracks placement changes pushed by monitors.
#ifndef MALACOLOGY_RADOS_CLIENT_H_
#define MALACOLOGY_RADOS_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/mon/mon_client.h"
#include "src/osd/messages.h"
#include "src/osd/placement.h"
#include "src/sim/actor.h"
#include "src/svc/retry.h"

namespace mal::rados {

class RadosClient {
 public:
  RadosClient(sim::Actor* owner, std::vector<uint32_t> mons, uint32_t replicas = 3)
      : owner_(owner),
        mon_client_(owner, std::move(mons)),
        replicas_(replicas),
        retry_rng_(0x7261646f73ULL * 0x9e3779b97f4a7c15ULL +
                   (static_cast<uint64_t>(owner->name().type) << 32) + owner->name().id) {}

  using OpHandler = std::function<void(mal::Status, const osd::OsdOpReply&)>;
  using DataHandler = std::function<void(mal::Status, const mal::Buffer&)>;
  using DoneHandler = std::function<void(mal::Status)>;

  // Fetches the initial OSDMap and subscribes to updates.
  void Connect(DoneHandler on_done);

  const mon::OsdMap& osd_map() const { return osd_map_; }
  mon::MonClient& mon_client() { return mon_client_; }
  sim::Actor* owner() { return owner_; }

  // Retry schedule for Execute (attempt budget, backoff base/cap). The
  // default — 5 attempts, zero base delay — matches the legacy immediate
  // retry loop exactly; set a nonzero base_delay to enable decorrelated-
  // jitter backoff (e.g. against kBusy admission sheds).
  void set_retry_policy(const svc::RetryPolicy& policy) { retry_policy_ = policy; }
  const svc::RetryPolicy& retry_policy() const { return retry_policy_; }

  // Optional counter sink owned by the embedding daemon/client. When set,
  // the client records rados.ops / rados.retries / rados.map_refreshes.
  void set_perf(mal::PerfRegistry* perf) { perf_ = perf; }
  mal::PerfRegistry* perf() { return perf_; }

  // Routes a push update from the monitor; returns true if consumed.
  bool OnMapUpdate(const sim::Envelope& envelope);

  // -- core -------------------------------------------------------------------
  // Executes a transaction on the object's primary OSD. Retries on
  // "not primary" / timeout after refreshing the map (up to 5 attempts).
  void Execute(const std::string& oid, std::vector<osd::Op> ops, OpHandler on_reply);

  // -- convenience wrappers ------------------------------------------------------
  void WriteFull(const std::string& oid, mal::Buffer data, DoneHandler on_done);
  void Append(const std::string& oid, mal::Buffer data, DoneHandler on_done);
  void Read(const std::string& oid, DataHandler on_data);
  void Remove(const std::string& oid, DoneHandler on_done);
  void CreateExclusive(const std::string& oid, DoneHandler on_done);
  void OmapSet(const std::string& oid, const std::string& key, const std::string& value,
               DoneHandler on_done);
  void OmapGet(const std::string& oid, const std::string& key, DataHandler on_data);
  // Object-class invocation (the Data I/O interface).
  void Exec(const std::string& oid, const std::string& cls, const std::string& method,
            mal::Buffer input, DataHandler on_out);

  // -- multi-target transactions --------------------------------------------------
  // One op of a batch, destined for a specific object.
  struct TargetedOp {
    std::string oid;
    osd::Op op;
  };
  using TargetedHandler = std::function<void(std::vector<osd::OpResult>)>;
  // Assembles one transaction per target object — every op bound for the
  // same oid rides in a single OsdOpRequest, in input order — and executes
  // all targets in parallel. Results come back in the input order of `ops`.
  // Failures stay per-target: a transport error or transaction abort on one
  // object is reported in that object's result slots only, so one slow or
  // conflicted target never discards the rest of the batch. Because a
  // target's transaction applies atomically, when any op in it fails the
  // sibling ops that reported success are rewritten as kAborted.
  void ExecuteTargeted(std::vector<TargetedOp> ops, TargetedHandler on_done);

  // Convenience builder for a class-exec op (pairs with ExecuteTargeted).
  static osd::Op MakeExecOp(const std::string& cls, const std::string& method,
                            mal::Buffer input);

  // Registers interest in an object: `on_notify` fires every time a
  // mutating transaction commits on it (RADOS watch/notify).
  using NotifyHandler = std::function<void(const std::string& oid, uint64_t version)>;
  void Watch(const std::string& oid, NotifyHandler on_notify, DoneHandler on_done);
  void Unwatch(const std::string& oid, DoneHandler on_done);
  // Routes a kMsgNotify push; returns true if consumed. The owning actor
  // calls this alongside OnMapUpdate().
  bool OnNotify(const sim::Envelope& envelope);

  // Installs (or upgrades) a dynamic script interface cluster-wide: writes
  // the source + version into the OSDMap service metadata through the
  // monitor; the map fans out via push + OSD gossip and every OSD loads the
  // class without restarting.
  void InstallScriptInterface(const std::string& cls, const std::string& version,
                              const std::string& source, DoneHandler on_done);

  // Re-fetches the OSDMap from the monitors. Execute calls this on retry
  // automatically; callers that just committed a map change (e.g. pool
  // creation) can force it so the next placement decision sees the change.
  void RefreshMap(DoneHandler on_done);

 private:
  // Failure-path refresh: rotates past stale quorum members until it finds
  // a map strictly newer than ours, and re-registers the push subscription
  // when it makes progress (a failed op plus a missed epoch usually means
  // the subscription died with a crashed monitor).
  void RefreshMapAfterFailure(DoneHandler on_done);
  void ExecuteAttempt(const std::string& oid, std::shared_ptr<std::vector<osd::Op>> ops,
                      OpHandler on_reply, svc::Backoff backoff);

  sim::Actor* owner_;
  mon::MonClient mon_client_;
  mal::PerfRegistry* perf_ = nullptr;
  uint32_t replicas_;
  mon::OsdMap osd_map_;
  svc::RetryPolicy retry_policy_{};
  mal::Rng retry_rng_;
  std::map<std::string, NotifyHandler> notify_handlers_;
};

}  // namespace mal::rados

#endif  // MALACOLOGY_RADOS_CLIENT_H_
