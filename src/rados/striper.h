// Striping: maps a byte range of a logical entity (file, block image) onto
// extents of fixed-size backing objects. Shared by the block-device and
// file layers (the "file, block, object" APIs of the paper's Figure 1 all
// sit on the same object store).
#ifndef MALACOLOGY_RADOS_STRIPER_H_
#define MALACOLOGY_RADOS_STRIPER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mal::rados {

struct Extent {
  std::string oid;       // backing object
  uint64_t offset = 0;   // offset within the object
  uint64_t length = 0;   // bytes in this extent
  uint64_t logical = 0;  // offset within the logical entity
};

// Splits [offset, offset+length) into per-object extents. Objects are named
// "<prefix>.<index>" and hold `object_size` bytes each.
std::vector<Extent> StripeRange(const std::string& prefix, uint64_t object_size,
                                uint64_t offset, uint64_t length);

}  // namespace mal::rados

#endif  // MALACOLOGY_RADOS_STRIPER_H_
