#include "src/rados/client.h"

namespace mal::rados {

void RadosClient::Connect(DoneHandler on_done) {
  mon_client_.Subscribe(mon::MapKind::kOsdMap, 0);
  RefreshMap(std::move(on_done));
}

void RadosClient::RefreshMap(DoneHandler on_done) {
  if (perf_ != nullptr) {
    perf_->Inc("rados.map_refreshes");
  }
  mon_client_.GetMap(
      mon::MapKind::kOsdMap,
      [this, on_done = std::move(on_done)](mal::Status status,
                                           const mon::MapUpdate& update) {
        if (!status.ok()) {
          on_done(status);
          return;
        }
        mal::Decoder dec(update.map_payload);
        auto map = mon::OsdMap::Decode(&dec);
        if (!map.ok()) {
          on_done(map.status());
          return;
        }
        if (map.value().epoch > osd_map_.epoch) {
          osd_map_ = std::move(map).value();
        }
        on_done(mal::Status::Ok());
      });
}

void RadosClient::RefreshMapAfterFailure(DoneHandler on_done) {
  if (perf_ != nullptr) {
    perf_->Inc("rados.map_refreshes");
  }
  mon_client_.GetMapAbove(
      mon::MapKind::kOsdMap, osd_map_.epoch,
      [](const mon::MapUpdate& update) -> mon::Epoch {
        mal::Decoder dec(update.map_payload);
        auto map = mon::OsdMap::Decode(&dec);
        return map.ok() ? map.value().epoch : 0;
      },
      [this, on_done = std::move(on_done)](mal::Status status,
                                           const mon::MapUpdate& update) {
        if (!status.ok()) {
          on_done(status);
          return;
        }
        mal::Decoder dec(update.map_payload);
        auto map = mon::OsdMap::Decode(&dec);
        if (!map.ok()) {
          on_done(map.status());
          return;
        }
        if (map.value().epoch > osd_map_.epoch) {
          osd_map_ = std::move(map).value();
          // The push stream missed at least one epoch — most likely the
          // subscription died with a crashed monitor. Re-register so
          // future epochs arrive as pushes again instead of being
          // discovered one failed op at a time.
          mon_client_.Subscribe(mon::MapKind::kOsdMap, osd_map_.epoch);
        }
        on_done(mal::Status::Ok());
      });
}

bool RadosClient::OnMapUpdate(const sim::Envelope& envelope) {
  if (envelope.type != mon::kMsgMapUpdate) {
    return false;
  }
  mal::Decoder dec(envelope.payload);
  mon::MapUpdate update = mon::MapUpdate::Decode(&dec);
  if (update.kind != mon::MapKind::kOsdMap) {
    return false;
  }
  mal::Decoder map_dec(update.map_payload);
  auto map = mon::OsdMap::Decode(&map_dec);
  if (map.ok() && map.value().epoch > osd_map_.epoch) {
    osd_map_ = std::move(map).value();
  }
  return true;
}

void RadosClient::Execute(const std::string& oid, std::vector<osd::Op> ops,
                          OpHandler on_reply) {
  if (perf_ != nullptr) {
    perf_->Inc("rados.ops");
  }
  auto shared_ops = std::make_shared<std::vector<osd::Op>>(std::move(ops));
  ExecuteAttempt(oid, std::move(shared_ops), std::move(on_reply),
                 svc::Backoff(retry_policy_));
}

void RadosClient::ExecuteAttempt(const std::string& oid,
                                 std::shared_ptr<std::vector<osd::Op>> ops,
                                 OpHandler on_reply, svc::Backoff backoff) {
  if (backoff.Exhausted()) {
    on_reply(mal::Status::Unavailable("no reachable primary for " + oid),
             osd::OsdOpReply{});
    return;
  }
  if (backoff.attempt() > 0 && perf_ != nullptr) {
    perf_->Inc("rados.retries");
  }
  // Shared retry continuation: consumes one attempt from the backoff
  // schedule, waits out its (zero, at the default policy) delay, and
  // re-enters. At base_delay == 0 this is a synchronous tail call.
  auto retry = [this, oid, ops, on_reply, backoff]() mutable {
    // Consume the attempt before building the continuation: the lambda must
    // capture the advanced backoff (argument evaluation order would
    // otherwise leave it at the current attempt forever).
    sim::Time delay = backoff.NextDelay(&retry_rng_);
    svc::RunAfter(owner_->simulator(), delay, [this, oid, ops, on_reply, backoff] {
      ExecuteAttempt(oid, ops, on_reply, backoff);
    });
  };
  std::vector<uint32_t> acting = osd::ActingSetForOid(oid, osd_map_, replicas_);
  if (acting.empty()) {
    // No map yet (or no OSD up): refresh and retry.
    RefreshMapAfterFailure([on_reply, retry](mal::Status status) mutable {
      if (!status.ok()) {
        on_reply(status, osd::OsdOpReply{});
        return;
      }
      retry();
    });
    return;
  }
  osd::OsdOpRequest req;
  req.oid = oid;
  req.ops = *ops;
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  req.Encode(&enc);
  owner_->SendRequest(
      sim::EntityName::Osd(acting[0]), osd::kMsgOsdOp, std::move(payload),
      [this, on_reply,
       retry](mal::Status status, const sim::Envelope& reply) mutable {
        if (status.code() == mal::Code::kUnavailable ||
            status.code() == mal::Code::kTimedOut) {
          // Stale placement or dead primary: refresh the map and retry.
          RefreshMapAfterFailure([on_reply, retry](mal::Status refresh_status) mutable {
            if (!refresh_status.ok()) {
              on_reply(refresh_status, osd::OsdOpReply{});
              return;
            }
            retry();
          });
          return;
        }
        if (status.code() == mal::Code::kBusy) {
          // The primary shed us at admission: our placement was right, so
          // skip the map refresh and just back off before resending.
          if (perf_ != nullptr) {
            perf_->Inc("rados.busy_rejections");
          }
          retry();
          return;
        }
        if (!status.ok()) {
          // kDeadlineExceeded and transaction-level errors are terminal:
          // retrying a spent budget only wastes server CPU.
          on_reply(status, osd::OsdOpReply{});
          return;
        }
        mal::Decoder dec(reply.payload);
        on_reply(mal::Status::Ok(), osd::OsdOpReply::Decode(&dec));
      });
}

namespace {

// Distills a one-op reply into (status, out buffer).
void SingleOpResult(mal::Status status, const osd::OsdOpReply& reply, mal::Status* op_status,
                    mal::Buffer* out) {
  if (!status.ok()) {
    *op_status = status;
    return;
  }
  if (reply.results.empty()) {
    *op_status = mal::Status::Internal("empty op reply");
    return;
  }
  *op_status = reply.results[0].status;
  if (out != nullptr) {
    *out = reply.results[0].out;
  }
}

}  // namespace

void RadosClient::WriteFull(const std::string& oid, mal::Buffer data, DoneHandler on_done) {
  osd::Op op;
  op.type = osd::Op::Type::kWriteFull;
  op.data = std::move(data);
  Execute(oid, {op}, [on_done = std::move(on_done)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    SingleOpResult(s, reply, &op_status, nullptr);
    on_done(op_status);
  });
}

void RadosClient::Append(const std::string& oid, mal::Buffer data, DoneHandler on_done) {
  osd::Op op;
  op.type = osd::Op::Type::kAppend;
  op.data = std::move(data);
  Execute(oid, {op}, [on_done = std::move(on_done)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    SingleOpResult(s, reply, &op_status, nullptr);
    on_done(op_status);
  });
}

void RadosClient::Read(const std::string& oid, DataHandler on_data) {
  osd::Op op;
  op.type = osd::Op::Type::kRead;
  Execute(oid, {op}, [on_data = std::move(on_data)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    mal::Buffer out;
    SingleOpResult(s, reply, &op_status, &out);
    on_data(op_status, out);
  });
}

void RadosClient::Remove(const std::string& oid, DoneHandler on_done) {
  osd::Op op;
  op.type = osd::Op::Type::kRemove;
  Execute(oid, {op}, [on_done = std::move(on_done)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    SingleOpResult(s, reply, &op_status, nullptr);
    on_done(op_status);
  });
}

void RadosClient::CreateExclusive(const std::string& oid, DoneHandler on_done) {
  osd::Op op;
  op.type = osd::Op::Type::kCreate;
  op.excl = true;
  Execute(oid, {op}, [on_done = std::move(on_done)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    SingleOpResult(s, reply, &op_status, nullptr);
    on_done(op_status);
  });
}

void RadosClient::OmapSet(const std::string& oid, const std::string& key,
                          const std::string& value, DoneHandler on_done) {
  osd::Op op;
  op.type = osd::Op::Type::kOmapSet;
  op.key = key;
  op.value = value;
  Execute(oid, {op}, [on_done = std::move(on_done)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    SingleOpResult(s, reply, &op_status, nullptr);
    on_done(op_status);
  });
}

void RadosClient::OmapGet(const std::string& oid, const std::string& key,
                          DataHandler on_data) {
  osd::Op op;
  op.type = osd::Op::Type::kOmapGet;
  op.key = key;
  Execute(oid, {op}, [on_data = std::move(on_data)](mal::Status s,
                                                    const osd::OsdOpReply& reply) {
    mal::Status op_status;
    mal::Buffer out;
    SingleOpResult(s, reply, &op_status, &out);
    on_data(op_status, out);
  });
}

void RadosClient::Exec(const std::string& oid, const std::string& cls,
                       const std::string& method, mal::Buffer input, DataHandler on_out) {
  osd::Op op;
  op.type = osd::Op::Type::kExec;
  op.cls_name = cls;
  op.method = method;
  op.data = std::move(input);
  Execute(oid, {op}, [on_out = std::move(on_out)](mal::Status s,
                                                  const osd::OsdOpReply& reply) {
    mal::Status op_status;
    mal::Buffer out;
    SingleOpResult(s, reply, &op_status, &out);
    on_out(op_status, out);
  });
}

osd::Op RadosClient::MakeExecOp(const std::string& cls, const std::string& method,
                                mal::Buffer input) {
  osd::Op op;
  op.type = osd::Op::Type::kExec;
  op.cls_name = cls;
  op.method = method;
  op.data = std::move(input);
  return op;
}

void RadosClient::ExecuteTargeted(std::vector<TargetedOp> ops, TargetedHandler on_done) {
  if (ops.empty()) {
    on_done({});
    return;
  }
  // Group op indices by target, preserving input order within each target.
  std::map<std::string, std::vector<size_t>> by_target;
  for (size_t i = 0; i < ops.size(); ++i) {
    by_target[ops[i].oid].push_back(i);
  }
  auto results = std::make_shared<std::vector<osd::OpResult>>(ops.size());
  auto pending = std::make_shared<size_t>(by_target.size());
  auto done = std::make_shared<TargetedHandler>(std::move(on_done));
  for (auto& [oid, indices] : by_target) {
    std::vector<osd::Op> txn;
    txn.reserve(indices.size());
    for (size_t i : indices) {
      txn.push_back(std::move(ops[i].op));
    }
    Execute(oid, std::move(txn),
            [results, pending, done, indices](mal::Status status,
                                              const osd::OsdOpReply& reply) {
              bool aborted = !status.ok();
              for (size_t slot = 0; slot < indices.size(); ++slot) {
                osd::OpResult& r = (*results)[indices[slot]];
                if (!status.ok()) {
                  r.status = status;  // transport-level failure: whole target
                } else if (slot < reply.results.size()) {
                  r = reply.results[slot];
                  aborted = aborted || !r.status.ok();
                } else {
                  r.status = mal::Status::Internal("missing op result");
                  aborted = true;
                }
              }
              if (aborted && status.ok()) {
                // The target transaction is atomic: ops that individually
                // reported OK did not commit if a sibling op failed.
                for (size_t slot = 0; slot < indices.size(); ++slot) {
                  osd::OpResult& r = (*results)[indices[slot]];
                  if (r.status.ok()) {
                    r.status = mal::Status::Aborted("transaction aborted by sibling op");
                  }
                }
              }
              if (--*pending == 0) {
                (*done)(std::move(*results));
              }
            });
  }
}

void RadosClient::Watch(const std::string& oid, NotifyHandler on_notify,
                        DoneHandler on_done) {
  std::vector<uint32_t> acting = osd::ActingSetForOid(oid, osd_map_, replicas_);
  if (acting.empty()) {
    on_done(mal::Status::Unavailable("no primary for " + oid));
    return;
  }
  osd::WatchRequest req{oid, /*unwatch=*/false};
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  req.Encode(&enc);
  notify_handlers_[oid] = std::move(on_notify);
  owner_->SendRequest(sim::EntityName::Osd(acting[0]), osd::kMsgWatch, std::move(payload),
                      [this, oid, on_done = std::move(on_done)](
                          mal::Status status, const sim::Envelope&) {
                        if (!status.ok()) {
                          notify_handlers_.erase(oid);
                        }
                        on_done(status);
                      });
}

void RadosClient::Unwatch(const std::string& oid, DoneHandler on_done) {
  notify_handlers_.erase(oid);
  std::vector<uint32_t> acting = osd::ActingSetForOid(oid, osd_map_, replicas_);
  if (acting.empty()) {
    on_done(mal::Status::Ok());
    return;
  }
  osd::WatchRequest req{oid, /*unwatch=*/true};
  mal::Buffer payload;
  mal::Encoder enc(&payload);
  req.Encode(&enc);
  owner_->SendRequest(sim::EntityName::Osd(acting[0]), osd::kMsgWatch, std::move(payload),
                      [on_done = std::move(on_done)](mal::Status status,
                                                     const sim::Envelope&) {
                        on_done(status);
                      });
}

bool RadosClient::OnNotify(const sim::Envelope& envelope) {
  if (envelope.type != osd::kMsgNotify) {
    return false;
  }
  mal::Decoder dec(envelope.payload);
  osd::NotifyEvent event = osd::NotifyEvent::Decode(&dec);
  auto it = notify_handlers_.find(event.oid);
  if (it != notify_handlers_.end()) {
    it->second(event.oid, event.version);
  }
  return true;
}

void RadosClient::InstallScriptInterface(const std::string& cls, const std::string& version,
                                         const std::string& source, DoneHandler on_done) {
  // Two service-metadata keys, committed in one Paxos batch (same proposal
  // interval), so OSDs always observe source+version together.
  auto pending = std::make_shared<int>(2);
  auto first_error = std::make_shared<mal::Status>();
  auto finish = [pending, first_error, on_done = std::move(on_done)](mal::Status s) {
    if (!s.ok() && first_error->ok()) {
      *first_error = s;
    }
    if (--*pending == 0) {
      on_done(*first_error);
    }
  };
  mon_client_.SetServiceMetadata(mon::MapKind::kOsdMap, "cls.src." + cls, source, finish);
  mon_client_.SetServiceMetadata(mon::MapKind::kOsdMap, "cls.ver." + cls, version, finish);
}

}  // namespace mal::rados
