#include "src/rados/striper.h"

#include <algorithm>
#include <cassert>

namespace mal::rados {

std::vector<Extent> StripeRange(const std::string& prefix, uint64_t object_size,
                                uint64_t offset, uint64_t length) {
  assert(object_size > 0);
  std::vector<Extent> extents;
  uint64_t remaining = length;
  uint64_t cursor = offset;
  while (remaining > 0) {
    uint64_t index = cursor / object_size;
    uint64_t in_object = cursor % object_size;
    uint64_t take = std::min(remaining, object_size - in_object);
    extents.push_back(Extent{prefix + "." + std::to_string(index), in_object, take,
                             cursor - offset});
    cursor += take;
    remaining -= take;
  }
  return extents;
}

}  // namespace mal::rados
