file(REMOVE_RECURSE
  "CMakeFiles/fig10b_migration_units.dir/fig10b_migration_units.cc.o"
  "CMakeFiles/fig10b_migration_units.dir/fig10b_migration_units.cc.o.d"
  "fig10b_migration_units"
  "fig10b_migration_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_migration_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
