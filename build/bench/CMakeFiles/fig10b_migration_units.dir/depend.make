# Empty dependencies file for fig10b_migration_units.
# This may be replaced when dependencies are built.
