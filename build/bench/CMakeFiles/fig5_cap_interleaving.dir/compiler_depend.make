# Empty compiler generated dependencies file for fig5_cap_interleaving.
# This may be replaced when dependencies are built.
