file(REMOVE_RECURSE
  "CMakeFiles/fig5_cap_interleaving.dir/fig5_cap_interleaving.cc.o"
  "CMakeFiles/fig5_cap_interleaving.dir/fig5_cap_interleaving.cc.o.d"
  "fig5_cap_interleaving"
  "fig5_cap_interleaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cap_interleaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
