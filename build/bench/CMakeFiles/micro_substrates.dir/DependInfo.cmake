
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_substrates.cc" "bench/CMakeFiles/micro_substrates.dir/micro_substrates.cc.o" "gcc" "bench/CMakeFiles/micro_substrates.dir/micro_substrates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/mal_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/osd/CMakeFiles/mal_osd.dir/DependInfo.cmake"
  "/root/repo/build/src/zlog/CMakeFiles/mal_zlog.dir/DependInfo.cmake"
  "/root/repo/build/src/cls/CMakeFiles/mal_cls.dir/DependInfo.cmake"
  "/root/repo/build/src/mantle/CMakeFiles/mal_mantle.dir/DependInfo.cmake"
  "/root/repo/build/src/mds/CMakeFiles/mal_mds.dir/DependInfo.cmake"
  "/root/repo/build/src/rados/CMakeFiles/mal_rados.dir/DependInfo.cmake"
  "/root/repo/build/src/osd/CMakeFiles/mal_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/mal_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/mal_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/mal_script.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
