# Empty dependencies file for fig12_proxy_vs_client.
# This may be replaced when dependencies are built.
