file(REMOVE_RECURSE
  "CMakeFiles/fig12_proxy_vs_client.dir/fig12_proxy_vs_client.cc.o"
  "CMakeFiles/fig12_proxy_vs_client.dir/fig12_proxy_vs_client.cc.o.d"
  "fig12_proxy_vs_client"
  "fig12_proxy_vs_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_proxy_vs_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
