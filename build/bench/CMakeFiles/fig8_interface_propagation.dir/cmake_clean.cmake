file(REMOVE_RECURSE
  "CMakeFiles/fig8_interface_propagation.dir/fig8_interface_propagation.cc.o"
  "CMakeFiles/fig8_interface_propagation.dir/fig8_interface_propagation.cc.o.d"
  "fig8_interface_propagation"
  "fig8_interface_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_interface_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
