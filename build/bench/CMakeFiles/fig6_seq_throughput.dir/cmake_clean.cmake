file(REMOVE_RECURSE
  "CMakeFiles/fig6_seq_throughput.dir/fig6_seq_throughput.cc.o"
  "CMakeFiles/fig6_seq_throughput.dir/fig6_seq_throughput.cc.o.d"
  "fig6_seq_throughput"
  "fig6_seq_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_seq_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
