file(REMOVE_RECURSE
  "CMakeFiles/fig10a_balancing_modes.dir/fig10a_balancing_modes.cc.o"
  "CMakeFiles/fig10a_balancing_modes.dir/fig10a_balancing_modes.cc.o.d"
  "fig10a_balancing_modes"
  "fig10a_balancing_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_balancing_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
