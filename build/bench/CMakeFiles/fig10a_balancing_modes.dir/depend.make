# Empty dependencies file for fig10a_balancing_modes.
# This may be replaced when dependencies are built.
