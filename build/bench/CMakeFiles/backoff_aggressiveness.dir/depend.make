# Empty dependencies file for backoff_aggressiveness.
# This may be replaced when dependencies are built.
