file(REMOVE_RECURSE
  "CMakeFiles/backoff_aggressiveness.dir/backoff_aggressiveness.cc.o"
  "CMakeFiles/backoff_aggressiveness.dir/backoff_aggressiveness.cc.o.d"
  "backoff_aggressiveness"
  "backoff_aggressiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backoff_aggressiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
