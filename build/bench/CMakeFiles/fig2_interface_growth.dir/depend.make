# Empty dependencies file for fig2_interface_growth.
# This may be replaced when dependencies are built.
