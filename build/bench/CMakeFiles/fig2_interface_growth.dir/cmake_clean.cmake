file(REMOVE_RECURSE
  "CMakeFiles/fig2_interface_growth.dir/fig2_interface_growth.cc.o"
  "CMakeFiles/fig2_interface_growth.dir/fig2_interface_growth.cc.o.d"
  "fig2_interface_growth"
  "fig2_interface_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_interface_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
