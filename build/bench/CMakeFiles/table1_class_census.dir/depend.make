# Empty dependencies file for table1_class_census.
# This may be replaced when dependencies are built.
