file(REMOVE_RECURSE
  "CMakeFiles/table1_class_census.dir/table1_class_census.cc.o"
  "CMakeFiles/table1_class_census.dir/table1_class_census.cc.o.d"
  "table1_class_census"
  "table1_class_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_class_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
