# Empty dependencies file for zlog_test.
# This may be replaced when dependencies are built.
