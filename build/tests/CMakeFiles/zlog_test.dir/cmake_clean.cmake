file(REMOVE_RECURSE
  "CMakeFiles/zlog_test.dir/zlog_test.cc.o"
  "CMakeFiles/zlog_test.dir/zlog_test.cc.o.d"
  "zlog_test"
  "zlog_test.pdb"
  "zlog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
