# Empty dependencies file for osd_test.
# This may be replaced when dependencies are built.
