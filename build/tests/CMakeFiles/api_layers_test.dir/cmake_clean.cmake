file(REMOVE_RECURSE
  "CMakeFiles/api_layers_test.dir/api_layers_test.cc.o"
  "CMakeFiles/api_layers_test.dir/api_layers_test.cc.o.d"
  "api_layers_test"
  "api_layers_test.pdb"
  "api_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
