# Empty compiler generated dependencies file for mantle_test.
# This may be replaced when dependencies are built.
