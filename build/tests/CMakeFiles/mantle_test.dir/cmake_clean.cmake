file(REMOVE_RECURSE
  "CMakeFiles/mantle_test.dir/mantle_test.cc.o"
  "CMakeFiles/mantle_test.dir/mantle_test.cc.o.d"
  "mantle_test"
  "mantle_test.pdb"
  "mantle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
