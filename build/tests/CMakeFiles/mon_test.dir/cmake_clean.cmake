file(REMOVE_RECURSE
  "CMakeFiles/mon_test.dir/mon_test.cc.o"
  "CMakeFiles/mon_test.dir/mon_test.cc.o.d"
  "mon_test"
  "mon_test.pdb"
  "mon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
