# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/paxos_test[1]_include.cmake")
include("/root/repo/build/tests/mon_test[1]_include.cmake")
include("/root/repo/build/tests/object_store_test[1]_include.cmake")
include("/root/repo/build/tests/cls_test[1]_include.cmake")
include("/root/repo/build/tests/osd_test[1]_include.cmake")
include("/root/repo/build/tests/mds_test[1]_include.cmake")
include("/root/repo/build/tests/zlog_test[1]_include.cmake")
include("/root/repo/build/tests/mantle_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/api_layers_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
