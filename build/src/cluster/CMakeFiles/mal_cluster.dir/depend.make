# Empty dependencies file for mal_cluster.
# This may be replaced when dependencies are built.
