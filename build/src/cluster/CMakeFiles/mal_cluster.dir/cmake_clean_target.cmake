file(REMOVE_RECURSE
  "libmal_cluster.a"
)
