file(REMOVE_RECURSE
  "CMakeFiles/mal_cluster.dir/cluster.cc.o"
  "CMakeFiles/mal_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/mal_cluster.dir/workload.cc.o"
  "CMakeFiles/mal_cluster.dir/workload.cc.o.d"
  "libmal_cluster.a"
  "libmal_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
