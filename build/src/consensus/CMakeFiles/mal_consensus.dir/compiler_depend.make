# Empty compiler generated dependencies file for mal_consensus.
# This may be replaced when dependencies are built.
