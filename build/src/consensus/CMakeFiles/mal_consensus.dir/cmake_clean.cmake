file(REMOVE_RECURSE
  "CMakeFiles/mal_consensus.dir/paxos.cc.o"
  "CMakeFiles/mal_consensus.dir/paxos.cc.o.d"
  "libmal_consensus.a"
  "libmal_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
