file(REMOVE_RECURSE
  "libmal_consensus.a"
)
