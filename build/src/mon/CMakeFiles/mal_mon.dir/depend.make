# Empty dependencies file for mal_mon.
# This may be replaced when dependencies are built.
