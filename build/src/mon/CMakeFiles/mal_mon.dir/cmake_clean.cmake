file(REMOVE_RECURSE
  "CMakeFiles/mal_mon.dir/maps.cc.o"
  "CMakeFiles/mal_mon.dir/maps.cc.o.d"
  "CMakeFiles/mal_mon.dir/monitor.cc.o"
  "CMakeFiles/mal_mon.dir/monitor.cc.o.d"
  "libmal_mon.a"
  "libmal_mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
