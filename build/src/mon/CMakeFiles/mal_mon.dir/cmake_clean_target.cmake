file(REMOVE_RECURSE
  "libmal_mon.a"
)
