# Empty compiler generated dependencies file for mal_common.
# This may be replaced when dependencies are built.
