file(REMOVE_RECURSE
  "libmal_common.a"
)
