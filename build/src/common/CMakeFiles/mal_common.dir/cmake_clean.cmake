file(REMOVE_RECURSE
  "CMakeFiles/mal_common.dir/buffer.cc.o"
  "CMakeFiles/mal_common.dir/buffer.cc.o.d"
  "CMakeFiles/mal_common.dir/log.cc.o"
  "CMakeFiles/mal_common.dir/log.cc.o.d"
  "CMakeFiles/mal_common.dir/rng.cc.o"
  "CMakeFiles/mal_common.dir/rng.cc.o.d"
  "CMakeFiles/mal_common.dir/stats.cc.o"
  "CMakeFiles/mal_common.dir/stats.cc.o.d"
  "CMakeFiles/mal_common.dir/status.cc.o"
  "CMakeFiles/mal_common.dir/status.cc.o.d"
  "libmal_common.a"
  "libmal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
