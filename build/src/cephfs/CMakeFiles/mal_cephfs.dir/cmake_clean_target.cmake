file(REMOVE_RECURSE
  "libmal_cephfs.a"
)
