file(REMOVE_RECURSE
  "CMakeFiles/mal_cephfs.dir/file_client.cc.o"
  "CMakeFiles/mal_cephfs.dir/file_client.cc.o.d"
  "libmal_cephfs.a"
  "libmal_cephfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_cephfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
