# Empty dependencies file for mal_cephfs.
# This may be replaced when dependencies are built.
