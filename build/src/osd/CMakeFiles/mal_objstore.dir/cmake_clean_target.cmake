file(REMOVE_RECURSE
  "libmal_objstore.a"
)
