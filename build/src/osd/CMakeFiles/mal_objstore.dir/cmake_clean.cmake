file(REMOVE_RECURSE
  "CMakeFiles/mal_objstore.dir/object_store.cc.o"
  "CMakeFiles/mal_objstore.dir/object_store.cc.o.d"
  "CMakeFiles/mal_objstore.dir/placement.cc.o"
  "CMakeFiles/mal_objstore.dir/placement.cc.o.d"
  "libmal_objstore.a"
  "libmal_objstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_objstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
