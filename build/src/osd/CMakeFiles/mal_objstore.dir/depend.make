# Empty dependencies file for mal_objstore.
# This may be replaced when dependencies are built.
