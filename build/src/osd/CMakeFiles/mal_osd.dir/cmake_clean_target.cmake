file(REMOVE_RECURSE
  "libmal_osd.a"
)
