file(REMOVE_RECURSE
  "CMakeFiles/mal_osd.dir/osd.cc.o"
  "CMakeFiles/mal_osd.dir/osd.cc.o.d"
  "libmal_osd.a"
  "libmal_osd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_osd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
