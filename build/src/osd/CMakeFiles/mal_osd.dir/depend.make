# Empty dependencies file for mal_osd.
# This may be replaced when dependencies are built.
