# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("script")
subdirs("sim")
subdirs("consensus")
subdirs("mon")
subdirs("osd")
subdirs("cls")
subdirs("rados")
subdirs("mds")
subdirs("mantle")
subdirs("zlog")
subdirs("cluster")
subdirs("rbd")
subdirs("cephfs")
subdirs("ec")
