# Empty dependencies file for mal_mds.
# This may be replaced when dependencies are built.
