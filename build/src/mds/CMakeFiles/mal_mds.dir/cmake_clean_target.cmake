file(REMOVE_RECURSE
  "libmal_mds.a"
)
