
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mds/balancer.cc" "src/mds/CMakeFiles/mal_mds.dir/balancer.cc.o" "gcc" "src/mds/CMakeFiles/mal_mds.dir/balancer.cc.o.d"
  "/root/repo/src/mds/mds.cc" "src/mds/CMakeFiles/mal_mds.dir/mds.cc.o" "gcc" "src/mds/CMakeFiles/mal_mds.dir/mds.cc.o.d"
  "/root/repo/src/mds/mds_client.cc" "src/mds/CMakeFiles/mal_mds.dir/mds_client.cc.o" "gcc" "src/mds/CMakeFiles/mal_mds.dir/mds_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mal_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mon/CMakeFiles/mal_mon.dir/DependInfo.cmake"
  "/root/repo/build/src/rados/CMakeFiles/mal_rados.dir/DependInfo.cmake"
  "/root/repo/build/src/osd/CMakeFiles/mal_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/mal_consensus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
