file(REMOVE_RECURSE
  "CMakeFiles/mal_mds.dir/balancer.cc.o"
  "CMakeFiles/mal_mds.dir/balancer.cc.o.d"
  "CMakeFiles/mal_mds.dir/mds.cc.o"
  "CMakeFiles/mal_mds.dir/mds.cc.o.d"
  "CMakeFiles/mal_mds.dir/mds_client.cc.o"
  "CMakeFiles/mal_mds.dir/mds_client.cc.o.d"
  "libmal_mds.a"
  "libmal_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
