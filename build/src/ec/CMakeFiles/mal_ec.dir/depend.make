# Empty dependencies file for mal_ec.
# This may be replaced when dependencies are built.
