file(REMOVE_RECURSE
  "libmal_ec.a"
)
