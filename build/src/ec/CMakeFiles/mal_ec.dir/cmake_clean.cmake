file(REMOVE_RECURSE
  "CMakeFiles/mal_ec.dir/codec.cc.o"
  "CMakeFiles/mal_ec.dir/codec.cc.o.d"
  "libmal_ec.a"
  "libmal_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
