# Empty dependencies file for mal_mantle.
# This may be replaced when dependencies are built.
