file(REMOVE_RECURSE
  "libmal_mantle.a"
)
