file(REMOVE_RECURSE
  "CMakeFiles/mal_mantle.dir/mantle.cc.o"
  "CMakeFiles/mal_mantle.dir/mantle.cc.o.d"
  "libmal_mantle.a"
  "libmal_mantle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_mantle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
