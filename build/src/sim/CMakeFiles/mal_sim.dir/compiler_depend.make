# Empty compiler generated dependencies file for mal_sim.
# This may be replaced when dependencies are built.
