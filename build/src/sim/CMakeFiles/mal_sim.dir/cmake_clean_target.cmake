file(REMOVE_RECURSE
  "libmal_sim.a"
)
