file(REMOVE_RECURSE
  "CMakeFiles/mal_sim.dir/actor.cc.o"
  "CMakeFiles/mal_sim.dir/actor.cc.o.d"
  "CMakeFiles/mal_sim.dir/network.cc.o"
  "CMakeFiles/mal_sim.dir/network.cc.o.d"
  "CMakeFiles/mal_sim.dir/simulator.cc.o"
  "CMakeFiles/mal_sim.dir/simulator.cc.o.d"
  "libmal_sim.a"
  "libmal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
