file(REMOVE_RECURSE
  "CMakeFiles/mal_rados.dir/client.cc.o"
  "CMakeFiles/mal_rados.dir/client.cc.o.d"
  "CMakeFiles/mal_rados.dir/striper.cc.o"
  "CMakeFiles/mal_rados.dir/striper.cc.o.d"
  "libmal_rados.a"
  "libmal_rados.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_rados.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
