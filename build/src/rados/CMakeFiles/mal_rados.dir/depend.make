# Empty dependencies file for mal_rados.
# This may be replaced when dependencies are built.
