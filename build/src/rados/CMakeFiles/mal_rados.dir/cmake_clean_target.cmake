file(REMOVE_RECURSE
  "libmal_rados.a"
)
