# Empty dependencies file for mal_script.
# This may be replaced when dependencies are built.
