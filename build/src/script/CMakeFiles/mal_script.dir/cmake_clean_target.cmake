file(REMOVE_RECURSE
  "libmal_script.a"
)
