file(REMOVE_RECURSE
  "CMakeFiles/mal_script.dir/interpreter.cc.o"
  "CMakeFiles/mal_script.dir/interpreter.cc.o.d"
  "CMakeFiles/mal_script.dir/lexer.cc.o"
  "CMakeFiles/mal_script.dir/lexer.cc.o.d"
  "CMakeFiles/mal_script.dir/parser.cc.o"
  "CMakeFiles/mal_script.dir/parser.cc.o.d"
  "CMakeFiles/mal_script.dir/stdlib.cc.o"
  "CMakeFiles/mal_script.dir/stdlib.cc.o.d"
  "CMakeFiles/mal_script.dir/value.cc.o"
  "CMakeFiles/mal_script.dir/value.cc.o.d"
  "libmal_script.a"
  "libmal_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
