file(REMOVE_RECURSE
  "libmal_zlog.a"
)
