# Empty dependencies file for mal_zlog.
# This may be replaced when dependencies are built.
