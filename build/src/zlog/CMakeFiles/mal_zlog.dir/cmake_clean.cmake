file(REMOVE_RECURSE
  "CMakeFiles/mal_zlog.dir/log.cc.o"
  "CMakeFiles/mal_zlog.dir/log.cc.o.d"
  "libmal_zlog.a"
  "libmal_zlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_zlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
