file(REMOVE_RECURSE
  "CMakeFiles/mal_rbd.dir/image.cc.o"
  "CMakeFiles/mal_rbd.dir/image.cc.o.d"
  "libmal_rbd.a"
  "libmal_rbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_rbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
