file(REMOVE_RECURSE
  "libmal_rbd.a"
)
