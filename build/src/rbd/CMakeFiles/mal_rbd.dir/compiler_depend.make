# Empty compiler generated dependencies file for mal_rbd.
# This may be replaced when dependencies are built.
