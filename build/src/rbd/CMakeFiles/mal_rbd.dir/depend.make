# Empty dependencies file for mal_rbd.
# This may be replaced when dependencies are built.
