file(REMOVE_RECURSE
  "libmal_cls.a"
)
