file(REMOVE_RECURSE
  "CMakeFiles/mal_cls.dir/builtin.cc.o"
  "CMakeFiles/mal_cls.dir/builtin.cc.o.d"
  "CMakeFiles/mal_cls.dir/context.cc.o"
  "CMakeFiles/mal_cls.dir/context.cc.o.d"
  "CMakeFiles/mal_cls.dir/registry.cc.o"
  "CMakeFiles/mal_cls.dir/registry.cc.o.d"
  "libmal_cls.a"
  "libmal_cls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mal_cls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
