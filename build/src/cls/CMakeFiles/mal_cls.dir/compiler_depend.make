# Empty compiler generated dependencies file for mal_cls.
# This may be replaced when dependencies are built.
