# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_zlog_kv_store "/root/repo/build/examples/zlog_kv_store")
set_tests_properties(example_zlog_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mantle_tuning "/root/repo/build/examples/mantle_tuning")
set_tests_properties(example_mantle_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interface_evolution "/root/repo/build/examples/interface_evolution")
set_tests_properties(example_interface_evolution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_query_pushdown "/root/repo/build/examples/query_pushdown")
set_tests_properties(example_query_pushdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_block_device "/root/repo/build/examples/block_device")
set_tests_properties(example_block_device PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
