# Empty compiler generated dependencies file for query_pushdown.
# This may be replaced when dependencies are built.
