file(REMOVE_RECURSE
  "CMakeFiles/query_pushdown.dir/query_pushdown.cpp.o"
  "CMakeFiles/query_pushdown.dir/query_pushdown.cpp.o.d"
  "query_pushdown"
  "query_pushdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
