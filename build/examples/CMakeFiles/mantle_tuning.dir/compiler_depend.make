# Empty compiler generated dependencies file for mantle_tuning.
# This may be replaced when dependencies are built.
