file(REMOVE_RECURSE
  "CMakeFiles/mantle_tuning.dir/mantle_tuning.cpp.o"
  "CMakeFiles/mantle_tuning.dir/mantle_tuning.cpp.o.d"
  "mantle_tuning"
  "mantle_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mantle_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
