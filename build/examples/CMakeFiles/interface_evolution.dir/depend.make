# Empty dependencies file for interface_evolution.
# This may be replaced when dependencies are built.
