file(REMOVE_RECURSE
  "CMakeFiles/interface_evolution.dir/interface_evolution.cpp.o"
  "CMakeFiles/interface_evolution.dir/interface_evolution.cpp.o.d"
  "interface_evolution"
  "interface_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interface_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
