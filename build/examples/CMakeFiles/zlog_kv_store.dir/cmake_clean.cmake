file(REMOVE_RECURSE
  "CMakeFiles/zlog_kv_store.dir/zlog_kv_store.cpp.o"
  "CMakeFiles/zlog_kv_store.dir/zlog_kv_store.cpp.o.d"
  "zlog_kv_store"
  "zlog_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zlog_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
