# Empty compiler generated dependencies file for zlog_kv_store.
# This may be replaced when dependencies are built.
