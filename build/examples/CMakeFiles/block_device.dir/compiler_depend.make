# Empty compiler generated dependencies file for block_device.
# This may be replaced when dependencies are built.
