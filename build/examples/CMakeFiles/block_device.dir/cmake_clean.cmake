file(REMOVE_RECURSE
  "CMakeFiles/block_device.dir/block_device.cpp.o"
  "CMakeFiles/block_device.dir/block_device.cpp.o.d"
  "block_device"
  "block_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
