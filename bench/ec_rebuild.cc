// Erasure-coded pool bench: storage overhead, degraded-read penalty, and
// self-healing rebuild throughput (paper §4.4: "RADOS protects data using
// common techniques such as erasure coding, replication, and scrubbing").
//
// For each object-count point the bench runs a fresh cluster and measures:
//   - storage overhead: stored bytes / logical bytes for an EC k=3 pool
//     (shards + object index) against a 3-way replicated pool;
//   - read latency: the same objects read healthy, then degraded (one OSD
//     permanently lost, map updated, scrub not yet run) — every degraded
//     read decodes around the missing shard;
//   - rebuild: virtual time for the scrub agent to re-encode every lost
//     shard back to full k+1 redundancy, and the resulting rebuild rate.
// Deterministic in virtual time: same build, same numbers (wall_* fields
// are the only host-dependent outputs).
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/chaos.h"
#include "src/scrub/agent.h"

namespace mal {
namespace {

using bench::JsonReporter;
using bench::PrintColumns;
using bench::PrintHeader;
using bench::PrintSection;
using bench::ShapeCheck;

constexpr uint32_t kK = 3;                  // EC data shards (k+1 stored)
constexpr uint32_t kReplicas = 3;           // replicated pool width
constexpr size_t kObjectBytes = 4096;

struct PointResult {
  double logical_mb = 0;
  double ec_stored_mb = 0;
  double rep_stored_mb = 0;
  Histogram ec_write_us;
  Histogram read_us;
  Histogram degraded_read_us;
  uint64_t degraded_reads = 0;
  uint64_t reads_failed = 0;
  uint64_t shards_lost = 0;
  uint64_t shards_rebuilt = 0;
  double rebuild_mb = 0;
  double rebuild_ms = 0;
  uint32_t missing_after = 0;
};

uint64_t StoredBytes(cluster::Cluster* cluster) {
  uint64_t total = 0;
  for (size_t i = 0; i < cluster->num_osds(); ++i) {
    total += cluster->osd(i).store().bytes_used();
  }
  return total;
}

std::string PayloadFor(int index) {
  std::string payload = "ecbench-" + std::to_string(index) + ":";
  while (payload.size() < kObjectBytes) {
    payload.push_back(static_cast<char>('a' + (payload.size() * 31 + index) % 26));
  }
  return payload;
}

PointResult RunPoint(int num_objects) {
  cluster::ClusterOptions options;
  options.num_mons = 3;
  options.num_osds = 6;
  options.num_mds = 1;
  options.osd.replicas = kReplicas;
  // Fast monitor failover (see OsdConfig::mon_request_timeout): the rebuild
  // clock starts the moment the OSD is declared lost, so map updates must
  // not stall behind the default 5s per-attempt monitor RPC timeout.
  options.osd.mon_request_timeout = 1 * sim::kSecond;
  options.mon.proposal_interval = 200 * sim::kMillisecond;
  cluster::Cluster cluster(options);
  cluster.Boot();

  auto* client = cluster.NewClient();
  client->rados.mon_client().set_request_timeout(1 * sim::kSecond);
  client->rados.set_perf(&client->perf);

  auto await = [&cluster](std::optional<Status>* done) {
    cluster.RunUntil([&] { return done->has_value(); }, 300 * sim::kSecond);
    bool ok = done->has_value() && (*done)->ok();
    done->reset();
    return ok;
  };

  std::optional<Status> done;
  ec::Pool::Create(&client->rados, "ecbench", mon::PoolLayout::Erasure(kK),
                   [&](Status s) { done = s; });
  if (!await(&done)) {
    return {};
  }
  ec::Pool::Create(&client->rados, "repbench", mon::PoolLayout::Replicated(kReplicas),
                   [&](Status s) { done = s; });
  if (!await(&done)) {
    return {};
  }
  auto pool = ec::Pool::Bind(&client->rados, "ecbench");
  if (!pool.has_value()) {
    return {};
  }

  chaos::Checkers checkers(&cluster);

  PointResult r;
  r.logical_mb = static_cast<double>(num_objects) * kObjectBytes / 1e6;

  // -- storage overhead -------------------------------------------------------
  uint64_t base_bytes = StoredBytes(&cluster);
  for (int i = 0; i < num_objects; ++i) {
    std::string payload = PayloadFor(i);
    sim::Time start = cluster.simulator().Now();
    pool->Write("obj" + std::to_string(i), Buffer::FromString(payload),
                [&](Status s) { done = s; });
    if (!await(&done)) {
      return r;
    }
    r.ec_write_us.Add(static_cast<double>(cluster.simulator().Now() - start) / 1e3);
    checkers.RecordEcAck("ecbench", "obj" + std::to_string(i), payload);
  }
  uint64_t ec_bytes = StoredBytes(&cluster);
  for (int i = 0; i < num_objects; ++i) {
    client->rados.WriteFull("repbench/obj" + std::to_string(i),
                            Buffer::FromString(PayloadFor(i)),
                            [&](Status s) { done = s; });
    if (!await(&done)) {
      return r;
    }
  }
  uint64_t rep_bytes = StoredBytes(&cluster);
  r.ec_stored_mb = static_cast<double>(ec_bytes - base_bytes) / 1e6;
  r.rep_stored_mb = static_cast<double>(rep_bytes - ec_bytes) / 1e6;

  // -- healthy reads ----------------------------------------------------------
  auto read_all = [&](Histogram* latency) {
    for (int i = 0; i < num_objects; ++i) {
      sim::Time start = cluster.simulator().Now();
      std::optional<Status> read_done;
      pool->Read("obj" + std::to_string(i), [&](Status s, const Buffer& data) {
        if (s.ok() && data.ToString() != PayloadFor(i)) {
          s = Status::DataLoss("payload mismatch");
        }
        read_done = s;
      });
      cluster.RunUntil([&] { return read_done.has_value(); }, 300 * sim::kSecond);
      if (!read_done.has_value() || !read_done->ok()) {
        ++r.reads_failed;
        continue;
      }
      latency->Add(static_cast<double>(cluster.simulator().Now() - start) / 1e3);
    }
  };
  read_all(&r.read_us);

  // -- permanent loss ---------------------------------------------------------
  // Deterministic victim: the OSD holding the most EC shards (lowest id on
  // ties), so the loss always strands at least one shard.
  uint32_t victim = 0;
  uint64_t victim_shards = 0;
  for (size_t o = 0; o < cluster.num_osds(); ++o) {
    uint64_t shards = 0;
    for (const std::string& oid : cluster.osd(o).store().List()) {
      if (oid.rfind("ecbench/", 0) == 0 && oid.find(".shard") != std::string::npos) {
        ++shards;
      }
    }
    if (shards > victim_shards) {
      victim_shards = shards;
      victim = static_cast<uint32_t>(o);
    }
  }
  r.shards_lost = victim_shards;
  cluster.osd(victim).Crash();
  cluster.osd(victim).store().Clear();
  mon::Transaction fail;
  fail.op = mon::Transaction::Op::kOsdFail;
  fail.daemon_id = victim;
  client->rados.mon_client().SubmitTransaction(fail, [&](Status s) { done = s; });
  if (!await(&done)) {
    return r;
  }
  client->rados.RefreshMap([&](Status s) { done = s; });
  if (!await(&done)) {
    return r;
  }

  // -- degraded reads ---------------------------------------------------------
  uint64_t degraded_before = client->perf.counter("rados.ec.degraded_reads");
  read_all(&r.degraded_read_us);
  r.degraded_reads = client->perf.counter("rados.ec.degraded_reads") - degraded_before;

  // -- rebuild ----------------------------------------------------------------
  scrub::ScrubConfig scrub_config;
  scrub_config.interval = 100 * sim::kMillisecond;
  scrub_config.objects_per_tick = 8;
  auto* agent = cluster.NewScrubAgent(scrub_config);
  agent->rados().mon_client().set_request_timeout(1 * sim::kSecond);
  sim::Time rebuild_start = cluster.simulator().Now();
  cluster.RunUntil(
      [&] {
        return agent->passes_completed() > 0 &&
               checkers.EcMissingShards("ecbench", kK) == 0;
      },
      600 * sim::kSecond);
  r.rebuild_ms =
      static_cast<double>(cluster.simulator().Now() - rebuild_start) / 1e6;
  r.shards_rebuilt = agent->perf().counter("scrub.shards_rebuilt");
  r.rebuild_mb = static_cast<double>(agent->perf().counter("scrub.bytes_rebuilt")) / 1e6;
  r.missing_after = checkers.EcMissingShards("ecbench", kK);
  return r;
}

}  // namespace
}  // namespace mal

int main(int argc, char** argv) {
  using namespace mal;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    }
  }

  PrintHeader(
      "EC pools: storage overhead, degraded reads, self-healing rebuild",
      "Writes 4 KiB objects into an EC k=3 pool and a 3-way replicated pool, "
      "then permanently loses the shard-heaviest OSD: reads decode around the "
      "missing shard (degraded) until the scrub agent re-encodes every lost "
      "shard back to full k+1 redundancy on the surviving OSDs.");
  PrintColumns({"objects", "ec_overhead", "rep_overhead", "read_us_p50",
                "degraded_us_p50", "rebuild_ms", "rebuilt"});

  JsonReporter json("ec_rebuild");
  bool ok = true;
  std::vector<int> points = small ? std::vector<int>{8} : std::vector<int>{16, 64};
  for (int n : points) {
    PointResult r = RunPoint(n);
    double ec_overhead = r.logical_mb > 0 ? r.ec_stored_mb / r.logical_mb : 0;
    double rep_overhead = r.logical_mb > 0 ? r.rep_stored_mb / r.logical_mb : 0;
    std::printf("%d\t%.3f\t%.3f\t%.1f\t%.1f\t%.1f\t%llu\n", n, ec_overhead,
                rep_overhead, r.read_us.Quantile(0.50),
                r.degraded_read_us.Quantile(0.50), r.rebuild_ms,
                static_cast<unsigned long long>(r.shards_rebuilt));
    std::vector<std::pair<std::string, double>> metrics = {
        {"objects", static_cast<double>(n)},
        {"logical_mb", r.logical_mb},
        {"ec_stored_mb", r.ec_stored_mb},
        {"rep_stored_mb", r.rep_stored_mb},
        {"ec_overhead", ec_overhead},
        {"rep_overhead", rep_overhead},
        {"degraded_reads", static_cast<double>(r.degraded_reads)},
        {"reads_failed", static_cast<double>(r.reads_failed)},
        {"shards_lost", static_cast<double>(r.shards_lost)},
        {"shards_rebuilt", static_cast<double>(r.shards_rebuilt)},
        {"rebuild_ms", r.rebuild_ms},
        {"rebuild_mb", r.rebuild_mb},
        {"rebuild_mb_per_s",
         r.rebuild_ms > 0 ? r.rebuild_mb / (r.rebuild_ms / 1e3) : 0},
        {"missing_after_rebuild", static_cast<double>(r.missing_after)},
    };
    JsonReporter::AppendLatency(&metrics, r.ec_write_us, "ec_write_us");
    JsonReporter::AppendLatency(&metrics, r.read_us, "read_us");
    JsonReporter::AppendLatency(&metrics, r.degraded_read_us, "degraded_read_us");
    std::string name = "n" + std::to_string(n);
    json.Add(name, std::move(metrics), /*events=*/static_cast<double>(n) * 4);

    ok &= ShapeCheck(name + ": EC stores cheaper than replication",
                     ec_overhead > 0 && ec_overhead < rep_overhead);
    ok &= ShapeCheck(name + ": EC overhead near (k+1)/k",
                     ec_overhead > 1.2 && ec_overhead < 1.7);
    ok &= ShapeCheck(name + ": no read failed (healthy or degraded)",
                     r.reads_failed == 0);
    ok &= ShapeCheck(name + ": degraded reads decoded around the loss",
                     r.degraded_reads > 0);
    ok &= ShapeCheck(name + ": scrub restored full redundancy",
                     r.missing_after == 0 && r.rebuild_ms > 0);
    ok &= ShapeCheck(name + ": every lost shard rebuilt",
                     r.shards_rebuilt >= r.shards_lost && r.shards_lost > 0);
  }

  PrintSection("shape checks");
  json.Write();
  return ok ? 0 : 1;
}
