// §6.2.3 "Feature: Backoff" — aggressiveness of balancing decisions.
//
// Paper: "the more conservative the approach the less overall throughput"
// during the balancing phase, but conservatism (waiting for the receiver
// to cool down; sustained-overload countdowns) avoids thrashing. We sweep
// the Mantle policy's when() threshold and cooldown and report time of
// first migration, number of migrations, and total + stable throughput.
#include "bench/balancer_experiment.h"
#include "bench/bench_util.h"

namespace {

std::string PolicyWithKnobs(double receiver_threshold_fraction, int cooldown) {
  char buffer[1024];
  std::snprintf(buffer, sizeof(buffer), R"(
if state.cooldown == nil then state.cooldown = 0 end

function when()
  if state.cooldown > 0 then
    state.cooldown = state.cooldown - 1
    return false
  end
  local my = mds[whoami]["load"]
  if my < 100 then return false end
  local coolest = nil
  for rank, row in pairs(mds) do
    if rank ~= whoami then
      if coolest == nil or row["load"] < mds[coolest]["load"] then
        coolest = rank
      end
    end
  end
  if coolest == nil then return false end
  if mds[coolest]["load"] > my * %f then return false end
  state.receiver = coolest
  state.cooldown = %d
  return true
end

function where()
  targets[state.receiver] = mds[whoami]["load"] / 2
end
)",
                receiver_threshold_fraction, cooldown);
  return buffer;
}

}  // namespace

int main() {
  using namespace mal::bench;
  namespace sim = mal::sim;
  PrintHeader("Backoff study (§6.2.3): aggressive vs conservative balancing",
              "Mantle policy knobs: receiver-cool threshold and post-migration "
              "cooldown ticks. 3 sequencers x 4 clients, 3 MDS, 150 s runs.");
  PrintColumns({"policy", "first_migration_s", "migrations", "stable_ops_per_sec",
                "total_ops"});

  struct Knobs {
    const char* name;
    double threshold;
    int cooldown;
  };
  const Knobs sweep[] = {
      {"aggressive(thr=0.9,cd=0)", 0.9, 0},
      {"moderate(thr=0.5,cd=1)", 0.5, 1},
      {"conservative(thr=0.25,cd=2)", 0.25, 2},
      {"very-conservative(thr=0.1,cd=4)", 0.1, 4},
  };
  double aggressive_first = -1;
  double conservative_first = -1;
  for (const Knobs& knobs : sweep) {
    BalancerExperimentConfig config;
    config.name = knobs.name;
    config.duration = 150 * sim::kSecond;
    config.mantle_policy = PolicyWithKnobs(knobs.threshold, knobs.cooldown);
    BalancerExperimentResult result = RunBalancerExperiment(config);
    double total = 0;
    for (const auto& [t, v] : result.cluster_series) {
      total += v;
    }
    double first = result.migrations.empty() ? -1 : std::get<0>(result.migrations[0]);
    std::printf("%s\t%.1f\t%zu\t%.0f\t%.0f\n", knobs.name, first,
                result.migrations.size(), result.stable_ops_per_sec, total);
    if (knobs.cooldown == 0) {
      aggressive_first = first;
    }
    if (knobs.cooldown == 4) {
      conservative_first = first;
    }
  }
  PrintSection("shape check");
  std::printf("conservative policies migrate later (or not at all): %s\n",
              (conservative_first < 0 || conservative_first >= aggressive_first) ? "yes"
                                                                                  : "NO");
  return 0;
}
