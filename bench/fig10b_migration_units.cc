// Figure 10b: migration units x routing modes.
//
// Paper: "the best combination of mode and migration units can have up to
// a 2x improvement"; "client mode does not perform as well for read-heavy
// workloads. We even see a throughput improvement when migrating all load
// off the first server... Proxy mode does the best in both cases."
//
// Setup: 2 sequencers x 4 clients, 2 MDS; "Half" migrates one sequencer to
// mds.1, "Full" migrates both; proxy (forwarding) vs client (redirect).
#include "bench/balancer_experiment.h"
#include "bench/bench_util.h"

int main() {
  using namespace mal::bench;
  namespace sim = mal::sim;
  using mal::mds::RoutingMode;
  PrintHeader("Figure 10b: migration units (half/full) x modes (proxy/client)",
              "2 sequencers x 4 clients, 2 MDS, 90 s runs; stable-phase "
              "cluster ops/sec.");
  PrintColumns({"config", "ops_per_sec"});

  auto run = [](const std::string& name, RoutingMode routing, int migrate_count) {
    BalancerExperimentConfig config;
    config.name = name;
    config.num_mds = 2;
    config.num_seqs = 2;
    config.duration = 90 * sim::kSecond;
    config.routing = routing;
    for (int s = 0; s < migrate_count; ++s) {
      config.manual_migrations.push_back(
          {5 * sim::kSecond, "/zlog/seq" + std::to_string(s), 1});
    }
    BalancerExperimentResult result = RunBalancerExperiment(config);
    std::printf("%s\t%.0f\n", name.c_str(), result.stable_ops_per_sec);
    return result.stable_ops_per_sec;
  };

  double baseline = run("no-balancing", RoutingMode::kProxy, 0);
  double proxy_half = run("proxy-half", RoutingMode::kProxy, 1);
  double proxy_full = run("proxy-full", RoutingMode::kProxy, 2);
  double client_half = run("client-half", RoutingMode::kRedirect, 1);
  double client_full = run("client-full", RoutingMode::kRedirect, 2);

  PrintSection("shape check");
  std::printf("proxy-full best overall: %s\n",
              proxy_full >= proxy_half && proxy_full >= client_half &&
                      proxy_full >= client_full
                  ? "yes"
                  : "NO");
  std::printf("proxy beats client at same unit: half %s, full %s\n",
              proxy_half > client_half ? "yes" : "NO",
              proxy_full > client_full ? "yes" : "NO");
  std::printf("proxy-full vs client modes factor: %.1fx / %.1fx (paper: up to 2x)\n",
              client_half > 0 ? proxy_full / client_half : 0,
              client_full > 0 ? proxy_full / client_full : 0);
  std::printf("balancing beats co-location: %s (baseline %.0f)\n",
              proxy_half > baseline ? "yes" : "NO", baseline);
  return 0;
}
