// Multi-log CORFU at scale: sharded sequencer ownership across MDS ranks
// (the PR-9 tentpole). Three sections, all emitted to BENCH_multilog.json:
//
//   1. mds_scaling   — many sequencer inodes (Zipf-skewed traffic) spread
//                      round-robin over 1/2/4 metadata ranks through the
//                      two-phase handoff. Published owners answer grants
//                      without the root-anchored coherence tax, so the
//                      aggregate grant rate must scale near-linearly with
//                      rank count.
//   2. mantle_hotlog — a MalScript policy reads the per-inode sequencer
//                      load table (mds[i]["seq"][path]) that SnapshotLoad
//                      exports and sheds the hottest logs from the birth
//                      rank; the balancer routes sequencer paths through
//                      MigrateSequencer automatically.
//   3. failover      — live migration under append traffic, then a crash
//                      of an owning rank with no restart: clients detect
//                      the dead owner, seal at a bumped epoch, and install
//                      the recovered tail on the survivor (CORFU takeover).
//                      Each orphaned log must resume inside a latency
//                      budget, and a post-heal VerifyLog on every log must
//                      find every acked append intact.
//
// `--small` shrinks every section for CI (same checks, smaller totals).
#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/chaos/chaos.h"
#include "src/cluster/cluster.h"
#include "src/cluster/workload.h"
#include "src/mantle/mantle.h"
#include "src/mon/maps.h"

namespace {

using namespace mal;
using namespace mal::bench;

std::vector<std::string> MakeLogPaths(int count) {
  std::vector<std::string> paths;
  paths.reserve(count);
  for (int i = 0; i < count; ++i) {
    paths.push_back("/zlog/log" + std::to_string(i) + "/seq");
  }
  return paths;
}

// Creates `paths` as round-trip sequencers on the admin client's home rank
// and (when num_mds > 1) spreads them round-robin over all ranks through
// the two-phase handoff. Returns false on any failure.
bool CreateAndSpread(cluster::Cluster* cluster, cluster::Client* admin,
                     const std::vector<std::string>& paths) {
  mds::LeasePolicy round_trip;
  round_trip.mode = mds::LeaseMode::kRoundTrip;
  for (const std::string& path : paths) {
    mal::Status created = cluster::CreateSequencer(cluster, admin, path, round_trip);
    if (!created.ok()) {
      std::fprintf(stderr, "create %s failed: %s\n", path.c_str(),
                   created.ToString().c_str());
      return false;
    }
  }
  const uint32_t num_mds = static_cast<uint32_t>(cluster->num_mds());
  if (num_mds <= 1) {
    return true;
  }
  int outstanding = 0;
  bool failed = false;
  for (size_t i = 0; i < paths.size(); ++i) {
    uint32_t target = static_cast<uint32_t>(i) % num_mds;
    if (target == 0) {
      continue;
    }
    ++outstanding;
    cluster->mds(0).MigrateSequencer(paths[i], target, [&](mal::Status s) {
      --outstanding;
      if (!s.ok()) {
        std::fprintf(stderr, "spread migration failed: %s\n", s.ToString().c_str());
        failed = true;
      }
    });
  }
  if (!cluster->RunUntil([&] { return outstanding == 0; }, 300 * sim::kSecond)) {
    std::fprintf(stderr, "spread migrations did not settle\n");
    return false;
  }
  // Let the new owners' map publishes commit before traffic starts.
  cluster->RunFor(2 * sim::kSecond);
  return !failed;
}

// -- Section 1: MDS scaling ---------------------------------------------------

struct ScalingResult {
  double grants_per_sec = 0;  // simulated
  uint64_t issued = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  double p99_latency_us = 0;
  uint64_t redirects = 0;
  uint64_t migrations = 0;
  uint64_t sim_events = 0;
};

ScalingResult RunScaling(uint32_t num_mds, int num_logs, sim::Time duration) {
  cluster::ClusterOptions options;
  options.num_mons = 1;
  options.num_osds = 3;
  options.num_mds = num_mds;
  options.mon.proposal_interval = 200 * sim::kMillisecond;
  options.mds.seq_ownership = true;
  cluster::Cluster cluster(options);
  cluster.Boot();

  auto* admin = cluster.NewClient();
  std::vector<std::string> paths = MakeLogPaths(num_logs);
  ScalingResult result;
  if (!CreateAndSpread(&cluster, admin, paths)) {
    return result;
  }

  // Open-loop grant traffic at ~1.3x the aggregate grant capacity
  // (handle+tail cost ~110 us -> ~9k grants/s/rank): the metadata cluster
  // is always the bottleneck, so completed/sec measures capacity.
  cluster::ScaleWorkloadOptions wl;
  wl.num_sessions = 10'000;
  wl.num_client_actors = 8;
  wl.arrivals.shape = cluster::ArrivalConfig::Shape::kSteady;
  wl.arrivals.base_rate_hz = 12'000.0 * static_cast<double>(num_mds);
  wl.seq_fraction = 1.0;
  wl.seq_paths = paths;
  wl.zipf_theta = 0.99;
  wl.seed = 42;
  cluster::ScaleWorkload workload(&cluster, wl);
  uint64_t events_before = cluster.simulator().events_processed();
  workload.Start();
  cluster.RunFor(duration);
  workload.Stop();
  cluster.RunFor(2 * sim::kSecond);  // drain in-flight grants

  result.issued = workload.issued();
  result.completed = workload.completed();
  result.failed = workload.failed();
  result.grants_per_sec =
      static_cast<double>(workload.completed()) / (static_cast<double>(duration) / 1e9);
  result.p99_latency_us = workload.latency().Quantile(0.99);
  for (size_t m = 0; m < cluster.num_mds(); ++m) {
    result.redirects += cluster.mds(m).perf().counter("mds.seq.redirects");
    result.migrations += cluster.mds(m).perf().counter("mds.seq.migrations");
  }
  result.sim_events = cluster.simulator().events_processed() - events_before;
  return result;
}

// -- Section 2: Mantle hot-log policy -----------------------------------------

// Sheds the single hottest log once this rank is clearly hotter than the
// coolest peer. The per-inode rates come from the `seq` table the sharded
// MDS exports with its load metrics; `targets` amounts are load units, and
// the balancer picks subtrees hottest-first, so shedding "the hottest
// log's rate" migrates exactly that log.
const char kHotLogPolicy[] = R"(
if state.ticks == nil then state.ticks = 0 end
function when()
  state.ticks = state.ticks + 1
  if state.ticks < 2 then return false end
  if mds[whoami]["num_seqs"] < 2 then return false end
  local my = mds[whoami]["load"]
  if my < 100 then return false end
  local coolest = nil
  for rank, row in pairs(mds) do
    if rank ~= whoami then
      if coolest == nil or row["load"] < mds[coolest]["load"] then
        coolest = rank
      end
    end
  end
  if coolest == nil then return false end
  if mds[coolest]["load"] * 2 > my then return false end
  local hottest = 0
  for path, rate in pairs(mds[whoami]["seq"]) do
    if rate > hottest then hottest = rate end
  end
  if hottest <= 0 then return false end
  state.receiver = coolest
  state.amount = hottest
  return true
end
function where()
  targets[state.receiver] = state.amount
end
)";

struct HotLogResult {
  uint64_t policy_migrations = 0;  // sequencer handoffs the balancer ordered
  uint64_t owned_rank0 = 0;
  uint64_t owned_rank1 = 0;
  double grants_per_sec = 0;
  uint64_t sim_events = 0;
  bool ok = false;
};

HotLogResult RunHotLog(int num_logs, sim::Time duration) {
  cluster::ClusterOptions options;
  options.num_mons = 1;
  options.num_osds = 3;
  options.num_mds = 2;
  options.mon.proposal_interval = 200 * sim::kMillisecond;
  options.mds.seq_ownership = true;
  options.mds.balancing_enabled = true;
  options.mds.balance_interval = 5 * sim::kSecond;
  options.mds.load_report_interval = 2 * sim::kSecond;
  cluster::Cluster cluster(options);
  cluster.Boot();

  HotLogResult result;
  for (size_t m = 0; m < cluster.num_mds(); ++m) {
    auto policy = mantle::MantleBalancer::Load("multilog", kHotLogPolicy);
    if (!policy.ok()) {
      std::fprintf(stderr, "hot-log policy rejected: %s\n",
                   policy.status().ToString().c_str());
      return result;
    }
    cluster.mds(m).SetBalancerPolicy(policy.value());
    cluster.mds(m).on_migration = [&result](const std::string&, uint32_t) {
      ++result.policy_migrations;
    };
  }

  // All logs born on rank 0; the policy has to notice and shed.
  auto* admin = cluster.NewClient();
  std::vector<std::string> paths = MakeLogPaths(num_logs);
  mds::LeasePolicy round_trip;
  round_trip.mode = mds::LeaseMode::kRoundTrip;
  for (const std::string& path : paths) {
    if (!cluster::CreateSequencer(&cluster, admin, path, round_trip).ok()) {
      return result;
    }
  }

  cluster::ScaleWorkloadOptions wl;
  wl.num_sessions = 5'000;
  wl.num_client_actors = 8;
  wl.arrivals.shape = cluster::ArrivalConfig::Shape::kSteady;
  wl.arrivals.base_rate_hz = 8'000.0;
  wl.seq_fraction = 1.0;
  wl.seq_paths = paths;
  wl.zipf_theta = 1.2;  // strong skew: a clear hottest log to shed
  wl.seed = 7;
  cluster::ScaleWorkload workload(&cluster, wl);
  uint64_t events_before = cluster.simulator().events_processed();
  workload.Start();
  cluster.RunFor(duration);
  workload.Stop();
  cluster.RunFor(2 * sim::kSecond);

  result.grants_per_sec =
      static_cast<double>(workload.completed()) / (static_cast<double>(duration) / 1e9);
  result.owned_rank0 =
      static_cast<uint64_t>(cluster.mds(0).perf().gauge("mds.seq.owned_logs"));
  result.owned_rank1 =
      static_cast<uint64_t>(cluster.mds(1).perf().gauge("mds.seq.owned_logs"));
  result.sim_events = cluster.simulator().events_processed() - events_before;
  result.ok = true;
  return result;
}

// -- Section 3: migration + failover under append traffic ---------------------

// Closed-loop ZLog appender with path-scoped ack bookkeeping and resume
// tracking (first successful append after a marked disruption).
struct Appender {
  chaos::Checkers* checkers = nullptr;
  zlog::Log* log = nullptr;
  cluster::Cluster* cluster = nullptr;
  std::string path;
  std::string prefix;
  uint64_t next_tag = 0;
  uint64_t ok = 0;
  uint64_t failed = 0;
  bool stop = false;
  bool inflight = false;
  // Resume tracking: set disrupted_at, then resumed_at records the sim
  // time of the first successful append at or after it.
  sim::Time disrupted_at = 0;
  sim::Time resumed_at = 0;

  void Pump() {
    if (stop) {
      inflight = false;
      return;
    }
    inflight = true;
    std::string tag = prefix + std::to_string(next_tag++);
    // Resume is judged on the issue time, not the completion time: an
    // append whose position was granted before the crash can still land
    // after it without proving the sequencer came back.
    sim::Time issued_at = cluster->simulator().Now();
    log->Append(Buffer::FromString(tag),
                [this, tag, issued_at](Status status, uint64_t pos) {
      if (status.ok()) {
        ++ok;
        checkers->RecordAck(path, pos, tag);
        if (disrupted_at != 0 && resumed_at == 0 && issued_at >= disrupted_at) {
          resumed_at = cluster->simulator().Now();
        }
      } else {
        ++failed;
      }
      Pump();
    });
  }
};

struct FailoverResult {
  bool migrated_ok = false;
  uint64_t total_acked = 0;
  uint64_t takeovers = 0;
  double max_resume_s = 0;  // slowest log's crash-to-resume latency
  size_t resumed_logs = 0;
  size_t violations = 0;
  std::string first_violation;
  uint64_t sim_events = 0;
  bool verified = false;
};

FailoverResult RunFailover(int num_logs, sim::Time traffic_before_crash) {
  cluster::ClusterOptions options;
  options.num_mons = 1;
  options.num_osds = 3;
  options.num_mds = 2;
  options.osd.replicas = 2;
  options.mon.proposal_interval = 200 * sim::kMillisecond;
  options.mds.seq_ownership = true;
  cluster::Cluster cluster(options);
  cluster.Boot();
  uint64_t events_before = cluster.simulator().events_processed();

  FailoverResult result;
  chaos::Checkers checkers(&cluster);
  std::vector<cluster::Client*> clients;
  std::vector<std::unique_ptr<zlog::Log>> logs;
  std::vector<std::unique_ptr<Appender>> appenders;
  for (int i = 0; i < num_logs; ++i) {
    // Short MDS rpc timeout: dead-owner detection cost is the timeout times
    // the retry budget, and this bench puts a budget on crash-to-resume.
    mds::MdsClientConfig mds_config;
    mds_config.rpc_timeout = 1 * sim::kSecond;
    auto* client = cluster.NewClient(mds_config);
    clients.push_back(client);
    zlog::LogOptions rt;
    rt.name = "flog" + std::to_string(i);
    auto log = client->OpenLog(rt);
    bool opened = false;
    log->Open([&](Status) { opened = true; });
    if (!cluster.RunUntil([&] { return opened; })) {
      return result;
    }
    checkers.WatchSequencer(log->sequencer_path());
    auto appender = std::make_unique<Appender>();
    appender->checkers = &checkers;
    appender->log = log.get();
    appender->cluster = &cluster;
    appender->path = log->sequencer_path();
    appender->prefix = "f" + std::to_string(i) + ":";
    logs.push_back(std::move(log));
    appenders.push_back(std::move(appender));
  }
  checkers.Arm();
  for (auto& appender : appenders) {
    appender->Pump();
  }
  cluster.RunFor(traffic_before_crash / 2);

  // Live migration under traffic: log 0 moves to rank 1 mid-stream.
  std::optional<Status> migrated;
  cluster.mds(0).MigrateSequencer(logs[0]->sequencer_path(), 1,
                                  [&](Status s) { migrated = s; });
  cluster.RunUntil([&] { return migrated.has_value(); }, 60 * sim::kSecond);
  result.migrated_ok = migrated.has_value() && migrated->ok();
  cluster.RunFor(traffic_before_crash / 2);

  // Crash the rank that now owns log 0 — no restart. Every log it owned is
  // orphaned until its clients run the seal-and-takeover failover.
  sim::Time crash_time = cluster.simulator().Now();
  for (auto& appender : appenders) {
    appender->disrupted_at = crash_time;
  }
  cluster.mds(1).Crash();

  // Failover window: generous against the budget so slow resumes show up
  // in the measurement instead of as missing data.
  cluster.RunFor(30 * sim::kSecond);
  for (auto& appender : appenders) {
    if (appender->resumed_at != 0) {
      ++result.resumed_logs;
      double resume_s =
          static_cast<double>(appender->resumed_at - crash_time) / 1e9;
      result.max_resume_s = std::max(result.max_resume_s, resume_s);
    }
  }

  // Heal: the crashed rank restarts, sees the map naming the survivor for
  // everything taken over, and demotes its journaled copies (max-merge).
  cluster.mds(1).Recover();
  cluster.RunFor(5 * sim::kSecond);
  for (auto& appender : appenders) {
    appender->stop = true;
  }
  cluster.RunUntil(
      [&] {
        for (auto& appender : appenders) {
          if (appender->inflight) {
            return false;
          }
        }
        return true;
      },
      120 * sim::kSecond);

  int verified = 0;
  for (int i = 0; i < num_logs; ++i) {
    checkers.VerifyLog(logs[i]->sequencer_path(), logs[i].get(), [&] { ++verified; });
  }
  result.verified =
      cluster.RunUntil([&] { return verified == num_logs; }, 300 * sim::kSecond);

  for (auto& appender : appenders) {
    result.total_acked += appender->ok;
  }
  for (cluster::Client* client : clients) {
    result.takeovers += client->perf.counter("zlog.takeovers");
  }
  result.violations = checkers.violations().size();
  if (!checkers.violations().empty()) {
    result.first_violation = checkers.violations().front();
  }
  result.sim_events = cluster.simulator().events_processed() - events_before;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    }
  }

  PrintHeader("multilog: sharded sequencers, Mantle hot-log migration, failover",
              small ? "small (CI) configuration" : "full configuration");
  JsonReporter json("multilog");
  bool ok = true;

  // -- 1. MDS scaling ---------------------------------------------------------
  const int scaling_logs = small ? 128 : 1000;
  const sim::Time scaling_duration = (small ? 4 : 10) * sim::kSecond;
  std::vector<uint32_t> mds_counts = {1, 2, 4};
  std::vector<double> scaling_rates;
  PrintSection("mds_scaling");
  for (uint32_t m : mds_counts) {
    ScalingResult r = RunScaling(m, scaling_logs, scaling_duration);
    scaling_rates.push_back(r.grants_per_sec);
    std::printf(
        "mds_scaling(%u mds, %d logs): %.0f grants/s (issued %llu, failed %llu, "
        "redirects %llu)\n",
        m, scaling_logs, r.grants_per_sec, static_cast<unsigned long long>(r.issued),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.redirects));
    json.Add("mds_scaling(" + std::to_string(m) + " mds)",
             {{"grants_per_sec", r.grants_per_sec},
              {"num_logs", static_cast<double>(scaling_logs)},
              {"issued", static_cast<double>(r.issued)},
              {"completed", static_cast<double>(r.completed)},
              {"failed", static_cast<double>(r.failed)},
              {"p99_latency_us", r.p99_latency_us},
              {"redirects", static_cast<double>(r.redirects)},
              {"spread_migrations", static_cast<double>(r.migrations)}},
             static_cast<double>(r.sim_events));
  }
  ok &= ShapeCheck("mds_scaling: 2 mds >= 1.6x 1 mds aggregate grants/sec",
                   scaling_rates[1] >= 1.6 * scaling_rates[0]);
  ok &= ShapeCheck("mds_scaling: 4 mds >= 2.6x 1 mds aggregate grants/sec",
                   scaling_rates[2] >= 2.6 * scaling_rates[0]);

  // -- 2. Mantle hot-log migration --------------------------------------------
  PrintSection("mantle_hotlog");
  {
    HotLogResult r = RunHotLog(small ? 8 : 16, (small ? 30 : 45) * sim::kSecond);
    std::printf(
        "mantle_hotlog: %llu policy migrations, owned rank0=%llu rank1=%llu, "
        "%.0f grants/s\n",
        static_cast<unsigned long long>(r.policy_migrations),
        static_cast<unsigned long long>(r.owned_rank0),
        static_cast<unsigned long long>(r.owned_rank1), r.grants_per_sec);
    json.Add("mantle_hotlog",
             {{"policy_migrations", static_cast<double>(r.policy_migrations)},
              {"owned_rank0", static_cast<double>(r.owned_rank0)},
              {"owned_rank1", static_cast<double>(r.owned_rank1)},
              {"grants_per_sec", r.grants_per_sec}},
             static_cast<double>(r.sim_events));
    ok &= ShapeCheck("mantle_hotlog: the seq-table policy migrated at least one log",
                     r.ok && r.policy_migrations >= 1);
    ok &= ShapeCheck("mantle_hotlog: both ranks own logs after rebalancing",
                     r.owned_rank0 >= 1 && r.owned_rank1 >= 1);
  }

  // -- 3. migration + failover ------------------------------------------------
  PrintSection("failover");
  {
    FailoverResult r = RunFailover(small ? 3 : 4, 4 * sim::kSecond);
    std::printf(
        "failover: migrated_ok=%d, resumed %zu logs, max crash-to-resume %.2f s, "
        "%llu takeovers, %llu acked, violations %zu\n",
        r.migrated_ok ? 1 : 0, r.resumed_logs, r.max_resume_s,
        static_cast<unsigned long long>(r.takeovers),
        static_cast<unsigned long long>(r.total_acked), r.violations);
    if (!r.first_violation.empty()) {
      std::printf("first violation: %s\n", r.first_violation.c_str());
    }
    json.Add("failover",
             {{"migrated_ok", r.migrated_ok ? 1.0 : 0.0},
              {"resumed_logs", static_cast<double>(r.resumed_logs)},
              {"max_resume_s", r.max_resume_s},
              {"takeovers", static_cast<double>(r.takeovers)},
              {"total_acked", static_cast<double>(r.total_acked)},
              {"violations", static_cast<double>(r.violations)}},
             static_cast<double>(r.sim_events));
    const size_t expected_logs = small ? 3 : 4;
    ok &= ShapeCheck("failover: live migration under traffic succeeded", r.migrated_ok);
    ok &= ShapeCheck("failover: every log resumed after the owner crash",
                     r.resumed_logs == expected_logs);
    ok &= ShapeCheck("failover: at least one client ran the seal-and-takeover path",
                     r.takeovers >= 1);
    ok &= ShapeCheck("failover: slowest crash-to-resume within 10 s budget",
                     r.max_resume_s > 0 && r.max_resume_s <= 10.0);
    ok &= ShapeCheck("failover: post-heal verify passed with zero violations",
                     r.verified && r.violations == 0);
  }

  json.Write();
  return ok ? 0 : 1;
}
