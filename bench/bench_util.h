// Output helpers shared by the figure-reproduction benches: each bench
// prints a titled block with tab-separated rows that can be piped straight
// into a plotting tool.
#ifndef MALACOLOGY_BENCH_BENCH_UTIL_H_
#define MALACOLOGY_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/common/trace.h"

namespace mal::bench {

// Process peak resident set size in MiB (0 if the platform query fails).
// Sampled into every BENCH_*.json record: COW aliasing trades memory for
// speed (a live slice pins its whole arena), so the benches that prove the
// wall-clock win also expose its memory cost.
inline double PeakRssMb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // ru_maxrss is KiB on Linux
}

// Host wall-clock timer (monotonic). The simulated clock measures modeled
// latency; this measures what the substrate actually costs to run.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& name) { std::printf("\n-- %s --\n", name.c_str()); }

inline void PrintColumns(const std::vector<std::string>& columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : "\t", columns[i].c_str());
  }
  std::printf("\n");
}

// Prints a (time, value) series as two columns.
inline void PrintSeries(const std::string& label,
                        const std::vector<std::pair<double, double>>& series) {
  for (const auto& [x, y] : series) {
    std::printf("%s\t%.3f\t%.2f\n", label.c_str(), x, y);
  }
}

// Prints selected quantiles of a histogram on one line.
inline void PrintQuantiles(const std::string& label, const Histogram& histogram) {
  std::printf("%s\tcount=%zu\tp50=%.1f\tp90=%.1f\tp99=%.1f\tp999=%.1f\tmax=%.1f\n",
              label.c_str(), histogram.count(), histogram.Quantile(0.50),
              histogram.Quantile(0.90), histogram.Quantile(0.99),
              histogram.Quantile(0.999), histogram.max());
}

// Trace-derived per-hop latency breakdown. For every finished root span
// named `root_name` in the collector, its extent is split into:
//   - client queueing: root start -> first child RPC issue (time a batch
//     waited in the in-flight window before anything hit the wire);
//   - sequencer wait: summed duration of the mds-bound RPC spans;
//   - OSD commit: extent (min start -> max end) of the osd-bound RPC
//     spans, i.e. the wall-clock of the parallel write phase.
// All values are simulator-clock microseconds.
struct HopBreakdown {
  Histogram queue_us;
  Histogram seq_us;
  Histogram osd_us;
  size_t traces = 0;
};

inline HopBreakdown BreakdownRoots(const trace::TraceCollector& collector,
                                   const std::string& root_name) {
  HopBreakdown out;
  for (const trace::Span& span : collector.spans()) {
    if (span.name != root_name || span.open) {
      continue;
    }
    uint64_t first_child = UINT64_MAX;
    double seq_ns = 0;
    uint64_t osd_start = UINT64_MAX;
    uint64_t osd_end = 0;
    for (const trace::Span* child : collector.ChildrenOf(span.span_id)) {
      if (child->open) {
        continue;
      }
      first_child = std::min(first_child, child->start_ns);
      if (child->name.find(":mds.") != std::string::npos) {
        seq_ns += static_cast<double>(child->end_ns - child->start_ns);
      } else if (child->name.find(":osd.") != std::string::npos) {
        osd_start = std::min(osd_start, child->start_ns);
        osd_end = std::max(osd_end, child->end_ns);
      }
    }
    if (first_child == UINT64_MAX) {
      continue;  // no finished children: nothing to attribute
    }
    ++out.traces;
    out.queue_us.Add(static_cast<double>(first_child - span.start_ns) / 1e3);
    out.seq_us.Add(seq_ns / 1e3);
    if (osd_start != UINT64_MAX) {
      out.osd_us.Add(static_cast<double>(osd_end - osd_start) / 1e3);
    }
  }
  return out;
}

// Merges the breakdown into a JsonReporter record's metrics and prints a
// one-line summary.
inline void AppendBreakdown(std::vector<std::pair<std::string, double>>* metrics,
                            const HopBreakdown& breakdown) {
  metrics->emplace_back("trace_count", static_cast<double>(breakdown.traces));
  metrics->emplace_back("client_queue_us_mean", breakdown.queue_us.mean());
  metrics->emplace_back("client_queue_us_p99", breakdown.queue_us.Quantile(0.99));
  metrics->emplace_back("seq_wait_us_mean", breakdown.seq_us.mean());
  metrics->emplace_back("seq_wait_us_p99", breakdown.seq_us.Quantile(0.99));
  metrics->emplace_back("osd_commit_us_mean", breakdown.osd_us.mean());
  metrics->emplace_back("osd_commit_us_p99", breakdown.osd_us.Quantile(0.99));
}

inline void PrintBreakdown(const std::string& label, const HopBreakdown& breakdown) {
  std::printf("%s\ttraces=%zu\tqueue_us=%.1f\tseq_wait_us=%.1f\tosd_commit_us=%.1f\n",
              label.c_str(), breakdown.traces, breakdown.queue_us.mean(),
              breakdown.seq_us.mean(), breakdown.osd_us.mean());
}

// Machine-readable results: accumulates one record per configuration and
// writes a BENCH_<name>.json file so the perf trajectory of a bench can be
// tracked across PRs (and diffed in CI) without scraping stdout.
//
// Every record is automatically stamped with host-side cost fields:
//   - wall_seconds: wall-clock since the previous Add (or construction),
//     i.e. what this configuration cost to run on the host;
//   - peak_rss_mb:  process peak RSS at Add time;
//   - events_per_sec: events / wall_seconds, when Add is given an event
//     count.
// Simulated metrics (throughput/latency in virtual time) are the caller's;
// they must be bit-identical across substrate optimizations — the wall
// fields are where an optimization is allowed to show up.
//
//   JsonReporter json("zlog");
//   json.Add("batched(b=16,w=4)", {{"appends_per_sec", 1.2e5}, ...}, 2048);
//   json.Write();   // -> BENCH_zlog.json
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& config,
           std::vector<std::pair<std::string, double>> metrics, double events = 0) {
    double wall = timer_.Seconds();
    timer_.Reset();
    metrics.emplace_back("wall_seconds", wall);
    if (events > 0 && wall > 0) {
      metrics.emplace_back("events_per_sec", events / wall);
    }
    metrics.emplace_back("peak_rss_mb", PeakRssMb());
    records_.push_back({config, std::move(metrics)});
  }

  // Convenience: the standard latency block (mean + percentiles, in the
  // histogram's native unit) merged into a record's metrics.
  static void AppendLatency(std::vector<std::pair<std::string, double>>* metrics,
                            const Histogram& histogram, const std::string& prefix) {
    metrics->emplace_back(prefix + "_mean", histogram.mean());
    metrics->emplace_back(prefix + "_p50", histogram.Quantile(0.50));
    metrics->emplace_back(prefix + "_p90", histogram.Quantile(0.90));
    metrics->emplace_back(prefix + "_p99", histogram.Quantile(0.99));
    metrics->emplace_back(prefix + "_max", histogram.max());
  }

  // Writes BENCH_<name>.json in the working directory; returns false (and
  // warns on stderr) if the file cannot be created.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"configs\": [\n", name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    {\"name\": \"%s\"", Escape(records_[i].config).c_str());
      for (const auto& [key, value] : records_[i].metrics) {
        std::fprintf(f, ", \"%s\": %.6g", Escape(key).c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  struct Record {
    std::string config;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  std::vector<Record> records_;
  WallTimer timer_;  // marks the start of the in-progress configuration
};

// Standard pass/fail line for invariants a bench asserts about its own
// results ("per-append cost flat across object sizes"). CI greps for
// "shape check" lines and fails the build when any says FAIL.
inline bool ShapeCheck(const std::string& what, bool pass) {
  std::printf("shape check: %s ... %s\n", what.c_str(), pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace mal::bench

#endif  // MALACOLOGY_BENCH_BENCH_UTIL_H_
