// Output helpers shared by the figure-reproduction benches: each bench
// prints a titled block with tab-separated rows that can be piped straight
// into a plotting tool.
#ifndef MALACOLOGY_BENCH_BENCH_UTIL_H_
#define MALACOLOGY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"

namespace mal::bench {

inline void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& name) { std::printf("\n-- %s --\n", name.c_str()); }

inline void PrintColumns(const std::vector<std::string>& columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : "\t", columns[i].c_str());
  }
  std::printf("\n");
}

// Prints a (time, value) series as two columns.
inline void PrintSeries(const std::string& label,
                        const std::vector<std::pair<double, double>>& series) {
  for (const auto& [x, y] : series) {
    std::printf("%s\t%.3f\t%.2f\n", label.c_str(), x, y);
  }
}

// Prints selected quantiles of a histogram on one line.
inline void PrintQuantiles(const std::string& label, const Histogram& histogram) {
  std::printf("%s\tcount=%zu\tp50=%.1f\tp90=%.1f\tp99=%.1f\tp999=%.1f\tmax=%.1f\n",
              label.c_str(), histogram.count(), histogram.Quantile(0.50),
              histogram.Quantile(0.90), histogram.Quantile(0.99),
              histogram.Quantile(0.999), histogram.max());
}

// Machine-readable results: accumulates one record per configuration and
// writes a BENCH_<name>.json file so the perf trajectory of a bench can be
// tracked across PRs (and diffed in CI) without scraping stdout.
//
//   JsonReporter json("zlog");
//   json.Add("batched(b=16,w=4)", {{"appends_per_sec", 1.2e5}, ...});
//   json.Write();   // -> BENCH_zlog.json
class JsonReporter {
 public:
  explicit JsonReporter(std::string name) : name_(std::move(name)) {}

  void Add(const std::string& config,
           std::vector<std::pair<std::string, double>> metrics) {
    records_.push_back({config, std::move(metrics)});
  }

  // Convenience: the standard latency block (mean + percentiles, in the
  // histogram's native unit) merged into a record's metrics.
  static void AppendLatency(std::vector<std::pair<std::string, double>>* metrics,
                            const Histogram& histogram, const std::string& prefix) {
    metrics->emplace_back(prefix + "_mean", histogram.mean());
    metrics->emplace_back(prefix + "_p50", histogram.Quantile(0.50));
    metrics->emplace_back(prefix + "_p90", histogram.Quantile(0.90));
    metrics->emplace_back(prefix + "_p99", histogram.Quantile(0.99));
    metrics->emplace_back(prefix + "_max", histogram.max());
  }

  // Writes BENCH_<name>.json in the working directory; returns false (and
  // warns on stderr) if the file cannot be created.
  bool Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"configs\": [\n", name_.c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    {\"name\": \"%s\"", Escape(records_[i].config).c_str());
      for (const auto& [key, value] : records_[i].metrics) {
        std::fprintf(f, ", \"%s\": %.6g", Escape(key).c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  struct Record {
    std::string config;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string name_;
  std::vector<Record> records_;
};

}  // namespace mal::bench

#endif  // MALACOLOGY_BENCH_BENCH_UTIL_H_
