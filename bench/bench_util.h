// Output helpers shared by the figure-reproduction benches: each bench
// prints a titled block with tab-separated rows that can be piped straight
// into a plotting tool.
#ifndef MALACOLOGY_BENCH_BENCH_UTIL_H_
#define MALACOLOGY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace mal::bench {

inline void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", description.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& name) { std::printf("\n-- %s --\n", name.c_str()); }

inline void PrintColumns(const std::vector<std::string>& columns) {
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : "\t", columns[i].c_str());
  }
  std::printf("\n");
}

// Prints a (time, value) series as two columns.
inline void PrintSeries(const std::string& label,
                        const std::vector<std::pair<double, double>>& series) {
  for (const auto& [x, y] : series) {
    std::printf("%s\t%.3f\t%.2f\n", label.c_str(), x, y);
  }
}

// Prints selected quantiles of a histogram on one line.
inline void PrintQuantiles(const std::string& label, const Histogram& histogram) {
  std::printf("%s\tcount=%zu\tp50=%.1f\tp90=%.1f\tp99=%.1f\tp999=%.1f\tmax=%.1f\n",
              label.c_str(), histogram.count(), histogram.Quantile(0.50),
              histogram.Quantile(0.90), histogram.Quantile(0.99),
              histogram.Quantile(0.999), histogram.max());
}

}  // namespace mal::bench

#endif  // MALACOLOGY_BENCH_BENCH_UTIL_H_
